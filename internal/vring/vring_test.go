package vring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ids"
)

func TestRingConstruction(t *testing.T) {
	s := Ring([]ids.ID{5, 1, 3})
	if s[1] != 3 || s[3] != 5 || s[5] != 1 {
		t.Errorf("Ring = %v", s)
	}
	if !s.GloballyConsistent([]ids.ID{1, 3, 5}) {
		t.Error("canonical ring must be globally consistent")
	}
	if s.Classify() != Consistent {
		t.Errorf("Classify = %v", s.Classify())
	}
}

func TestLocallyConsistent(t *testing.T) {
	if !(SuccMap{}).LocallyConsistent() {
		t.Error("empty map is trivially consistent")
	}
	if !(SuccMap{1: 2, 2: 1}).LocallyConsistent() {
		t.Error("2-cycle is locally consistent")
	}
	if (SuccMap{1: 1}).LocallyConsistent() {
		// Self-pointer with 1 node: len<2 short-circuits, so build 2 nodes.
		t.Log("single self-pointer allowed as degenerate")
	}
	if (SuccMap{1: 1, 2: 1}).LocallyConsistent() {
		t.Error("self-successor must fail")
	}
	if (SuccMap{1: 3, 2: 3, 3: 1}).LocallyConsistent() {
		t.Error("3 has two predecessors, 2 has none")
	}
	if (SuccMap{1: 2, 2: 99}).LocallyConsistent() {
		t.Error("dangling successor must fail")
	}
}

func TestLoopyExampleMatchesPaper(t *testing.T) {
	s := LoopyExample()
	// ISPRP's local view: perfectly consistent.
	if !s.LocallyConsistent() {
		t.Fatal("the loopy state must be ISPRP-locally consistent")
	}
	// But globally it is loopy, not consistent.
	if got := s.Classify(); got != Loopy {
		t.Fatalf("Classify = %v, want loopy", got)
	}
	cycles, broken := s.Cycles()
	if len(cycles) != 1 || len(broken) != 0 {
		t.Fatalf("cycles=%v broken=%v", cycles, broken)
	}
	if len(cycles[0]) != len(FigureNodes) {
		t.Errorf("loopy cycle should span all nodes, got %v", cycles[0])
	}
	// The line view exposes it exactly as §3 says: nodes 1 and 4 have two
	// right neighbors, nodes 21 and 25 two left neighbors.
	rep := AnalyzeLine(s.ToGraph())
	wantMultiRight := []ids.ID{1, 4}
	wantMultiLeft := []ids.ID{21, 25}
	if len(rep.MultiRight) != 2 || rep.MultiRight[0] != wantMultiRight[0] || rep.MultiRight[1] != wantMultiRight[1] {
		t.Errorf("MultiRight = %v, want %v", rep.MultiRight, wantMultiRight)
	}
	if len(rep.MultiLeft) != 2 || rep.MultiLeft[0] != wantMultiLeft[0] || rep.MultiLeft[1] != wantMultiLeft[1] {
		t.Errorf("MultiLeft = %v, want %v", rep.MultiLeft, wantMultiLeft)
	}
	if rep.LocallyConsistent() {
		t.Error("line view must NOT be locally consistent for the loopy state")
	}
	if rep.Components != 1 {
		t.Errorf("loopy state is connected, got %d components", rep.Components)
	}
	if rep.Violations() == 0 {
		t.Error("loopy state must show violations")
	}
}

func TestSeparateRingsExampleMatchesPaper(t *testing.T) {
	s := SeparateRingsExample()
	if !s.LocallyConsistent() {
		t.Fatal("separate rings are ISPRP-locally consistent")
	}
	if got := s.Classify(); got != Partitioned {
		t.Fatalf("Classify = %v, want partitioned", got)
	}
	cycles, _ := s.Cycles()
	if len(cycles) != 2 {
		t.Fatalf("want 2 rings, got %v", cycles)
	}
	if cycles[0][0] != 1 || cycles[1][0] != 4 {
		t.Errorf("canonical cycles = %v", cycles)
	}
	// Line view: the virtual graph is disconnected.
	rep := AnalyzeLine(s.ToGraph())
	if rep.Components != 2 {
		t.Errorf("Components = %d, want 2", rep.Components)
	}
}

func TestCyclesBrokenTails(t *testing.T) {
	// 1→2→3→2: node 1 is a broken tail into the 2-3 cycle.
	s := SuccMap{1: 2, 2: 3, 3: 2}
	cycles, broken := s.Cycles()
	if len(cycles) != 1 || len(broken) != 1 || broken[0] != 1 {
		t.Errorf("cycles=%v broken=%v", cycles, broken)
	}
	if s.Classify() != Broken {
		t.Errorf("Classify = %v, want broken", s.Classify())
	}
	// Dangling pointer.
	s2 := SuccMap{1: 2, 2: 99}
	_, broken2 := s2.Cycles()
	if len(broken2) != 2 {
		t.Errorf("broken = %v, want both nodes", broken2)
	}
	// Tail into an already-visited cycle discovered from an earlier start.
	s3 := SuccMap{1: 2, 2: 1, 5: 1}
	cycles3, broken3 := s3.Cycles()
	if len(cycles3) != 1 || len(broken3) != 1 || broken3[0] != 5 {
		t.Errorf("cycles=%v broken=%v", cycles3, broken3)
	}
}

func TestGloballyConsistentRejectsWrongNodeSet(t *testing.T) {
	s := Ring([]ids.ID{1, 2, 3})
	if s.GloballyConsistent([]ids.ID{1, 2}) {
		t.Error("size mismatch must fail")
	}
	if s.GloballyConsistent([]ids.ID{1, 2, 4}) {
		t.Error("membership mismatch must fail")
	}
	if !s.GloballyConsistent([]ids.ID{3, 2, 1}) {
		t.Error("order of the query slice must not matter")
	}
}

func TestToGraph(t *testing.T) {
	s := Ring([]ids.ID{1, 2, 3, 4})
	g := s.ToGraph()
	if !g.IsSortedRing() {
		t.Error("consistent ring should convert to the sorted ring graph")
	}
}

func TestConsistencyString(t *testing.T) {
	names := map[Consistency]string{
		Consistent: "consistent", Loopy: "loopy",
		Partitioned: "partitioned", Broken: "broken", Consistency(42): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestAnalyzeLineOnPerfectLine(t *testing.T) {
	g := graph.Line([]ids.ID{1, 4, 9, 13})
	rep := AnalyzeLine(g)
	if !rep.LocallyConsistent() {
		t.Errorf("perfect line must be locally consistent: %s", rep)
	}
	if rep.Violations() != 0 {
		t.Errorf("Violations = %d, want 0", rep.Violations())
	}
	if len(rep.EmptyLeft) != 1 || rep.EmptyLeft[0] != 1 {
		t.Errorf("EmptyLeft = %v, want [1]", rep.EmptyLeft)
	}
	if len(rep.EmptyRight) != 1 || rep.EmptyRight[0] != 13 {
		t.Errorf("EmptyRight = %v, want [13]", rep.EmptyRight)
	}
	if !GloballyConsistentLine(g) {
		t.Error("perfect line is globally consistent")
	}
}

func TestAnalyzeLineViolationsCountsEmptySides(t *testing.T) {
	// Two disjoint line segments: 1-2 and 5-6. Two EmptyLeft (1,5), two
	// EmptyRight (2,6): violations = 2.
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(5, 6)
	rep := AnalyzeLine(g)
	if rep.Violations() != 2 {
		t.Errorf("Violations = %d, want 2", rep.Violations())
	}
	if rep.LocallyConsistent() {
		t.Error("two segments are not a consistent line")
	}
}

func TestTheoremLocalPlusConnectedIsGlobal(t *testing.T) {
	// The §3 theorem, checked over random connected graphs: whenever the
	// line view is locally consistent AND connected, the graph is exactly
	// the sorted line.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(20)
		nodes := graph.MakeIDs(n, graph.RandomIDs, r)
		g := graph.ErdosRenyi(nodes, 0.3, r)
		rep := AnalyzeLine(g)
		if rep.LocallyConsistent() && rep.Components == 1 {
			if !g.IsLinearized() {
				t.Fatalf("counterexample to the §3 theorem: %v", g.Edges())
			}
		}
	}
	// And positively: the sorted line always satisfies the premise.
	nodes := graph.MakeIDs(10, graph.RandomIDs, r)
	line := graph.Line(nodes)
	rep := AnalyzeLine(line)
	if !(rep.LocallyConsistent() && rep.Components == 1 && line.IsLinearized()) {
		t.Error("sorted line must satisfy both premise and conclusion")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Ring([]ids.ID{1, 2, 3})
	c := s.Clone()
	c[1] = 99
	if s[1] == 99 {
		t.Error("Clone aliases")
	}
}

func TestClassifyDegenerate(t *testing.T) {
	if (SuccMap{}).Classify() != Consistent {
		t.Error("empty map is consistent")
	}
	if (SuccMap{1: 1}).Classify() != Consistent {
		t.Error("single node is consistent (degenerate)")
	}
}

func TestRandomPermutationClassifyProperty(t *testing.T) {
	// Property: for a random permutation successor map, Classify never
	// reports Broken, and reports Consistent iff the permutation is the
	// sorted rotation.
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%20)
		r := rand.New(rand.NewSource(seed))
		nodes := graph.MakeIDs(n, graph.RandomIDs, r)
		perm := r.Perm(n)
		s := make(SuccMap, n)
		for i, v := range nodes {
			if perm[i] == i {
				return true // skip self-pointers: not a valid ring state
			}
			s[v] = nodes[perm[i]]
		}
		got := s.Classify()
		if got == Broken {
			return false
		}
		want := Ring(nodes)
		isRing := true
		for v := range s {
			if s[v] != want[v] {
				isRing = false
				break
			}
		}
		return (got == Consistent) == isRing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoopyStateGeneralized(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	nodes := graph.MakeIDs(31, graph.RandomIDs, r) // prime size: any step is coprime
	for _, step := range []int{2, 3, 5} {
		s := LoopyState(nodes, step)
		if !s.LocallyConsistent() {
			t.Errorf("step %d: must be locally consistent", step)
		}
		if got := s.Classify(); got != Loopy {
			t.Errorf("step %d: Classify = %v, want loopy", step, got)
		}
	}
	// Step 1 is the correct sorted ring.
	if got := LoopyState(nodes, 1).Classify(); got != Consistent {
		t.Errorf("step 1 should be consistent, got %v", got)
	}
	if len(LoopyState(nil, 2)) != 0 {
		t.Error("empty node set should give empty map")
	}
	// The paper's Figure 1 is exactly LoopyState(FigureNodes, 2).
	want := LoopyExample()
	got := LoopyState(FigureNodes, 2)
	for v, succ := range want {
		if got[v] != succ {
			t.Fatalf("LoopyState(FigureNodes,2) diverges from Fig.1 at %v", v)
		}
	}
}

func TestPartitionedStateGeneralized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nodes := graph.MakeIDs(24, graph.RandomIDs, r)
	for _, k := range []int{2, 3, 4} {
		s := PartitionedState(nodes, k)
		if got := s.Classify(); got != Partitioned {
			t.Errorf("k=%d: Classify = %v, want partitioned", k, got)
		}
		cycles, _ := s.Cycles()
		if len(cycles) != k {
			t.Errorf("k=%d: got %d rings", k, len(cycles))
		}
	}
	if got := PartitionedState(nodes, 1).Classify(); got != Consistent {
		t.Errorf("k=1 should be the sorted ring, got %v", got)
	}
	if got := PartitionedState(nodes, 0).Classify(); got != Consistent {
		t.Errorf("k=0 clamps to 1, got %v", got)
	}
}
