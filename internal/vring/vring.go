// Package vring models the virtual ring of SSR/VRR and its consistency
// notions, in both of the paper's views:
//
//   - The *ring* view used by ISPRP: directed successor pointers. Local
//     consistency means every node has exactly one successor and exactly one
//     predecessor — which a loopy state (Fig. 1) and separate rings (Fig. 2)
//     both satisfy, which is why ISPRP needs flooding to certify global
//     consistency.
//   - The *line* view used by linearization: undirected virtual edges with
//     left/right neighbor sets. Here local consistency (every node has at
//     most one left and one right neighbor, and only the extremal nodes
//     have an empty side) plus connectedness *is* global consistency (§3).
//
// The package provides checkers for both views, the classification of
// global inconsistencies, and constructors for the exact example states of
// the paper's Figures 1 and 2.
package vring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
)

// SuccMap is the directed ring view: each node's believed successor.
type SuccMap map[ids.ID]ids.ID

// Clone returns an independent copy.
func (s SuccMap) Clone() SuccMap {
	c := make(SuccMap, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// LocallyConsistent reports whether every node has exactly one successor
// (structural: present in the map, pointing at a member node, not itself)
// and exactly one predecessor. This is the fixed point of ISPRP's local
// rewiring and deliberately does NOT imply global consistency.
func (s SuccMap) LocallyConsistent() bool {
	if len(s) < 2 {
		return true
	}
	preds := make(map[ids.ID]int, len(s))
	for v, succ := range s {
		if succ == v {
			return false
		}
		if _, ok := s[succ]; !ok {
			return false
		}
		preds[succ]++
	}
	for v := range s {
		if preds[v] != 1 {
			return false
		}
	}
	return true
}

// Cycles decomposes the successor permutation into its cycles. Nodes whose
// pointer chain leaves the map or repeats before closing are collected in
// broken. Cycles are canonicalized to start at their smallest member and
// sorted by that member.
func (s SuccMap) Cycles() (cycles [][]ids.ID, broken []ids.ID) {
	visited := ids.NewSet()
	var all []ids.ID
	for v := range s {
		all = append(all, v)
	}
	ids.SortAsc(all)
	for _, start := range all {
		if visited.Has(start) {
			continue
		}
		var path []ids.ID
		onPath := ids.NewSet()
		v := start
		for {
			if onPath.Has(v) {
				// Closed a cycle at v; anything on path before v is broken tail.
				i := 0
				for path[i] != v {
					i++
				}
				broken = append(broken, path[:i]...)
				cyc := append([]ids.ID(nil), path[i:]...)
				cycles = append(cycles, canonicalize(cyc))
				break
			}
			if visited.Has(v) {
				// Ran into a previously classified region: this tail is broken.
				broken = append(broken, path...)
				break
			}
			next, member := s[v]
			if !member {
				// Pointer left the node universe: the whole tail is broken.
				broken = append(broken, path...)
				break
			}
			onPath.Add(v)
			visited.Add(v)
			path = append(path, v)
			v = next
		}
	}
	ids.SortAsc(broken)
	return cycles, broken
}

func canonicalize(cyc []ids.ID) []ids.ID {
	min := 0
	for i, v := range cyc {
		if v < cyc[min] {
			min = i
		}
	}
	out := make([]ids.ID, 0, len(cyc))
	out = append(out, cyc[min:]...)
	out = append(out, cyc[:min]...)
	return out
}

// Consistency classifies the global state of a successor map.
type Consistency int

// The global states distinguished in §3.
const (
	// Consistent: one cycle visiting all nodes in sorted ring order.
	Consistent Consistency = iota
	// Loopy: one cycle visiting all nodes, but not in sorted order (Fig. 1).
	Loopy
	// Partitioned: more than one cycle — separate virtual rings (Fig. 2).
	Partitioned
	// Broken: structural damage (dangling pointers, shared successors).
	Broken
)

// String names the consistency class.
func (c Consistency) String() string {
	switch c {
	case Consistent:
		return "consistent"
	case Loopy:
		return "loopy"
	case Partitioned:
		return "partitioned"
	case Broken:
		return "broken"
	default:
		return "unknown"
	}
}

// Classify determines the global state of the successor map.
func (s SuccMap) Classify() Consistency {
	if len(s) < 2 {
		return Consistent
	}
	cycles, broken := s.Cycles()
	if len(broken) > 0 || !s.LocallyConsistent() {
		return Broken
	}
	if len(cycles) > 1 {
		return Partitioned
	}
	if len(cycles) == 1 && isSortedRingOrder(cycles[0]) {
		if len(cycles[0]) == len(s) {
			return Consistent
		}
		return Partitioned
	}
	return Loopy
}

// isSortedRingOrder reports whether the cycle (canonicalized to start at its
// smallest member) visits members in ascending identifier order.
func isSortedRingOrder(cyc []ids.ID) bool {
	for i := 1; i < len(cyc); i++ {
		if cyc[i-1] >= cyc[i] {
			return false
		}
	}
	return true
}

// GloballyConsistent reports whether the successor map forms the single
// sorted virtual ring over exactly the given node set.
func (s SuccMap) GloballyConsistent(nodes []ids.ID) bool {
	if len(s) != len(nodes) {
		return false
	}
	for _, v := range nodes {
		if _, ok := s[v]; !ok {
			return false
		}
	}
	return s.Classify() == Consistent
}

// Ring returns the canonical sorted-ring successor map over the given nodes.
func Ring(nodes []ids.ID) SuccMap {
	sorted := append([]ids.ID(nil), nodes...)
	ids.SortAsc(sorted)
	s := make(SuccMap, len(sorted))
	for i, v := range sorted {
		s[v] = sorted[(i+1)%len(sorted)]
	}
	return s
}

// ToGraph converts the successor pointers to the undirected virtual edge
// set of the line/linearization view (§4: "Unlike with ISPRP the edges in
// E_v are undirected").
func (s SuccMap) ToGraph() *graph.Graph {
	g := graph.New()
	for v, succ := range s {
		g.AddNode(v)
		if v != succ {
			g.AddEdge(v, succ)
		}
	}
	return g
}

// --- Line view -----------------------------------------------------------

// LineReport is the line-view local-consistency diagnosis of a virtual
// graph, the quantity the linearization algorithm drives to zero.
type LineReport struct {
	// MultiLeft / MultiRight list nodes with more than one left/right
	// neighbor (Fig. 1's nodes 21,25 and 1,4 respectively).
	MultiLeft, MultiRight []ids.ID
	// EmptyLeft / EmptyRight list nodes with no left/right neighbor. In a
	// consistent line exactly the minimum node has an empty left side and
	// exactly the maximum node an empty right side.
	EmptyLeft, EmptyRight []ids.ID
	// Components is the number of connected components of the virtual graph.
	Components int
}

// LocallyConsistent reports whether the line view is locally consistent:
// no node has two neighbors on the same side, and only the extremal nodes
// have an empty side.
func (r LineReport) LocallyConsistent() bool {
	return len(r.MultiLeft) == 0 && len(r.MultiRight) == 0 &&
		len(r.EmptyLeft) == 1 && len(r.EmptyRight) == 1
}

// Violations returns the count of line-view local inconsistencies — the
// convergence progress metric used by the experiment harnesses.
func (r LineReport) Violations() int {
	v := len(r.MultiLeft) + len(r.MultiRight)
	if len(r.EmptyLeft) > 1 {
		v += len(r.EmptyLeft) - 1
	}
	if len(r.EmptyRight) > 1 {
		v += len(r.EmptyRight) - 1
	}
	return v
}

// String summarizes the report.
func (r LineReport) String() string {
	return fmt.Sprintf("multiL=%d multiR=%d emptyL=%d emptyR=%d comps=%d",
		len(r.MultiLeft), len(r.MultiRight), len(r.EmptyLeft), len(r.EmptyRight), r.Components)
}

// AnalyzeLine diagnoses the line view of an undirected virtual graph.
func AnalyzeLine(g *graph.Graph) LineReport {
	var rep LineReport
	for _, v := range g.Nodes() {
		left, right := 0, 0
		for u := range g.Neighbors(v) {
			if ids.DirOf(v, u) == ids.Left {
				left++
			} else {
				right++
			}
		}
		switch {
		case left == 0:
			rep.EmptyLeft = append(rep.EmptyLeft, v)
		case left > 1:
			rep.MultiLeft = append(rep.MultiLeft, v)
		}
		switch {
		case right == 0:
			rep.EmptyRight = append(rep.EmptyRight, v)
		case right > 1:
			rep.MultiRight = append(rep.MultiRight, v)
		}
	}
	rep.Components = len(g.Components())
	return rep
}

// GloballyConsistentLine reports whether the virtual graph is exactly the
// sorted line — the §3 theorem made executable: a connected, line-locally
// consistent graph is the sorted line. (Callers wanting the closed ring use
// Graph.IsSortedRing.)
func GloballyConsistentLine(g *graph.Graph) bool {
	return g.IsLinearized()
}

// LineDistance measures how far a virtual graph is from the sorted line:
// missing counts consecutive-identifier edges not yet present, surplus
// counts edges that are neither consecutive nor the potential wrap edge
// between the extremal nodes (ring state, exempt from linearization — §4).
// Both are zero exactly on the sorted line or the sorted ring; their sum is
// the distance-to-linearized metric the convergence probes chart per round.
func LineDistance(g *graph.Graph) (missing, surplus int) {
	nodes := g.Nodes()
	if len(nodes) < 2 {
		return 0, 0
	}
	consecutive := make(map[graph.Edge]bool, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		consecutive[graph.NewEdge(nodes[i], nodes[i+1])] = true
		if !g.HasEdge(nodes[i], nodes[i+1]) {
			missing++
		}
	}
	wrap := graph.NewEdge(nodes[0], nodes[len(nodes)-1])
	for _, e := range g.Edges() {
		if !consecutive[e] && e != wrap {
			surplus++
		}
	}
	return missing, surplus
}

// --- The paper's figures as executable states -----------------------------

// FigureNodes are the identifiers used in the paper's Figures 1–3.
var FigureNodes = []ids.ID{1, 4, 9, 13, 18, 21, 25}

// LoopyExample reconstructs Figure 1: a successor structure in which every
// node has exactly one successor and one predecessor (ISPRP-locally
// consistent) yet the ring visits the identifier space twice. In the line
// view, nodes 1 and 4 have two right neighbors and nodes 21 and 25 two left
// neighbors — exactly the diagnosis in §3.
func LoopyExample() SuccMap {
	// Each node points two positions ahead in sorted order; with 7 nodes
	// this is a single cycle winding twice around the identifier space:
	// 1→9→18→25→4→13→21→1.
	s := make(SuccMap, len(FigureNodes))
	n := len(FigureNodes)
	for i, v := range FigureNodes {
		s[v] = FigureNodes[(i+2)%n]
	}
	return s
}

// SeparateRingsExample reconstructs Figure 2: nodes 1, 9, 18 and 4, 13, 21
// form two disjoint virtual rings — locally consistent, globally
// partitioned.
func SeparateRingsExample() SuccMap {
	return SuccMap{
		1: 9, 9: 18, 18: 1,
		4: 13, 13: 21, 21: 4,
	}
}

// LoopyState generalizes Figure 1 to arbitrary size: every node points
// step positions ahead in sorted order. When gcd(step, n) = 1 the result
// is a single ISPRP-locally-consistent cycle that winds step times around
// the identifier space — loopy for any step > 1. Used by the scaled E1
// benchmarks.
func LoopyState(nodes []ids.ID, step int) SuccMap {
	sorted := append([]ids.ID(nil), nodes...)
	ids.SortAsc(sorted)
	n := len(sorted)
	s := make(SuccMap, n)
	if n == 0 {
		return s
	}
	for i, v := range sorted {
		s[v] = sorted[(i+step)%n]
	}
	return s
}

// PartitionedState generalizes Figure 2: the sorted nodes are dealt
// round-robin into k disjoint sorted rings.
func PartitionedState(nodes []ids.ID, k int) SuccMap {
	sorted := append([]ids.ID(nil), nodes...)
	ids.SortAsc(sorted)
	if k < 1 {
		k = 1
	}
	groups := make([][]ids.ID, k)
	for i, v := range sorted {
		groups[i%k] = append(groups[i%k], v)
	}
	s := make(SuccMap, len(sorted))
	for _, g := range groups {
		for i, v := range g {
			if len(g) > 1 {
				s[v] = g[(i+1)%len(g)]
			}
		}
	}
	return s
}
