package linearize

// Equivalence suite for the partition-policy seam. Each registered policy
// must honor the executor's determinism contract: the outcome is a pure
// function of the schedule (partition size + policy), identical for every
// worker count — including the full trace stream. The contiguous policy is
// additionally pinned as byte-identical to the pre-policy default, so the
// committed trace artifacts stay reproducible.

import (
	"testing"

	"repro/internal/sim"
)

// TestPolicyIndependentOfWorkers: for every policy, the Workers=1 run is the
// reference; every other worker count must match it bit for bit — final
// graph, stats and the complete trace stream (shard accounting included,
// since the partition itself is part of the schedule).
func TestPolicyIndependentOfWorkers(t *testing.T) {
	g := randomConnected(400, 13)
	for _, v := range Variants() {
		for _, policy := range sim.PartitionPolicies() {
			base := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: true,
				Executor: sim.ExecutorConfig{Workers: 1, Shards: 8, Partition: policy}}
			refStats, refGraph, refEvents := runOnce(g, base)
			label := v.String() + "/" + policy
			if !refStats.Converged {
				t.Fatalf("%s: reference run did not converge: %s", label, refStats)
			}
			if !refGraph.SupersetOfLine() || !refGraph.Connected() {
				t.Fatalf("%s: converged graph violates the line invariant", label)
			}
			for _, workers := range []int{2, 4, 8} {
				cfg := base
				cfg.Executor.Workers = workers
				st, fg, evs := runOnce(g, cfg)
				if !fg.Equal(refGraph) {
					t.Fatalf("%s workers=%d: final graph differs from workers=1", label, workers)
				}
				if st.Par.Policy != policy {
					t.Fatalf("%s: run recorded policy %q", label, st.Par.Policy)
				}
				sameStats(t, label, st, refStats)
				sameEvents(t, label, refEvents, evs)
			}
		}
	}
}

// TestPolicyFinalGraphsMatchSequential: the cross-policy anchor. Memory's
// Jacobi schedule normalizes proposal order, so every policy — whatever its
// cuts or boundary discipline — must land on exactly the sequential
// executor's final graph. The atomic variants (Pure/LSN) follow different
// but equally valid Gauss-Seidel schedules per policy; for them every
// policy's converged result must still be the same sorted ring under Pure,
// which is schedule-independent.
func TestPolicyFinalGraphsMatchSequential(t *testing.T) {
	g := randomConnected(300, 29)
	legacy := Config{Variant: Memory, Scheduler: sim.Synchronous, CloseRing: true}
	_, lGraph, _ := runOnce(g, legacy)
	for _, policy := range sim.PartitionPolicies() {
		cfg := legacy
		cfg.Executor = sim.ExecutorConfig{Workers: 4, Shards: 8, Partition: policy}
		_, fg, _ := runOnce(g, cfg)
		if !fg.Equal(lGraph) {
			t.Fatalf("memory/%s: final graph differs from the sequential executor", policy)
		}
	}
	pureRef := Config{Variant: Pure, Scheduler: sim.Synchronous, CloseRing: true}
	_, pGraph, _ := runOnce(g, pureRef)
	if !pGraph.IsSortedRing() {
		t.Fatal("pure sequential run must end on the sorted ring")
	}
	for _, policy := range sim.PartitionPolicies() {
		cfg := pureRef
		cfg.Executor = sim.ExecutorConfig{Workers: 4, Shards: 8, Partition: policy}
		_, fg, _ := runOnce(g, cfg)
		if !fg.Equal(pGraph) {
			t.Fatalf("pure/%s: converged ring differs from the sequential executor", policy)
		}
	}
}

// TestContiguousIsTheDefault: an empty policy name and "contiguous" are the
// same schedule, and the deprecated Workers/Shards aliases reproduce the
// ExecutorConfig spelling byte for byte. Together with the legacy tests in
// parallel_test.go this pins that contiguous reproduces the committed trace
// artifacts exactly.
func TestContiguousIsTheDefault(t *testing.T) {
	g := randomConnected(250, 7)
	for _, v := range Variants() {
		named := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: true,
			Executor: sim.ExecutorConfig{Workers: 3, Shards: 6, Partition: "contiguous"}}
		nStats, nGraph, nEvents := runOnce(g, named)
		unnamed := named
		unnamed.Executor.Partition = ""
		uStats, uGraph, uEvents := runOnce(g, unnamed)
		aliased := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: true,
			Workers: 3, Shards: 6}
		aStats, aGraph, aEvents := runOnce(g, aliased)
		label := v.String()
		if !uGraph.Equal(nGraph) || !aGraph.Equal(nGraph) {
			t.Fatalf("%s: default/alias spellings diverge from contiguous", label)
		}
		sameStats(t, label+"/unnamed", uStats, nStats)
		sameStats(t, label+"/alias", aStats, nStats)
		sameEvents(t, label+"/unnamed", nEvents, uEvents)
		sameEvents(t, label+"/alias", nEvents, aEvents)
	}
}

// TestWavesMoveBoundaryWork: on an LSN run the locality policy must actually
// shift cross-shard activations from the sequential Finish phase onto the
// parallel waves — the whole point of the policy — while the contiguous
// baseline keeps them sequential.
func TestWavesMoveBoundaryWork(t *testing.T) {
	g := randomConnected(600, 3)
	run := func(policy string) Stats {
		st, _, _ := runOnce(g, Config{Variant: LSN, Scheduler: sim.Synchronous, CloseRing: true,
			Executor: sim.ExecutorConfig{Workers: 4, Shards: 8, Partition: policy}})
		return st
	}
	cont, loc := run("contiguous"), run("locality")
	if cont.Par.WaveActivations != 0 {
		t.Fatalf("contiguous must not run waves, got %d", cont.Par.WaveActivations)
	}
	if loc.Par.WaveActivations == 0 {
		t.Fatal("locality ran no wave activations on an LSN workload")
	}
	contSeq := cont.Par.BoundaryActivations
	locSeq := loc.Par.BoundaryActivations
	if locSeq >= contSeq {
		t.Fatalf("locality sequential boundary work (%d) not below contiguous (%d)", locSeq, contSeq)
	}
}

// TestUnknownPolicyPanics: Run must fail loudly on a policy name the
// registry does not know — a misspelled flag must not silently fall back.
func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown partition policy must panic")
		}
	}()
	g := randomConnected(50, 1)
	Run(g, Config{Variant: LSN, Scheduler: sim.Synchronous,
		Executor: sim.ExecutorConfig{Workers: 2, Partition: "no-such-policy"}})
}
