// Package linearize implements the paper's primary contribution: graph
// linearization as a self-stabilizing bootstrap for the virtual ring of SSR
// and VRR.
//
// Three algorithm variants from §2 (after Onus, Richa, Scheideler) are
// provided:
//
//   - Pure linearization (Algorithm 1): every node v sorts its neighbors
//     u_1 < … < u_k < v < u_{k+1} < … < u_n and *replaces* its edges with the
//     consecutive chain {u_1,u_2}, …, {u_k,v}, {v,u_{k+1}}, …, {u_{n-1},u_n}.
//     Converges, but may need many rounds.
//   - Linearization with memory: the chain edges are *added* and nothing is
//     removed. Average convergence drops to polylogarithmic, at the price of
//     unbounded per-node state.
//   - Linearization with shortcut neighbors (LSN): like memory, but every
//     node keeps at most one neighbor per exponentially growing identifier
//     interval per direction (always including the closest neighbor on each
//     side). Polylogarithmic convergence with O(log |space|) state.
//
// Two execution disciplines are supported (package sim): the synchronous
// round model that the literature's bounds are stated in, and a random
// sequential daemon in which one node at a time atomically applies its
// operation (the classic central-daemon model). A self-stabilizing
// algorithm must converge under both; the ablation benches compare them.
//
// Two semantics subtleties, reproduced deliberately:
//
// First, execution atomicity. For Memory — which only ever adds edges — a
// synchronous round is Jacobi-style: every node reads the same snapshot and
// all additions apply together (additions commute). For the edge-removing
// variants (Pure, LSN), fully simultaneous replacement is known not to
// converge (crossing chords regenerate each other forever; cf. Gall, Jacob,
// Richa, Scheideler, "A Note on the Parallel Runtime of Self-Stabilizing
// Graph Linearization"). Onus et al.'s model assumes atomic operations, so
// Pure and LSN apply node operations atomically — in identifier order
// within a synchronous round (Gauss-Seidel), in random order under the
// sequential daemon. A round still activates every node exactly once, so
// round counts remain comparable across variants.
//
// Second, forgetting must be *delegation*, not deletion. All three variants
// share one step shape: add Algorithm 1's chain edges, then drop the edges
// to neighbors outside the variant's keep set (Pure keeps only the closest
// neighbor per side; LSN the closest per exponential interval per side;
// Memory everything). Because the chain has already connected every dropped
// neighbor w to its consecutive predecessor — a strictly closer node — each
// removal is a delegation: the edge migrates toward w's true position
// rather than vanishing. Deleting edges outright (e.g. "drop unless some
// endpoint retains it") admits wrong stable fixed points in which a node is
// pruned out of everyone's view and can never be re-introduced; this
// implementation hit exactly that on power-law graphs before adopting the
// delegation semantics.
//
// Every variant preserves connectedness of the virtual graph — the property
// that makes local consistency equal global consistency on the line (§3) —
// and the tests verify this invariant on every round.
//
// Ring closure (§4's clockwise/counter-clockwise discovery messages between
// the nodes with empty left/right neighbor sets) is modeled by the
// CloseRing option. The wrap edge it establishes connects the extremal
// nodes of the identifier space and is deliberately *exempt* from
// linearization and pruning: linearization works on the line view, where
// the leftmost node simply has an empty left set — the wrap edge is ring
// state, not a line neighbor.
//
// The message-level version of the protocol (§4's neighbor notification /
// acknowledgment / teardown exchange over source routes) lives in package
// ssr; this package is the transport-independent algorithmic core.
package linearize

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Variant selects the linearization algorithm.
type Variant int

const (
	// Pure is Algorithm 1: edges are replaced.
	Pure Variant = iota
	// Memory adds chain edges and never removes any.
	Memory
	// LSN adds chain edges and prunes to one neighbor per exponential
	// interval per direction (keeping the closest neighbor on each side).
	LSN
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Pure:
		return "pure"
	case Memory:
		return "memory"
	case LSN:
		return "lsn"
	default:
		return "unknown"
	}
}

// Variants lists all algorithm variants, for sweeps.
func Variants() []Variant { return []Variant{Pure, Memory, LSN} }

// Config parameterizes a run.
type Config struct {
	Variant   Variant
	Scheduler sim.Scheduler
	// MaxRounds bounds the run (<=0: generous default scaled to n²).
	MaxRounds int
	// Seed drives the random-sequential daemon's activation order.
	Seed int64
	// CloseRing also establishes the wrap edge between the smallest and
	// largest node once the line is in place (§4's discovery step,
	// abstracted). The wrap edge is exempt from linearization.
	CloseRing bool
	// Executor configures the sharded parallel executor for the Synchronous
	// scheduler: pool width, partition size and partition policy (see
	// sim.ExecutorConfig). Workers 0 keeps the single-threaded legacy
	// executor; k >= 1 runs the sharded executor with a pool of k
	// goroutines (see parallel.go). The final graph and stats are a pure
	// function of the shard schedule (partition size + policy) — identical
	// for every Workers >= 1. Shards is part of the schedule: Pure and LSN
	// activate shard-interior nodes before cross-shard nodes, so different
	// partitions may take different (equally valid) trajectories;
	// Executor.Shards=1 reproduces the legacy executor's schedule exactly,
	// and Memory is Jacobi-style and matches the legacy executor under
	// every partition. An unknown Partition name panics in Run — validate
	// user input with sim.NewPartitioner first. The RandomSequential daemon
	// is inherently serial and ignores Executor entirely.
	Executor sim.ExecutorConfig
	// Workers is the pre-ExecutorConfig pool-width knob.
	//
	// Deprecated: set Executor.Workers instead. The alias is honored (when
	// Executor.Workers is zero) for one release.
	Workers int
	// Shards is the pre-ExecutorConfig partition-size knob.
	//
	// Deprecated: set Executor.Shards instead. The alias is honored (when
	// Executor.Shards is zero) for one release.
	Shards int
	// OnRound, if set, is called after every round with the round number
	// and the current virtual graph (read-only). Used for Figure 3 traces.
	OnRound func(round int, g *graph.Graph)
	// Tracer, if set, receives structured events: RoundStart/RoundEnd,
	// per-activation NodeActivate (with the keep-set size), per-change
	// EdgeAdd/EdgeDelegate, and RingClosed. Nil disables tracing at zero
	// cost; event timestamps are round indices.
	Tracer trace.Tracer
	// Probe, if set, observes the virtual graph after every round — the
	// invariant monitor that watches connectivity and left/right-set
	// cardinality round by round and records the distance-to-linearized
	// series (it also feeds Tracer when its own Tracer field is set).
	Probe *trace.Probe
	// Prof, if set, instruments the sharded executor with the
	// deterministic-safe performance profiler: per-phase and per-shard wall
	// time, snapshot-rebuild cost, load imbalance and allocation deltas,
	// emitted as EvSpan events on a side channel (see package perf). Only
	// observed by the sharded executor (Workers > 0, Synchronous); purely
	// observational — the result is identical with or without it.
	Prof *perf.Profiler
}

// exec resolves the executor configuration, folding the deprecated
// Workers/Shards aliases into the Executor struct (alias fields only apply
// where the Executor field is zero).
func (c Config) exec() sim.ExecutorConfig {
	ex := c.Executor
	if ex.Workers == 0 {
		ex.Workers = c.Workers
	}
	if ex.Shards == 0 {
		ex.Shards = c.Shards
	}
	return ex
}

// Stats aggregates what a run did — the raw material for experiments E5,
// E6 and E8.
type Stats struct {
	Variant      Variant
	Scheduler    sim.Scheduler
	Rounds       int
	Converged    bool
	EdgesAdded   int64 // edge insertions ≈ neighbor notifications needed
	EdgesDropped int64 // edge removals ≈ teardowns needed
	PeakDegree   int   // maximum node degree ever observed (state bound)
	FinalEdges   int   // edges at the fixed point
	// Par describes the sharded executor's run shape when it ran
	// (Config.Workers > 0 under the synchronous scheduler); the zero value
	// means the single-threaded legacy executor.
	Par ParallelStats
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s/%s: rounds=%d converged=%v +%d -%d peakdeg=%d final=%d",
		s.Variant, s.Scheduler, s.Rounds, s.Converged,
		s.EdgesAdded, s.EdgesDropped, s.PeakDegree, s.FinalEdges)
}

// Engine runs a linearization variant over a virtual graph until the goal
// state. Create with NewEngine, drive with Run.
type Engine struct {
	cfg      Config
	g        *graph.Graph
	nodes    []ids.ID // ascending
	stats    Stats
	curRound int // current round index, for event timestamps
}

// NewEngine initializes a run on the given virtual graph. Per §4 the
// virtual edge set is initialized from the physical one (E_v := E_p): pass
// the physical graph (it is cloned, not mutated).
func NewEngine(virtual *graph.Graph, cfg Config) *Engine {
	e := &Engine{
		cfg:   cfg,
		g:     virtual.Clone(),
		nodes: virtual.Nodes(),
	}
	e.stats.Variant = cfg.Variant
	e.stats.Scheduler = cfg.Scheduler
	e.observeDegrees(e.g)
	return e
}

// Graph exposes the current virtual graph (read-only by convention).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Stats returns the accumulated run statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.FinalEdges = e.g.NumEdges()
	return s
}

func (e *Engine) extremes() (min, max ids.ID, ok bool) {
	if len(e.nodes) < 3 {
		return 0, 0, false
	}
	return e.nodes[0], e.nodes[len(e.nodes)-1], true
}

// isWrapEdge reports whether {v,u} is the ring-closure edge, which is
// exempt from linearization and pruning.
func (e *Engine) isWrapEdge(v, u ids.ID) bool {
	if !e.cfg.CloseRing {
		return false
	}
	min, max, ok := e.extremes()
	if !ok {
		return false
	}
	return (v == min && u == max) || (v == max && u == min)
}

// Done reports whether the goal state is reached: the sorted line (Pure) or
// a superset of it (Memory, LSN — their fixed points retain extra shortcut
// edges by design), plus the wrap edge when CloseRing is set.
func (e *Engine) Done() bool {
	if e.cfg.CloseRing {
		if min, max, ok := e.extremes(); ok {
			if !e.g.HasEdge(min, max) {
				return false
			}
			if e.cfg.Variant == Pure {
				return e.g.IsSortedRing()
			}
			return e.g.SupersetOfLine()
		}
	}
	if e.cfg.Variant == Pure {
		return e.g.IsLinearized()
	}
	return e.g.SupersetOfLine()
}

// Run drives the engine to the goal or the round bound and returns stats.
func (e *Engine) Run() Stats {
	max := e.cfg.MaxRounds
	if max <= 0 {
		max = 16 * len(e.nodes)
		if max < 1024 {
			max = 1024
		}
	}
	if e.cfg.exec().Workers > 0 && e.cfg.Scheduler == sim.Synchronous {
		return e.runSharded(max)
	}
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	root := &opSink{e: e, direct: true}
	rr := &sim.RoundRunner{
		Scheduler: e.cfg.Scheduler,
		MaxRounds: max,
		NodeCount: func() int { return len(e.nodes) },
		Done:      e.Done,
	}
	if e.cfg.Scheduler == sim.Synchronous && e.cfg.Variant == Memory {
		var staged *graph.Graph
		rr.BeginRound = func(int) {
			staged = e.g.Clone()
		}
		rr.Activate = func(i int) bool {
			return e.proposeInto(staged, e.nodes[i], root)
		}
		rr.EndRound = func(round int) {
			e.g = staged
			e.observeDegrees(staged)
			if e.cfg.OnRound != nil {
				e.cfg.OnRound(round, e.g)
			}
		}
	} else {
		rr.Activate = func(i int) bool {
			return e.stepInPlace(e.nodes[i], root)
		}
		if e.cfg.OnRound != nil {
			rr.EndRound = func(round int) { e.cfg.OnRound(round, e.g) }
		}
	}
	// Observability wrapping is layered over whichever hooks the execution
	// model installed, so the round events bracket the model's own work.
	if e.cfg.Tracer != nil || e.cfg.Probe != nil {
		prevBegin, prevEnd := rr.BeginRound, rr.EndRound
		rr.BeginRound = func(round int) {
			e.curRound = round
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.Emit(trace.Event{
					T: int64(round), Type: trace.EvRoundStart,
					Aux: e.cfg.Variant.String(), Value: float64(e.g.NumEdges()),
				})
			}
			if prevBegin != nil {
				prevBegin(round)
			}
		}
		rr.EndRound = func(round int) {
			if prevEnd != nil {
				prevEnd(round)
			}
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.Emit(trace.Event{
					T: int64(round), Type: trace.EvRoundEnd,
					Aux: e.cfg.Variant.String(), Value: float64(e.g.NumEdges()),
				})
			}
			if e.cfg.Probe != nil {
				e.cfg.Probe.Observe(round, e.g)
			}
		}
	}
	res := rr.Run(rng)
	e.stats.Rounds = res.Rounds
	e.stats.Converged = res.Converged
	return e.Stats()
}

// lineNeighborsInto appends v's current neighbors in the line view — all
// neighbors except a wrap-edge partner — in ascending order to dst,
// reusing its capacity, and returns the extended slice. The per-round hot
// paths call this once per activation, so it must not allocate when dst's
// capacity suffices.
func (e *Engine) lineNeighborsInto(g *graph.Graph, v ids.ID, dst []ids.ID) []ids.ID {
	dst = g.NeighborsSortedInto(v, dst)
	out := dst[:0]
	for _, u := range dst {
		if !e.isWrapEdge(v, u) {
			out = append(out, u)
		}
	}
	return out
}

// opSink collects the side effects of node operations — stat deltas and
// trace events. The legacy single-threaded executor uses one direct sink
// that writes straight into the engine's stats and tracer; the sharded
// executor gives each shard a buffering sink whose contents are merged in
// shard order during the sequential Finish phase, so the observable stream
// is deterministic regardless of worker scheduling.
type opSink struct {
	e       *Engine
	direct  bool // write through to e.stats / e.cfg.Tracer immediately
	added   int64
	dropped int64
	peak    int
	events  []trace.Event

	// Per-activation scratch buffers, reused across activations. A sink is
	// only ever driven by one goroutine at a time (per-shard sinks by their
	// shard's worker, per-pick wave sinks by their pick's worker, the root
	// sink by the sequential phases), so the scratch needs no locking.
	nbrs  []ids.ID
	keep  []ids.ID
	chain []graph.Edge
}

func (s *opSink) addEdge() {
	if s.direct {
		s.e.stats.EdgesAdded++
	} else {
		s.added++
	}
}

func (s *opSink) dropEdge() {
	if s.direct {
		s.e.stats.EdgesDropped++
	} else {
		s.dropped++
	}
}

// observe folds the current degree of a touched node into the peak-degree
// statistic — O(1) per touched endpoint instead of a full-graph rescan.
func (s *opSink) observe(v ids.ID) {
	d := s.e.g.Degree(v)
	if s.direct {
		if d > s.e.stats.PeakDegree {
			s.e.stats.PeakDegree = d
		}
	} else if d > s.peak {
		s.peak = d
	}
}

func (s *opSink) emit(ev trace.Event) {
	if s.e.cfg.Tracer == nil {
		return
	}
	if s.direct {
		s.e.cfg.Tracer.Emit(ev)
		return
	}
	s.events = append(s.events, ev)
}

func (s *opSink) traceEdge(t trace.EventType, u, v ids.ID) {
	if s.e.cfg.Tracer != nil {
		s.emit(trace.Event{T: int64(s.e.curRound), Type: t, Node: u, Peer: v})
	}
}

func (s *opSink) reset() {
	s.added, s.dropped, s.peak = 0, 0, 0
	s.events = s.events[:0]
}

// flush merges a buffering sink into the engine's stats and tracer. Only
// called from sequential contexts (the Finish phase).
func (s *opSink) flush() {
	e := s.e
	e.stats.EdgesAdded += s.added
	e.stats.EdgesDropped += s.dropped
	if s.peak > e.stats.PeakDegree {
		e.stats.PeakDegree = s.peak
	}
	if e.cfg.Tracer != nil {
		for _, ev := range s.events {
			e.cfg.Tracer.Emit(ev)
		}
	}
	s.reset()
}

// proposeInto applies v's linearization proposal (reading the snapshot e.g,
// writing adds into staged) for the synchronous model of the monotone
// variants (Memory, LSN). It reports whether v's proposal differs from the
// snapshot state.
func (e *Engine) proposeInto(staged *graph.Graph, v ids.ID, sink *opSink) bool {
	sink.nbrs = e.lineNeighborsInto(e.g, v, sink.nbrs[:0])
	sink.chain = appendChainEdges(sink.chain[:0], v, sink.nbrs)
	changed := false
	for _, c := range sink.chain {
		if staged.AddEdge(c.U, c.V) {
			sink.addEdge()
			sink.traceEdge(trace.EvEdgeAdd, c.U, c.V)
		}
		if !e.g.HasEdge(c.U, c.V) {
			changed = true
		}
	}
	if e.closeRingStep(e.g, staged, v, sink) {
		sink.addEdge()
		changed = true
	}
	return changed
}

// stepInPlace atomically applies v's operation on the live graph: add the
// chain edges, then delegate away the neighbors outside v's keep set (the
// chain has just connected each of them to a strictly closer node, so no
// removal loses information). It reports whether any edge changed. All side
// effects flow through sink; when run from a shard worker, every touched
// edge has both endpoints inside the shard's identifier interval (the
// interior contract of the parallel executor), so the graph mutation is
// single-writer even though shards run concurrently.
func (e *Engine) stepInPlace(v ids.ID, sink *opSink) bool {
	// The neighbor list is copied into the sink's scratch before any
	// mutation: the removals below would otherwise invalidate the
	// iteration. All per-activation buffers come from the sink, so the
	// steady-state hot path allocates nothing.
	sink.nbrs = e.lineNeighborsInto(e.g, v, sink.nbrs[:0])
	nbrs := sink.nbrs
	sink.chain = appendChainEdges(sink.chain[:0], v, nbrs)
	changed := false
	for _, c := range sink.chain {
		if e.g.AddEdge(c.U, c.V) {
			sink.addEdge()
			changed = true
			sink.observe(c.U)
			sink.observe(c.V)
			sink.traceEdge(trace.EvEdgeAdd, c.U, c.V)
		}
	}
	if e.cfg.Variant != Memory {
		sink.keep = e.keepFor(v, nbrs, sink.keep[:0])
		keepNbrs := sink.keep
		if e.cfg.Tracer != nil {
			sink.emit(trace.Event{
				T: int64(e.curRound), Type: trace.EvNodeActivate,
				Node: v, Aux: e.cfg.Variant.String(), Value: float64(len(keepNbrs)),
			})
		}
		sortIDs(keepNbrs)
		for _, w := range nbrs {
			if containsID(keepNbrs, w) {
				continue
			}
			if e.g.RemoveEdge(v, w) {
				sink.dropEdge()
				changed = true
				sink.traceEdge(trace.EvEdgeDelegate, v, w)
			}
		}
	}
	if e.closeRingStep(e.g, e.g, v, sink) {
		sink.addEdge()
		changed = true
	}
	return changed
}

// keepFor appends the neighbors v retains under the configured variant to
// dst (reusing its capacity): Pure keeps only the closest neighbor per
// side (Algorithm 1); LSN keeps the closest neighbor within each occupied
// exponential interval per side. nbrs is v's current sorted line
// neighborhood.
func (e *Engine) keepFor(v ids.ID, nbrs []ids.ID, dst []ids.ID) []ids.ID {
	if e.cfg.Variant == Pure {
		// nbrs ascending: closest left is the last one below v, closest
		// right the first one above.
		for i := len(nbrs) - 1; i >= 0; i-- {
			if nbrs[i] < v {
				dst = append(dst, nbrs[i])
				break
			}
		}
		for _, u := range nbrs {
			if u > v {
				dst = append(dst, u)
				break
			}
		}
		return dst
	}
	return e.keepSet(e.g, v, dst)
}

// closeRingStep abstracts §4's discovery messages: an extremal node whose
// line is in place establishes the wrap edge. snapshot is consulted for the
// precondition; the edge is written into dst.
func (e *Engine) closeRingStep(snapshot, dst *graph.Graph, v ids.ID, sink *opSink) bool {
	if !e.cfg.CloseRing {
		return false
	}
	min, max, ok := e.extremes()
	if !ok || (v != min && v != max) {
		return false
	}
	if snapshot.HasEdge(min, max) || !snapshot.SupersetOfLine() {
		return false
	}
	if !dst.AddEdge(min, max) {
		return false
	}
	sink.emit(trace.Event{
		T: int64(e.curRound), Type: trace.EvRingClosed, Node: min, Peer: max,
	})
	return true
}

func (e *Engine) observeDegrees(g *graph.Graph) {
	if d := g.MaxDegree(); d > e.stats.PeakDegree {
		e.stats.PeakDegree = d
	}
}

// keepSet appends the neighbors of v that v's LSN policy retains to dst
// (reusing its capacity): per direction, the closest neighbor within each
// occupied exponential interval (which automatically includes the overall
// closest neighbor on each side). Wrap-edge partners are always retained.
// The result is O(log |space|) in size.
func (e *Engine) keepSet(g *graph.Graph, v ids.ID, dst []ids.ID) []ids.ID {
	var best [2][ids.NumIntervals]ids.ID
	var has [2][ids.NumIntervals]bool
	out := dst
	for u := range g.Neighbors(v) {
		if e.isWrapEdge(v, u) {
			out = append(out, u)
			continue
		}
		d := 0
		if ids.DirOf(v, u) == ids.Right {
			d = 1
		}
		k := ids.IntervalIndex(ids.LineDist(v, u))
		if k < 0 {
			continue
		}
		if !has[d][k] {
			best[d][k] = u
			has[d][k] = true
			continue
		}
		inc := best[d][k]
		dU, dInc := ids.LineDist(v, u), ids.LineDist(v, inc)
		if dU < dInc || (dU == dInc && u < inc) {
			best[d][k] = u
		}
	}
	for d := 0; d < 2; d++ {
		for k := 0; k < ids.NumIntervals; k++ {
			if has[d][k] {
				out = append(out, best[d][k])
			}
		}
	}
	return out
}

// appendChainEdges appends the chain through v's sorted neighborhood to
// dst (reusing its capacity): with u_1 < … < u_k < v < u_{k+1} < … < u_n
// the edges {u_1,u_2}, …, {u_k,v}, {v,u_{k+1}}, …, {u_{n-1},u_n}
// (Algorithm 1). An empty neighborhood contributes nothing; a neighborhood
// entirely on one side still chains v to its closest member.
func appendChainEdges(dst []graph.Edge, v ids.ID, sortedNbrs []ids.ID) []graph.Edge {
	if len(sortedNbrs) == 0 {
		return dst
	}
	prev := v
	placed := false
	first := true
	for _, u := range sortedNbrs {
		if !placed && v < u {
			if !first {
				dst = append(dst, graph.NewEdge(prev, v))
			}
			prev, first, placed = v, false, true
		}
		if !first {
			dst = append(dst, graph.NewEdge(prev, u))
		}
		prev, first = u, false
	}
	if !placed {
		dst = append(dst, graph.NewEdge(prev, v))
	}
	return dst
}

// chainEdges is the allocating convenience form of appendChainEdges; the
// hot paths use the append form with pooled buffers.
func chainEdges(v ids.ID, sortedNbrs []ids.ID) []graph.Edge {
	return appendChainEdges(nil, v, sortedNbrs)
}

// sortIDs sorts a small identifier slice in place by insertion sort —
// allocation-free, unlike sort.Slice, and the keep sets it serves are
// O(log |space|) long.
func sortIDs(a []ids.ID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// containsID reports whether x occurs in the ascending slice sorted.
func containsID(sorted []ids.ID, x ids.ID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}

// Run is the one-shot convenience entry point: linearize the virtual graph
// (initialized from the given physical graph per §4) and return the stats
// and the final virtual graph.
func Run(physical *graph.Graph, cfg Config) (Stats, *graph.Graph) {
	e := NewEngine(physical, cfg)
	stats := e.Run()
	return stats, e.Graph()
}
