package linearize

// This file is the sharded parallel round executor for the synchronous
// scheduler (Config.Workers >= 1), built on sim.ShardedRunner. The node
// universe is partitioned into contiguous identifier-interval shards and
// each variant maps onto the runner's phases according to its atomicity
// needs (see DESIGN.md §9 for the full argument):
//
//   - Memory is Jacobi-style: additions commute, so Prepare computes every
//     node's chain proposals in parallel against an immutable CSR snapshot
//     of the round-start graph, and Finish merges them into the live graph
//     in global identifier order. The merge order, the snapshot-presence
//     pre-filter and the ring-closure slotting are arranged so that the
//     stats and trace stream are bit-identical to the legacy staged
//     executor — for every shard count.
//
//   - Pure and LSN need atomic node operations (fully simultaneous
//     replacement does not converge). Prepare classifies each node by its
//     identifier footprint — min/max over N(v) ∪ {v} — as shard-interior
//     (footprint inside the shard's identifier interval) or cross-shard.
//     Execute runs the interior nodes of each shard in identifier order,
//     concurrently across shards: an interior operation only touches edges
//     whose both endpoints lie inside its own shard, and interior
//     operations can only add shard-local neighbors, so the classification
//     stays valid for the whole phase and the adjacency structure is
//     single-writer per shard. The cross-shard nodes run under the
//     policy's boundary discipline: sequentially in global identifier
//     order during Finish (BoundarySequential), or in deterministic
//     conflict-free waves on the worker pool (BoundaryWaves, see runWaves).
//     With Shards=1 every node is interior and the schedule is exactly the
//     legacy Gauss-Seidel pass.
//
// Shard assignment itself is a policy (sim.Partitioner, Config.Executor
// .Partition): the runner recomputes the layout when the policy asks,
// feeding it per-node footprints and the previous round's cross-shard
// activation share — all deterministic inputs, so the schedule stays a
// pure function of the configuration.
//
// In every mode the result is a pure function of the shard schedule: the
// worker count only changes wall-clock time, never the outcome. Per-shard
// and per-pick side effects are buffered in opSinks and merged in a
// deterministic order, so even the trace stream is identical for every
// pool width.
//
// Ring closure reads global state (SupersetOfLine) and writes the wrap edge
// across shards, so under CloseRing with more than one shard the extremal
// nodes are forced onto the sequential boundary path — under every policy.

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ParallelStats describes the sharded executor's run shape.
type ParallelStats struct {
	Workers int    // worker pool width actually used
	Shards  int    // shard partition size actually used
	Policy  string // partition policy name ("" for the legacy executor)
	// InteriorActivations counts state-changing activations performed in
	// the parallel phases (Jacobi proposals, atomic interior steps);
	// WaveActivations counts cross-shard activations executed in
	// conflict-free waves (also parallel); BoundaryActivations counts the
	// sequential share (ring closure during the ordered merge, atomic
	// boundary fallbacks). Their sum matches the legacy executor's
	// activation count when the schedules coincide.
	InteriorActivations int64
	WaveActivations     int64
	BoundaryActivations int64
}

// propEdge is one staged Jacobi addition: the chain edge {u,v} proposed by
// the node at dense index idx. Proposals are merged in (idx, proposal)
// order, which is exactly the legacy staged executor's write order.
type propEdge struct {
	idx  int32
	u, v ids.ID
}

// parExec holds the per-run state of the sharded executor.
type parExec struct {
	e       *Engine
	shards  []sim.Shard // current layout, installed via onPartition
	multi   bool        // more than one shard
	policy  string
	waves   bool // cross-shard nodes run under the wave discipline
	workers int  // configured pool width (snapshot/delta parallelism)
	// extremal identifiers, for wrap-edge handling (valid when hasExt)
	min, max ids.ID
	hasExt   bool

	root      opSink   // sequential-phase sink (direct)
	sinks     []opSink // per-shard buffering sinks (atomic Execute)
	intCounts []int    // per-shard interior activations this round
	wvCounts  []int    // per-shard wave activations this round
	bndCounts []int    // per-shard sequential activations this round

	// Jacobi state (Memory)
	csr      *graph.CSR
	csrAdds  []graph.Edge // edges accepted since the last snapshot
	props    [][]propEdge
	preWrap  bool // wrap edge present at round start
	preSuper bool // SupersetOfLine held at round start

	// atomic state (Pure, LSN): dense indices per shard. boundary holds
	// the nodes that must run sequentially (cross-shard under the
	// sequential discipline; ring-closure extremal nodes always); cross
	// holds the nodes the wave discipline runs in parallel.
	interior [][]int
	boundary [][]int
	cross    [][]int

	// wave state (see runWaves)
	pending     []int32
	rest        []int32
	picks       []int32
	pickChanged []bool
	waveSinks   []opSink
	touch       []int32
	mark        []int32
	markGen     int32
}

// runSharded drives the engine with the sharded executor and returns the
// final stats. Only called for the synchronous scheduler.
func (e *Engine) runSharded(maxRounds int) Stats {
	ex := e.cfg.exec()
	n := len(e.nodes)
	part, err := sim.NewPartitioner(ex.Partition)
	if err != nil {
		panic(fmt.Sprintf("linearize: %v", err))
	}
	shardCount := ex.Shards
	if shardCount <= 0 {
		shardCount = sim.DefaultShards(n)
	}
	// Every policy emits exactly ClampShards shards, so the per-shard state
	// is sized once even though the layout may be recomputed mid-run.
	shardCount = sim.ClampShards(n, shardCount)
	p := &parExec{
		e:         e,
		policy:    part.Name(),
		waves:     e.cfg.Variant != Memory && part.Boundary() == sim.BoundaryWaves,
		workers:   ex.Workers,
		root:      opSink{e: e, direct: true},
		sinks:     make([]opSink, shardCount),
		intCounts: make([]int, shardCount),
		bndCounts: make([]int, shardCount),
	}
	p.min, p.max, p.hasExt = e.extremes()
	for i := range p.sinks {
		p.sinks[i].e = e
	}
	rr := &sim.ShardedRunner{
		Workers:     ex.Workers,
		Shards:      shardCount,
		MaxRounds:   maxRounds,
		Partitioner: part,
		Footprint:   p.footprint,
		OnPartition: p.onPartition,
		NodeCount:   func() int { return n },
		Done:        e.Done,
		EndRound:    p.endRound,
	}
	if e.cfg.Prof != nil {
		// Guarded assignment: a nil *perf.Profiler must stay a nil
		// interface so the runner's prof != nil fast path holds.
		rr.Prof = e.cfg.Prof
	}
	if e.cfg.Variant == Memory {
		p.props = make([][]propEdge, shardCount)
		rr.BeginRound = p.jacobiBegin
		rr.Prepare = p.jacobiPrepare
		rr.Finish = p.jacobiFinish
	} else {
		p.interior = make([][]int, shardCount)
		p.boundary = make([][]int, shardCount)
		rr.BeginRound = p.beginRound
		rr.Prepare = p.atomicPrepare
		rr.Execute = p.atomicExecute
		rr.Finish = p.atomicFinish
		if p.waves {
			p.cross = make([][]int, shardCount)
			p.wvCounts = make([]int, shardCount)
			p.mark = make([]int32, n)
			rr.Waves = p.runWaves
		}
	}
	res := rr.Run()
	e.stats.Rounds = res.Rounds
	e.stats.Converged = res.Converged
	e.stats.Par = ParallelStats{
		Workers:             res.Workers,
		Shards:              res.Shards,
		Policy:              p.policy,
		InteriorActivations: int64(res.ParallelActivations - res.WaveActivations),
		WaveActivations:     int64(res.WaveActivations),
		BoundaryActivations: int64(res.Activations - res.ParallelActivations),
	}
	return e.Stats()
}

// footprint describes the node at dense index i to the partition policy:
// its neighborhood's dense-index span and its degree as the work estimate.
func (p *parExec) footprint(i int) sim.Footprint {
	e := p.e
	v := e.nodes[i]
	lo, hi := v, v
	deg := 0
	for u := range e.g.Neighbors(v) {
		if e.isWrapEdge(v, u) {
			continue // ring state, exempt from linearization
		}
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
		deg++
	}
	return sim.Footprint{Lo: p.denseOf(lo), Hi: p.denseOf(hi), Weight: float64(deg + 1)}
}

// denseOf maps a node identifier to its dense index by binary search over
// the ascending node slice.
func (p *parExec) denseOf(v ids.ID) int {
	nodes := p.e.nodes
	return sort.Search(len(nodes), func(i int) bool { return nodes[i] >= v })
}

// onPartition installs a (re)computed shard layout.
func (p *parExec) onPartition(shards []sim.Shard) {
	p.shards = shards
	p.multi = len(shards) > 1
}

// beginRound stamps the round index and emits the round-start event, like
// the legacy executor's observability wrapper.
func (p *parExec) beginRound(round int) {
	e := p.e
	e.curRound = round
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Emit(trace.Event{
			T: int64(round), Type: trace.EvRoundStart,
			Aux: e.cfg.Variant.String(), Value: float64(e.g.NumEdges()),
		})
	}
}

// endRound emits the per-shard accounting, runs the OnRound hook and closes
// the round — the sequential observability tail of every mode.
func (p *parExec) endRound(round int) {
	e := p.e
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(round, e.g)
	}
	if e.cfg.Tracer != nil {
		if e.cfg.Variant == Memory {
			p.emitShardRound("propose", p.intCounts)
		} else {
			p.emitShardRound("interior", p.intCounts)
			if p.waves {
				p.emitShardRound("wave", p.wvCounts)
			}
			p.emitShardRound("boundary", p.bndCounts)
		}
		// One policy label per round: Kind "policy" (not a shard index)
		// with the policy name in Aux and the shard count as the value.
		e.cfg.Tracer.Emit(trace.Event{
			T: int64(round), Type: trace.EvShardRound,
			Kind: "policy", Aux: p.policy, Value: float64(len(p.shards)),
		})
		e.cfg.Tracer.Emit(trace.Event{
			T: int64(round), Type: trace.EvRoundEnd,
			Aux: e.cfg.Variant.String(), Value: float64(e.g.NumEdges()),
		})
	}
	if e.cfg.Probe != nil {
		e.cfg.Probe.Observe(round, e.g)
	}
	for i := range p.intCounts {
		p.intCounts[i], p.bndCounts[i] = 0, 0
	}
	for i := range p.wvCounts {
		p.wvCounts[i] = 0
	}
}

// emitShardRound emits one EvShardRound per shard plus the aggregate gauge
// for one phase of the finished round.
func (p *parExec) emitShardRound(phase string, counts []int) {
	e := p.e
	total := 0
	for _, s := range p.shards {
		total += counts[s.Index]
		e.cfg.Tracer.Emit(trace.Event{
			T: int64(e.curRound), Type: trace.EvShardRound,
			Kind: strconv.Itoa(s.Index), Aux: phase, Value: float64(counts[s.Index]),
		})
	}
	e.cfg.Tracer.Emit(trace.Event{
		T: int64(e.curRound), Type: trace.EvGauge,
		Kind: "parallel/" + phase + "-activations", Value: float64(total),
	})
}

// jacobiBegin snapshots the round-start graph as a CSR and latches the
// ring-closure preconditions against it, so the parallel Prepare phase and
// the ordered merge both read one frozen image. After the first full
// build, each round's snapshot is produced by replaying the previous
// round's accepted edges onto the previous snapshot (CSR.WithEdges) —
// Memory only ever adds edges, so the delta path is exact and avoids the
// per-round O(V+E) rebuild plus index re-hash the profile flagged.
func (p *parExec) jacobiBegin(round int) {
	p.beginRound(round)
	e := p.e
	t0 := e.cfg.Prof.Start()
	if p.csr == nil {
		p.csr = graph.NewCSRParallel(e.g, p.workers)
		e.cfg.Prof.End(round, "snapshot/rebuild", e.cfg.Variant.String(), t0)
	} else {
		p.csr = p.csr.WithEdges(p.csrAdds, p.workers)
		e.cfg.Prof.End(round, "snapshot/delta", e.cfg.Variant.String(), t0)
	}
	p.csrAdds = p.csrAdds[:0]
	p.preWrap, p.preSuper = false, false
	if e.cfg.CloseRing && p.hasExt {
		p.preWrap = p.csr.HasEdge(p.min, p.max)
		if !p.preWrap {
			p.preSuper = p.csr.SupersetOfLine()
		}
	}
}

// jacobiPrepare computes the shard's chain proposals against the CSR
// snapshot: read-only, embarrassingly parallel. Only edges absent from the
// snapshot are recorded — the same newness criterion the legacy staged
// executor applies — and a node counts as activated iff it proposed
// something new.
func (p *parExec) jacobiPrepare(_ int, s sim.Shard) int {
	e, c := p.e, p.csr
	buf := p.props[s.Index][:0]
	changed := 0
	for i := s.Lo; i < s.Hi; i++ {
		v := c.Node(i)
		nbrs := c.Row(i)
		if e.cfg.CloseRing && p.hasExt && (v == p.min || v == p.max) {
			// Line view: the wrap partner is ring state, not a neighbor.
			filtered := make([]ids.ID, 0, len(nbrs))
			for _, u := range nbrs {
				if !e.isWrapEdge(v, u) {
					filtered = append(filtered, u)
				}
			}
			nbrs = filtered
		}
		before := len(buf)
		for _, ce := range chainEdges(v, nbrs) {
			if !c.HasEdge(ce.U, ce.V) {
				buf = append(buf, propEdge{idx: int32(i), u: ce.U, v: ce.V})
			}
		}
		if len(buf) > before {
			changed++
		}
	}
	p.props[s.Index] = buf
	p.intCounts[s.Index] = changed
	return changed
}

// jacobiFinish merges all shards' proposals into the live graph in global
// identifier order — the legacy staged executor's exact write order, so
// duplicate proposals resolve to the same winner and the EdgesAdded count
// and EvEdgeAdd stream coincide. Ring closure is evaluated against the
// round-start preconditions at the smallest node's merge slot, where the
// legacy executor performs (and attributes) it. Returns the closure-only
// activation credit; proposal activations were counted in Prepare.
func (p *parExec) jacobiFinish(_ int) int {
	e := p.e
	root := &p.root
	fire := e.cfg.CloseRing && p.hasExt && !p.preWrap && p.preSuper
	minProposed := len(p.props) > 0 && len(p.props[0]) > 0 && p.props[0][0].idx == 0
	act := 0
	closedMin := false
	closeMin := func() {
		closedMin = true
		if !fire || !e.g.AddEdge(p.min, p.max) {
			return
		}
		p.csrAdds = append(p.csrAdds, graph.NewEdge(p.min, p.max))
		root.addEdge()
		root.observe(p.min)
		root.observe(p.max)
		root.emit(trace.Event{
			T: int64(e.curRound), Type: trace.EvRingClosed, Node: p.min, Peer: p.max,
		})
		if !minProposed {
			act++
		}
		p.bndCounts[0]++
	}
	for si := range p.props {
		for _, pr := range p.props[si] {
			if !closedMin && pr.idx > 0 {
				closeMin()
			}
			if e.g.AddEdge(pr.u, pr.v) {
				p.csrAdds = append(p.csrAdds, graph.NewEdge(pr.u, pr.v))
				root.addEdge()
				root.observe(pr.u)
				root.observe(pr.v)
				root.traceEdge(trace.EvEdgeAdd, pr.u, pr.v)
			}
		}
	}
	if !closedMin {
		closeMin()
	}
	return act
}

// atomicPrepare classifies the shard's nodes by identifier footprint:
// interior nodes run concurrently in Execute; the rest go to the policy's
// boundary path — the sequential Finish pass, or the wave scheduler when
// the policy opted into BoundaryWaves. Under CloseRing with several shards
// the extremal nodes are always sequential-boundary — their ring-closure
// step reads and writes global state, which no parallel discipline can
// admit. Read-only; activations are counted by the later phases.
func (p *parExec) atomicPrepare(_ int, s sim.Shard) int {
	e := p.e
	inner := p.interior[s.Index][:0]
	outer := p.boundary[s.Index][:0]
	var crossing []int
	if p.waves {
		crossing = p.cross[s.Index][:0]
	}
	if s.Len() > 0 {
		idLo, idHi := e.nodes[s.Lo], e.nodes[s.Hi-1]
		for i := s.Lo; i < s.Hi; i++ {
			v := e.nodes[i]
			if p.multi && e.cfg.CloseRing && p.hasExt && (v == p.min || v == p.max) {
				outer = append(outer, i)
				continue
			}
			lo, hi := v, v
			for u := range e.g.Neighbors(v) {
				if u < lo {
					lo = u
				}
				if u > hi {
					hi = u
				}
			}
			if lo >= idLo && hi <= idHi {
				inner = append(inner, i)
			} else if p.waves {
				crossing = append(crossing, i)
			} else {
				outer = append(outer, i)
			}
		}
	}
	p.interior[s.Index] = inner
	p.boundary[s.Index] = outer
	if p.waves {
		p.cross[s.Index] = crossing
	}
	return 0
}

// atomicExecute runs the shard's interior nodes in identifier order. Every
// touched edge has both endpoints inside the shard's identifier interval,
// so concurrent shards never write the same adjacency sets; side effects go
// into the shard's buffering sink.
func (p *parExec) atomicExecute(_ int, s sim.Shard) int {
	e := p.e
	sink := &p.sinks[s.Index]
	changed := 0
	for _, i := range p.interior[s.Index] {
		if e.stepInPlace(e.nodes[i], sink) {
			changed++
		}
	}
	p.intCounts[s.Index] = changed
	return changed
}

// atomicFinish merges the shard sinks in shard order (deterministic stats
// and trace stream for any worker count), then runs the boundary nodes
// sequentially in global identifier order. Under the wave discipline the
// shard sinks were already flushed at the top of the wave phase, so the
// flush loop is a no-op and only the extremal ring-closure nodes remain.
func (p *parExec) atomicFinish(_ int) int {
	e := p.e
	for i := range p.sinks {
		p.sinks[i].flush()
	}
	act := 0
	for si := range p.boundary {
		changed := 0
		for _, i := range p.boundary[si] {
			if e.stepInPlace(e.nodes[i], &p.root) {
				changed++
			}
		}
		p.bndCounts[si] = changed
		act += changed
	}
	return act
}

// runWaves executes the round's cross-shard nodes in deterministic
// conflict-free waves — the BoundaryWaves discipline. Each wave makes one
// greedy pass over the pending nodes in ascending identifier order and
// picks every node whose touch set — N(v) ∪ {v}, exactly the adjacency
// sets its atomic step reads and writes — is disjoint from the touch sets
// already picked this wave (a greedy maximal independent set in the
// conflict graph). The picks then execute concurrently over the worker
// pool: disjoint touch sets mean disjoint memory footprints, so the
// executions are race-free and their combined effect equals any serial
// order. Per-pick side effects are buffered and flushed in pick order
// after the wave's barrier. The pick schedule depends only on graph state
// and identifier order — never on the pool width — so the result and the
// trace stream remain byte-identical for every worker count; Workers=1
// simply executes the same picks serially. The first pending node of a
// wave is always picked, so every wave makes progress and the loop
// terminates.
func (p *parExec) runWaves(_ int, pf sim.ParallelFor) int {
	e := p.e
	// Flush the interior shard sinks first so the trace keeps its
	// interior-then-boundary order within the round.
	for i := range p.sinks {
		p.sinks[i].flush()
	}
	// The per-shard cross lists are ascending and the shards are ordered,
	// so their concatenation is the global identifier order.
	pending := p.pending[:0]
	for si := range p.cross {
		for _, i := range p.cross[si] {
			pending = append(pending, int32(i))
		}
	}
	total := 0
	gen := p.markGen
	for len(pending) > 0 {
		gen++
		picks := p.picks[:0]
		rest := p.rest[:0]
		for _, i := range pending {
			if p.tryPick(int(i), gen) {
				picks = append(picks, i)
			} else {
				rest = append(rest, i)
			}
		}
		for len(p.waveSinks) < len(picks) {
			p.waveSinks = append(p.waveSinks, opSink{e: e})
		}
		if cap(p.pickChanged) < len(picks) {
			p.pickChanged = make([]bool, len(picks))
		}
		changed := p.pickChanged[:len(picks)]
		pf(len(picks), func(k int) {
			changed[k] = e.stepInPlace(e.nodes[picks[k]], &p.waveSinks[k])
		})
		for k := range picks {
			p.waveSinks[k].flush()
			if changed[k] {
				total++
				p.wvCounts[p.shardOf(int(picks[k]))]++
			}
		}
		// Swap the backing arrays so next round's pass reuses both buffers
		// without aliasing pending.
		p.picks = picks
		p.pending, p.rest = rest, pending[:0]
		pending = rest
	}
	p.markGen = gen
	return total
}

// tryPick checks whether node i's touch set is free this wave and, only if
// every member is free, marks it taken. The two-pass shape (collect, test,
// then mark) guarantees a rejected candidate leaves no marks behind.
func (p *parExec) tryPick(i int, gen int32) bool {
	e := p.e
	touch := p.touch[:0]
	touch = append(touch, int32(i))
	ok := p.mark[i] != gen
	if ok {
		for u := range e.g.Neighbors(e.nodes[i]) {
			j := p.denseOf(u)
			if p.mark[j] == gen {
				ok = false
				break
			}
			touch = append(touch, int32(j))
		}
	}
	p.touch = touch
	if !ok {
		return false
	}
	for _, j := range touch {
		p.mark[j] = gen
	}
	return true
}

// shardOf returns the index of the shard containing dense index i.
func (p *parExec) shardOf(i int) int {
	return sort.Search(len(p.shards), func(s int) bool { return p.shards[s].Hi > i })
}
