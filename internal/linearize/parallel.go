package linearize

// This file is the sharded parallel round executor for the synchronous
// scheduler (Config.Workers >= 1), built on sim.ShardedRunner. The node
// universe is partitioned into contiguous identifier-interval shards and
// each variant maps onto the runner's phases according to its atomicity
// needs (see DESIGN.md §9 for the full argument):
//
//   - Memory is Jacobi-style: additions commute, so Prepare computes every
//     node's chain proposals in parallel against an immutable CSR snapshot
//     of the round-start graph, and Finish merges them into the live graph
//     in global identifier order. The merge order, the snapshot-presence
//     pre-filter and the ring-closure slotting are arranged so that the
//     stats and trace stream are bit-identical to the legacy staged
//     executor — for every shard count.
//
//   - Pure and LSN need atomic node operations (fully simultaneous
//     replacement does not converge). Prepare classifies each node by its
//     identifier footprint — min/max over N(v) ∪ {v} — as shard-interior
//     (footprint inside the shard's identifier interval) or boundary.
//     Execute runs the interior nodes of each shard in identifier order,
//     concurrently across shards: an interior operation only touches edges
//     whose both endpoints lie inside its own shard, and interior
//     operations can only add shard-local neighbors, so the classification
//     stays valid for the whole phase and the adjacency structure is
//     single-writer per shard. Finish then runs the boundary nodes
//     sequentially in global identifier order. With Shards=1 every node is
//     interior and the schedule is exactly the legacy Gauss-Seidel pass.
//
// In both modes the result is a pure function of the shard partition: the
// worker count only changes wall-clock time, never the outcome. Per-shard
// side effects are buffered in opSinks and merged in shard order, so even
// the trace stream is deterministic.
//
// Ring closure reads global state (SupersetOfLine) and writes the wrap edge
// across shards, so under CloseRing with more than one shard the extremal
// nodes are forced onto the boundary path.

import (
	"strconv"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ParallelStats describes the sharded executor's run shape.
type ParallelStats struct {
	Workers int // worker pool width actually used
	Shards  int // shard partition size actually used
	// InteriorActivations counts state-changing activations performed in
	// the parallel phases (Jacobi proposals, atomic interior steps);
	// BoundaryActivations counts the sequential share (ring closure during
	// the ordered merge, atomic boundary fallbacks). Their sum matches the
	// legacy executor's activation count when the schedules coincide.
	InteriorActivations int64
	BoundaryActivations int64
}

// propEdge is one staged Jacobi addition: the chain edge {u,v} proposed by
// the node at dense index idx. Proposals are merged in (idx, proposal)
// order, which is exactly the legacy staged executor's write order.
type propEdge struct {
	idx  int32
	u, v ids.ID
}

// parExec holds the per-run state of the sharded executor.
type parExec struct {
	e      *Engine
	shards []sim.Shard
	multi  bool // more than one shard
	// extremal identifiers, for wrap-edge handling (valid when hasExt)
	min, max ids.ID
	hasExt   bool

	sinks     []opSink // per-shard buffering sinks (atomic Execute)
	intCounts []int    // per-shard parallel activations this round
	bndCounts []int    // per-shard sequential activations this round

	// Jacobi state (Memory)
	csr      *graph.CSR
	props    [][]propEdge
	preWrap  bool // wrap edge present at round start
	preSuper bool // SupersetOfLine held at round start

	// atomic state (Pure, LSN): dense indices per shard
	interior [][]int
	boundary [][]int
}

// runSharded drives the engine with the sharded executor and returns the
// final stats. Only called for the synchronous scheduler.
func (e *Engine) runSharded(maxRounds int) Stats {
	n := len(e.nodes)
	shardCount := e.cfg.Shards
	if shardCount <= 0 {
		shardCount = sim.DefaultShards(n)
	}
	shards := sim.Partition(n, shardCount)
	p := &parExec{
		e:         e,
		shards:    shards,
		multi:     len(shards) > 1,
		sinks:     make([]opSink, len(shards)),
		intCounts: make([]int, len(shards)),
		bndCounts: make([]int, len(shards)),
	}
	p.min, p.max, p.hasExt = e.extremes()
	for i := range p.sinks {
		p.sinks[i].e = e
	}
	rr := &sim.ShardedRunner{
		Workers:   e.cfg.Workers,
		Shards:    len(shards),
		MaxRounds: maxRounds,
		NodeCount: func() int { return n },
		Done:      e.Done,
		EndRound:  p.endRound,
	}
	if e.cfg.Prof != nil {
		// Guarded assignment: a nil *perf.Profiler must stay a nil
		// interface so the runner's prof != nil fast path holds.
		rr.Prof = e.cfg.Prof
	}
	if e.cfg.Variant == Memory {
		p.props = make([][]propEdge, len(shards))
		rr.BeginRound = p.jacobiBegin
		rr.Prepare = p.jacobiPrepare
		rr.Finish = p.jacobiFinish
	} else {
		p.interior = make([][]int, len(shards))
		p.boundary = make([][]int, len(shards))
		rr.BeginRound = p.beginRound
		rr.Prepare = p.atomicPrepare
		rr.Execute = p.atomicExecute
		rr.Finish = p.atomicFinish
	}
	res := rr.Run()
	e.stats.Rounds = res.Rounds
	e.stats.Converged = res.Converged
	e.stats.Par = ParallelStats{
		Workers:             res.Workers,
		Shards:              res.Shards,
		InteriorActivations: int64(res.ParallelActivations),
		BoundaryActivations: int64(res.Activations - res.ParallelActivations),
	}
	return e.Stats()
}

// beginRound stamps the round index and emits the round-start event, like
// the legacy executor's observability wrapper.
func (p *parExec) beginRound(round int) {
	e := p.e
	e.curRound = round
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Emit(trace.Event{
			T: int64(round), Type: trace.EvRoundStart,
			Aux: e.cfg.Variant.String(), Value: float64(e.g.NumEdges()),
		})
	}
}

// endRound emits the per-shard accounting, runs the OnRound hook and closes
// the round — the sequential observability tail of every mode.
func (p *parExec) endRound(round int) {
	e := p.e
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(round, e.g)
	}
	if e.cfg.Tracer != nil {
		if e.cfg.Variant == Memory {
			p.emitShardRound("propose", p.intCounts)
		} else {
			p.emitShardRound("interior", p.intCounts)
			p.emitShardRound("boundary", p.bndCounts)
		}
		e.cfg.Tracer.Emit(trace.Event{
			T: int64(round), Type: trace.EvRoundEnd,
			Aux: e.cfg.Variant.String(), Value: float64(e.g.NumEdges()),
		})
	}
	if e.cfg.Probe != nil {
		e.cfg.Probe.Observe(round, e.g)
	}
	for i := range p.intCounts {
		p.intCounts[i], p.bndCounts[i] = 0, 0
	}
}

// emitShardRound emits one EvShardRound per shard plus the aggregate gauge
// for one phase of the finished round.
func (p *parExec) emitShardRound(phase string, counts []int) {
	e := p.e
	total := 0
	for _, s := range p.shards {
		total += counts[s.Index]
		e.cfg.Tracer.Emit(trace.Event{
			T: int64(e.curRound), Type: trace.EvShardRound,
			Kind: strconv.Itoa(s.Index), Aux: phase, Value: float64(counts[s.Index]),
		})
	}
	e.cfg.Tracer.Emit(trace.Event{
		T: int64(e.curRound), Type: trace.EvGauge,
		Kind: "parallel/" + phase + "-activations", Value: float64(total),
	})
}

// jacobiBegin snapshots the round-start graph as a CSR and latches the
// ring-closure preconditions against it, so the parallel Prepare phase and
// the ordered merge both read one frozen image.
func (p *parExec) jacobiBegin(round int) {
	p.beginRound(round)
	e := p.e
	t0 := e.cfg.Prof.Start()
	p.csr = graph.NewCSRParallel(e.g, e.cfg.Workers)
	e.cfg.Prof.End(round, "snapshot/rebuild", e.cfg.Variant.String(), t0)
	p.preWrap, p.preSuper = false, false
	if e.cfg.CloseRing && p.hasExt {
		p.preWrap = p.csr.HasEdge(p.min, p.max)
		if !p.preWrap {
			p.preSuper = p.csr.SupersetOfLine()
		}
	}
}

// jacobiPrepare computes the shard's chain proposals against the CSR
// snapshot: read-only, embarrassingly parallel. Only edges absent from the
// snapshot are recorded — the same newness criterion the legacy staged
// executor applies — and a node counts as activated iff it proposed
// something new.
func (p *parExec) jacobiPrepare(_ int, s sim.Shard) int {
	e, c := p.e, p.csr
	buf := p.props[s.Index][:0]
	changed := 0
	for i := s.Lo; i < s.Hi; i++ {
		v := c.Node(i)
		nbrs := c.Row(i)
		if e.cfg.CloseRing && p.hasExt && (v == p.min || v == p.max) {
			// Line view: the wrap partner is ring state, not a neighbor.
			filtered := make([]ids.ID, 0, len(nbrs))
			for _, u := range nbrs {
				if !e.isWrapEdge(v, u) {
					filtered = append(filtered, u)
				}
			}
			nbrs = filtered
		}
		before := len(buf)
		for _, ce := range chainEdges(v, nbrs) {
			if !c.HasEdge(ce.U, ce.V) {
				buf = append(buf, propEdge{idx: int32(i), u: ce.U, v: ce.V})
			}
		}
		if len(buf) > before {
			changed++
		}
	}
	p.props[s.Index] = buf
	p.intCounts[s.Index] = changed
	return changed
}

// jacobiFinish merges all shards' proposals into the live graph in global
// identifier order — the legacy staged executor's exact write order, so
// duplicate proposals resolve to the same winner and the EdgesAdded count
// and EvEdgeAdd stream coincide. Ring closure is evaluated against the
// round-start preconditions at the smallest node's merge slot, where the
// legacy executor performs (and attributes) it. Returns the closure-only
// activation credit; proposal activations were counted in Prepare.
func (p *parExec) jacobiFinish(_ int) int {
	e := p.e
	root := &opSink{e: e, direct: true}
	fire := e.cfg.CloseRing && p.hasExt && !p.preWrap && p.preSuper
	minProposed := len(p.props) > 0 && len(p.props[0]) > 0 && p.props[0][0].idx == 0
	act := 0
	closedMin := false
	closeMin := func() {
		closedMin = true
		if !fire || !e.g.AddEdge(p.min, p.max) {
			return
		}
		root.addEdge()
		root.observe(p.min)
		root.observe(p.max)
		root.emit(trace.Event{
			T: int64(e.curRound), Type: trace.EvRingClosed, Node: p.min, Peer: p.max,
		})
		if !minProposed {
			act++
		}
		p.bndCounts[0]++
	}
	for si := range p.props {
		for _, pr := range p.props[si] {
			if !closedMin && pr.idx > 0 {
				closeMin()
			}
			if e.g.AddEdge(pr.u, pr.v) {
				root.addEdge()
				root.observe(pr.u)
				root.observe(pr.v)
				root.traceEdge(trace.EvEdgeAdd, pr.u, pr.v)
			}
		}
	}
	if !closedMin {
		closeMin()
	}
	return act
}

// atomicPrepare classifies the shard's nodes by identifier footprint:
// interior nodes run concurrently in Execute, the rest fall back to the
// sequential Finish pass. Under CloseRing with several shards the extremal
// nodes are always boundary — their ring-closure step reads and writes
// global state. Read-only; activations are counted by the later phases.
func (p *parExec) atomicPrepare(_ int, s sim.Shard) int {
	e := p.e
	inner := p.interior[s.Index][:0]
	outer := p.boundary[s.Index][:0]
	if s.Len() > 0 {
		idLo, idHi := e.nodes[s.Lo], e.nodes[s.Hi-1]
		for i := s.Lo; i < s.Hi; i++ {
			v := e.nodes[i]
			if p.multi && e.cfg.CloseRing && p.hasExt && (v == p.min || v == p.max) {
				outer = append(outer, i)
				continue
			}
			lo, hi := v, v
			for u := range e.g.Neighbors(v) {
				if u < lo {
					lo = u
				}
				if u > hi {
					hi = u
				}
			}
			if lo >= idLo && hi <= idHi {
				inner = append(inner, i)
			} else {
				outer = append(outer, i)
			}
		}
	}
	p.interior[s.Index] = inner
	p.boundary[s.Index] = outer
	return 0
}

// atomicExecute runs the shard's interior nodes in identifier order. Every
// touched edge has both endpoints inside the shard's identifier interval,
// so concurrent shards never write the same adjacency sets; side effects go
// into the shard's buffering sink.
func (p *parExec) atomicExecute(_ int, s sim.Shard) int {
	e := p.e
	sink := &p.sinks[s.Index]
	changed := 0
	for _, i := range p.interior[s.Index] {
		if e.stepInPlace(e.nodes[i], sink) {
			changed++
		}
	}
	p.intCounts[s.Index] = changed
	return changed
}

// atomicFinish merges the shard sinks in shard order (deterministic stats
// and trace stream for any worker count), then runs the boundary nodes
// sequentially in global identifier order.
func (p *parExec) atomicFinish(_ int) int {
	e := p.e
	for i := range p.sinks {
		p.sinks[i].flush()
	}
	root := &opSink{e: e, direct: true}
	act := 0
	for si := range p.boundary {
		changed := 0
		for _, i := range p.boundary[si] {
			if e.stepInPlace(e.nodes[i], root) {
				changed++
			}
		}
		p.bndCounts[si] = changed
		act += changed
	}
	return act
}
