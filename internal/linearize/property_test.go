package linearize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
)

func TestChainEdgesProperties(t *testing.T) {
	// Properties of Algorithm 1's chain over a sorted neighborhood:
	//  1. it has exactly len(nbrs) edges when v splits the list, else
	//     len(nbrs) edges too (v is an endpoint of the inserted sequence);
	//  2. every neighbor appears in at least one chain edge;
	//  3. every chain edge is no longer than the widest original edge and
	//     connects members of {v} ∪ nbrs.
	f := func(vRaw uint32, raw []uint32) bool {
		v := ids.ID(vRaw)
		set := ids.NewSet()
		for _, x := range raw {
			if ids.ID(x) != v {
				set.Add(ids.ID(x))
			}
		}
		nbrs := set.Sorted()
		edges := chainEdges(v, nbrs)
		if len(nbrs) == 0 {
			return edges == nil
		}
		if len(edges) != len(nbrs) {
			return false
		}
		members := set.Clone()
		members.Add(v)
		covered := ids.NewSet()
		var widest uint64
		for _, u := range nbrs {
			if d := ids.LineDist(v, u); d > widest {
				widest = d
			}
		}
		for _, e := range edges {
			if !members.Has(e.U) || !members.Has(e.V) {
				return false
			}
			if ids.LineDist(e.U, e.V) > widest {
				return false
			}
			covered.Add(e.U)
			covered.Add(e.V)
		}
		for _, u := range nbrs {
			if !covered.Has(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChainEdgesConnectNeighborhood(t *testing.T) {
	// The chain must connect {v} ∪ nbrs into one component — this is what
	// makes every linearization step connectivity-preserving (§3).
	f := func(vRaw uint32, raw []uint32) bool {
		v := ids.ID(vRaw)
		set := ids.NewSet()
		for _, x := range raw {
			if ids.ID(x) != v {
				set.Add(ids.ID(x))
			}
		}
		nbrs := set.Sorted()
		if len(nbrs) == 0 {
			return true
		}
		g := graph.NewWithNodes(append(nbrs, v)...)
		for _, e := range chainEdges(v, nbrs) {
			g.AddEdge(e.U, e.V)
		}
		return g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKeepSetProperties(t *testing.T) {
	// LSN's keep set: bounded by 2·NumIntervals, always contains the
	// closest neighbor per side, and every member is a current neighbor.
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 5 + r.Intn(60)
		nodes := graph.MakeIDs(n, graph.RandomIDs, r)
		g := graph.ErdosRenyi(nodes, 0.3, r)
		e := NewEngine(g, Config{Variant: LSN})
		for _, v := range g.Nodes() {
			keep := e.keepSet(g, v, nil)
			if len(keep) > 2*ids.NumIntervals {
				t.Fatalf("keep set too large: %d", len(keep))
			}
			nbrSet := g.Neighbors(v)
			for _, u := range keep {
				if !nbrSet.Has(u) {
					t.Fatalf("keep set contains non-neighbor %s", u)
				}
			}
			var closestL, closestR ids.ID
			var hasL, hasR bool
			for u := range nbrSet {
				if u < v {
					if !hasL || ids.LineDist(v, u) < ids.LineDist(v, closestL) {
						closestL, hasL = u, true
					}
				} else {
					if !hasR || ids.LineDist(v, u) < ids.LineDist(v, closestR) {
						closestR, hasR = u, true
					}
				}
			}
			keepSet := ids.NewSet(keep...)
			if hasL && !keepSet.Has(closestL) {
				t.Fatalf("closest left %s not kept at %s", closestL, v)
			}
			if hasR && !keepSet.Has(closestR) {
				t.Fatalf("closest right %s not kept at %s", closestR, v)
			}
		}
	}
}

func TestNodeSetInvariant(t *testing.T) {
	// Linearization never adds or removes nodes, for any variant/scheduler.
	f := func(seed int64, variantRaw, schedRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + int(seed%23+23)%23
		nodes := graph.MakeIDs(n, graph.RandomIDs, r)
		g := graph.ErdosRenyi(nodes, 0.25, r)
		want := g.NumNodes()
		v := Variants()[int(variantRaw)%3]
		sched := sim.Scheduler(int(schedRaw) % 2)
		_, final := Run(g, Config{Variant: v, Scheduler: sched, Seed: seed, MaxRounds: 64})
		return final.NumNodes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConvergedAlwaysEmbedsLine(t *testing.T) {
	// For random connected graphs, every variant's converged result embeds
	// the sorted line and stays connected (the §3 global-consistency core).
	f := func(seed int64, variantRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nodes := graph.MakeIDs(20, graph.RandomIDs, r)
		g := graph.ErdosRenyi(nodes, 0.3, r)
		v := Variants()[int(variantRaw)%3]
		stats, final := Run(g, Config{Variant: v, Scheduler: sim.Synchronous, Seed: seed})
		if !stats.Converged {
			return false
		}
		return final.SupersetOfLine() && final.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPureSequentialPotentialDecreases(t *testing.T) {
	// Under the sequential daemon, pure linearization's total edge length
	// (the classic potential) never increases across rounds.
	r := rand.New(rand.NewSource(77))
	nodes := graph.MakeIDs(30, graph.RandomIDs, r)
	g := graph.ErdosRenyi(nodes, 0.3, r)
	potential := func(gr *graph.Graph) (sum float64) {
		for _, e := range gr.Edges() {
			sum += float64(ids.LineDist(e.U, e.V))
		}
		return sum
	}
	last := potential(g)
	cfg := Config{Variant: Pure, Scheduler: sim.RandomSequential, Seed: 3,
		OnRound: func(round int, cur *graph.Graph) {
			p := potential(cur)
			if p > last {
				t.Fatalf("potential increased at round %d: %.0f -> %.0f", round, last, p)
			}
			last = p
		}}
	if stats, _ := Run(g, cfg); !stats.Converged {
		t.Fatal("did not converge")
	}
}
