package linearize

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/vring"
)

func TestChainEdges(t *testing.T) {
	// v=10 with neighbors 2 < 5 < 10 < 20 < 30:
	// chain = {2,5},{5,10},{10,20},{20,30}.
	got := chainEdges(10, []ids.ID{2, 5, 20, 30})
	want := []graph.Edge{{U: 2, V: 5}, {U: 5, V: 10}, {U: 10, V: 20}, {U: 20, V: 30}}
	if len(got) != len(want) {
		t.Fatalf("chainEdges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chainEdges = %v, want %v", got, want)
		}
	}
	if chainEdges(10, nil) != nil {
		t.Error("empty neighborhood must chain nothing")
	}
	// One-sided neighborhood: v=1, nbrs 5,9 → {1,5},{5,9}.
	oneSide := chainEdges(1, []ids.ID{5, 9})
	if len(oneSide) != 2 || oneSide[0] != (graph.Edge{U: 1, V: 5}) || oneSide[1] != (graph.Edge{U: 5, V: 9}) {
		t.Errorf("one-sided chain = %v", oneSide)
	}
	// Single neighbor keeps the edge.
	single := chainEdges(7, []ids.ID{3})
	if len(single) != 1 || single[0] != (graph.Edge{U: 3, V: 7}) {
		t.Errorf("single chain = %v", single)
	}
}

func randomConnected(n int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	nodes := graph.MakeIDs(n, graph.RandomIDs, r)
	return graph.ErdosRenyi(nodes, 0.15, r)
}

func TestAllVariantsConvergeSynchronous(t *testing.T) {
	for _, v := range Variants() {
		g := randomConnected(60, 42)
		stats, final := Run(g, Config{Variant: v, Scheduler: sim.Synchronous, Seed: 1})
		if !stats.Converged {
			t.Errorf("%s did not converge: %s", v, stats)
			continue
		}
		if !final.SupersetOfLine() {
			t.Errorf("%s final graph misses line edges", v)
		}
		if v == Pure && !final.IsLinearized() {
			t.Errorf("pure must end on exactly the line, got %d edges for %d nodes",
				final.NumEdges(), final.NumNodes())
		}
		if !final.Connected() {
			t.Errorf("%s disconnected the graph", v)
		}
	}
}

func TestAllVariantsConvergeSequentialDaemon(t *testing.T) {
	for _, v := range Variants() {
		g := randomConnected(40, 7)
		stats, final := Run(g, Config{Variant: v, Scheduler: sim.RandomSequential, Seed: 99})
		if !stats.Converged {
			t.Errorf("%s/sequential did not converge: %s", v, stats)
			continue
		}
		if !final.SupersetOfLine() {
			t.Errorf("%s/sequential misses line edges", v)
		}
	}
}

func TestConnectivityPreservedEveryRound(t *testing.T) {
	// §3: "each iteration of the linearization process preserves the
	// connectedness of the network."
	for _, v := range Variants() {
		for _, sched := range []sim.Scheduler{sim.Synchronous, sim.RandomSequential} {
			g := randomConnected(30, int64(10+int(v)))
			cfg := Config{Variant: v, Scheduler: sched, Seed: 3}
			cfg.OnRound = func(round int, cur *graph.Graph) {
				if !cur.Connected() {
					t.Fatalf("%s/%s disconnected the graph at round %d", v, sched, round)
				}
			}
			if stats, _ := Run(g, cfg); !stats.Converged {
				t.Errorf("%s/%s did not converge", v, sched)
			}
		}
	}
}

func TestResolvesLoopyState(t *testing.T) {
	// Figure 1's loopy state is ISPRP-locally consistent; linearization
	// must still straighten it into the sorted line (E1).
	loopy := vring.LoopyExample().ToGraph()
	for _, v := range Variants() {
		stats, final := Run(loopy, Config{Variant: v, Scheduler: sim.Synchronous, Seed: 1})
		if !stats.Converged {
			t.Errorf("%s failed on the loopy state: %s", v, stats)
		}
		if !final.SupersetOfLine() {
			t.Errorf("%s loopy fixed point misses the line", v)
		}
	}
}

func TestMergesSeparateRings(t *testing.T) {
	// Figure 2: two disjoint virtual rings on a connected *virtual* start
	// state cannot be merged by anything that only follows virtual edges —
	// the paper avoids the state by initializing E_v := E_p on a connected
	// physical graph. Here we verify the E_v := E_p recipe: take the two
	// rings PLUS one physical edge bridging them; linearization produces
	// one line (E2).
	s := vring.SeparateRingsExample()
	g := s.ToGraph()
	g.AddEdge(18, 21) // the physical link that E_v inherits
	for _, v := range Variants() {
		stats, final := Run(g, Config{Variant: v, Scheduler: sim.Synchronous, Seed: 1})
		if !stats.Converged {
			t.Errorf("%s failed to merge rings: %s", v, stats)
		}
		if len(final.Components()) != 1 {
			t.Errorf("%s left %d components", v, len(final.Components()))
		}
	}
}

func TestCloseRingProducesSortedRing(t *testing.T) {
	g := randomConnected(25, 5)
	stats, final := Run(g, Config{Variant: Pure, Scheduler: sim.Synchronous, Seed: 1, CloseRing: true})
	if !stats.Converged {
		t.Fatalf("pure+closering did not converge: %s", stats)
	}
	if !final.IsSortedRing() {
		t.Fatalf("final graph is not the sorted ring: %d nodes %d edges",
			final.NumNodes(), final.NumEdges())
	}
	// Memory/LSN: line superset + wrap edge.
	stats2, final2 := Run(g, Config{Variant: LSN, Scheduler: sim.Synchronous, Seed: 1, CloseRing: true})
	if !stats2.Converged {
		t.Fatalf("lsn+closering did not converge: %s", stats2)
	}
	nodes := final2.Nodes()
	if !final2.HasEdge(nodes[0], nodes[len(nodes)-1]) {
		t.Error("wrap edge missing")
	}
	if !final2.SupersetOfLine() {
		t.Error("line missing under LSN")
	}
}

func TestCloseRingSequential(t *testing.T) {
	g := randomConnected(15, 8)
	stats, final := Run(g, Config{Variant: Pure, Scheduler: sim.RandomSequential, Seed: 2, CloseRing: true})
	if !stats.Converged || !final.IsSortedRing() {
		t.Fatalf("sequential pure+closering: %s ring=%v", stats, final.IsSortedRing())
	}
}

func TestWrapEdgeExemptFromLinearization(t *testing.T) {
	// Start from the already-closed sorted ring: with CloseRing set this is
	// a fixed point (0 rounds of work); without it, pure linearization
	// opens the ring back into the line.
	nodes := []ids.ID{10, 20, 30, 40, 50}
	ring := graph.Ring(nodes)
	e := NewEngine(ring, Config{Variant: Pure, Scheduler: sim.Synchronous, CloseRing: true})
	if !e.Done() {
		t.Error("closed sorted ring should already be Done with CloseRing")
	}
	stats, final := Run(ring, Config{Variant: Pure, Scheduler: sim.Synchronous})
	if !stats.Converged {
		t.Fatalf("opening the ring did not converge: %s", stats)
	}
	if !final.IsLinearized() {
		t.Error("without CloseRing the ring should linearize to the open line")
	}
}

func TestLSNStateBound(t *testing.T) {
	// E8: LSN's peak degree stays near 2·log(space) while memory's grows
	// with n. We check LSN's absolute bound and that memory exceeds it on a
	// dense start.
	r := rand.New(rand.NewSource(21))
	nodes := graph.MakeIDs(120, graph.RandomIDs, r)
	dense := graph.ErdosRenyi(nodes, 0.5, r)

	lsnStats, _ := Run(dense, Config{Variant: LSN, Scheduler: sim.Synchronous, Seed: 1})
	if !lsnStats.Converged {
		t.Fatalf("lsn did not converge: %s", lsnStats)
	}
	memStats, _ := Run(dense, Config{Variant: Memory, Scheduler: sim.Synchronous, Seed: 1})
	if !memStats.Converged {
		t.Fatalf("memory did not converge: %s", memStats)
	}
	if lsnStats.FinalEdges >= memStats.FinalEdges {
		t.Errorf("LSN final edges (%d) should undercut memory (%d)",
			lsnStats.FinalEdges, memStats.FinalEdges)
	}
	// Bound: ≤ 2 directions × (64 intervals + 1) per node is loose but
	// sanity-checks pruning is active at the fixed point.
	maxDeg := 0
	_, lsnFinal := Run(dense, Config{Variant: LSN, Scheduler: sim.Synchronous, Seed: 1})
	for _, v := range lsnFinal.Nodes() {
		if d := lsnFinal.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 2*(ids.NumIntervals+1) {
		t.Errorf("LSN fixed-point degree %d exceeds interval bound", maxDeg)
	}
}

func TestSelfStabilizationAfterPerturbation(t *testing.T) {
	// E9: converge, then damage the line (cross edges, remove a line edge
	// but keep connectivity via a chord), and verify re-convergence without
	// any global restart.
	g := randomConnected(40, 31)
	stats, line := Run(g, Config{Variant: LSN, Scheduler: sim.Synchronous, Seed: 1})
	if !stats.Converged {
		t.Fatal("initial convergence failed")
	}
	nodes := line.Nodes()
	// Perturb: add long-range chords and cut one line edge (connectivity
	// kept by the chords).
	perturbed := line.Clone()
	perturbed.AddEdge(nodes[0], nodes[len(nodes)-1])
	perturbed.AddEdge(nodes[2], nodes[len(nodes)-3])
	perturbed.RemoveEdge(nodes[4], nodes[5])
	if !perturbed.Connected() {
		t.Fatal("test perturbation must keep the graph connected")
	}
	stats2, final := Run(perturbed, Config{Variant: LSN, Scheduler: sim.Synchronous, Seed: 2})
	if !stats2.Converged {
		t.Fatalf("did not re-converge after perturbation: %s", stats2)
	}
	if !final.SupersetOfLine() {
		t.Error("recovered graph misses line edges")
	}
	if stats2.Rounds > stats.Rounds+8 {
		t.Logf("recovery (%d rounds) slower than bootstrap (%d) — acceptable but noted",
			stats2.Rounds, stats.Rounds)
	}
}

func TestDegenerateGraphs(t *testing.T) {
	// Empty, single node, two nodes.
	for _, v := range Variants() {
		empty := graph.New()
		if stats, _ := Run(empty, Config{Variant: v}); !stats.Converged || stats.Rounds != 0 {
			t.Errorf("%s on empty graph: %s", v, stats)
		}
		one := graph.NewWithNodes(5)
		if stats, _ := Run(one, Config{Variant: v}); !stats.Converged {
			t.Errorf("%s on single node: %s", v, stats)
		}
		two := graph.Line([]ids.ID{3, 9})
		stats, final := Run(two, Config{Variant: v, CloseRing: true})
		if !stats.Converged || !final.HasEdge(3, 9) {
			t.Errorf("%s on two nodes: %s", v, stats)
		}
	}
}

func TestAlreadyLinearIsZeroRounds(t *testing.T) {
	line := graph.Line([]ids.ID{1, 2, 3, 4, 5})
	stats, _ := Run(line, Config{Variant: Pure, Scheduler: sim.Synchronous})
	if stats.Rounds != 0 || !stats.Converged {
		t.Errorf("already-linear start should converge in 0 rounds: %s", stats)
	}
}

func TestMaxRoundsRespected(t *testing.T) {
	g := randomConnected(30, 3)
	stats, _ := Run(g, Config{Variant: Pure, Scheduler: sim.Synchronous, MaxRounds: 1})
	if stats.Converged {
		t.Skip("graph converged in one round; pick a denser start")
	}
	if stats.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", stats.Rounds)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := randomConnected(25, 13)
	stats, _ := Run(g, Config{Variant: LSN, Scheduler: sim.Synchronous, Seed: 1})
	if stats.EdgesAdded == 0 {
		t.Error("a nontrivial run must add edges")
	}
	if stats.EdgesDropped == 0 {
		t.Error("LSN must prune some edges on a random start")
	}
	if stats.PeakDegree == 0 || stats.FinalEdges == 0 {
		t.Error("peak degree / final edges not recorded")
	}
	if stats.String() == "" {
		t.Error("Stats.String empty")
	}
	if Pure.String() != "pure" || Memory.String() != "memory" || LSN.String() != "lsn" || Variant(9).String() != "unknown" {
		t.Error("Variant.String broken")
	}
}

func TestOnRoundFires(t *testing.T) {
	g := randomConnected(20, 4)
	rounds := 0
	cfg := Config{Variant: Memory, Scheduler: sim.Synchronous, Seed: 1,
		OnRound: func(int, *graph.Graph) { rounds++ }}
	stats, _ := Run(g, cfg)
	if rounds != stats.Rounds {
		t.Errorf("OnRound fired %d times for %d rounds", rounds, stats.Rounds)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Stats {
		g := randomConnected(35, 77)
		s, _ := Run(g, Config{Variant: LSN, Scheduler: sim.RandomSequential, Seed: 5})
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ: %s vs %s", a, b)
	}
}

func TestPowerLawConvergesFast(t *testing.T) {
	// E4 smoke check: LSN on a power-law graph (α=2) with 2000 nodes must
	// converge in well under 39 rounds (the paper's quoted figure for a
	// much larger graph).
	r := rand.New(rand.NewSource(2))
	nodes := graph.MakeIDs(2000, graph.RandomIDs, r)
	g := graph.PowerLaw(nodes, 2.0, r)
	stats, _ := Run(g, Config{Variant: LSN, Scheduler: sim.Synchronous, Seed: 1})
	if !stats.Converged {
		t.Fatalf("LSN on power-law did not converge: %s", stats)
	}
	if stats.Rounds >= 39 {
		t.Errorf("LSN rounds = %d, paper expects < 39 at much larger n", stats.Rounds)
	}
	t.Logf("LSN power-law n=2000: %s", stats)
}
