package linearize

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
)

// FuzzLinearizeStep feeds arbitrary small graphs to the round executor and
// checks the paper's core safety property on every variant: linearization
// steps never disconnect a connected virtual graph (Lemma 1 — each replaced
// edge is covered by the new path), and a converged run over a connected
// input contains the sorted line.
func FuzzLinearizeStep(f *testing.F) {
	f.Add([]byte{8, 0, 1, 1, 2, 2, 3, 3, 4})
	f.Add([]byte{4, 1, 0, 1, 0, 2, 0, 3})
	f.Add([]byte{16, 2, 5, 9})
	f.Add([]byte{2, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		n := 2 + int(data[0])%14
		g := graph.New()
		for i := 1; i <= n; i++ {
			g.AddNode(ids.ID(i))
		}
		for i := 2; i+1 < len(data) && i < 64; i += 2 {
			u := ids.ID(1 + int(data[i])%n)
			v := ids.ID(1 + int(data[i+1])%n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		variant := Variants()[int(data[1])%3]
		stats, out := Run(g, Config{
			Variant:   variant,
			Scheduler: sim.Synchronous,
			MaxRounds: 48,
			Seed:      1,
		})
		if stats.FinalEdges != out.NumEdges() {
			t.Fatalf("stats report %d edges, graph has %d", stats.FinalEdges, out.NumEdges())
		}
		if !g.Connected() {
			return // per-component guarantees only; nothing global to assert
		}
		if !out.Connected() {
			t.Fatalf("%s linearization disconnected a connected graph after %d rounds",
				variant, stats.Rounds)
		}
		if stats.Converged && !out.SupersetOfLine() {
			t.Fatalf("%s converged but the line is incomplete", variant)
		}
	})
}
