package linearize

// Determinism regression suite for the performance profiler (DESIGN.md
// §12): profiling is a side channel, so a profiled run and an unprofiled
// run of the same seed must produce byte-identical final graphs, stats
// and — after stripping EvSpan — identical trace streams.

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sansSpans strips the profiler side channel from a trace stream.
func sansSpans(evs []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(evs))
	for _, e := range evs {
		if e.Type != trace.EvSpan {
			out = append(out, e)
		}
	}
	return out
}

// TestProfiledRunIsSideEffectFree pins the profiler determinism contract
// for every variant on the sharded executor: same graph, same stats, and
// the profiled trace minus spans equals the unprofiled trace.
func TestProfiledRunIsSideEffectFree(t *testing.T) {
	g := randomConnected(400, 7)
	for _, v := range Variants() {
		for _, closeRing := range []bool{false, true} {
			cfg := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: closeRing,
				Workers: 2, Shards: 4}
			plainStats, plainGraph, plainEvents := runOnce(g.Clone(), cfg)

			profCap := &captureTracer{}
			profCfg := cfg
			profCfg.Tracer = profCap
			profCfg.Prof = perf.New(profCap)
			e := NewEngine(g.Clone(), profCfg)
			profStats := e.Run()

			label := v.String()
			if closeRing {
				label += "/ring"
			}
			if !e.Graph().Equal(plainGraph) {
				t.Fatalf("%s: profiled final graph differs from unprofiled", label)
			}
			sameStats(t, label, profStats, plainStats)
			sameEvents(t, label, sansSpans(profCap.events), plainEvents)

			spans := 0
			for _, ev := range profCap.events {
				if ev.Type == trace.EvSpan {
					spans++
				}
			}
			if spans == 0 {
				t.Fatalf("%s: profiled run emitted no spans", label)
			}
		}
	}
}

// TestProfiledTraceFoldsIntoPerfReport pins the live-analysis path: a
// profiled sharded run teed into an Analysis yields a PerfReport with
// phase spans, per-shard attribution and the boundary-vs-interior
// activation split the ROADMAP asks for.
func TestProfiledTraceFoldsIntoPerfReport(t *testing.T) {
	g := randomConnected(400, 7)
	an := trace.NewAnalysis()
	cfg := Config{Variant: LSN, Scheduler: sim.Synchronous, CloseRing: true,
		Workers: 2, Shards: 4, Tracer: an, Prof: perf.New(an)}
	st, _ := Run(g, cfg)
	if !st.Converged {
		t.Fatalf("run did not converge: %s", st)
	}

	p := an.Perf()
	if p.Empty() {
		t.Fatal("PerfReport is empty on a profiled run")
	}
	want := map[string]bool{"phase/begin": true, "phase/prepare": true,
		"phase/execute": true, "phase/finish": true, "phase/end": true}
	for _, s := range p.Spans {
		delete(want, s.Name)
		if s.Count <= 0 {
			t.Errorf("span %s has count %d", s.Name, s.Count)
		}
	}
	for name := range want {
		t.Errorf("missing span %s", name)
	}
	if len(p.Shards) != 4 {
		t.Fatalf("got %d shard rows, want 4", len(p.Shards))
	}
	acts := p.ActivationTotals()
	var total int64
	for _, phase := range []string{"interior", "boundary"} {
		total += acts[phase]
	}
	if got := st.Par.InteriorActivations + st.Par.BoundaryActivations; total != got {
		t.Fatalf("activation attribution %d != executor total %d", total, got)
	}
	if acts["boundary"] != st.Par.BoundaryActivations {
		t.Fatalf("boundary attribution %d != stats %d", acts["boundary"], st.Par.BoundaryActivations)
	}
	if c := p.AmdahlCeiling(); c < 1 {
		t.Fatalf("Amdahl ceiling %g < 1", c)
	}
	if s := p.SpeedupAt(4); s <= 0 || s > p.AmdahlCeiling()+1e-9 {
		t.Fatalf("SpeedupAt(4)=%g outside (0, ceiling=%g]", s, p.AmdahlCeiling())
	}
}
