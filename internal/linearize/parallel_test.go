package linearize

// Seed-for-seed equivalence suite for the sharded parallel executor. The
// determinism contract has three layers, each pinned by a test:
//
//  1. For any fixed shard partition, the outcome is identical for every
//     worker count — including stats and the full trace stream.
//  2. Memory (Jacobi) is bit-identical to the legacy staged executor for
//     every shard count; Pure/LSN with Shards=1 are bit-identical to the
//     legacy Gauss-Seidel executor.
//  3. The worker pool is race-free (hammer test, effective under -race).

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// captureTracer records every event for stream comparison.
type captureTracer struct{ events []trace.Event }

func (c *captureTracer) Emit(e trace.Event) { c.events = append(c.events, e) }

// sansShardEvents drops the executor-accounting events that only the
// sharded executor emits, leaving the protocol-level stream.
func sansShardEvents(evs []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(evs))
	for _, e := range evs {
		if e.Type == trace.EvShardRound {
			continue
		}
		if e.Type == trace.EvGauge && len(e.Kind) >= 9 && e.Kind[:9] == "parallel/" {
			continue
		}
		out = append(out, e)
	}
	return out
}

func sameEvents(t *testing.T, label string, a, b []trace.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: event counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: event %d differs:\n  %s\n  %s", label, i, a[i], b[i])
		}
	}
}

// sameStats compares run statistics ignoring the executor-shape field.
func sameStats(t *testing.T, label string, a, b Stats) {
	t.Helper()
	a.Par, b.Par = ParallelStats{}, ParallelStats{}
	if a != b {
		t.Fatalf("%s: stats differ:\n  %s\n  %s", label, a, b)
	}
}

func runOnce(g *graph.Graph, cfg Config) (Stats, *graph.Graph, []trace.Event) {
	cap := &captureTracer{}
	cfg.Tracer = cap
	e := NewEngine(g, cfg)
	st := e.Run()
	return st, e.Graph(), cap.events
}

// TestParallelIndependentOfWorkers pins layer 1: with the shard partition
// held fixed, every worker count produces the same final graph, the same
// stats and the same trace stream (shard accounting included).
func TestParallelIndependentOfWorkers(t *testing.T) {
	g := randomConnected(400, 7)
	for _, v := range Variants() {
		for _, closeRing := range []bool{false, true} {
			base := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: closeRing,
				Workers: 1, Shards: 8}
			refStats, refGraph, refEvents := runOnce(g, base)
			for _, workers := range []int{2, 4, 8} {
				cfg := base
				cfg.Workers = workers
				st, fg, evs := runOnce(g, cfg)
				label := v.String()
				if closeRing {
					label += "/ring"
				}
				if !fg.Equal(refGraph) {
					t.Fatalf("%s workers=%d: final graph differs from workers=1", label, workers)
				}
				sameStats(t, label, st, refStats)
				sameEvents(t, label, refEvents, evs)
			}
		}
	}
}

// TestJacobiShardedMatchesLegacy pins layer 2 for Memory: the parallel
// Jacobi executor reproduces the legacy staged executor bit for bit —
// graph, stats and protocol-level event stream — for every shard count.
func TestJacobiShardedMatchesLegacy(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		g := randomConnected(300, seed)
		for _, closeRing := range []bool{false, true} {
			legacy := Config{Variant: Memory, Scheduler: sim.Synchronous, CloseRing: closeRing}
			lStats, lGraph, lEvents := runOnce(g, legacy)
			if !lStats.Converged {
				t.Fatalf("legacy memory run did not converge")
			}
			for _, shards := range []int{1, 3, 8, 64} {
				cfg := legacy
				cfg.Workers, cfg.Shards = 4, shards
				st, fg, evs := runOnce(g, cfg)
				label := "memory"
				if closeRing {
					label += "/ring"
				}
				if !fg.Equal(lGraph) {
					t.Fatalf("%s shards=%d: final graph differs from legacy", label, shards)
				}
				sameStats(t, label, st, lStats)
				sameEvents(t, label, lEvents, sansShardEvents(evs))
			}
		}
	}
}

// TestAtomicShardOneMatchesLegacy pins layer 2 for Pure and LSN: a single
// shard degenerates to exactly the legacy Gauss-Seidel schedule.
func TestAtomicShardOneMatchesLegacy(t *testing.T) {
	for _, v := range []Variant{Pure, LSN} {
		g := randomConnected(200, 17)
		for _, closeRing := range []bool{false, true} {
			legacy := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: closeRing}
			lStats, lGraph, lEvents := runOnce(g, legacy)
			cfg := legacy
			cfg.Workers, cfg.Shards = 4, 1
			st, fg, evs := runOnce(g, cfg)
			label := v.String()
			if closeRing {
				label += "/ring"
			}
			if !fg.Equal(lGraph) {
				t.Fatalf("%s: final graph differs from legacy", label)
			}
			sameStats(t, label, st, lStats)
			sameEvents(t, label, lEvents, sansShardEvents(evs))
		}
	}
}

// TestParallelConvergesAllVariants checks that the multi-shard schedule
// still reaches the variant's goal state and preserves the line invariant.
func TestParallelConvergesAllVariants(t *testing.T) {
	for _, v := range Variants() {
		for _, closeRing := range []bool{false, true} {
			g := randomConnected(250, 23)
			cfg := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: closeRing,
				Workers: 4, Shards: 6}
			st, fg, _ := runOnce(g, cfg)
			if !st.Converged {
				t.Fatalf("%s close=%v: did not converge: %s", v, closeRing, st)
			}
			if !fg.SupersetOfLine() {
				t.Fatalf("%s close=%v: final graph misses line edges", v, closeRing)
			}
			if closeRing && !fg.HasEdge(fg.Nodes()[0], fg.Nodes()[fg.NumNodes()-1]) {
				t.Fatalf("%s: wrap edge missing", v)
			}
			if v == Pure && closeRing && !fg.IsSortedRing() {
				t.Fatalf("pure/ring must end on the sorted ring")
			}
			if st.Par.Workers == 0 || st.Par.Shards != 6 {
				t.Fatalf("%s: executor shape not recorded: %+v", v, st.Par)
			}
		}
	}
}

// TestParallelSequentialDaemonFallsBack: the random-sequential daemon is
// inherently serial; Workers must not change its behavior.
func TestParallelSequentialDaemonFallsBack(t *testing.T) {
	g := randomConnected(120, 5)
	ref := Config{Variant: LSN, Scheduler: sim.RandomSequential, Seed: 9}
	rStats, rGraph, rEvents := runOnce(g, ref)
	cfg := ref
	cfg.Workers, cfg.Shards = 8, 8
	st, fg, evs := runOnce(g, cfg)
	if !fg.Equal(rGraph) {
		t.Fatal("sequential daemon result changed under Workers")
	}
	if st.Par != (ParallelStats{}) {
		t.Fatalf("sequential daemon must not record a parallel shape: %+v", st.Par)
	}
	sameStats(t, "daemon", st, rStats)
	sameEvents(t, "daemon", rEvents, evs)
}

// TestParallelEquivalence10k is the acceptance-criteria check at n=10_000:
// parallel and sequential (Workers=1) modes of the sharded executor produce
// bit-identical virtual graphs on all three variants. Rounds are capped —
// equivalence must hold round for round, convergence is not required here.
func TestParallelEquivalence10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node equivalence sweep skipped in -short mode")
	}
	r := rand.New(rand.NewSource(77))
	nodes := graph.MakeIDs(10_000, graph.RandomIDs, r)
	g := graph.RandomRegular(nodes, 4, r)
	for _, v := range Variants() {
		cfg := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: true,
			MaxRounds: 12, Workers: 1}
		seqStats, seqGraph, _ := runOnce(g, cfg)
		cfg.Workers = 4
		parStats, parGraph, _ := runOnce(g, cfg)
		if !parGraph.Equal(seqGraph) {
			t.Fatalf("%s: 10k-node parallel run diverged from sequential", v)
		}
		sameStats(t, v.String(), parStats, seqStats)
	}
}

// TestParallelRaceHammer drives the worker pool hard on all variants; its
// value is under `go test -race` (the Makefile race target), where any
// violation of the shard-confinement discipline becomes a report.
func TestParallelRaceHammer(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	nodes := graph.MakeIDs(1200, graph.RandomIDs, r)
	g := graph.ErdosRenyi(nodes, 0.02, r)
	for _, v := range Variants() {
		for _, shards := range []int{4, 16} {
			cfg := Config{Variant: v, Scheduler: sim.Synchronous, CloseRing: true,
				Workers: 8, Shards: shards, MaxRounds: 20}
			e := NewEngine(g, cfg)
			st := e.Run()
			if fg := e.Graph(); !fg.Connected() {
				t.Fatalf("%s shards=%d: connectivity lost (rounds=%d)", v, shards, st.Rounds)
			}
		}
	}
}
