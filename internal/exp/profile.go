package exp

// This file is the profiling bench behind `ssrsim -mode profile` and
// `make profile`: it drives each linearization variant on the sharded
// executor with the deterministic-safe span profiler attached, captures
// CPU and heap pprof bundles into results/prof/, and distills the span
// stream into the machine-readable ProfileResult that the CI perf gate
// diffs against its committed baseline (`tracectl bench compare`).
//
// The round-phase/shard attribution answers ROADMAP Open item 1's
// "profile first": per-phase wall time, the Amdahl sequential share, the
// per-round load imbalance, and the interior-vs-boundary activation split
// that explains why the executor's speedup is capped.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/graph"
	"repro/internal/linearize"
	"repro/internal/metrics"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ProfilePhase is one span kind's aggregate over a run.
type ProfilePhase struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// ProfileRun is one variant's profiled measurement. The activation and
// round fields are machine-independent (pure functions of the shard
// partition) and are what the perf gate judges; the timing fields vary
// with the host and stay informational.
type ProfileRun struct {
	Variant   string `json:"variant"`
	Workers   int    `json:"workers"`
	Shards    int    `json:"shards"`
	Partition string `json:"partition,omitempty"`
	Rounds    int    `json:"rounds"`
	Converged bool   `json:"converged"`

	Seconds          float64        `json:"seconds"`
	Phases           []ProfilePhase `json:"phases"`
	SeqShare         float64        `json:"seq_share"`
	AmdahlCeiling    float64        `json:"amdahl_ceiling"`
	PredictedSpeedup float64        `json:"predicted_speedup"` // at this worker count
	ImbalanceMean    float64        `json:"imbalance_mean"`
	ImbalanceMax     float64        `json:"imbalance_max"`
	AllocBytes       float64        `json:"alloc_bytes"`
	Mallocs          float64        `json:"mallocs"`
	GCCycles         float64        `json:"gc_cycles"`

	InteriorActivations int64   `json:"interior_activations"`
	WaveActivations     int64   `json:"wave_activations"`
	BoundaryActivations int64   `json:"boundary_activations"`
	BoundaryShare       float64 `json:"boundary_share"`

	CPUProfile  string `json:"cpu_profile,omitempty"`
	HeapProfile string `json:"heap_profile,omitempty"`
}

// ProfileResult is the machine-readable profiling record.
type ProfileResult struct {
	Meta       benchfmt.Meta `json:"meta"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"go_max_procs"`
	Runs       []ProfileRun  `json:"runs"`
}

// ProfileBench profiles linearization variants on the sharded executor at
// size n — every variant when only is empty, a single named one otherwise
// (useful for producing a one-variant trace `tracectl perf` can read
// without cross-variant mixing). workers <= 0 means GOMAXPROCS; shards
// <= 0 auto-scales (and stays a pure function of n, so the gated fields
// are machine-independent); partition "" means the contiguous baseline
// policy. When profDir is non-empty, CPU and heap pprof bundles are
// captured per variant; quick skips the captures, keeping the CI gate
// fast and its artifacts out of the tree.
func ProfileBench(n int, topo graph.Topology, workers, shards int, partition string, seed int64, quick bool, profDir, only string) (Report, ProfileResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	variants := linearize.Variants()
	if only != "" {
		variants = variants[:0]
		for _, v := range linearize.Variants() {
			if v.String() == only {
				variants = append(variants, v)
			}
		}
		if len(variants) == 0 {
			return Report{}, ProfileResult{}, fmt.Errorf("unknown variant %q", only)
		}
	}
	// A filtered record gets its own bench name so `tracectl bench
	// compare` refuses to diff it against a full-suite baseline.
	benchName := "profile"
	if only != "" {
		benchName += ":" + only
	}
	meta := benchfmt.NewMeta(benchName)
	meta.Topology, meta.Seed, meta.N = string(topo), seed, n
	meta.Workers, meta.Shards, meta.Quick = workers, shards, quick
	meta.Partition = partition
	res := ProfileResult{
		Meta:       meta,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	rep := Report{ID: "E18", Title: fmt.Sprintf("per-phase profiler on %s graphs, n=%d workers=%d seed=%d", topo, n, workers, seed)}
	tab := metrics.NewTable("variant", "rounds", "conv", "wall s", "seq share", "ceiling", "pred", "imbal", "interior", "wave", "boundary", "bnd share")

	capture := profDir != "" && !quick
	if capture {
		if err := os.MkdirAll(profDir, 0o755); err != nil {
			return Report{}, ProfileResult{}, err
		}
	}
	g := topoOrDie(topo, n, seed)
	for _, v := range variants {
		an := trace.NewAnalysis()
		tr := trace.Tee(tracer, an)
		cfg := linearize.Config{
			Variant:   v,
			Scheduler: sim.Synchronous,
			MaxRounds: scaleRounds(v, quick),
			CloseRing: true,
			Executor:  sim.ExecutorConfig{Workers: workers, Shards: shards, Partition: partition},
			Tracer:    tr,
			Prof:      perf.New(tr),
		}
		var cpuPath, heapPath string
		if capture {
			cpuPath = filepath.Join(profDir, "cpu_"+v.String()+".pprof")
			f, err := os.Create(cpuPath)
			if err != nil {
				return Report{}, ProfileResult{}, err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return Report{}, ProfileResult{}, fmt.Errorf("cpu profile: %w", err)
			}
			defer f.Close()
		}
		start := time.Now()
		stats, _ := linearize.Run(g, cfg)
		dur := time.Since(start)
		if capture {
			pprof.StopCPUProfile()
			heapPath = filepath.Join(profDir, "heap_"+v.String()+".pprof")
			hf, err := os.Create(heapPath)
			if err != nil {
				return Report{}, ProfileResult{}, err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(hf); err != nil {
				hf.Close()
				return Report{}, ProfileResult{}, fmt.Errorf("heap profile: %w", err)
			}
			hf.Close()
		}

		p := an.Perf()
		run := ProfileRun{
			Variant:             v.String(),
			Workers:             stats.Par.Workers,
			Shards:              stats.Par.Shards,
			Partition:           stats.Par.Policy,
			Rounds:              stats.Rounds,
			Converged:           stats.Converged,
			Seconds:             dur.Seconds(),
			SeqShare:            p.SeqShare(),
			AmdahlCeiling:       p.AmdahlCeiling(),
			PredictedSpeedup:    p.SpeedupAt(workers),
			ImbalanceMean:       p.ImbalanceMean,
			ImbalanceMax:        p.ImbalanceMax,
			AllocBytes:          p.AllocBytes,
			Mallocs:             p.Mallocs,
			GCCycles:            p.GCCycles,
			InteriorActivations: stats.Par.InteriorActivations,
			WaveActivations:     stats.Par.WaveActivations,
			BoundaryActivations: stats.Par.BoundaryActivations,
			CPUProfile:          cpuPath,
			HeapProfile:         heapPath,
		}
		// Wave activations are parallel work: only the residual sequential
		// Finish phase counts against the boundary share.
		if total := run.InteriorActivations + run.WaveActivations + run.BoundaryActivations; total > 0 {
			run.BoundaryShare = float64(run.BoundaryActivations) / float64(total)
		}
		for _, s := range p.Spans {
			run.Phases = append(run.Phases, ProfilePhase{Phase: s.Name, Seconds: s.TotalNs / 1e9, Count: s.Count})
		}
		res.Runs = append(res.Runs, run)
		tab.AddRow(run.Variant, run.Rounds, run.Converged,
			fmt.Sprintf("%.3f", run.Seconds), fmt.Sprintf("%.3f", run.SeqShare),
			fmt.Sprintf("%.2fx", run.AmdahlCeiling), fmt.Sprintf("%.2fx", run.PredictedSpeedup),
			fmt.Sprintf("%.2f", run.ImbalanceMean),
			run.InteriorActivations, run.WaveActivations, run.BoundaryActivations, fmt.Sprintf("%.3f", run.BoundaryShare))
	}
	rep.Table = tab
	for _, r := range res.Runs {
		if r.BoundaryShare > 0.5 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: boundary work dominates (%.1f%% of activations) — the sequential Finish phase is the scaling bottleneck (ROADMAP Open item 1)",
				r.Variant, 100*r.BoundaryShare))
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("num_cpu=%d gomaxprocs=%d", res.NumCPU, res.GoMaxProcs))
	if capture {
		rep.Notes = append(rep.Notes, fmt.Sprintf("pprof bundles in %s (go tool pprof <file>)", profDir))
	}
	return rep, res, nil
}

// WriteProfileJSON writes the profiling record to path.
func WriteProfileJSON(path string, res ProfileResult) error {
	return writeBenchJSON(path, res)
}
