package exp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Bootstrap runs a single bootstrap of one protocol with a convergence
// probe attached — the traced-run producer behind `ssrsim -mode boot`.
// Combined with -trace it writes the JSONL traces that cmd/tracectl
// report/diff consume (the linearization-vs-ISPRP comparison of E6, one
// run at a time); combined with -listen it is the long-running target for
// live /metrics and /probe scraping.
//
// The protocol is resolved through the Protocol registry (NewBootProtocol),
// so every registered bootstrap — linearization, isprp, vrr, flood — gets
// the identical probe/run/teardown treatment.
//
// probeEvery is the sampling interval in engine ticks; each sample is one
// "round" of the trace's convergence series. At the end of the run the
// physical per-kind frame counters are re-emitted as "msgs/…" summary
// counters, so even a round-level trace carries the message taxonomy.
func Bootstrap(proto string, n int, topo graph.Topology, seed int64, probeEvery int) (Report, error) {
	rep := Report{ID: "E6c", Title: fmt.Sprintf("single %s bootstrap, n=%d on %s (%s transport)", proto, n, topo, transportName)}
	net, tr := newTransportNet(topo, n, seed)
	cl, err := NewBootProtocol(proto, tr)
	if err != nil {
		return Report{}, err
	}
	probe := &trace.Probe{Tracer: tracer}
	deadline := sim.Time(n) * 4096

	cl.AttachProbe(probe, sim.Time(probeEvery))
	at, ok := cl.RunUntilConsistent(deadline)
	probe.Observe(probe.Len(), cl.VirtualGraph()) // final post-convergence sample
	cl.Stop()

	// Re-emit the physical frame economy as summary counters: this is what
	// keeps coarse (round-level) traces analyzable — tracectl's taxonomy
	// falls back to msgs/… counters when per-message events were filtered.
	if tracer != nil {
		t := int64(net.Engine().Now())
		for _, kc := range net.Counters().Snapshot() {
			if kc.Count > 0 {
				tracer.Emit(trace.Event{
					T: t, Type: trace.EvCounter,
					Kind: trace.MsgCounterPrefix + kc.Kind, Value: float64(kc.Count),
				})
			}
		}
	}

	tab := metrics.NewTable("protocol", "n", "converged", "time", "frames")
	tab.AddRow(proto, n, ok, int64(at), net.Counters().Total())
	rep.Table = tab
	if probe.Len() > 0 {
		rep.Notes = append(rep.Notes, probe.String())
	}
	return rep, nil
}
