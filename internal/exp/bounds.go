package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linearize"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DegreeSweep probes the §5 future-work question of "more precise bounds on
// … convergence": how do convergence rounds depend on the initial average
// degree at fixed n? Random d-regular graphs, d swept.
func DegreeSweep(n int, degrees []int, seeds int) Report {
	rep := Report{ID: "B1", Title: fmt.Sprintf("Convergence vs initial degree (random regular, n=%d)", n)}
	tab := metrics.NewTable("degree", "variant", "rounds mean", "rounds max", "edges added mean")
	for _, d := range degrees {
		for _, v := range []linearize.Variant{linearize.Memory, linearize.LSN} {
			var rounds []int
			var added []int64
			for s := 0; s < seeds; s++ {
				r := rand.New(rand.NewSource(int64(1000*d + s)))
				nodes := graph.MakeIDs(n, graph.RandomIDs, r)
				g := graph.RandomRegular(nodes, d, r)
				stats, _ := linearize.Run(g, linearize.Config{
					Variant: v, Scheduler: sim.Synchronous, Seed: int64(s),
				})
				rounds = append(rounds, stats.Rounds)
				added = append(added, stats.EdgesAdded)
			}
			rs := metrics.Summarize(metrics.Ints(rounds))
			as := metrics.Summarize(metrics.Int64s(added))
			tab.AddRow(d, v.String(), rs.Mean, int(rs.Max), as.Mean)
		}
	}
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"denser starts carry more initial shortcut information: rounds should fall, message work rise")
	return rep
}

// DiameterSweep probes convergence against the physical diameter at fixed
// n: the line (diameter n-1), the grid (≈2√n), an expander-ish random
// regular graph (O(log n)) and the star (2). Information must travel the
// diameter at least once, so diameter is the natural lower-bound axis.
func DiameterSweep(n int, seeds int) Report {
	rep := Report{ID: "B2", Title: fmt.Sprintf("Convergence vs topology diameter (n=%d)", n)}
	tab := metrics.NewTable("topology", "diameter", "variant", "rounds mean")
	type topoCase struct {
		name string
		make func(r *rand.Rand) *graph.Graph
	}
	cases := []topoCase{
		// A path visiting the nodes in random order: maximal diameter and a
		// maximally unsorted start (the sorted line would already be the
		// goal state).
		{"shuffled-path", func(r *rand.Rand) *graph.Graph {
			nodes := graph.MakeIDs(n, graph.RandomIDs, r)
			r.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
			g := graph.NewWithNodes(nodes...)
			for i := 0; i+1 < len(nodes); i++ {
				g.AddEdge(nodes[i], nodes[i+1])
			}
			return g
		}},
		{"grid", func(r *rand.Rand) *graph.Graph {
			side := 1
			for side*side < n {
				side++
			}
			g, err := graph.Grid(graph.MakeIDs(side*side, graph.RandomIDs, r), side, side)
			if err != nil {
				panic(err)
			}
			return g
		}},
		{"regular4", func(r *rand.Rand) *graph.Graph {
			return graph.RandomRegular(graph.MakeIDs(n, graph.RandomIDs, r), 4, r)
		}},
		{"star", func(r *rand.Rand) *graph.Graph {
			return graph.Star(graph.MakeIDs(n, graph.RandomIDs, r))
		}},
	}
	for _, tc := range cases {
		for _, v := range []linearize.Variant{linearize.Memory, linearize.LSN} {
			var rounds []int
			diam := -1
			for s := 0; s < seeds; s++ {
				r := rand.New(rand.NewSource(int64(31*n + s)))
				g := tc.make(r)
				if s == 0 {
					diam = g.Diameter()
				}
				stats, _ := linearize.Run(g, linearize.Config{
					Variant: v, Scheduler: sim.Synchronous, Seed: int64(s),
				})
				rounds = append(rounds, stats.Rounds)
			}
			rs := metrics.Summarize(metrics.Ints(rounds))
			tab.AddRow(tc.name, diam, v.String(), rs.Mean)
		}
	}
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"high-diameter unsorted starts dominate convergence time: knowledge initially spreads one hop per round")
	return rep
}
