package exp

// Lifecycle coverage for SetupObservability's -pprof server: bind errors
// surface to the caller, the endpoints answer while the harness runs, and
// the cleanup func shuts the listener down instead of leaking it.

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// freePort grabs an ephemeral port and releases it, so the test can hand
// SetupObservability a concrete address.
func freePort(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

func TestSetupObservabilityPprofLifecycle(t *testing.T) {
	addr := freePort(t)
	cleanup, err := SetupObservability("", "round", addr, "")
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	url := fmt.Sprintf("http://%s/debug/pprof/cmdline", addr)
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		cleanup()
		t.Fatalf("pprof endpoint never answered: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cleanup()
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}

	cleanup()
	// After cleanup the port must be free again — the server was shut
	// down, not leaked into the background.
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port still held after cleanup: %v", err)
	}
	lis.Close()
}

func TestSetupObservabilityPprofBindErrorSurfaces(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	if _, err := SetupObservability("", "round", lis.Addr().String(), ""); err == nil {
		t.Fatal("expected a bind error for an occupied port")
	}
}
