package exp

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served behind -pprof
	"os"

	"repro/internal/trace"
)

// SetupObservability wires the cmd/ tools' -trace/-trace-level/-pprof
// flags: a JSONL event trace of every simulation the harness runs, and the
// standard net/http/pprof endpoints for profiling long sweeps. Empty
// traceFile disables tracing; empty pprofAddr disables the profile server.
// The returned cleanup flushes and closes the trace file (always non-nil).
func SetupObservability(traceFile, traceLevel, pprofAddr string) (func(), error) {
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	if traceFile == "" {
		return func() {}, nil
	}
	level, ok := trace.ParseLevel(traceLevel)
	if !ok {
		return func() {}, fmt.Errorf("bad -trace-level %q (want off|round|msg)", traceLevel)
	}
	f, err := os.Create(traceFile)
	if err != nil {
		return func() {}, fmt.Errorf("-trace: %w", err)
	}
	w := trace.NewJSONLWriter(f)
	EnableTracing(trace.WithLevel(w, level))
	return func() {
		EnableTracing(nil)
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace close:", err)
		}
	}, nil
}
