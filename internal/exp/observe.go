package exp

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served behind -pprof
	"os"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// SetupObservability wires the cmd/ tools' observability flags: -trace/
// -trace-level (a JSONL event trace of every simulation the harness runs),
// -pprof (the standard net/http/pprof endpoints) and -listen (the live
// telemetry server: /metrics in OpenMetrics text format, /healthz, /probe).
// Empty flags disable their features; with all empty the harness tracer
// stays nil and every emission site keeps its zero-cost nil-guard path.
// The returned cleanup flushes the trace file and stops the telemetry
// server (always non-nil).
func SetupObservability(traceFile, traceLevel, pprofAddr, listenAddr string) (func(), error) {
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	var telem *telemetry.Server
	if listenAddr != "" {
		telem = telemetry.NewServer()
		bound, err := telem.Start(listenAddr)
		if err != nil {
			return func() {}, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics /healthz /probe on http://%s\n", bound)
	}

	var w *trace.JSONLWriter
	if traceFile != "" {
		level, ok := trace.ParseLevel(traceLevel)
		if !ok {
			if telem != nil {
				telem.Close()
			}
			return func() {}, fmt.Errorf("bad -trace-level %q (want off|round|msg)", traceLevel)
		}
		f, err := os.Create(traceFile)
		if err != nil {
			if telem != nil {
				telem.Close()
			}
			return func() {}, fmt.Errorf("-trace: %w", err)
		}
		w = trace.NewJSONLWriter(f)
		EnableTracing(trace.Tee(trace.WithLevel(w, level), telemTracer(telem)))
	} else if telem != nil {
		EnableTracing(telem.Tracer())
	}

	return func() {
		EnableTracing(nil)
		if w != nil {
			if err := w.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace close:", err)
			}
		}
		if telem != nil {
			if err := telem.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "telemetry close:", err)
			}
		}
	}, nil
}

// telemTracer is the nil-safe accessor (a nil *Server must collapse to a
// nil Tracer inside Tee, not a typed non-nil interface).
func telemTracer(t *telemetry.Server) trace.Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer()
}
