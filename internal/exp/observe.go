package exp

import (
	"context"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// pprofMux builds an explicit mux carrying the standard pprof endpoints.
// Registering on our own mux instead of importing the net/http/pprof side
// effect keeps the handlers off http.DefaultServeMux, where any other
// library's ListenAndServe would expose them by accident.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// SetupObservability wires the cmd/ tools' observability flags: -trace/
// -trace-level (a JSONL event trace of every simulation the harness runs),
// -pprof (the standard net/http/pprof endpoints) and -listen (the live
// telemetry server: /metrics in OpenMetrics text format, /healthz, /probe).
// Empty flags disable their features; with all empty the harness tracer
// stays nil and every emission site keeps its zero-cost nil-guard path.
//
// Every server's lifecycle is owned here: bind errors surface to the
// caller as errors (not stderr noise from a background goroutine), and the
// returned cleanup — always non-nil — flushes the trace file and shuts
// both HTTP servers down gracefully.
func SetupObservability(traceFile, traceLevel, pprofAddr, listenAddr string) (func(), error) {
	var pprofSrv *http.Server
	closePprof := func() {}
	if pprofAddr != "" {
		lis, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return func() {}, fmt.Errorf("-pprof: %w", err)
		}
		pprofSrv = &http.Server{Handler: pprofMux()}
		go func() {
			if err := pprofSrv.Serve(lis); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof on http://%s\n", lis.Addr())
		closePprof = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := pprofSrv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "pprof shutdown:", err)
			}
		}
	}

	var telem *telemetry.Server
	if listenAddr != "" {
		telem = telemetry.NewServer()
		bound, err := telem.Start(listenAddr)
		if err != nil {
			closePprof()
			return func() {}, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics /healthz /probe on http://%s\n", bound)
	}

	var w *trace.JSONLWriter
	if traceFile != "" {
		level, ok := trace.ParseLevel(traceLevel)
		if !ok {
			if telem != nil {
				telem.Close()
			}
			closePprof()
			return func() {}, fmt.Errorf("bad -trace-level %q (want off|round|msg)", traceLevel)
		}
		f, err := os.Create(traceFile)
		if err != nil {
			if telem != nil {
				telem.Close()
			}
			closePprof()
			return func() {}, fmt.Errorf("-trace: %w", err)
		}
		w = trace.NewJSONLWriter(f)
		EnableTracing(trace.Tee(trace.WithLevel(w, level), telemTracer(telem)))
	} else if telem != nil {
		EnableTracing(telem.Tracer())
	}

	return func() {
		EnableTracing(nil)
		if w != nil {
			if err := w.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace close:", err)
			}
		}
		if telem != nil {
			if err := telem.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "telemetry close:", err)
			}
		}
		closePprof()
	}, nil
}

// telemTracer is the nil-safe accessor (a nil *Server must collapse to a
// nil Tracer inside Tee, not a typed non-nil interface).
func telemTracer(t *telemetry.Server) trace.Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer()
}
