package exp

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/floodboot"
	"repro/internal/graph"
	"repro/internal/isprp"
	"repro/internal/metrics"
	"repro/internal/phys"
	"repro/internal/rel"
	"repro/internal/sim"
	"repro/internal/ssr"
	"repro/internal/trace"
	"repro/internal/vrr"
)

func newNet(topo graph.Topology, n int, seed int64) *phys.Network {
	eng := sim.NewEngine(seed, sim.WithTracer(tracer))
	return phys.NewNetwork(eng, topoOrDie(topo, n, seed), phys.WithTracer(tracer))
}

// newTransportNet builds a raw network plus the transport protocols should
// run over, honoring the harness-wide SetTransport selection. The raw
// network stays the handle for fault injection and counters even when the
// reliable sublayer is interposed.
func newTransportNet(topo graph.Topology, n int, seed int64) (*phys.Network, phys.Transport) {
	raw := newNet(topo, n, seed)
	if transportName == TransportReliable {
		return raw, rel.New(raw, rel.DefaultConfig())
	}
	return raw, raw
}

// MessageCost reproduces experiment E6: physical frames to global
// consistency for ISPRP+flood vs the linearization bootstrap, with the
// flood share broken out — quantifying the paper's headline "does not
// require any flooding at all".
func MessageCost(sizes []int, topo graph.Topology, seeds int) Report {
	rep := Report{ID: "E6", Title: fmt.Sprintf("Bootstrap message cost on %s graphs", topo)}
	tab := metrics.NewTable("protocol", "n", "converged", "time mean", "msgs mean", "flood mean", "flood share")
	for _, n := range sizes {
		type agg struct {
			conv       int
			time, msgs []int64
			flood      []int64
		}
		collect := func(run func(seed int64) (bool, int64, int64, int64)) agg {
			var a agg
			for s := 0; s < seeds; s++ {
				ok, at, msgs, flood := run(int64(101*n + s))
				if ok {
					a.conv++
				}
				a.time = append(a.time, at)
				a.msgs = append(a.msgs, msgs)
				a.flood = append(a.flood, flood)
			}
			return a
		}
		deadline := sim.Time(n) * 4096

		af := collect(func(seed int64) (bool, int64, int64, int64) {
			net := newNet(topo, n, seed)
			cl := floodboot.NewCluster(net)
			at, ok := cl.RunUntilConsistent(deadline)
			total := net.Counters().Total()
			return ok, int64(at), total, total // every frame is a flood frame
		})
		ai := collect(func(seed int64) (bool, int64, int64, int64) {
			net := newNet(topo, n, seed)
			cl := isprp.NewCluster(net, isprp.Config{EnableFlood: true})
			at, ok := cl.RunUntilConsistent(deadline)
			cl.Stop()
			return ok, int64(at), net.Counters().Total(), net.Counters().Get(isprp.KindFlood)
		})
		al := collect(func(seed int64) (bool, int64, int64, int64) {
			net := newNet(topo, n, seed)
			cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded})
			at, ok := cl.RunUntilConsistent(deadline)
			cl.Stop()
			return ok, int64(at), net.Counters().Total(), 0
		})

		add := func(name string, a agg) {
			ts := metrics.Summarize(metrics.Int64s(a.time))
			ms := metrics.Summarize(metrics.Int64s(a.msgs))
			fs := metrics.Summarize(metrics.Int64s(a.flood))
			share := 0.0
			if ms.Mean > 0 {
				share = fs.Mean / ms.Mean
			}
			tab.AddRow(name, n, fmt.Sprintf("%d/%d", a.conv, seeds), ts.Mean, ms.Mean, fs.Mean, share)
		}
		add("full flood", af)
		add("isprp+flood", ai)
		add("linearization", al)
	}
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"linearization's flood column is structurally zero: the protocol has no flood primitive")
	return rep
}

// MessageBreakdown details the per-kind message mix of one linearization
// bootstrap — the companion table to E6. The taxonomy comes from a
// tracer-fed stats sink watching the physical layer, so the same breakdown
// is available for any traced run, not just this harness.
func MessageBreakdown(n int, topo graph.Topology, seed int64) Report {
	rep := Report{ID: "E6b", Title: "Linearization bootstrap message mix"}
	net := newNet(topo, n, seed)
	sink := trace.NewStatsSink()
	net.SetTracer(trace.Tee(net.Tracer(), sink))
	cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded, CloseRing: true, BothDirections: true})
	at, ok := cl.RunUntilConsistent(sim.Time(n) * 4096)
	cl.Stop()
	rep.Table = sink.TaxonomyTable()
	rep.Notes = append(rep.Notes, fmt.Sprintf("n=%d converged=%v at t=%d", n, ok, at))
	if drops := sink.Drops(); len(drops) > 0 {
		parts := make([]string, len(drops))
		for i, d := range drops {
			parts[i] = fmt.Sprintf("%s=%d", d.Kind, d.Count)
		}
		rep.Notes = append(rep.Notes, "drops: "+strings.Join(parts, " "))
	}
	return rep
}

// Routing reproduces experiment E7: after a linearization bootstrap with
// ring closure, SSR's greedy routing must succeed for every pair; the
// stretch distribution is reported alongside.
func Routing(n int, topo graph.Topology, pairs int, seed int64) Report {
	rep := Report{ID: "E7", Title: "SSR greedy routing after convergence"}
	net := newNet(topo, n, seed)
	cl := ssr.NewCluster(net, ssr.Config{
		CacheMode: cache.Bounded, CloseRing: true, BothDirections: true,
	})
	_, ok := cl.RunUntilConsistent(sim.Time(n) * 4096)
	if !ok {
		rep.Notes = append(rep.Notes, "BOOTSTRAP DID NOT CONVERGE; routing numbers meaningless")
	}
	cl.Stop()
	results := cl.AllPairsRouting(pairs, 8192)
	delivered := 0
	var stretch []float64
	var segs []int
	for _, r := range results {
		if r.Delivered {
			delivered++
			if s := r.Stretch(); s > 0 {
				stretch = append(stretch, s)
			}
			segs = append(segs, r.Segments)
		}
	}
	tab := metrics.NewTable("metric", "value")
	tab.AddRow("pairs attempted", len(results))
	tab.AddRow("delivered", delivered)
	tab.AddRow("success rate", float64(delivered)/float64(max(1, len(results))))
	ss := metrics.Summarize(stretch)
	tab.AddRow("stretch mean", ss.Mean)
	tab.AddRow("stretch p90", ss.P90)
	tab.AddRow("stretch max", ss.Max)
	gs := metrics.Summarize(metrics.Ints(segs))
	tab.AddRow("greedy segments mean", gs.Mean)
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"§1: once the ring is consistent, greedy routing is guaranteed for every pair — success rate must be 1.00")
	return rep
}

// CacheOccupancy reproduces the §4 observation backing LSN's applicability:
// after bootstrap, SSR route caches hold about one entry per exponential
// interval — the shortcut set LSN needs comes for free.
func CacheOccupancy(n int, topo graph.Topology, seed int64) Report {
	rep := Report{ID: "E8b", Title: "SSR cache occupancy vs LSN interval structure"}
	net := newNet(topo, n, seed)
	cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded})
	_, ok := cl.RunUntilConsistent(sim.Time(n) * 4096)
	cl.Stop()
	var entries, occL, occR []int
	for _, node := range cl.Nodes {
		entries = append(entries, node.Cache().Len())
		l, r := node.Cache().IntervalOccupancy()
		occL = append(occL, l)
		occR = append(occR, r)
	}
	tab := metrics.NewTable("metric", "mean", "p90", "max")
	es := metrics.Summarize(metrics.Ints(entries))
	ls := metrics.Summarize(metrics.Ints(occL))
	rs := metrics.Summarize(metrics.Ints(occR))
	tab.AddRow("cache entries/node", es.Mean, es.P90, es.Max)
	tab.AddRow("occupied left intervals", ls.Mean, ls.P90, ls.Max)
	tab.AddRow("occupied right intervals", rs.Mean, rs.P90, rs.Max)
	rep.Table = tab
	rep.Notes = append(rep.Notes, fmt.Sprintf("n=%d converged=%v; bound is 2×64 slots", n, ok))
	return rep
}

// RingClosure reproduces experiment E10: discovery-based ring closure, one
// direction vs both (§4 recommends both "for sake of redundancy").
func RingClosure(n int, topo graph.Topology, seeds int) Report {
	rep := Report{ID: "E10", Title: "Ring closure: discovery redundancy"}
	tab := metrics.NewTable("directions", "converged", "time mean", "discover frames mean")
	for _, both := range []bool{false, true} {
		conv := 0
		var times, frames []int64
		for s := 0; s < seeds; s++ {
			net := newNet(topo, n, int64(55*n+s))
			cl := ssr.NewCluster(net, ssr.Config{
				CacheMode: cache.Bounded, CloseRing: true, BothDirections: both,
			})
			at, ok := cl.RunUntilConsistent(sim.Time(n) * 4096)
			cl.Stop()
			if ok {
				conv++
			}
			times = append(times, int64(at))
			frames = append(frames, net.Counters().Get(ssr.KindDiscover)+net.Counters().Get(ssr.KindDiscoverAck))
		}
		name := "clockwise only"
		if both {
			name = "both directions"
		}
		ts := metrics.Summarize(metrics.Int64s(times))
		fs := metrics.Summarize(metrics.Int64s(frames))
		tab.AddRow(name, fmt.Sprintf("%d/%d", conv, seeds), ts.Mean, fs.Mean)
	}
	rep.Table = tab
	return rep
}

// VRRBootstrap reproduces experiment E11: linearized VRR converges without
// any representative mechanism; state and message cost are compared with
// SSR's source-route realization.
func VRRBootstrap(n int, topo graph.Topology, seeds int) Report {
	rep := Report{ID: "E11", Title: "Linearized VRR (path state) vs SSR (source routes)"}
	tab := metrics.NewTable("protocol", "converged", "time mean", "msgs mean", "state/node mean")
	var vrrTimes, vrrMsgs []int64
	var vrrState []int
	vrrConv := 0
	for s := 0; s < seeds; s++ {
		net := newNet(topo, n, int64(71*n+s))
		cl := vrr.NewCluster(net, vrr.Config{CloseRing: true})
		at, ok := cl.RunUntilConsistent(sim.Time(n) * 8192)
		cl.Stop()
		if ok {
			vrrConv++
		}
		vrrTimes = append(vrrTimes, int64(at))
		vrrMsgs = append(vrrMsgs, net.Counters().Total())
		vrrState = append(vrrState, cl.StateSummary()...)
	}
	var ssrTimes, ssrMsgs []int64
	var ssrState []int
	ssrConv := 0
	for s := 0; s < seeds; s++ {
		net := newNet(topo, n, int64(71*n+s))
		cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded, CloseRing: true, BothDirections: true})
		at, ok := cl.RunUntilConsistent(sim.Time(n) * 8192)
		cl.Stop()
		if ok {
			ssrConv++
		}
		ssrTimes = append(ssrTimes, int64(at))
		ssrMsgs = append(ssrMsgs, net.Counters().Total())
		for _, node := range cl.Nodes {
			ssrState = append(ssrState, node.Cache().Len())
		}
	}
	vt := metrics.Summarize(metrics.Int64s(vrrTimes))
	vm := metrics.Summarize(metrics.Int64s(vrrMsgs))
	vs := metrics.Summarize(metrics.Ints(vrrState))
	st := metrics.Summarize(metrics.Int64s(ssrTimes))
	sm := metrics.Summarize(metrics.Int64s(ssrMsgs))
	ss := metrics.Summarize(metrics.Ints(ssrState))
	tab.AddRow("vrr (paths)", fmt.Sprintf("%d/%d", vrrConv, seeds), vt.Mean, vm.Mean, vs.Mean)
	tab.AddRow("ssr (routes)", fmt.Sprintf("%d/%d", ssrConv, seeds), st.Mean, sm.Mean, ss.Mean)
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"VRR state counts path-table entries (including transit paths); SSR counts cached routes",
		"VRR messages include the periodic hello beacons VRR needs for neighbor discovery")
	return rep
}

// ChurnRecovery reproduces the message-level half of experiment E9: after
// convergence a fraction of nodes fail; the survivors must re-linearize.
func ChurnRecovery(n int, topo graph.Topology, kill int, seed int64) Report {
	rep := Report{ID: "E9b", Title: "Message-level churn recovery"}
	net := newNet(topo, n, seed)
	cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded})
	bootAt, ok := cl.RunUntilConsistent(sim.Time(n) * 4096)
	tab := metrics.NewTable("phase", "converged", "time")
	tab.AddRow("bootstrap", ok, int64(bootAt))
	if !ok {
		rep.Table = tab
		return rep
	}
	// Kill interior nodes (keep the extremes and connectivity).
	nodes := net.Topology().Nodes()
	killed := 0
	for i := 1; i < len(nodes)-1 && killed < kill; i += 3 {
		v := nodes[i]
		topoAfter := net.Topology().Clone()
		topoAfter.RemoveNode(v)
		if !topoAfter.Connected() {
			continue
		}
		net.FailNode(v)
		for u, node := range cl.Nodes {
			if u != v {
				node.Cache().Remove(v)
			}
		}
		delete(cl.Nodes, v)
		killed++
	}
	recAt, recOK := cl.RunUntilConsistent(bootAt + sim.Time(n)*4096)
	tab.AddRow(fmt.Sprintf("recovery after killing %d", killed), recOK, int64(recAt-bootAt))
	cl.Stop()
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"failure detection is modeled as instantaneous cache purge; recovery itself uses only linearization")
	return rep
}

// TeardownAblation compares the §4 optional teardown (pure-like protocol)
// with the keep-everything variant (memory-like) on messages and state.
func TeardownAblation(n int, topo graph.Topology, seeds int) Report {
	rep := Report{ID: "A2", Title: "Teardown ablation: §4 edge removal on/off"}
	tab := metrics.NewTable("teardown", "converged", "time mean", "msgs mean", "routes/node mean")
	for _, tear := range []bool{false, true} {
		conv := 0
		var times, msgs []int64
		var state []int
		for s := 0; s < seeds; s++ {
			net := newNet(topo, n, int64(91*n+s))
			cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded, Teardown: tear})
			at, ok := cl.RunUntilConsistent(sim.Time(n) * 4096)
			cl.Stop()
			if ok {
				conv++
			}
			times = append(times, int64(at))
			msgs = append(msgs, net.Counters().Total())
			for _, node := range cl.Nodes {
				state = append(state, node.Cache().Len())
			}
		}
		ts := metrics.Summarize(metrics.Int64s(times))
		ms := metrics.Summarize(metrics.Int64s(msgs))
		ss := metrics.Summarize(metrics.Ints(state))
		tab.AddRow(tear, fmt.Sprintf("%d/%d", conv, seeds), ts.Mean, ms.Mean, ss.Mean)
	}
	rep.Table = tab
	return rep
}
