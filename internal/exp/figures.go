package exp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/isprp"
	"repro/internal/linearize"
	"repro/internal/metrics"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
	"repro/internal/ssr"
	"repro/internal/trace"
	"repro/internal/vring"
)

// Fig1Loopy reproduces Figure 1 / experiment E1: the loopy state is
// ISPRP-locally consistent, so ISPRP without flooding never escapes it;
// ISPRP's representative flood resolves it; and linearization resolves it
// with no flooding at all.
func Fig1Loopy(seed int64) Report {
	rep := Report{ID: "E1/Fig1", Title: "The loopy state: locally consistent, globally wrong"}
	loopy := vring.LoopyExample()

	var text string
	text += "Successor view (single ring winding twice around the id space):\n"
	text += trace.RenderRing(loopy)
	text += "\nLine view (the inconsistency becomes locally visible, §3):\n"
	text += trace.RenderLine(loopy.ToGraph())
	rep.Text = text

	tab := metrics.NewTable("mechanism", "resolves", "time", "messages", "flood frames")

	// ISPRP, no flood: runs forever locally consistent.
	{
		net, cl := isprpOnLoopy(seed, isprp.Config{EnableFlood: false})
		at, ok := cl.RunUntilConsistent(40000)
		tab.AddRow("isprp (no flood)", ok, int64(at), net.Counters().Total(), net.Counters().Get(isprp.KindFlood))
		cl.Stop()
	}
	// ISPRP with the representative flood.
	{
		net, cl := isprpOnLoopy(seed, isprp.Config{EnableFlood: true})
		at, ok := cl.RunUntilConsistent(120000)
		tab.AddRow("isprp (flood)", ok, int64(at), net.Counters().Total(), net.Counters().Get(isprp.KindFlood))
		cl.Stop()
	}
	// SSR linearization: no flooding at all.
	{
		net := phys.NewNetwork(sim.NewEngine(seed), loopy.ToGraph())
		cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded})
		at, ok := cl.RunUntilConsistent(120000)
		tab.AddRow("linearization", ok, int64(at), net.Counters().Total(), 0)
		cl.Stop()
	}
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"ISPRP's local view accepts the loopy state; only the flood (or linearization) detects it")
	return rep
}

func isprpOnLoopy(seed int64, cfg isprp.Config) (*phys.Network, *isprp.Cluster) {
	loopy := vring.LoopyExample()
	topo := loopy.ToGraph()
	net := phys.NewNetwork(sim.NewEngine(seed), topo)
	cl := &isprp.Cluster{Net: net, Nodes: make(map[ids.ID]*isprp.Node)}
	for _, v := range topo.Nodes() {
		cl.Nodes[v] = isprp.NewNode(net, v, cfg)
	}
	for v, n := range cl.Nodes {
		if r, err := sroute.New(v, loopy[v]); err == nil {
			n.SetSuccessor(r)
		}
		n.Start(sim.Time(int64(v) % 8))
	}
	return net, cl
}

// Fig2SeparateRings reproduces Figure 2 / experiment E2: two disjoint
// virtual rings on one connected physical graph. The E_v := E_p
// initialization (§4) bridges them; linearization merges them into one
// line without flooding, while ISPRP again needs its flood.
func Fig2SeparateRings(seed int64) Report {
	rep := Report{ID: "E2/Fig2", Title: "Separate rings merged without flooding"}
	succ := vring.SeparateRingsExample()
	var text string
	text += "Two disjoint virtual rings (locally consistent each):\n"
	text += trace.RenderRing(succ)
	rep.Text = text

	tab := metrics.NewTable("mechanism", "merged", "time", "messages")
	// Linearization over physical graph = ring edges + one bridge.
	topo := succ.ToGraph()
	topo.AddEdge(18, 21)
	{
		net := phys.NewNetwork(sim.NewEngine(seed), topo)
		cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded})
		at, ok := cl.RunUntilConsistent(120000)
		tab.AddRow("linearization (E_v := E_p)", ok, int64(at), net.Counters().Total())
		cl.Stop()
	}
	// Abstract check: the same merge in the round model.
	{
		stats, final := linearize.Run(topo, linearize.Config{
			Variant: linearize.LSN, Scheduler: sim.Synchronous, Seed: seed,
		})
		tab.AddRow("abstract LSN (rounds)", stats.Converged, stats.Rounds, stats.EdgesAdded+stats.EdgesDropped)
		if comps := len(final.Components()); comps != 1 {
			rep.Notes = append(rep.Notes, fmt.Sprintf("UNEXPECTED: %d components after LSN", comps))
		}
	}
	rep.Table = tab
	return rep
}

// Fig3Trace reproduces Figure 3 / experiment E3: the linearization
// algorithm at work, round by round, on the Figure 1 graph, ending in the
// sorted line (and, with ring closure, the virtual ring).
func Fig3Trace() Report {
	rep := Report{ID: "E3/Fig3", Title: "The linearization algorithm at work"}
	g := vring.LoopyExample().ToGraph()
	var rt trace.RoundTrace
	rt.ObserveInitial(g)
	stats, final := linearize.Run(g, linearize.Config{
		Variant:   linearize.Pure,
		Scheduler: sim.Synchronous,
		OnRound:   rt.Observe,
	})
	rep.Text = rt.String()
	tab := metrics.NewTable("variant", "rounds", "converged", "final edges", "is sorted line")
	tab.AddRow("pure", stats.Rounds, stats.Converged, final.NumEdges(), final.IsLinearized())
	rep.Table = tab
	return rep
}

// Fig3ClosedRing extends E3/E10: the same run with ring closure, ending in
// the sorted virtual ring.
func Fig3ClosedRing() Report {
	rep := Report{ID: "E10", Title: "Ring closure via discovery (abstract)"}
	g := vring.LoopyExample().ToGraph()
	stats, final := linearize.Run(g, linearize.Config{
		Variant:   linearize.Pure,
		Scheduler: sim.Synchronous,
		CloseRing: true,
	})
	tab := metrics.NewTable("variant", "rounds", "converged", "is sorted ring")
	tab.AddRow("pure+closering", stats.Rounds, stats.Converged, final.IsSortedRing())
	rep.Table = tab
	rep.Text = trace.RenderArcs(final)
	return rep
}

// topoOrDie builds a topology for harness code where the parameters are
// static and known-good.
func topoOrDie(t graph.Topology, n int, seed int64) *graph.Graph {
	g, err := graph.Generate(t, n, graph.RandomIDs, seed)
	if err != nil {
		panic(fmt.Sprintf("exp: topology %s/%d: %v", t, n, err))
	}
	return g
}
