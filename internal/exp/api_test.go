package exp

import (
	"flag"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestProtocolNames(t *testing.T) {
	want := []string{"flood", "isprp", "linearization", "vrr"}
	if got := ProtocolNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ProtocolNames() = %v, want %v", got, want)
	}
}

func TestNewBootProtocolUnknown(t *testing.T) {
	net := newNet(graph.TopoER, 10, 1)
	if _, err := NewBootProtocol("nope", net); err == nil {
		t.Fatal("unknown protocol should error")
	} else if !strings.Contains(err.Error(), "linearization") {
		t.Errorf("error should list the valid names: %v", err)
	}
}

// Every registered protocol must satisfy the full Protocol contract: build,
// probe, run to consistency on a small network, expose a virtual graph, stop.
func TestProtocolContract(t *testing.T) {
	for _, name := range ProtocolNames() {
		t.Run(name, func(t *testing.T) {
			net := newNet(graph.TopoER, 12, 3)
			cl, err := NewBootProtocol(name, net)
			if err != nil {
				t.Fatal(err)
			}
			probe := &trace.Probe{}
			cl.AttachProbe(probe, sim.Time(64))
			at, ok := cl.RunUntilConsistent(12 * 4096)
			if !ok {
				t.Fatalf("%s did not converge by %d", name, 12*4096)
			}
			if at == 0 {
				t.Error("convergence time should be positive")
			}
			vg := cl.VirtualGraph()
			if vg == nil || vg.NumNodes() != 12 {
				t.Fatalf("virtual graph should cover all nodes, got %v", vg)
			}
			probe.Observe(probe.Len(), vg) // final sample, as Bootstrap does
			cl.Stop()
			if probe.Len() == 0 {
				t.Error("probe should hold at least the final sample")
			}
		})
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes(" 100, 200,300 ")
	if err != nil || !reflect.DeepEqual(got, []int{100, 200, 300}) {
		t.Fatalf("ParseSizes = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "10,-2", "10,,20"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) should fail", bad)
		}
	}
}

func TestScaleBenchQuick(t *testing.T) {
	rep, res := ScaleBench([]int{600}, graph.TopoRegular, 2, 4, "contiguous", 5, true)
	if len(res.Runs) != 3 {
		t.Fatalf("want one run per variant, got %d", len(res.Runs))
	}
	for _, r := range res.Runs {
		if !r.EqualGraphs {
			t.Errorf("%s n=%d: parallel and sequential graphs differ", r.Variant, r.N)
		}
		if r.Shards != 4 || r.Workers != 2 {
			t.Errorf("%s: run shape = shards %d workers %d, want 4/2", r.Variant, r.Shards, r.Workers)
		}
		if r.SeqSeconds <= 0 || r.ParSeconds <= 0 {
			t.Errorf("%s: timings must be positive: %+v", r.Variant, r)
		}
	}
	if res.Criteria.TargetSpeedup != 2.0 || res.Criteria.AtN != 600 {
		t.Errorf("criteria = %+v", res.Criteria)
	}
	if !strings.Contains(rep.String(), "speedup") {
		t.Errorf("report table missing speedup column:\n%s", rep)
	}
}

func TestBindCLIDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLI(fs, CLIOptions{Modes: "m", DefaultMode: "boot", DefaultSizes: "10,20"})
	if err := fs.Parse([]string{"-workers", "3", "-shards", "8", "-sizes", "40,50"}); err != nil {
		t.Fatal(err)
	}
	if *c.Mode != "boot" || *c.N != 24 || *c.Workers != 3 || *c.Shards != 8 {
		t.Errorf("parsed: mode=%q n=%d workers=%d shards=%d", *c.Mode, *c.N, *c.Workers, *c.Shards)
	}
	if c.Topology() != graph.TopoER {
		t.Errorf("default topology = %q", c.Topology())
	}
	sizes, err := c.SizeList()
	if err != nil || !reflect.DeepEqual(sizes, []int{40, 50}) {
		t.Errorf("SizeList = %v, %v", sizes, err)
	}
}
