package exp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ssr"
)

// DHTWorkload is experiment E14: the application-level payoff of a
// consistent ring. A Chord-style key-value store runs over SSR anycast;
// the experiment loads it with keys, measures operation success and key
// distribution across owners, then fails a node and verifies the
// replicated store keeps answering.
func DHTWorkload(n, keys int, topo graph.Topology, seed int64) Report {
	rep := Report{ID: "E14", Title: fmt.Sprintf("DHT over SSR: %d keys on %d nodes", keys, n)}
	net := newNet(topo, n, seed)
	cl := ssr.NewCluster(net, ssr.Config{
		CacheMode: cache.Bounded, CloseRing: true, BothDirections: true,
	})
	if _, ok := cl.RunUntilConsistent(sim.Time(n) * 8192); !ok {
		rep.Notes = append(rep.Notes, "SSR BOOTSTRAP DID NOT CONVERGE")
		return rep
	}
	store := dht.NewCluster(cl, true)
	members := net.Topology().Nodes()

	puts, gets := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("object-%04d", i)
		if store.Put(members[i%len(members)], key, fmt.Sprintf("v%d", i), 30000) {
			puts++
		}
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("object-%04d", i)
		if v, ok := store.Get(members[(i*7+3)%len(members)], key, 30000); ok && v == fmt.Sprintf("v%d", i) {
			gets++
		}
	}

	// Load balance: keys per node (owners only; replicas double the total).
	var perNode []int
	for _, node := range store.Nodes {
		perNode = append(perNode, node.Len())
	}
	ls := metrics.Summarize(metrics.Ints(perNode))

	tab := metrics.NewTable("metric", "value")
	tab.AddRow("puts acknowledged", fmt.Sprintf("%d/%d", puts, keys))
	tab.AddRow("gets correct", fmt.Sprintf("%d/%d", gets, keys))
	tab.AddRow("stored copies total", store.TotalKeys())
	tab.AddRow("keys/node mean", ls.Mean)
	tab.AddRow("keys/node p90", ls.P90)
	tab.AddRow("keys/node max", ls.Max)

	// Fail one key's owner; the replica at the ring successor must answer.
	probe := "object-0000"
	owner, _ := store.Owner(probe)
	after := net.Topology().Clone()
	after.RemoveNode(owner)
	if after.Connected() {
		cl.Leave(owner)
		delete(store.Nodes, owner)
		if _, ok := cl.RunUntilConsistent(net.Engine().Now() + sim.Time(n)*8192); ok {
			// Consistency precedes garbage collection: survivors may still
			// hold routes to the dead owner for a few keepalive periods, and
			// an anycast that commits to one dies. Let the failure detector
			// finish before probing.
			net.Engine().RunUntil(net.Engine().Now()+8192, nil)
			var from ids.ID
			for v := range store.Nodes {
				from = v
				break
			}
			v, ok2 := store.Get(from, probe, 60000)
			tab.AddRow("get after owner failure", fmt.Sprintf("ok=%v value=%q", ok2, v))
		} else {
			tab.AddRow("get after owner failure", "ring did not heal")
		}
	} else {
		tab.AddRow("get after owner failure", "skipped (owner is a cut vertex)")
	}
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"ownership = ring successor of the key hash; replication to the next successor")
	return rep
}
