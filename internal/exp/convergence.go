package exp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/linearize"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// PowerLawConvergence reproduces experiment E4: LSN convergence rounds on
// power-law graphs with α = 2, swept over network sizes. The paper quotes
// Onus et al.: convergence "in less than 39 rounds" for a large power-law
// graph with α = 2.
func PowerLawConvergence(sizes []int, seeds int) Report {
	rep := Report{ID: "E4", Title: "LSN on power-law graphs (α=2): rounds to convergence"}
	tab := metrics.NewTable("n", "runs", "rounds mean", "rounds max", "converged", "paper bound")
	worstEver := 0
	for _, n := range sizes {
		var rounds []int
		conv := 0
		for s := 0; s < seeds; s++ {
			g := topoOrDie(graph.TopoPowerLaw, n, int64(1000*n+s))
			stats, _ := runLin(g, linearize.Config{
				Variant: linearize.LSN, Scheduler: sim.Synchronous, Seed: int64(s),
			})
			rounds = append(rounds, stats.Rounds)
			if stats.Converged {
				conv++
			}
			if stats.Rounds > worstEver {
				worstEver = stats.Rounds
			}
		}
		sum := metrics.Summarize(metrics.Ints(rounds))
		tab.AddRow(n, seeds, sum.Mean, int(sum.Max), fmt.Sprintf("%d/%d", conv, seeds), "< 39")
	}
	rep.Table = tab
	if worstEver < 39 {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("all runs converged in at most %d rounds — consistent with the paper's '< 39 rounds' claim", worstEver))
	} else {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("worst run needed %d rounds — EXCEEDS the paper's 39-round figure", worstEver))
	}
	return rep
}

// ConvergenceShape reproduces experiment E5: convergence rounds of the
// three variants as a function of n, with a fitted growth exponent — the
// paper's qualitative claim is pure≈linear vs memory/LSN≈polylog. Pure runs
// under the sequential daemon on an adversarial (sorted-ring-distance) line
// start would be linear; on random graphs the separation shows in the
// exponent.
func ConvergenceShape(sizes []int, topo graph.Topology, seeds int) Report {
	rep := Report{ID: "E5", Title: fmt.Sprintf("Convergence shape by variant on %s graphs", topo)}
	tab := metrics.NewTable("variant", "n", "rounds mean", "rounds max")
	exps := metrics.NewTable("variant", "growth exponent (rounds ~ n^b)")
	for _, v := range linearize.Variants() {
		var series metrics.Series
		for _, n := range sizes {
			var rounds []int
			for s := 0; s < seeds; s++ {
				g := topoOrDie(topo, n, int64(31*n+s))
				stats, _ := runLin(g, linearize.Config{
					Variant: v, Scheduler: sim.Synchronous, Seed: int64(s),
				})
				rounds = append(rounds, stats.Rounds)
			}
			sum := metrics.Summarize(metrics.Ints(rounds))
			tab.AddRow(v.String(), n, sum.Mean, int(sum.Max))
			series.Add(float64(n), sum.Mean)
		}
		if b, ok := series.GrowthExponent(); ok {
			exps.AddRow(v.String(), b)
		}
	}
	rep.Table = tab
	rep.Text = exps.String()
	rep.Notes = append(rep.Notes,
		"exponent near 0 ⇒ polylogarithmic shape; the paper expects memory/LSN well below pure")
	return rep
}

// StateSize reproduces experiment E8: per-node state of linearization with
// memory vs LSN — peak degree during the run and edges at the fixed point.
func StateSize(sizes []int, seeds int) Report {
	rep := Report{ID: "E8", Title: "Per-node state: memory vs LSN"}
	tab := metrics.NewTable("variant", "n", "peak degree", "final edges", "edges/node")
	for _, v := range []linearize.Variant{linearize.Memory, linearize.LSN} {
		for _, n := range sizes {
			var peak, final []int
			for s := 0; s < seeds; s++ {
				g := topoOrDie(graph.TopoER, n, int64(77*n+s))
				stats, _ := runLin(g, linearize.Config{
					Variant: v, Scheduler: sim.Synchronous, Seed: int64(s),
				})
				peak = append(peak, stats.PeakDegree)
				final = append(final, stats.FinalEdges)
			}
			ps := metrics.Summarize(metrics.Ints(peak))
			fs := metrics.Summarize(metrics.Ints(final))
			tab.AddRow(v.String(), n, ps.Mean, fs.Mean, fs.Mean/float64(n))
		}
	}
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"LSN bounds per-node state to O(log |space|) shortcut slots; memory does not")
	return rep
}

// SelfStabilization reproduces experiment E9 (abstract half): converge,
// perturb the line (cross chords + cut an edge, connectivity preserved),
// and measure recovery rounds — no restart, no flooding.
func SelfStabilization(n, perturbations, seeds int) Report {
	rep := Report{ID: "E9", Title: "Self-stabilization: recovery after perturbation"}
	tab := metrics.NewTable("phase", "rounds mean", "rounds max", "recovered")
	var boot, recover []int
	recovered := 0
	for s := 0; s < seeds; s++ {
		g := topoOrDie(graph.TopoER, n, int64(13*n+s))
		stats, line := runLin(g, linearize.Config{
			Variant: linearize.LSN, Scheduler: sim.Synchronous, Seed: int64(s),
		})
		boot = append(boot, stats.Rounds)
		nodes := line.Nodes()
		perturbed := line.Clone()
		for p := 0; p < perturbations; p++ {
			a := nodes[(s+3*p)%len(nodes)]
			b := nodes[(len(nodes)-1-(5*p+s))%len(nodes)]
			perturbed.AddEdge(a, b)
		}
		// Cut one line edge; the chords keep the graph connected.
		if len(nodes) > 6 && perturbed.Degree(nodes[4]) > 1 {
			perturbed.RemoveEdge(nodes[4], nodes[5])
		}
		if !perturbed.Connected() {
			continue // pathological perturbation; skip
		}
		stats2, _ := runLin(perturbed, linearize.Config{
			Variant: linearize.LSN, Scheduler: sim.Synchronous, Seed: int64(s + 1),
		})
		recover = append(recover, stats2.Rounds)
		if stats2.Converged {
			recovered++
		}
	}
	bs := metrics.Summarize(metrics.Ints(boot))
	rs := metrics.Summarize(metrics.Ints(recover))
	tab.AddRow("bootstrap", bs.Mean, int(bs.Max), fmt.Sprintf("%d/%d", seeds, seeds))
	tab.AddRow("recovery", rs.Mean, int(rs.Max), fmt.Sprintf("%d/%d", recovered, len(recover)))
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		"recovery starts from the damaged state as-is: self-stabilization needs no reset")
	return rep
}

// SchedulerAblation compares the synchronous round model against the random
// sequential daemon (a self-stabilizing algorithm must converge under any
// fair scheduler; DESIGN.md ablation).
func SchedulerAblation(n, seeds int) Report {
	rep := Report{ID: "A1", Title: "Scheduler ablation: synchronous vs random sequential"}
	tab := metrics.NewTable("variant", "scheduler", "rounds mean", "converged")
	for _, v := range linearize.Variants() {
		for _, sched := range []sim.Scheduler{sim.Synchronous, sim.RandomSequential} {
			var rounds []int
			conv := 0
			for s := 0; s < seeds; s++ {
				g := topoOrDie(graph.TopoER, n, int64(7*n+s))
				stats, _ := runLin(g, linearize.Config{
					Variant: v, Scheduler: sched, Seed: int64(s),
				})
				rounds = append(rounds, stats.Rounds)
				if stats.Converged {
					conv++
				}
			}
			sum := metrics.Summarize(metrics.Ints(rounds))
			tab.AddRow(v.String(), sched.String(), sum.Mean, fmt.Sprintf("%d/%d", conv, seeds))
		}
	}
	rep.Table = tab
	return rep
}
