package exp

// This file is the scale benchmark behind `ssrsim -mode scale` and
// `make bench-scale`: it times the sharded parallel round executor against
// its own sequential (Workers=1) schedule on large node counts, verifies
// that both modes produce the identical final virtual graph, and renders
// the result both as a Report table and as the machine-readable
// ScaleResult that results/BENCH_scale.json records.
//
// The sequential comparator is the same sharded executor at Workers=1 —
// the same schedule, so the ratio isolates the worker pool. The speedup
// criterion (2x at the largest size) is only meaningful on a machine with
// enough cores; the JSON records NumCPU and GOMAXPROCS so a one-core CI
// run is an honest "not applicable" rather than a false failure.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/graph"
	"repro/internal/linearize"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ScaleRun is one (size, variant) measurement.
type ScaleRun struct {
	N                   int     `json:"n"`
	Variant             string  `json:"variant"`
	Shards              int     `json:"shards"`
	Workers             int     `json:"workers"`
	Partition           string  `json:"partition,omitempty"`
	SeqSeconds          float64 `json:"seq_seconds"`
	ParSeconds          float64 `json:"par_seconds"`
	Speedup             float64 `json:"speedup"`
	Rounds              int     `json:"rounds"`
	Converged           bool    `json:"converged"`
	FinalEdges          int     `json:"final_edges"`
	EqualGraphs         bool    `json:"equal_graphs"`
	InteriorActivations int64   `json:"interior_activations"`
	WaveActivations     int64   `json:"wave_activations"`
	BoundaryActivations int64   `json:"boundary_activations"`
}

// ScaleCriteria is the acceptance envelope the JSON records.
type ScaleCriteria struct {
	TargetSpeedup float64 `json:"target_speedup"`
	AtN           int     `json:"at_n"`
	MinCores      int     `json:"min_cores"`
	// Met is whether any variant reached the target at AtN. Only
	// meaningful when the machine has at least MinCores cores; Note says
	// so when it does not.
	Met  bool   `json:"met"`
	Note string `json:"note,omitempty"`
}

// ScaleResult is the machine-readable scale-bench record.
type ScaleResult struct {
	Meta       benchfmt.Meta `json:"meta"`
	Bench      string        `json:"bench"`
	Topology   string        `json:"topology"`
	Seed       int64         `json:"seed"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"go_max_procs"`
	Runs       []ScaleRun    `json:"runs"`
	Criteria   ScaleCriteria `json:"criteria"`
}

// scaleRounds bounds each variant's run: the bench measures round
// throughput and equivalence, not convergence, and Pure needs Θ(n) rounds
// at these sizes. Quick mode (the CI smoke) tightens everything.
func scaleRounds(v linearize.Variant, quick bool) int {
	if quick {
		return 6
	}
	switch v {
	case linearize.Pure:
		return 16
	case linearize.Memory:
		return 48
	default:
		return 96
	}
}

// ScaleBench measures parallel vs sequential executor throughput at the
// given sizes. workers <= 0 means GOMAXPROCS; shards <= 0 auto-scales;
// partition "" means the contiguous baseline policy. The sequential
// comparator runs the same partition at Workers=1, so the speedup and the
// equivalence check isolate the worker pool under the chosen schedule.
func ScaleBench(sizes []int, topo graph.Topology, workers, shards int, partition string, seed int64, quick bool) (Report, ScaleResult) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	meta := benchfmt.NewMeta("scale")
	meta.Topology, meta.Seed, meta.Sizes = string(topo), seed, sizes
	meta.Workers, meta.Shards, meta.Quick = workers, shards, quick
	meta.Partition = partition
	res := ScaleResult{
		Meta:       meta,
		Bench:      "scale",
		Topology:   string(topo),
		Seed:       seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	rep := Report{ID: "E15", Title: fmt.Sprintf("sharded executor scale bench on %s graphs (workers=%d)", topo, workers)}
	tab := metrics.NewTable("variant", "n", "shards", "seq s", "par s", "speedup", "rounds", "converged", "equal")

	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
		g := topoOrDie(topo, n, seed)
		for _, v := range linearize.Variants() {
			cfg := linearize.Config{
				Variant:   v,
				Scheduler: sim.Synchronous,
				MaxRounds: scaleRounds(v, quick),
				CloseRing: true,
				Executor:  sim.ExecutorConfig{Shards: shards, Partition: partition},
			}
			cfg.Executor.Workers = 1
			seqStart := time.Now()
			seqStats, seqGraph := linearize.Run(g, cfg)
			seqDur := time.Since(seqStart)

			cfg.Executor.Workers = workers
			parStart := time.Now()
			parStats, parGraph := linearize.Run(g, cfg)
			parDur := time.Since(parStart)

			run := ScaleRun{
				N:                   n,
				Variant:             v.String(),
				Shards:              parStats.Par.Shards,
				Workers:             parStats.Par.Workers,
				Partition:           parStats.Par.Policy,
				SeqSeconds:          seqDur.Seconds(),
				ParSeconds:          parDur.Seconds(),
				Rounds:              parStats.Rounds,
				Converged:           parStats.Converged,
				FinalEdges:          parStats.FinalEdges,
				EqualGraphs:         parGraph.Equal(seqGraph) && parStats.Rounds == seqStats.Rounds,
				InteriorActivations: parStats.Par.InteriorActivations,
				WaveActivations:     parStats.Par.WaveActivations,
				BoundaryActivations: parStats.Par.BoundaryActivations,
			}
			if run.ParSeconds > 0 {
				run.Speedup = run.SeqSeconds / run.ParSeconds
			}
			res.Runs = append(res.Runs, run)
			tab.AddRow(run.Variant, n, run.Shards,
				fmt.Sprintf("%.3f", run.SeqSeconds), fmt.Sprintf("%.3f", run.ParSeconds),
				fmt.Sprintf("%.2fx", run.Speedup), run.Rounds, run.Converged, run.EqualGraphs)
		}
	}

	crit := ScaleCriteria{TargetSpeedup: 2.0, AtN: maxN, MinCores: 8}
	for _, r := range res.Runs {
		if r.N == maxN && r.Speedup >= crit.TargetSpeedup {
			crit.Met = true
		}
	}
	if res.NumCPU < crit.MinCores {
		crit.Note = fmt.Sprintf("criterion requires >= %d cores; this machine has %d, so the ratio mostly reflects scheduling overhead", crit.MinCores, res.NumCPU)
	}
	res.Criteria = crit
	rep.Table = tab
	for _, r := range res.Runs {
		if !r.EqualGraphs {
			rep.Notes = append(rep.Notes, fmt.Sprintf("EQUIVALENCE FAILURE: %s n=%d parallel != sequential", r.Variant, r.N))
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("num_cpu=%d gomaxprocs=%d workers=%d", res.NumCPU, res.GoMaxProcs, workers))
	if crit.Note != "" {
		rep.Notes = append(rep.Notes, crit.Note)
	}
	return rep, res
}

// WriteScaleJSON writes the scale record to path, creating the directory.
func WriteScaleJSON(path string, res ScaleResult) error {
	return writeBenchJSON(path, res)
}
