package exp

// This file is the shared CLI surface of the cmd/ experiment tools. ssrsim
// and convergence used to duplicate the flag definitions for topology,
// sizes, seeds, output format and the observability stack; BindCLI defines
// them once on the tool's FlagSet and CLI carries the accessors (size-list
// parsing, observability setup, report emission). Tool-specific flags stay
// in the tools — they bind extras on the same FlagSet before Parse.

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/sim"
)

// CLIOptions parameterize the shared flag defaults per tool.
type CLIOptions struct {
	Modes        string // help text for -mode
	DefaultMode  string
	DefaultSizes string // default for -sizes
	DefaultN     int    // default for -n
}

// CLI holds the parsed shared flags of one experiment tool.
type CLI struct {
	Mode  *string
	Topo  *string
	N     *int
	Sizes *string
	Seeds *int
	Seed  *int64
	CSV   *bool
	// Workers/Shards/Partition configure the sharded parallel round
	// executor: -workers 0 keeps the single-threaded legacy executor,
	// k >= 1 uses a pool of k goroutines; -shards 0 picks
	// sim.DefaultShards; -partition names the shard-assignment policy
	// (sim.PartitionPolicies).
	Workers   *int
	Shards    *int
	Partition *string
	// Transport selects what the bootstrap protocols run over: the raw
	// lossy network or the reliable-delivery sublayer (internal/rel).
	Transport *string

	traceFile  *string
	traceLevel *string
	pprofAddr  *string
	listenAddr *string
}

// BindCLI defines the shared flags on fs and returns their container.
// Call fs.Parse (or flag.Parse for the command-line set) afterwards.
func BindCLI(fs *flag.FlagSet, opt CLIOptions) *CLI {
	if opt.DefaultN == 0 {
		opt.DefaultN = 24
	}
	c := &CLI{
		Mode:    fs.String("mode", opt.DefaultMode, opt.Modes),
		Topo:    fs.String("topo", string(graph.TopoER), "physical topology"),
		N:       fs.Int("n", opt.DefaultN, "network size for single-size modes"),
		Sizes:   fs.String("sizes", opt.DefaultSizes, "comma-separated network sizes for sweep modes"),
		Seeds:   fs.Int("seeds", 3, "independent runs per configuration"),
		Seed:    fs.Int64("seed", 1, "seed for single-run modes"),
		CSV:     fs.Bool("csv", false, "emit the result table as CSV instead of aligned text"),
		Workers: fs.Int("workers", 0, "worker pool for the sharded round executor (0 = single-threaded legacy executor)"),
		Shards:  fs.Int("shards", 0, "shard count for the parallel executor (0 = auto-scale with n)"),
		Partition: fs.String("partition", "contiguous",
			"shard-assignment policy for the parallel executor: "+strings.Join(sim.PartitionPolicies(), " | ")),
		Transport: fs.String("transport", TransportRaw,
			"protocol transport: raw | reliable (sequence numbers, adaptive retransmission, lease failure detector)"),

		traceFile:  fs.String("trace", "", "write a JSONL event trace of the run to this file"),
		traceLevel: fs.String("trace-level", "round", "trace granularity: off | round | msg"),
		pprofAddr:  fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
		listenAddr: fs.String("listen", "", "serve live telemetry (/metrics, /healthz, /probe) on this address (e.g. :9090)"),
	}
	return c
}

// Setup wires the parsed flags into the harness: the observability stack
// (SetupObservability), the round-executor selection (SetExecutor) and the
// protocol transport (SetTransport). The returned cleanup is always
// non-nil and must run before exit to flush traces.
func (c *CLI) Setup() (func(), error) {
	if _, err := sim.NewPartitioner(*c.Partition); err != nil {
		return func() {}, err
	}
	SetExecutor(sim.ExecutorConfig{Workers: *c.Workers, Shards: *c.Shards, Partition: *c.Partition})
	if err := SetTransport(*c.Transport); err != nil {
		return func() {}, err
	}
	return SetupObservability(*c.traceFile, *c.traceLevel, *c.pprofAddr, *c.listenAddr)
}

// Topology returns the -topo flag as a graph.Topology.
func (c *CLI) Topology() graph.Topology { return graph.Topology(*c.Topo) }

// SizeList parses the -sizes flag into positive integers.
func (c *CLI) SizeList() ([]int, error) {
	return ParseSizes(*c.Sizes)
}

// ParseSizes parses a comma-separated list of positive sizes.
func ParseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// Emit prints a report as text or CSV per the -csv flag.
func (c *CLI) Emit(r Report) {
	if *c.CSV {
		fmt.Print(r.CSV())
		return
	}
	fmt.Println(r)
}
