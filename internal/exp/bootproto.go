package exp

// This file defines the unified bootstrap-protocol surface. Every
// message-level bootstrap in this reproduction — the linearization protocol
// (package ssr), ISPRP, VRR and the flood baseline — exposes the same four
// operations; Protocol names that contract so harnesses and CLIs can treat
// "which protocol" as data instead of a switch statement per call site.

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/floodboot"
	"repro/internal/graph"
	"repro/internal/isprp"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/ssr"
	"repro/internal/trace"
	"repro/internal/vrr"
)

// Protocol is a running bootstrap protocol over a physical network: it
// exposes its current virtual graph, accepts a convergence probe, can be
// driven to global consistency, and can be stopped. All four bootstrap
// implementations satisfy it.
type Protocol interface {
	// VirtualGraph snapshots the protocol's current virtual edge set E_v.
	VirtualGraph() *graph.Graph
	// AttachProbe samples the virtual graph into p every `every` engine
	// ticks until Stop; each sample is one "round" of the convergence
	// series, the bridge between the asynchronous protocols and the
	// round-model probes.
	AttachProbe(p *trace.Probe, every sim.Time)
	// RunUntilConsistent drives the simulation until global consistency or
	// the deadline, returning the reached time and whether it converged.
	RunUntilConsistent(deadline sim.Time) (sim.Time, bool)
	// Stop halts periodic activity and attached probes.
	Stop()
}

// protocolRegistry maps the CLI protocol names onto constructors. The
// configurations match what the experiments use as each protocol's
// representative setting: linearization with the bounded cache, ISPRP with
// its representative flood enabled, VRR and floodboot with defaults.
var protocolRegistry = map[string]func(net phys.Transport) Protocol{
	"linearization": func(net phys.Transport) Protocol {
		return ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded})
	},
	"isprp": func(net phys.Transport) Protocol {
		return isprp.NewCluster(net, isprp.Config{EnableFlood: true})
	},
	"vrr": func(net phys.Transport) Protocol {
		return vrr.NewCluster(net, vrr.Config{CloseRing: true})
	},
	"flood": func(net phys.Transport) Protocol {
		return floodboot.NewCluster(net)
	},
}

// ProtocolNames lists the registered bootstrap protocols, sorted.
func ProtocolNames() []string {
	out := make([]string, 0, len(protocolRegistry))
	for name := range protocolRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewBootProtocol starts the named bootstrap protocol over net — either a
// raw *phys.Network or the reliable sublayer wrapping one.
func NewBootProtocol(name string, net phys.Transport) (Protocol, error) {
	mk, ok := protocolRegistry[name]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (want one of %v)", name, ProtocolNames())
	}
	return mk(net), nil
}
