package exp

// Shared writer for the BENCH_*.json artifacts: every bench record goes
// through one path so the on-disk shape (indentation, trailing newline,
// directory creation) stays uniform for tooling like `tracectl bench
// compare`.

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// writeBenchJSON writes a bench record to path, creating the directory.
func writeBenchJSON(path string, res any) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
