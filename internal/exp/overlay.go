package exp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/chord"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ssr"
)

// OverlayVsUnderlay is experiment E13: the comparison that motivates the
// entire SSR line of work ("pushing Chord into the underlay"). A classic
// Chord overlay resolves keys in O(log n) overlay hops, but each overlay
// hop is an end-to-end message that the physical network must carry along a
// full multi-hop path. SSR routes the same requests natively in the
// underlay. Both systems run over the same physical topology and the same
// node identifiers; both are charged physical transmissions.
func OverlayVsUnderlay(n int, topo graph.Topology, pairs int, seed int64) Report {
	rep := Report{ID: "E13", Title: fmt.Sprintf("Chord overlay vs SSR underlay on %s (n=%d)", topo, n)}
	net := newNet(topo, n, seed)
	phys := net.Topology()
	members := phys.Nodes()

	// --- SSR: bootstrap, then route. ---
	cl := ssr.NewCluster(net, ssr.Config{
		CacheMode: cache.Bounded, CloseRing: true, BothDirections: true,
	})
	_, ok := cl.RunUntilConsistent(sim.Time(n) * 8192)
	if !ok {
		rep.Notes = append(rep.Notes, "SSR BOOTSTRAP DID NOT CONVERGE")
	}
	cl.Stop()

	// --- Chord: same members, idealized IP underneath. ---
	ring, err := chord.NewRing(members)
	if err != nil {
		rep.Notes = append(rep.Notes, "chord bootstrap failed: "+err.Error())
		return rep
	}
	if err := ring.Correct(); err != nil {
		rep.Notes = append(rep.Notes, "chord ring incorrect: "+err.Error())
	}

	var ssrHops, chordPhys, chordOverlay []int
	var ssrStretch, chordStretch []float64
	count := 0
	for i := 0; i < len(members) && count < pairs; i++ {
		for j := 0; j < len(members) && count < pairs; j++ {
			if i == j {
				continue
			}
			src, dst := members[i], members[j]
			direct := phys.ShortestPath(src, dst)
			if direct == nil {
				continue
			}
			directHops := len(direct) - 1
			count++

			// SSR underlay routing.
			r := cl.RouteData(src, dst, 8192)
			if r.Delivered {
				ssrHops = append(ssrHops, r.Hops)
				if directHops > 0 {
					ssrStretch = append(ssrStretch, float64(r.Hops)/float64(directHops))
				}
			}

			// Chord overlay lookup for the key dst, then charge each overlay
			// hop its physical shortest-path length (the IP abstraction).
			owner, path := ring.Lookup(src, dst)
			full := append(append([]ids.ID{}, path...), owner)
			physHops := 0
			for k := 0; k+1 < len(full); k++ {
				if full[k] == full[k+1] {
					continue
				}
				sp := phys.ShortestPath(full[k], full[k+1])
				if sp != nil {
					physHops += len(sp) - 1
				}
			}
			chordOverlay = append(chordOverlay, len(full)-1)
			chordPhys = append(chordPhys, physHops)
			if directHops > 0 {
				chordStretch = append(chordStretch, float64(physHops)/float64(directHops))
			}
		}
	}

	tab := metrics.NewTable("system", "overlay hops mean", "physical hops mean", "stretch mean", "stretch p90")
	co := metrics.Summarize(metrics.Ints(chordOverlay))
	cp := metrics.Summarize(metrics.Ints(chordPhys))
	cs := metrics.Summarize(chordStretch)
	sh := metrics.Summarize(metrics.Ints(ssrHops))
	ss := metrics.Summarize(ssrStretch)
	tab.AddRow("chord overlay", co.Mean, cp.Mean, cs.Mean, cs.P90)
	tab.AddRow("ssr underlay", 1.0, sh.Mean, ss.Mean, ss.P90)
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d pairs; SSR delivered %d/%d", count, len(ssrHops), count),
		"chord is charged shortest-path transport per overlay hop — the best case for an overlay")
	return rep
}
