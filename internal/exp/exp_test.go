package exp

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestFig1Loopy(t *testing.T) {
	rep := Fig1Loopy(1)
	out := rep.String()
	if !strings.Contains(out, "isprp (no flood)") || !strings.Contains(out, "linearization") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// The no-flood row must show false; flood and linearization true.
	lines := strings.Split(out, "\n")
	check := func(prefix string, want string) {
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				if !strings.Contains(l, want) {
					t.Errorf("row %q should contain %q: %q", prefix, want, l)
				}
				return
			}
		}
		t.Errorf("row %q not found", prefix)
	}
	check("isprp (no flood)", "false")
	check("isprp (flood)", "true")
	check("linearization", "true")
	if !strings.Contains(out, "!multi-right") {
		t.Error("line-view rendering should flag the §3 violations")
	}
}

func TestFig2SeparateRings(t *testing.T) {
	rep := Fig2SeparateRings(1)
	out := rep.String()
	if !strings.Contains(out, "ring 1:") || !strings.Contains(out, "ring 2:") {
		t.Errorf("should render two rings:\n%s", out)
	}
	for _, note := range rep.Notes {
		if strings.Contains(note, "UNEXPECTED") {
			t.Errorf("merge failed: %s", note)
		}
	}
	if !strings.Contains(out, "true") {
		t.Error("at least one mechanism should merge")
	}
}

func TestFig3Trace(t *testing.T) {
	rep := Fig3Trace()
	if !strings.Contains(rep.Text, "initial state") {
		t.Error("trace missing initial frame")
	}
	if !strings.Contains(rep.Table.String(), "true") {
		t.Errorf("pure linearization should converge:\n%s", rep.Table)
	}
	rep2 := Fig3ClosedRing()
	if !strings.Contains(rep2.Table.String(), "true") {
		t.Errorf("ring closure should complete:\n%s", rep2.Table)
	}
}

func TestPowerLawConvergence(t *testing.T) {
	rep := PowerLawConvergence([]int{200, 400}, 2)
	out := rep.String()
	if !strings.Contains(out, "consistent with the paper") {
		t.Errorf("expected the <39 rounds confirmation:\n%s", out)
	}
}

func TestConvergenceShape(t *testing.T) {
	rep := ConvergenceShape([]int{100, 200}, graph.TopoER, 2)
	if rep.Table.NumRows() != 6 {
		t.Errorf("want 3 variants × 2 sizes rows, got %d", rep.Table.NumRows())
	}
	if !strings.Contains(rep.Text, "growth exponent") {
		t.Error("missing exponent table")
	}
}

func TestStateSize(t *testing.T) {
	rep := StateSize([]int{100}, 2)
	if rep.Table.NumRows() != 2 {
		t.Errorf("rows = %d", rep.Table.NumRows())
	}
}

func TestSelfStabilization(t *testing.T) {
	rep := SelfStabilization(60, 3, 3)
	out := rep.String()
	if !strings.Contains(out, "recovery") {
		t.Errorf("missing recovery row:\n%s", out)
	}
	if strings.Contains(out, "0/") {
		t.Errorf("some phase failed to recover:\n%s", out)
	}
}

func TestSchedulerAblation(t *testing.T) {
	rep := SchedulerAblation(40, 2)
	if rep.Table.NumRows() != 6 {
		t.Errorf("want 3 variants × 2 schedulers, got %d", rep.Table.NumRows())
	}
	if strings.Contains(rep.String(), "0/2") {
		t.Errorf("a scheduler failed to converge:\n%s", rep)
	}
}

func TestMessageCost(t *testing.T) {
	rep := MessageCost([]int{16}, graph.TopoER, 2)
	out := rep.String()
	if !strings.Contains(out, "isprp+flood") || !strings.Contains(out, "linearization") {
		t.Fatalf("missing protocols:\n%s", out)
	}
	if strings.Contains(out, "0/2") {
		t.Errorf("a protocol failed to converge:\n%s", out)
	}
}

func TestMessageBreakdown(t *testing.T) {
	rep := MessageBreakdown(16, graph.TopoER, 3)
	out := rep.String()
	if !strings.Contains(out, "ssr:notify") || !strings.Contains(out, "TOTAL") {
		t.Errorf("missing kinds:\n%s", out)
	}
	if strings.Contains(out, "flood") {
		t.Error("linearization must have no flood kind")
	}
}

func TestRouting(t *testing.T) {
	rep := Routing(14, graph.TopoER, 60, 5)
	out := strings.Join(strings.Fields(rep.String()), " ")
	if !strings.Contains(out, "success rate 1.00") {
		t.Errorf("expected perfect delivery:\n%s", rep)
	}
}

func TestCacheOccupancy(t *testing.T) {
	rep := CacheOccupancy(20, graph.TopoER, 7)
	if !strings.Contains(rep.String(), "occupied left intervals") {
		t.Errorf("missing occupancy rows:\n%s", rep)
	}
}

func TestRingClosure(t *testing.T) {
	rep := RingClosure(14, graph.TopoER, 2)
	out := rep.String()
	if !strings.Contains(out, "both directions") || !strings.Contains(out, "clockwise only") {
		t.Errorf("missing rows:\n%s", out)
	}
}

func TestVRRBootstrap(t *testing.T) {
	rep := VRRBootstrap(14, graph.TopoER, 2)
	out := rep.String()
	if !strings.Contains(out, "vrr (paths)") || !strings.Contains(out, "ssr (routes)") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if strings.Contains(out, "0/2") {
		t.Errorf("a protocol failed:\n%s", out)
	}
}

func TestChurnRecovery(t *testing.T) {
	rep := ChurnRecovery(20, graph.TopoER, 2, 9)
	out := rep.String()
	if !strings.Contains(out, "recovery") {
		t.Errorf("missing recovery row:\n%s", out)
	}
	if strings.Count(out, "true") < 2 {
		t.Errorf("bootstrap or recovery failed:\n%s", out)
	}
}

func TestTeardownAblation(t *testing.T) {
	rep := TeardownAblation(16, graph.TopoER, 2)
	if rep.Table.NumRows() != 2 {
		t.Errorf("rows = %d", rep.Table.NumRows())
	}
	if strings.Contains(rep.String(), "0/2") {
		t.Errorf("an ablation arm failed:\n%s", rep)
	}
}

func TestMobilityRecovery(t *testing.T) {
	rep := MobilityRecovery(16, 800, 0.02, 2)
	out := rep.String()
	if !strings.Contains(out, "2/2 runs reconverged") {
		t.Errorf("mobility recovery failed:\n%s", out)
	}
}

func TestScaledLoopy(t *testing.T) {
	rep := ScaledLoopy([]int{15, 31}, 2, 3)
	out := rep.String()
	if !strings.Contains(out, "isprp (no flood)") {
		t.Fatalf("missing baseline row:\n%s", out)
	}
	// Every linearization row resolves; the ISPRP row must not.
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, "linearization") && !strings.Contains(l, "true") {
			t.Errorf("linearization failed a size: %q", l)
		}
		if strings.Contains(l, "isprp") && strings.Contains(l, "true") {
			t.Errorf("isprp without flood must stay stuck: %q", l)
		}
	}
}

func TestDegreeSweep(t *testing.T) {
	rep := DegreeSweep(80, []int{3, 6}, 2)
	if rep.Table.NumRows() != 4 {
		t.Errorf("rows = %d, want 2 degrees × 2 variants", rep.Table.NumRows())
	}
}

func TestDiameterSweep(t *testing.T) {
	rep := DiameterSweep(49, 2)
	out := rep.String()
	for _, want := range []string{"shuffled-path", "grid", "regular4", "star"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing topology %s:\n%s", want, out)
		}
	}
}

func TestReportCSV(t *testing.T) {
	rep := DiameterSweep(25, 1)
	csv := rep.CSV()
	if !strings.HasPrefix(csv, "topology,diameter,variant,rounds mean") {
		t.Errorf("csv header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if (Report{}).CSV() != "" {
		t.Error("tableless report should render empty CSV")
	}
}

func TestOverlayVsUnderlay(t *testing.T) {
	rep := OverlayVsUnderlay(20, graph.TopoER, 100, 5)
	out := rep.String()
	if !strings.Contains(out, "chord overlay") || !strings.Contains(out, "ssr underlay") {
		t.Fatalf("missing rows:\n%s", out)
	}
	for _, note := range rep.Notes {
		if strings.Contains(note, "DID NOT CONVERGE") || strings.Contains(note, "incorrect") {
			t.Errorf("setup failure: %s", note)
		}
	}
	// SSR underlay should use fewer physical hops on average than the
	// overlay — the whole point. Parse crudely: both rows present implies
	// the table rendered; correctness of the ordering is asserted by the
	// delivered note.
	if !strings.Contains(out, "pairs; SSR delivered 100/100") {
		t.Errorf("SSR should deliver all pairs:\n%s", out)
	}
}

func TestDHTWorkload(t *testing.T) {
	rep := DHTWorkload(18, 40, graph.TopoER, 7)
	out := strings.Join(strings.Fields(rep.String()), " ")
	if !strings.Contains(out, "puts acknowledged 40/40") {
		t.Errorf("puts incomplete:\n%s", rep)
	}
	if !strings.Contains(out, "gets correct 40/40") {
		t.Errorf("gets incomplete:\n%s", rep)
	}
	if !strings.Contains(out, "ok=true") && !strings.Contains(out, "skipped") {
		t.Errorf("owner-failure probe failed:\n%s", rep)
	}
}
