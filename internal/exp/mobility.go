package exp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/isprp"
	"repro/internal/metrics"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
	"repro/internal/ssr"
	"repro/internal/vring"
)

// MobilityRecovery is experiment E12 (an extension in the spirit of §5's
// future work): a wireless unit-disk network under random-waypoint
// mobility. The ring is bootstrapped once; mobility then rewires the
// physical graph while SSR keeps running; after motion stops the protocol
// must re-converge — self-stabilization under realistic MANET churn.
func MobilityRecovery(n int, motionTicks int64, speed float64, seeds int) Report {
	rep := Report{ID: "E12", Title: "SSR under random-waypoint mobility"}
	tab := metrics.NewTable("seed", "link changes", "reconverged", "recovery time")
	recovered := 0
	for s := 0; s < seeds; s++ {
		eng := sim.NewEngine(int64(977*n + s))
		nodes := graph.MakeIDs(n, graph.RandomIDs, eng.Rand())
		radius := 0.42
		topo, pos := graph.UnitDisk(nodes, radius, eng.Rand())
		net := phys.NewNetwork(eng, topo)
		cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded})
		if _, ok := cl.RunUntilConsistent(sim.Time(n) * 8192); !ok {
			tab.AddRow(s, "-", "bootstrap failed", "-")
			continue
		}
		mob := phys.NewMobility(net, pos, radius)
		mob.Speed = speed
		mob.Start()
		eng.RunUntil(eng.Now()+sim.Time(motionTicks), nil)
		mob.Stop()
		motionEnd := eng.Now()
		at, ok := cl.RunUntilConsistent(motionEnd + sim.Time(n)*8192)
		cl.Stop()
		if ok {
			recovered++
		}
		tab.AddRow(s, mob.LinkChanges(), ok, int64(at-motionEnd))
	}
	rep.Table = tab
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d/%d runs reconverged after %d ticks of motion", recovered, seeds, motionTicks),
		"physical connectivity is maintained by the mobility model (min-connectivity deployment)")
	return rep
}

// ScaledLoopy extends E1 to larger loopy states: LoopyState(nodes, k) winds
// k times around the identifier space, is ISPRP-locally consistent for any
// size, and linearization must straighten all of them without flooding.
func ScaledLoopy(sizes []int, step int, seed int64) Report {
	rep := Report{ID: "E1b", Title: fmt.Sprintf("Scaled loopy states (winding %d)", step)}
	tab := metrics.NewTable("n", "mechanism", "resolved", "time", "messages")
	for _, n := range sizes {
		eng := sim.NewEngine(seed + int64(n))
		nodes := graph.MakeIDs(n, graph.RandomIDs, eng.Rand())
		loopy := vring.LoopyState(nodes, step)
		topo := loopy.ToGraph()

		// Linearization.
		net := phys.NewNetwork(sim.NewEngine(seed), topo)
		cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded})
		at, ok := cl.RunUntilConsistent(sim.Time(n) * 8192)
		cl.Stop()
		tab.AddRow(n, "linearization", ok, int64(at), net.Counters().Total())

		// ISPRP without flood stays stuck (sampled at the smallest size to
		// keep the run cheap; the state is locally consistent by
		// construction at every size).
		if n == sizes[0] {
			net2 := phys.NewNetwork(sim.NewEngine(seed), topo)
			icl := &isprp.Cluster{Net: net2, Nodes: make(map[ids.ID]*isprp.Node)}
			for _, v := range topo.Nodes() {
				icl.Nodes[v] = isprp.NewNode(net2, v, isprp.Config{EnableFlood: false})
			}
			for v, nd := range icl.Nodes {
				if r, err := sroute.New(v, loopy[v]); err == nil {
					nd.SetSuccessor(r)
				}
				nd.Start(sim.Time(int64(v) % 8))
			}
			at2, ok2 := icl.RunUntilConsistent(40000)
			icl.Stop()
			tab.AddRow(n, "isprp (no flood)", ok2, int64(at2), net2.Counters().Total())
		}
	}
	rep.Table = tab
	return rep
}
