// Package exp implements the paper's experiments: each function reproduces
// one figure or quantitative claim (see DESIGN.md's per-experiment index)
// and returns a Report with the same rows/series the paper's evaluation
// would print. The cmd/ tools and the root benchmark suite are thin
// wrappers around this package.
package exp

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/linearize"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tracer, when set via EnableTracing, is attached to every network, engine
// and linearization run the harnesses create, so the cmd/ tools' -trace
// flag sees the whole stack without threading a handle through every
// experiment signature.
var tracer trace.Tracer

// EnableTracing installs the harness-wide tracer (nil disables). Callers
// own level filtering: pass trace.WithLevel(sink, level).
func EnableTracing(tr trace.Tracer) { tracer = tr }

// Transport names for SetTransport / the -transport flag.
const (
	TransportRaw      = "raw"
	TransportReliable = "reliable"
)

// transportName, when set via SetTransport, wraps every network the
// protocol harnesses create in the reliable-delivery sublayer
// (internal/rel) — the same harness-wide pattern as the tracer, so the
// cmd/ tools' -transport flag reaches every bootstrap run.
var transportName = TransportRaw

// SetTransport selects the harness-wide transport: "raw" (or "") keeps
// protocols directly on the lossy physical network, "reliable" interposes
// the retransmitting sublayer.
func SetTransport(name string) error {
	switch name {
	case "", TransportRaw:
		transportName = TransportRaw
	case TransportReliable:
		transportName = TransportReliable
	default:
		return fmt.Errorf("unknown transport %q (want %s or %s)", name, TransportRaw, TransportReliable)
	}
	return nil
}

// defaultExec, when set via SetExecutor, selects the sharded parallel
// round executor (pool width, partition size, partition policy) for every
// linearization run the harnesses create — the same harness-wide pattern
// as the tracer, so the cmd/ tools' -workers/-shards/-partition flags
// reach every experiment.
var defaultExec sim.ExecutorConfig

// SetExecutor installs the harness-wide round-executor configuration
// (Workers 0 restores the single-threaded legacy executor). Experiments
// that configure an executor themselves are left alone.
func SetExecutor(cfg sim.ExecutorConfig) {
	defaultExec = cfg
}

// runLin runs one linearization experiment with the harness tracer and
// executor configuration attached.
func runLin(g *graph.Graph, cfg linearize.Config) (linearize.Stats, *graph.Graph) {
	cfg.Tracer = tracer
	if cfg.Workers == 0 && cfg.Executor == (sim.ExecutorConfig{}) {
		cfg.Executor = defaultExec
	}
	return linearize.Run(g, cfg)
}

// Report is one experiment's rendered outcome.
type Report struct {
	ID    string // experiment id, e.g. "E4"
	Title string
	Table *metrics.Table
	Notes []string
	Text  string // free-form rendered content (traces, figures)
}

// CSV renders the report's table as comma-separated values (empty when the
// report has no table).
func (r Report) CSV() string {
	if r.Table == nil {
		return ""
	}
	return r.Table.CSV()
}

// String renders the report for terminals and logs.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
