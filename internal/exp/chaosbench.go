package exp

// This file is the chaos benchmark behind `ssrsim -mode chaos` and
// `make bench-chaos`: it replays the committed chaos scenario suite
// (internal/chaos.Suite) over every registered bootstrap protocol,
// runs the online invariant checker throughout, and records
// time-to-reconverge and message overhead per (scenario, protocol) in
// results/BENCH_chaos.json.
//
// Fairness hinges on determinism: each scenario is compiled once per
// (topology, seed) with the schedule's own RNG, so all four protocols
// face the byte-identical fault sequence; only the protocol under test
// differs between runs. The "calm" scenario is the fault-free reference —
// a protocol's message overhead under a fault is its post-warmup frame
// count minus its own calm-run count, which nets out keepalive baselines.

import (
	"fmt"

	"repro/internal/benchfmt"
	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ChaosRun is one (scenario, protocol) measurement: the runner's record
// plus the overhead relative to the same protocol's calm run.
type ChaosRun struct {
	chaos.Result
	// OverheadFrames is FaultPhaseFrames minus the protocol's calm-run
	// FaultPhaseFrames: the extra messages the faults cost. Zero for the
	// calm runs themselves.
	OverheadFrames int64 `json:"overhead_frames"`
}

// ChaosCriteria is the acceptance envelope the JSON records: every run
// reconverges after its final fault and no invariant check fails.
type ChaosCriteria struct {
	ZeroViolations bool `json:"zero_violations"`
	AllReconverged bool `json:"all_reconverged"`
	Met            bool `json:"met"`
}

// ChaosResult is the machine-readable chaos-bench record.
type ChaosResult struct {
	Meta      benchfmt.Meta `json:"meta"`
	Bench     string        `json:"bench"`
	Topology  string        `json:"topology"`
	N         int           `json:"n"`
	Seed      int64         `json:"seed"`
	Scenarios []string      `json:"scenarios"`
	Protocols []string      `json:"protocols"`
	Runs      []ChaosRun    `json:"runs"`
	Criteria  ChaosCriteria `json:"criteria"`
}

// chaosScenarios picks the suite for a run; quick mode keeps one fault
// per family out (calm, loss, churn) for the CI smoke.
func chaosScenarios(quick bool) []chaos.Scenario {
	all := chaos.Suite()
	if !quick {
		return all
	}
	var out []chaos.Scenario
	for _, s := range all {
		switch s.Name {
		case "calm", "loss-burst", "churn":
			out = append(out, s)
		}
	}
	return out
}

// ChaosBench replays the scenario suite over every registered protocol.
func ChaosBench(n int, topo graph.Topology, seed int64, quick bool) (Report, ChaosResult, error) {
	scenarios := chaosScenarios(quick)
	protos := ProtocolNames()
	meta := benchfmt.NewMeta("chaos")
	meta.Topology, meta.Seed, meta.N = string(topo), seed, n
	meta.Transport, meta.Quick = transportName, quick
	res := ChaosResult{
		Meta:  meta,
		Bench: "chaos", Topology: string(topo), N: n, Seed: seed,
		Protocols: protos,
	}
	for _, s := range scenarios {
		res.Scenarios = append(res.Scenarios, s.Name)
	}
	rep := Report{ID: "E16", Title: fmt.Sprintf("chaos suite on %s graphs, n=%d seed=%d", topo, n, seed)}
	tab := metrics.NewTable("scenario", "protocol", "warmup ok", "reconverged", "reconv time", "frames", "overhead", "drops", "checks", "violations")

	// Compile every schedule once against the shared topology: the same
	// Schedule object drives all four protocols.
	baseTopo := topoOrDie(topo, n, seed)
	scheds := make([]*chaos.Schedule, len(scenarios))
	for i, scn := range scenarios {
		sched, err := chaos.Compile(scn, baseTopo, seed)
		if err != nil {
			return Report{}, ChaosResult{}, fmt.Errorf("compile %s: %w", scn.Name, err)
		}
		scheds[i] = sched
	}

	calmFrames := make(map[string]int64) // protocol -> calm FaultPhaseFrames
	allConverged, totalViolations := true, 0
	for i, scn := range scenarios {
		for _, name := range protos {
			net, tr := newTransportNet(topo, n, seed)
			proto, err := NewBootProtocol(name, tr)
			if err != nil {
				return Report{}, ChaosResult{}, err
			}
			if tracer != nil {
				probe := &trace.Probe{Tracer: tracer}
				proto.AttachProbe(probe, 16)
			}
			r := chaos.Run(scn, scheds[i], net, proto, chaos.RunConfig{})
			run := ChaosRun{Result: r}
			run.Protocol = name
			if scn.Name == "calm" {
				calmFrames[name] = r.FaultPhaseFrames
			} else {
				run.OverheadFrames = r.FaultPhaseFrames - calmFrames[name]
			}
			res.Runs = append(res.Runs, run)
			if !r.Converged {
				allConverged = false
			}
			totalViolations += len(r.Violations)

			drops := int64(0)
			for _, c := range r.Drops {
				drops += c
			}
			reconv := "-"
			if r.Converged {
				reconv = fmt.Sprintf("%d", int64(r.ReconvergeTime))
			}
			tab.AddRow(scn.Name, name, r.WarmupOK, r.Converged, reconv,
				r.TotalFrames, run.OverheadFrames, drops, r.Checks, len(r.Violations))
		}
	}

	res.Criteria = ChaosCriteria{
		ZeroViolations: totalViolations == 0,
		AllReconverged: allConverged,
		Met:            totalViolations == 0 && allConverged,
	}
	rep.Table = tab
	if !res.Criteria.Met {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"CRITERIA NOT MET: %d invariant violations, all reconverged=%v",
			totalViolations, allConverged))
	}
	deadline := sim.Time(n) * 4096
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%d scenarios x %d protocols, shared per-scenario schedules, reconvergence deadline %d",
		len(scenarios), len(protos), int64(deadline)))
	return rep, res, nil
}

// WriteChaosJSON writes the chaos record to path, creating the directory.
func WriteChaosJSON(path string, res ChaosResult) error {
	return writeBenchJSON(path, res)
}
