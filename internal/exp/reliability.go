package exp

// This file is the reliability benchmark behind `ssrsim -mode reliability`
// and `make bench-reliability`: cold-start bootstrap under sustained frame
// loss, raw network vs the reliable-delivery sublayer (internal/rel),
// across every registered bootstrap protocol.
//
// Each run replays the same cold-start scenario — a loss burst live from
// t=0, before a single protocol frame has flown, through the warmup and
// beyond — via the chaos runner, so the online invariant checker watches
// every run and the Result carries FirstConsistentAt, the cold-start
// convergence metric. The raw arm is the control: it quantifies what the
// sublayer costs (retransmissions, ACKs, heartbeats) and what it buys
// (convergence where the raw protocols stall or fail outright).

import (
	"fmt"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rel"
	"repro/internal/sim"
)

// reliabilityLosses is the swept loss grid in percent.
var reliabilityLosses = []int{0, 5, 15, 30}

// ReliabilityRun is one (loss, protocol, transport) measurement.
type ReliabilityRun struct {
	Protocol  string `json:"protocol"`
	Transport string `json:"transport"`
	LossPct   int    `json:"loss_pct"`

	Converged         bool     `json:"converged"`
	FirstConsistentAt sim.Time `json:"first_consistent_at"` // -1: never
	ConvergedAt       sim.Time `json:"converged_at"`
	TotalFrames       int64    `json:"total_frames"`
	LossDrops         int64    `json:"loss_drops"`
	Violations        int      `json:"violations"`

	// Sublayer ledger, zero on the raw arm.
	Retransmits int64 `json:"retransmits,omitempty"`
	Abandons    int64 `json:"abandons,omitempty"`
	Duplicates  int64 `json:"duplicates,omitempty"`
	AcksSent    int64 `json:"acks_sent,omitempty"`
	Heartbeats  int64 `json:"heartbeats,omitempty"`

	// OverheadFrames is this reliable run's TotalFrames minus the raw run's
	// at the same (protocol, loss): the physical price of reliability.
	// Zero on the raw arm.
	OverheadFrames int64 `json:"overhead_frames,omitempty"`
}

// ReliabilityCriteria is the acceptance envelope: every reliable-transport
// run converges from cold start — including under the heaviest loss — with
// zero invariant violations.
type ReliabilityCriteria struct {
	ReliableAllConverged bool `json:"reliable_all_converged"`
	ZeroViolations       bool `json:"zero_violations"` // across reliable runs
	Met                  bool `json:"met"`
}

// ReliabilityResult is the machine-readable record behind
// results/BENCH_reliability.json.
type ReliabilityResult struct {
	Meta      benchfmt.Meta       `json:"meta"`
	Bench     string              `json:"bench"`
	Topology  string              `json:"topology"`
	N         int                 `json:"n"`
	Seed      int64               `json:"seed"`
	LossPcts  []int               `json:"loss_pcts"`
	Protocols []string            `json:"protocols"`
	Runs      []ReliabilityRun    `json:"runs"`
	Criteria  ReliabilityCriteria `json:"criteria"`
}

// coldStartScenario builds the per-loss scenario: loss live from t=0
// through twice the warmup, so the entire bootstrap happens under fire.
// The scenario declares the reliable transport — that is what lifts the
// compile-time warmup restriction; replaying it over the raw network is
// the controlled "without the sublayer" arm of the comparison.
func coldStartScenario(pct int) chaos.Scenario {
	const warmup, settle = sim.Time(2048), sim.Time(1024)
	scn := chaos.Scenario{
		Name:      fmt.Sprintf("cold-loss-%02d", pct),
		Warmup:    warmup,
		Settle:    settle,
		Transport: chaos.TransportReliable,
	}
	if pct > 0 {
		scn.Faults = []chaos.FaultSpec{{
			Kind: chaos.LossBurst, Start: 0, Duration: 2 * warmup,
			Prob: float64(pct) / 100,
		}}
	}
	return scn
}

// ReliabilityBench sweeps the loss grid over every registered protocol on
// both transports. Quick mode keeps only the 15% point and the reliable
// arm — the CI smoke that proves cold-start convergence under loss without
// waiting out the raw arms' full non-convergence deadlines.
func ReliabilityBench(n int, topo graph.Topology, seed int64, quick bool) (Report, ReliabilityResult, error) {
	losses := reliabilityLosses
	transports := []string{TransportRaw, TransportReliable}
	if quick {
		losses = []int{15}
		transports = []string{TransportReliable}
	}
	protos := ProtocolNames()
	meta := benchfmt.NewMeta("reliability")
	meta.Topology, meta.Seed, meta.N = string(topo), seed, n
	meta.Transport, meta.Quick = strings.Join(transports, "+"), quick
	res := ReliabilityResult{
		Meta:  meta,
		Bench: "reliability", Topology: string(topo), N: n, Seed: seed,
		LossPcts: losses, Protocols: protos,
	}
	rep := Report{ID: "E17", Title: fmt.Sprintf("cold-start bootstrap under loss, raw vs reliable transport, n=%d on %s seed=%d", n, topo, seed)}
	tab := metrics.NewTable("loss", "protocol", "transport", "converged", "first consistent", "frames", "retransmits", "abandons", "overhead", "violations")

	baseTopo := topoOrDie(topo, n, seed)
	relConverged, relViolations := true, 0
	for _, pct := range losses {
		scn := coldStartScenario(pct)
		sched, err := chaos.Compile(scn, baseTopo, seed)
		if err != nil {
			return Report{}, ReliabilityResult{}, fmt.Errorf("compile %s: %w", scn.Name, err)
		}
		rawFrames := make(map[string]int64) // protocol -> raw-arm TotalFrames
		for _, transport := range transports {
			for _, name := range protos {
				raw := newNet(topo, n, seed)
				var rn *rel.Network
				run := ReliabilityRun{Protocol: name, Transport: transport, LossPct: pct}
				var proto Protocol
				if transport == TransportReliable {
					rn = rel.New(raw, rel.DefaultConfig())
					proto, err = NewBootProtocol(name, rn)
				} else {
					proto, err = NewBootProtocol(name, raw)
				}
				if err != nil {
					return Report{}, ReliabilityResult{}, err
				}
				r := chaos.Run(scn, sched, raw, proto, chaos.RunConfig{})
				run.Converged = r.Converged
				run.FirstConsistentAt = r.FirstConsistentAt
				run.ConvergedAt = r.ConvergedAt
				run.TotalFrames = r.TotalFrames
				run.LossDrops = r.Drops["loss"]
				run.Violations = len(r.Violations)
				if rn != nil {
					st := rn.Stats()
					run.Retransmits = st.Retransmits
					run.Abandons = st.Abandons
					run.Duplicates = st.Duplicates
					run.AcksSent = st.AcksSent
					run.Heartbeats = st.Heartbeats
					if base, ok := rawFrames[name]; ok {
						run.OverheadFrames = run.TotalFrames - base
					}
					relConverged = relConverged && r.Converged
					relViolations += len(r.Violations)
				} else {
					rawFrames[name] = run.TotalFrames
				}
				res.Runs = append(res.Runs, run)

				first := "-"
				if run.FirstConsistentAt >= 0 {
					first = fmt.Sprintf("%d", int64(run.FirstConsistentAt))
				}
				tab.AddRow(fmt.Sprintf("%d%%", pct), name, transport, run.Converged,
					first, run.TotalFrames, run.Retransmits, run.Abandons,
					run.OverheadFrames, run.Violations)
			}
		}
	}

	res.Criteria = ReliabilityCriteria{
		ReliableAllConverged: relConverged,
		ZeroViolations:       relViolations == 0,
		Met:                  relConverged && relViolations == 0,
	}
	rep.Table = tab
	if !res.Criteria.Met {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"CRITERIA NOT MET: reliable all converged=%v, reliable violations=%d",
			relConverged, relViolations))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"loss active from t=0 through t=%d; first-consistent is the cold-start convergence instant",
		int64(2*sim.Time(2048))))
	return rep, res, nil
}

// WriteReliabilityJSON writes the record to path, creating the directory.
func WriteReliabilityJSON(path string, res ReliabilityResult) error {
	return writeBenchJSON(path, res)
}
