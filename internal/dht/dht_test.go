package dht

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/ssr"
)

func bootstrappedDHT(t *testing.T, n int, seed int64, replicate bool) (*phys.Network, *Cluster) {
	t.Helper()
	topo, err := graph.Generate(graph.TopoER, n, graph.RandomIDs, seed)
	if err != nil {
		t.Fatal(err)
	}
	net := phys.NewNetwork(sim.NewEngine(seed), topo)
	cl := ssr.NewCluster(net, ssr.Config{
		CacheMode: cache.Bounded, CloseRing: true, BothDirections: true,
	})
	if _, ok := cl.RunUntilConsistent(sim.Time(n) * 8192); !ok {
		t.Fatal("SSR bootstrap failed")
	}
	return net, NewCluster(cl, replicate)
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey("alpha") != HashKey("alpha") {
		t.Error("hash must be deterministic")
	}
	if HashKey("alpha") == HashKey("beta") {
		t.Error("different keys should (overwhelmingly) hash differently")
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	_, d := bootstrappedDHT(t, 16, 3, false)
	nodes := d.SSR.Net.Topology().Nodes()
	if !d.Put(nodes[0], "color", "green", 20000) {
		t.Fatal("put failed")
	}
	// Read back from a different node.
	v, ok := d.Get(nodes[len(nodes)-1], "color", 20000)
	if !ok || v != "green" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	// Missing key is a miss, not an error.
	if _, ok := d.Get(nodes[2], "nope", 20000); ok {
		t.Error("missing key should report found=false")
	}
	// Overwrite.
	d.Put(nodes[3], "color", "blue", 20000)
	if v, _ := d.Get(nodes[5], "color", 20000); v != "blue" {
		t.Errorf("overwrite failed: %q", v)
	}
}

func TestKeyLandsAtOwner(t *testing.T) {
	_, d := bootstrappedDHT(t, 20, 7, false)
	nodes := d.SSR.Net.Topology().Nodes()
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("key-%d", i)
		if !d.Put(nodes[i%len(nodes)], key, "v", 20000) {
			t.Fatalf("put %s failed", key)
		}
		owner, _ := d.Owner(key)
		if _, ok := d.Nodes[owner].LocalGet(key); !ok {
			t.Errorf("key %s (hash %s) not stored at owner %s", key, HashKey(key), owner)
		}
	}
}

func TestManyKeysDistributeAcrossNodes(t *testing.T) {
	_, d := bootstrappedDHT(t, 20, 11, false)
	nodes := d.SSR.Net.Topology().Nodes()
	const keys = 60
	for i := 0; i < keys; i++ {
		if !d.Put(nodes[i%len(nodes)], fmt.Sprintf("k%03d", i), "v", 20000) {
			t.Fatalf("put %d failed", i)
		}
	}
	if d.TotalKeys() != keys {
		t.Errorf("stored %d keys, want %d", d.TotalKeys(), keys)
	}
	holders := 0
	for _, n := range d.Nodes {
		if n.Len() > 0 {
			holders++
		}
	}
	if holders < 5 {
		t.Errorf("keys concentrated on %d nodes — distribution broken", holders)
	}
}

func TestReplicationSurvivesOwnerFailure(t *testing.T) {
	net, d := bootstrappedDHT(t, 18, 13, true)
	nodes := d.SSR.Net.Topology().Nodes()
	const key = "precious"
	if !d.Put(nodes[0], key, "data", 30000) {
		t.Fatal("put failed")
	}
	// Let the replication packet land.
	net.Engine().RunUntil(net.Engine().Now()+2000, nil)
	owner, _ := d.Owner(key)
	// The replica must exist at some other node.
	replicas := 0
	for v, n := range d.Nodes {
		if _, ok := n.LocalGet(key); ok && v != owner {
			replicas++
		}
	}
	if replicas == 0 {
		t.Fatal("no replica stored")
	}
	// Kill the owner (keep the physical graph connected).
	after := net.Topology().Clone()
	after.RemoveNode(owner)
	if !after.Connected() {
		t.Skip("owner removal would partition this topology")
	}
	d.SSR.Leave(owner)
	delete(d.Nodes, owner)
	if _, ok := d.SSR.RunUntilConsistent(net.Engine().Now() + 600000); !ok {
		t.Fatal("ring did not heal after owner failure")
	}
	// The new owner of the key is the failed owner's successor, which holds
	// the replica; a fresh Get must succeed.
	var from ids.ID
	for v := range d.Nodes {
		from = v
		break
	}
	v, ok := d.Get(from, key, 60000)
	if !ok || v != "data" {
		t.Fatalf("get after owner failure = %q, %v", v, ok)
	}
}

func TestGetFromOwnerItself(t *testing.T) {
	_, d := bootstrappedDHT(t, 12, 17, false)
	const key = "self"
	nodes := d.SSR.Net.Topology().Nodes()
	if !d.Put(nodes[0], key, "x", 20000) {
		t.Fatal("put failed")
	}
	owner, _ := d.Owner(key)
	v, ok := d.Get(owner, key, 20000)
	if !ok || v != "x" {
		t.Fatalf("owner-local get = %q, %v", v, ok)
	}
}

func TestClusterHelpersRejectUnknownNode(t *testing.T) {
	_, d := bootstrappedDHT(t, 10, 19, false)
	if d.Put(12345, "k", "v", 1000) {
		t.Error("put from unknown node must fail")
	}
	if _, ok := d.Get(12345, "k", 1000); ok {
		t.Error("get from unknown node must fail")
	}
}

func TestHashKeyUniformityProperty(t *testing.T) {
	// The finalized hash must spread short sequential keys across the id
	// space: bucket 4096 keys into 16 ranges and require every bucket to be
	// reasonably populated (plain FNV fails this badly for such keys).
	const keys = 4096
	const buckets = 16
	var counts [buckets]int
	for i := 0; i < keys; i++ {
		h := HashKey(fmt.Sprintf("key-%05d", i))
		counts[uint64(h)>>60]++
	}
	want := keys / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d has %d keys, want ~%d", b, c, want)
		}
	}
}

func TestHashKeyQuickProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return HashKey(a) == HashKey(b)
		}
		return HashKey(a) != HashKey(b) // collisions astronomically unlikely
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
