// Package dht is a Chord-style key-value store running on top of SSR's
// virtual ring — the class of application the SSR line of work targets
// (DHT substrates for MANETs: Ekta, MADPastry; both cited in the paper).
//
// Keys are hashed into the 64-bit identifier space; the owner of a key is
// the first node clockwise at or after it on the virtual ring (successor
// ownership). Requests ride SSR's anycast routing to the owner; responses
// ride unicast routing back to the requester. Optionally every key is
// replicated to the owner's ring successor, so a single node failure loses
// nothing.
//
// The package exists for two reasons: it is the natural "example
// application" demonstrating that the linearization-bootstrapped ring is
// actually usable, and its tests double as end-to-end validation of SSR's
// anycast semantics.
package dht

import (
	"hash/fnv"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/ssr"
)

// HashKey maps an application key into the identifier space: FNV-1a
// followed by a splitmix64-style finalizer. The finalizer matters — plain
// FNV of short keys differing in the trailing byte clusters in the high
// bits, which would pile all such keys onto one ring owner.
func HashKey(key string) ids.ID {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return ids.ID(x)
}

// opKind enumerates DHT operations.
type opKind uint8

const (
	opPut opKind = iota
	opGet
	opReplicate
	opReply
)

// request is the wire format riding SSR data packets.
type request struct {
	Op    opKind
	Key   string
	Value string
	// ReqID correlates the reply with the caller's pending table.
	ReqID uint64
	// Requester is where the reply goes.
	Requester ids.ID
	// Found distinguishes a hit from a miss on replies.
	Found bool
}

// Node is the DHT layer of one SSR node.
type Node struct {
	ssr   *ssr.Node
	store map[string]string

	nextReq uint64
	pending map[uint64]func(value string, found bool)

	// Replicate mirrors every stored key to the ring successor.
	Replicate bool
}

// Attach layers a DHT node over an SSR node, hooking its delivery callback.
// Call after the SSR node exists but at any time relative to bootstrap.
func Attach(s *ssr.Node) *Node {
	n := &Node{
		ssr:     s,
		store:   make(map[string]string),
		pending: make(map[uint64]func(string, bool)),
	}
	s.OnDeliver = n.onDeliver
	return n
}

// SSR returns the underlying routing node.
func (n *Node) SSR() *ssr.Node { return n.ssr }

// Len returns the number of keys stored locally (owned + replicas).
func (n *Node) Len() int { return len(n.store) }

// LocalGet reads the local store directly (for tests and inspection).
func (n *Node) LocalGet(key string) (string, bool) {
	v, ok := n.store[key]
	return v, ok
}

// Put stores key=value at the key's owner. done (optional) fires when the
// owner's acknowledgment arrives. It reports whether the request could be
// sent.
func (n *Node) Put(key, value string, done func()) bool {
	var cb func(string, bool)
	if done != nil {
		cb = func(string, bool) { done() }
	}
	reqID := n.track(cb)
	return n.ssr.SendAnycast(HashKey(key), request{
		Op: opPut, Key: key, Value: value, ReqID: reqID, Requester: n.ssr.ID(),
	})
}

// Get fetches the value for key from its owner; done fires with the value
// (or found=false). It reports whether the request could be sent.
func (n *Node) Get(key string, done func(value string, found bool)) bool {
	reqID := n.track(done)
	return n.ssr.SendAnycast(HashKey(key), request{
		Op: opGet, Key: key, ReqID: reqID, Requester: n.ssr.ID(),
	})
}

func (n *Node) track(cb func(string, bool)) uint64 {
	n.nextReq++
	if cb != nil {
		n.pending[n.nextReq] = cb
	}
	return n.nextReq
}

// onDeliver handles both anycast requests (we are the key's owner) and
// unicast replies (we are the requester).
func (n *Node) onDeliver(d ssr.Delivery) {
	req, ok := d.Body.(request)
	if !ok {
		return
	}
	switch req.Op {
	case opPut:
		n.store[req.Key] = req.Value
		n.replicate(req.Key, req.Value)
		n.reply(req, "", true)
	case opGet:
		v, found := n.store[req.Key]
		n.reply(req, v, found)
	case opReplicate:
		n.store[req.Key] = req.Value
	case opReply:
		if cb, exists := n.pending[req.ReqID]; exists {
			delete(n.pending, req.ReqID)
			cb(req.Value, req.Found)
		}
	}
}

// replicate mirrors a key to the ring successor when enabled.
func (n *Node) replicate(key, value string) {
	if !n.Replicate {
		return
	}
	succ, ok := n.ssr.Successor()
	if !ok {
		return
	}
	n.ssr.SendData(succ, request{Op: opReplicate, Key: key, Value: value})
}

// reply routes the response back to the requester by exact identifier.
func (n *Node) reply(req request, value string, found bool) {
	resp := request{Op: opReply, Key: req.Key, Value: value, ReqID: req.ReqID, Found: found}
	if req.Requester == n.ssr.ID() {
		// Local request: complete synchronously.
		n.onDeliver(ssr.Delivery{Origin: n.ssr.ID(), Dst: n.ssr.ID(), Body: resp})
		return
	}
	n.ssr.SendData(req.Requester, resp)
}

// Cluster glues a DHT node onto every member of an SSR cluster and offers
// synchronous-looking helpers that drive the simulation until a response
// arrives.
type Cluster struct {
	SSR   *ssr.Cluster
	Nodes map[ids.ID]*Node
}

// NewCluster attaches DHT nodes to an entire (typically already
// bootstrapped) SSR cluster.
func NewCluster(c *ssr.Cluster, replicate bool) *Cluster {
	d := &Cluster{SSR: c, Nodes: make(map[ids.ID]*Node, len(c.Nodes))}
	for v, s := range c.Nodes {
		n := Attach(s)
		n.Replicate = replicate
		d.Nodes[v] = n
	}
	return d
}

// Put issues a put from the given node and runs the engine until the ack
// or the deadline. It reports success.
func (d *Cluster) Put(from ids.ID, key, value string, deadline sim.Time) bool {
	n, ok := d.Nodes[from]
	if !ok {
		return false
	}
	done := false
	if !n.Put(key, value, func() { done = true }) {
		return false
	}
	d.runUntil(&done, deadline)
	return done
}

// Get issues a get from the given node and runs the engine until the reply
// or the deadline.
func (d *Cluster) Get(from ids.ID, key string, deadline sim.Time) (string, bool) {
	n, ok := d.Nodes[from]
	if !ok {
		return "", false
	}
	var value string
	found := false
	done := false
	if !n.Get(key, func(v string, f bool) { value, found, done = v, f, true }) {
		return "", false
	}
	d.runUntil(&done, deadline)
	return value, found && done
}

func (d *Cluster) runUntil(done *bool, deadline sim.Time) {
	eng := d.SSR.Net.Engine()
	stop := eng.Now() + deadline
	for win := eng.Now() + 16; !*done; win += 16 {
		if win > stop {
			win = stop
		}
		eng.RunUntil(win, func() bool { return *done })
		if *done || win >= stop || eng.Pending() == 0 {
			return
		}
	}
}

// Owner returns which live node currently owns the key (oracle view, for
// tests): the first node clockwise at or after the key's hash.
func (d *Cluster) Owner(key string) (ids.ID, bool) {
	k := HashKey(key)
	var best ids.ID
	found := false
	for v := range d.Nodes {
		if !found || ids.RingDist(k, v) < ids.RingDist(k, best) {
			best = v
			found = true
		}
	}
	return best, found
}

// TotalKeys sums stored keys across all nodes (owned + replicas).
func (d *Cluster) TotalKeys() int {
	total := 0
	for _, n := range d.Nodes {
		total += n.Len()
	}
	return total
}
