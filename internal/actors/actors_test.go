package actors

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/vring"
)

func runSystem(t *testing.T, g *graph.Graph, timeout time.Duration) *graph.Graph {
	t.Helper()
	s := New(g)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ok, final := s.Run(ctx)
	if !ok {
		t.Fatalf("actors did not converge within %v: %s", timeout, Report(final))
	}
	if !final.SupersetOfLine() {
		t.Fatal("final snapshot misses line edges")
	}
	return final
}

func TestConvergesOnRandomGraph(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	nodes := graph.MakeIDs(40, graph.RandomIDs, r)
	g := graph.ErdosRenyi(nodes, 0.2, r)
	runSystem(t, g, 20*time.Second)
}

func TestConvergesFromLoopyState(t *testing.T) {
	// The paper's Fig. 1 state under real goroutine asynchrony.
	g := vring.LoopyExample().ToGraph()
	runSystem(t, g, 10*time.Second)
}

func TestConvergesOnSparsePath(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	nodes := graph.MakeIDs(24, graph.RandomIDs, r)
	r.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	g := graph.NewWithNodes(nodes...)
	for i := 0; i+1 < len(nodes); i++ {
		g.AddEdge(nodes[i], nodes[i+1])
	}
	runSystem(t, g, 30*time.Second)
}

func TestTimeoutReportsFailure(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	nodes := graph.MakeIDs(30, graph.RandomIDs, r)
	g := graph.ErdosRenyi(nodes, 0.2, r)
	s := New(g)
	// A context that expires immediately: Run must return false, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	ok, final := s.Run(ctx)
	if ok && !final.SupersetOfLine() {
		t.Error("claimed convergence without the line")
	}
}

func TestSnapshotMatchesInitialGraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nodes := graph.MakeIDs(12, graph.RandomIDs, r)
	g := graph.ErdosRenyi(nodes, 0.4, r)
	s := New(g)
	// Before Run, node goroutines are not started; start them paused-ish by
	// running with an immediate deadline and snapshotting afterwards: the
	// neighbor sets must still contain the physical edges (memory variant
	// never forgets).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, snap := s.Run(ctx)
	for _, e := range g.Edges() {
		if !snap.HasEdge(e.U, e.V) {
			t.Fatalf("physical edge %s missing from snapshot", e)
		}
	}
}

func TestDegenerateSizes(t *testing.T) {
	single := graph.NewWithNodes(7)
	s := New(single)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if ok, _ := s.Run(ctx); !ok {
		t.Error("single node is trivially converged")
	}
	pair := graph.Line([]ids.ID{3, 9})
	s2 := New(pair)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if ok, _ := s2.Run(ctx2); !ok {
		t.Error("connected pair is trivially converged")
	}
}
