// Package actors runs linearization with every node as a real goroutine —
// the "natural" Go modeling of a distributed protocol, complementing the
// deterministic discrete-event simulator used by the experiments.
//
// Where package sim proves properties under controlled schedules, this
// package stresses the self-stabilization claim under genuine asynchrony:
// the Go scheduler interleaves node steps arbitrarily, channels reorder
// relative timing, and inboxes are lossy when full (messages are dropped
// rather than blocking, as a real network would). Linearization with
// memory must still converge — §2's self-stabilization means convergence
// from every input graph under every fair schedule — and the tests run
// this under the race detector.
//
// Each node owns its neighbor set exclusively; all cross-node communication
// is message passing (introductions: "this identifier is your neighbor").
// A supervisor snapshots neighbor sets over a request channel, so there is
// no shared mutable state at all.
package actors

import (
	"context"
	"time"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/vring"
)

// message is an introduction: the receiver learns that Other exists and is
// (now) its virtual neighbor.
type message struct {
	Other ids.ID
}

// snapshotReq asks a node for a copy of its current neighbor set.
type snapshotReq struct {
	reply chan []ids.ID
}

// node is one protocol participant. All fields after construction are
// owned by the node's goroutine.
type node struct {
	id    ids.ID
	inbox chan message
	snap  chan snapshotReq
	nbrs  ids.Set
	peers map[ids.ID]*node // routing table for sends (read-only after start)
}

// System is a running set of node goroutines.
type System struct {
	nodes map[ids.ID]*node
	// TickEvery is the node work period (wall clock).
	TickEvery time.Duration
	// InboxSize bounds each node's mailbox; full mailboxes drop (lossy).
	InboxSize int
}

// New builds a system whose initial neighbor sets mirror the given graph
// (E_v := E_p).
func New(g *graph.Graph) *System {
	s := &System{
		nodes:     make(map[ids.ID]*node, g.NumNodes()),
		TickEvery: 200 * time.Microsecond,
		InboxSize: 256,
	}
	for _, v := range g.Nodes() {
		s.nodes[v] = &node{
			id:   v,
			nbrs: g.Neighbors(v).Clone(),
		}
	}
	for _, n := range s.nodes {
		n.peers = s.nodes
	}
	return s
}

// Run starts every node goroutine and polls for convergence (the union of
// neighbor sets embeds the sorted line) until the context ends. It returns
// whether convergence was observed and the final virtual graph snapshot.
func (s *System) Run(ctx context.Context) (bool, *graph.Graph) {
	// The node goroutines live on their own context so the final snapshot
	// can still be collected after the caller's deadline fires; they are
	// cancelled on every return path.
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, n := range s.nodes {
		n.inbox = make(chan message, s.InboxSize)
		n.snap = make(chan snapshotReq)
	}
	for _, n := range s.nodes {
		go n.loop(runCtx, s.TickEvery)
	}
	poll := time.NewTicker(2 * time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case <-ctx.Done():
			return false, s.Snapshot(context.Background())
		case <-poll.C:
			g := s.Snapshot(context.Background())
			if g != nil && g.SupersetOfLine() {
				return true, g
			}
		}
	}
}

// Snapshot collects every node's neighbor set into one virtual graph. It
// returns nil if the context ends mid-collection.
func (s *System) Snapshot(ctx context.Context) *graph.Graph {
	g := graph.New()
	for v, n := range s.nodes {
		g.AddNode(v)
		req := snapshotReq{reply: make(chan []ids.ID, 1)}
		select {
		case n.snap <- req:
		case <-ctx.Done():
			return nil
		}
		select {
		case nbrs := <-req.reply:
			for _, u := range nbrs {
				g.AddEdge(v, u)
			}
		case <-ctx.Done():
			return nil
		}
	}
	return g
}

// Report diagnoses the line view of a snapshot.
func Report(g *graph.Graph) vring.LineReport { return vring.AnalyzeLine(g) }

// loop is the node goroutine: drain introductions, answer snapshots, and on
// every tick run one linearization-with-memory step over the current
// neighbor set (introduce every consecutive same-side pair to each other).
func (n *node) loop(ctx context.Context, tickEvery time.Duration) {
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-n.inbox:
			if m.Other != n.id {
				n.nbrs.Add(m.Other)
			}
		case req := <-n.snap:
			req.reply <- n.nbrs.Sorted()
		case <-tick.C:
			n.step()
		}
	}
}

// step performs Algorithm 1's chain introductions for both sides: for
// consecutive neighbors a < b on the same side of us, tell a about b and b
// about a. Sends are non-blocking; a full inbox drops the introduction,
// which a later tick retries — self-stabilization tolerates loss.
func (n *node) step() {
	sorted := n.nbrs.Sorted()
	var left, right []ids.ID
	for _, u := range sorted {
		if u < n.id {
			left = append(left, u)
		} else {
			right = append(right, u)
		}
	}
	n.introduceChain(left)
	n.introduceChain(right)
}

func (n *node) introduceChain(side []ids.ID) {
	for i := 0; i+1 < len(side); i++ {
		a, b := side[i], side[i+1]
		n.send(a, message{Other: b})
		n.send(b, message{Other: a})
	}
}

func (n *node) send(to ids.ID, m message) {
	peer, ok := n.peers[to]
	if !ok {
		return
	}
	select {
	case peer.inbox <- m:
	default: // mailbox full: drop (lossy network)
	}
}
