package ssr

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
)

func TestJoinSplicesIntoRing(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 20, graph.RandomIDs, 41)
	net := newNet(t, topo, 41)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(120000); !ok {
		t.Fatal("initial bootstrap failed")
	}
	// A newcomer with an interior identifier attaches to two random nodes.
	nodes := net.Topology().Nodes()
	newcomer := nodes[0] + (nodes[len(nodes)-1]-nodes[0])/2
	for net.Topology().HasNode(newcomer) {
		newcomer++
	}
	net.Topology().AddNode(newcomer)
	net.AddLink(newcomer, nodes[2])
	net.AddLink(newcomer, nodes[len(nodes)-3])
	c.Join(newcomer)
	if _, ok := c.RunUntilConsistent(net.Engine().Now() + 200000); !ok {
		t.Fatalf("ring did not absorb the newcomer: %s", c.LineReport())
	}
	// The newcomer's line neighbors must now cache it.
	all := append([]ids.ID(nil), nodes...)
	all = append(all, newcomer)
	ids.SortAsc(all)
	var pred, succ ids.ID
	for i, v := range all {
		if v == newcomer {
			pred, succ = all[i-1], all[i+1]
		}
	}
	if c.Nodes[pred].Cache().Route(newcomer) == nil {
		t.Error("predecessor does not know the newcomer")
	}
	if c.Nodes[succ].Cache().Route(newcomer) == nil {
		t.Error("successor does not know the newcomer")
	}
}

func TestJoinNewExtremeUpdatesWrap(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 14, graph.RandomIDs, 43)
	net := newNet(t, topo, 43)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded, CloseRing: true, BothDirections: true})
	if _, ok := c.RunUntilConsistent(200000); !ok {
		t.Fatal("initial bootstrap failed")
	}
	nodes := net.Topology().Nodes()
	oldMax := nodes[len(nodes)-1]
	newMax := oldMax + 1000
	net.Topology().AddNode(newMax)
	net.AddLink(newMax, nodes[1])
	net.AddLink(newMax, oldMax)
	c.Join(newMax)
	if _, ok := c.RunUntilConsistent(net.Engine().Now() + 400000); !ok {
		t.Fatalf("wrap did not move to the new maximum: %s", c.LineReport())
	}
	min := nodes[0]
	wl, _, hasWL, _ := c.Nodes[min].WrapPartners()
	if !hasWL || wl != newMax {
		t.Errorf("min wrapLeft = %v (has=%v), want new max %v", wl, hasWL, newMax)
	}
}

func TestOrganicLeaveDetectedByKeepalives(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoRegular, 18, graph.RandomIDs, 47)
	net := newNet(t, topo, 47)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(120000); !ok {
		t.Fatal("initial bootstrap failed")
	}
	// Pick an interior victim whose removal keeps the graph connected.
	nodes := net.Topology().Nodes()
	var victim ids.ID
	found := false
	for i := 1; i < len(nodes)-1; i++ {
		after := net.Topology().Clone()
		after.RemoveNode(nodes[i])
		if after.Connected() {
			victim = nodes[i]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no safely removable node in this topology")
	}
	c.Leave(victim) // no purge: survivors must detect the silence
	if _, ok := c.RunUntilConsistent(net.Engine().Now() + 400000); !ok {
		t.Fatalf("survivors did not re-converge organically: %s", c.LineReport())
	}
	// Consistency precedes full garbage collection: recently re-gossiped
	// routes to the dead node are purged by the failure detector within a
	// few keepalive periods. Give it a settle window, then every trace of
	// the victim must be gone.
	net.Engine().RunUntil(net.Engine().Now()+10000, nil)
	for v, n := range c.Nodes {
		if n.Cache().Route(victim) != nil {
			t.Errorf("node %s still caches a route to the dead node", v)
		}
	}
	if !c.Consistent() {
		t.Error("ring should remain consistent after cleanup")
	}
}

func TestGracefulLeave(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 16, graph.RandomIDs, 53)
	net := newNet(t, topo, 53)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(120000); !ok {
		t.Fatal("initial bootstrap failed")
	}
	nodes := net.Topology().Nodes()
	var victim ids.ID
	for i := 1; i < len(nodes)-1; i++ {
		after := net.Topology().Clone()
		after.RemoveNode(nodes[i])
		if after.Connected() {
			victim = nodes[i]
			break
		}
	}
	if victim == 0 {
		t.Skip("no safely removable node")
	}
	before := net.Engine().Now()
	c.LeaveGraceful(victim)
	at, ok := c.RunUntilConsistent(before + 400000)
	if !ok {
		t.Fatalf("graceful leave broke the ring: %s", c.LineReport())
	}
	t.Logf("graceful-leave reconvergence took %d ticks", at-before)
	c.Leave(9999999) // unknown node: no-op
	c.LeaveGraceful(9999999)
}

func TestJoinIntoSingletonCluster(t *testing.T) {
	topo := graph.NewWithNodes(100)
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	net.Topology().AddNode(200)
	net.AddLink(100, 200)
	c.Join(200)
	if _, ok := c.RunUntilConsistent(net.Engine().Now() + 40000); !ok {
		t.Fatal("two-node ring should be trivial")
	}
	if c.minID != 100 || c.maxID != 200 {
		t.Errorf("extremes = %v,%v", c.minID, c.maxID)
	}
}

func TestMobilityKeepsRingConsistent(t *testing.T) {
	// E12: a MANET whose radios move (random waypoint). The virtual ring is
	// bootstrapped once; mobility then rewires the physical graph while SSR
	// keeps running. After motion stops the ring must still (or again) be
	// globally consistent.
	r := sim.NewEngine(61)
	nodes := graph.MakeIDs(24, graph.RandomIDs, r.Rand())
	radius := 0.45
	topo, pos := graph.UnitDisk(nodes, radius, r.Rand())
	net := newPhysWithEngine(r, topo)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(200000); !ok {
		t.Fatal("initial bootstrap failed")
	}
	mob := newMobility(net, pos, radius)
	mob.Start()
	net.Engine().RunUntil(net.Engine().Now()+3000, nil)
	mob.Stop()
	t.Logf("mobility produced %d link changes", mob.LinkChanges())
	if _, ok := c.RunUntilConsistent(net.Engine().Now() + 400000); !ok {
		t.Fatalf("ring not consistent after mobility: %s", c.LineReport())
	}
}
