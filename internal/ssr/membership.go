package ssr

import (
	"repro/internal/ids"
	"repro/internal/sim"
)

// Join adds a new node to a running cluster. The caller must already have
// attached the node's physical links (net.AddLink); Join registers the SSR
// protocol instance, seeds its cache from the physical neighborhood
// (E_v := E_p for the newcomer) and starts its maintenance tick. The
// surrounding linearization then splices the node into the virtual ring —
// no coordinator, no flood, exactly the §4 machinery.
func (c *Cluster) Join(v ids.ID) *Node {
	n := NewNode(c.Net, v, c.cfg)
	c.Nodes[v] = n
	if v < c.minID || len(c.Nodes) == 1 {
		c.minID = v
	}
	if v > c.maxID || len(c.Nodes) == 1 {
		c.maxID = v
	}
	n.Start(sim.Time(c.Net.Engine().Rand().Int63n(int64(c.cfg.TickInterval))))
	// A new extremal node invalidates previously-correct wrap edges; the
	// wrap re-validation in maybeDiscover heals them as knowledge spreads.
	return n
}

// Leave fails a node without any cooperative shutdown: the node simply
// goes dark. Survivors notice through the keepalive failure detector and
// re-linearize around the gap. Leave updates the cluster's oracle
// bookkeeping (survivor extremes) but deliberately does NOT purge any
// caches — detection must be organic.
func (c *Cluster) Leave(v ids.ID) {
	n, ok := c.Nodes[v]
	if !ok {
		return
	}
	n.Stop()
	c.Net.FailNode(v)
	delete(c.Nodes, v)
	c.recomputeExtremes()
}

// LeaveGraceful removes a node with explicit notice: every survivor purges
// its state for the departed node immediately (the best case a departure
// protocol could achieve). Used as the fast-path comparison for the churn
// experiments.
func (c *Cluster) LeaveGraceful(v ids.ID) {
	n, ok := c.Nodes[v]
	if !ok {
		return
	}
	n.Stop()
	c.Net.FailNode(v)
	delete(c.Nodes, v)
	for _, s := range c.Nodes {
		s.Cache().Remove(v)
		delete(s.revNbrs, v)
		delete(s.lastHeard, v)
		if s.hasWrapLeft && s.wrapLeft == v {
			s.hasWrapLeft, s.wrapLeftRoute = false, nil
		}
		if s.hasWrapRight && s.wrapRight == v {
			s.hasWrapRight, s.wrapRightRoute = false, nil
		}
	}
	c.recomputeExtremes()
}

func (c *Cluster) recomputeExtremes() {
	first := true
	for v := range c.Nodes {
		if first {
			c.minID, c.maxID = v, v
			first = false
			continue
		}
		if v < c.minID {
			c.minID = v
		}
		if v > c.maxID {
			c.maxID = v
		}
	}
}
