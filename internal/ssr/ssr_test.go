package ssr

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vring"
)

func newNet(t *testing.T, topo *graph.Graph, seed int64) *phys.Network {
	t.Helper()
	return phys.NewNetwork(sim.NewEngine(seed), topo)
}

func bootstrapped(t *testing.T, topo *graph.Graph, cfg Config, seed int64, deadline sim.Time) (*phys.Network, *Cluster) {
	t.Helper()
	net := newNet(t, topo, seed)
	c := NewCluster(net, cfg)
	if at, ok := c.RunUntilConsistent(deadline); !ok {
		t.Fatalf("SSR did not converge by t=%d: %s", at, c.LineReport())
	}
	return net, c
}

func TestBootstrapOnLine(t *testing.T) {
	topo := graph.Line([]ids.ID{10, 20, 30, 40, 50})
	_, c := bootstrapped(t, topo, Config{CacheMode: cache.Unbounded}, 1, 20000)
	if !c.VirtualGraph().SupersetOfLine() {
		t.Error("virtual graph misses line edges")
	}
}

func TestBootstrapOnRandomTopologies(t *testing.T) {
	for _, topoName := range []graph.Topology{graph.TopoER, graph.TopoRegular, graph.TopoUnitDisk} {
		topo, err := graph.Generate(topoName, 24, graph.RandomIDs, 11)
		if err != nil {
			t.Fatal(err)
		}
		net := newNet(t, topo, 11)
		c := NewCluster(net, Config{CacheMode: cache.Unbounded})
		if _, ok := c.RunUntilConsistent(120000); !ok {
			t.Errorf("%s: not consistent: %s", topoName, c.LineReport())
		}
		c.Stop()
	}
}

func TestBootstrapBoundedCache(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 30, graph.RandomIDs, 5)
	net := newNet(t, topo, 5)
	c := NewCluster(net, Config{CacheMode: cache.Bounded})
	if _, ok := c.RunUntilConsistent(120000); !ok {
		t.Fatalf("bounded-cache bootstrap failed: %s", c.LineReport())
	}
	// E8: bounded caches stay logarithmic.
	for v, n := range c.Nodes {
		if n.Cache().Len() > 2*ids.NumIntervals {
			t.Errorf("node %s cache grew to %d entries", v, n.Cache().Len())
		}
	}
}

func TestBootstrapWithTeardown(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 20, graph.RandomIDs, 9)
	net := newNet(t, topo, 9)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded, Teardown: true})
	if _, ok := c.RunUntilConsistent(120000); !ok {
		t.Fatalf("teardown bootstrap failed: %s", c.LineReport())
	}
	if net.Counters().Get(KindTeardown) == 0 {
		t.Error("teardown enabled but no teardown messages sent")
	}
}

func TestNoFloodEver(t *testing.T) {
	// The paper's headline: linearization needs no flooding at all. No SSR
	// message kind is a flood; assert the counter set contains only ssr:*
	// point-to-point kinds.
	topo, _ := graph.Generate(graph.TopoRegular, 20, graph.RandomIDs, 3)
	net := newNet(t, topo, 3)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded, CloseRing: true, BothDirections: true})
	c.RunUntilConsistent(120000)
	for _, kc := range net.Counters().Snapshot() {
		switch kc.Kind {
		case KindNotify, KindAck, KindTeardown, KindDiscover, KindDiscoverAck, KindData, KindKeepalive, KindKeepAck:
		default:
			if kc.Count > 0 && kc.Kind[:5] != "drop:" {
				t.Errorf("unexpected message kind %s", kc.Kind)
			}
		}
	}
}

func TestRingClosure(t *testing.T) {
	// E10: discovery establishes the wrap edge between the true extremes.
	topo, _ := graph.Generate(graph.TopoER, 25, graph.RandomIDs, 7)
	net := newNet(t, topo, 7)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded, CloseRing: true, BothDirections: true})
	if _, ok := c.RunUntilConsistent(200000); !ok {
		t.Fatalf("ring closure did not complete: %s", c.LineReport())
	}
	nodes := net.Topology().Nodes()
	min, max := nodes[0], nodes[len(nodes)-1]
	wl, _, hasWL, _ := c.Nodes[min].WrapPartners()
	if !hasWL || wl != max {
		t.Errorf("min wrapLeft = %v (has=%v), want %v", wl, hasWL, max)
	}
	_, wr, _, hasWR := c.Nodes[max].WrapPartners()
	if !hasWR || wr != min {
		t.Errorf("max wrapRight = %v (has=%v), want %v", wr, hasWR, min)
	}
	if net.Counters().Get(KindDiscover) == 0 || net.Counters().Get(KindDiscoverAck) == 0 {
		t.Error("discovery traffic missing")
	}
}

func TestRoutingAllPairsAfterConvergence(t *testing.T) {
	// E7: once consistent, greedy routing succeeds for every pair.
	topo, _ := graph.Generate(graph.TopoER, 16, graph.RandomIDs, 13)
	_, c := bootstrapped(t, topo,
		Config{CacheMode: cache.Unbounded, CloseRing: true, BothDirections: true}, 13, 200000)
	c.Stop() // freeze the converged state; route on it
	results := c.AllPairsRouting(0, 5000)
	if len(results) != 16*15 {
		t.Fatalf("pairs routed = %d", len(results))
	}
	for _, r := range results {
		if !r.Delivered {
			t.Errorf("routing %s -> %s failed", r.Src, r.Dst)
		}
		if r.Delivered && r.Hops < r.Shortest {
			t.Errorf("%s->%s used %d hops < shortest %d (impossible)", r.Src, r.Dst, r.Hops, r.Shortest)
		}
	}
}

func TestRoutingStretchReasonable(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoRegular, 20, graph.RandomIDs, 17)
	_, c := bootstrapped(t, topo,
		Config{CacheMode: cache.Bounded, CloseRing: true, BothDirections: true}, 17, 300000)
	c.Stop()
	results := c.AllPairsRouting(120, 5000)
	var worst float64
	for _, r := range results {
		if !r.Delivered {
			t.Errorf("routing %s -> %s failed", r.Src, r.Dst)
			continue
		}
		if s := r.Stretch(); s > worst {
			worst = s
		}
	}
	if worst > 20 {
		t.Errorf("worst stretch %.1f is unreasonable", worst)
	}
	t.Logf("worst stretch: %.2f", worst)
}

func TestSelfDelivery(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	got := false
	c.Nodes[1].OnDeliver = func(d Delivery) { got = d.Dst == 1 && d.Origin == 1 }
	if !c.Nodes[1].SendData(1, "x") || !got {
		t.Error("self delivery must be immediate")
	}
}

func TestRoutingFailsBeforeBootstrap(t *testing.T) {
	// A node with an empty cache cannot route.
	topo := graph.Line([]ids.ID{1, 2, 3})
	net := newNet(t, topo, 1)
	n := NewNode(net, 1, Config{})
	if n.SendData(3, nil) {
		t.Error("send with empty cache should fail")
	}
}

func TestLoopyStateResolvedWithoutFlooding(t *testing.T) {
	// E1, the paper's headline demo at message level: physical topology =
	// the Fig. 1 loopy graph; SSR's linearization straightens it with no
	// flood (compare isprp.TestLoopyStateStuckWithoutFlood).
	topo := vring.LoopyExample().ToGraph()
	net := newNet(t, topo, 19)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(60000); !ok {
		t.Fatalf("loopy state not resolved: %s", c.LineReport())
	}
	// Memory-mode caches legitimately keep extra shortcut routes, so the
	// line view has multi-neighbors; what must hold is that the sorted line
	// is embedded (the E2/E7 consistency criterion).
	if !c.VirtualGraph().SupersetOfLine() {
		t.Error("virtual graph must embed the sorted line")
	}
}

func TestSeparateRingsMergedViaPhysicalBridge(t *testing.T) {
	// E2 at message level: E_v := E_p re-seeding merges the islands.
	topo := vring.SeparateRingsExample().ToGraph()
	topo.AddEdge(18, 21)
	net := newNet(t, topo, 23)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(60000); !ok {
		t.Fatalf("rings not merged: %s", c.LineReport())
	}
}

func TestLossyLinksStillConverge(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 16, graph.RandomIDs, 29)
	net := phys.NewNetwork(sim.NewEngine(29), topo, phys.WithLoss(0.1))
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(400000); !ok {
		t.Fatalf("10%% loss defeated the bootstrap: %s", c.LineReport())
	}
}

func TestChurnRecovery(t *testing.T) {
	// E9 at message level: converge, kill a node, verify the survivors
	// re-linearize around it.
	topo, _ := graph.Generate(graph.TopoER, 18, graph.RandomIDs, 31)
	net := newNet(t, topo, 31)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if _, ok := c.RunUntilConsistent(120000); !ok {
		t.Fatal("initial convergence failed")
	}
	// Fail a middle node and purge it from every cache (SSR detects dead
	// virtual neighbors via failed sends; here we model the detection
	// outcome directly and test the re-convergence machinery).
	victims := net.Topology().Nodes()
	victim := victims[len(victims)/2]
	net.FailNode(victim)
	for v, n := range c.Nodes {
		if v != victim {
			n.Cache().Remove(victim)
		}
	}
	delete(c.Nodes, victim)
	c.minID = victims[0]
	c.maxID = victims[len(victims)-1]
	if victim == c.minID || victim == c.maxID {
		t.Skip("victim happened to be extremal; pick a different seed")
	}
	// The oracle must now hold over the survivor set.
	if _, ok := c.RunUntilConsistent(net.Engine().Now() + 120000); !ok {
		t.Fatalf("no re-convergence after churn: %s", c.LineReport())
	}
}

func TestConsistentDegenerate(t *testing.T) {
	topo := graph.NewWithNodes(7)
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	if !c.Consistent() {
		t.Error("single node is trivially consistent")
	}
	topo2 := graph.Line([]ids.ID{1, 2})
	net2 := newNet(t, topo2, 1)
	c2 := NewCluster(net2, Config{CloseRing: true})
	if _, ok := c2.RunUntilConsistent(10000); !ok {
		t.Error("two nodes should converge trivially")
	}
}

func TestMessageCountsScaleSanely(t *testing.T) {
	// Convergence messages should not explode: for n=24 on a sparse graph,
	// expect well under n² notifies.
	topo, _ := graph.Generate(graph.TopoRegular, 24, graph.RandomIDs, 37)
	net, c := newNet(t, topo, 37), (*Cluster)(nil)
	c = NewCluster(net, Config{CacheMode: cache.Bounded})
	at, ok := c.RunUntilConsistent(200000)
	if !ok {
		t.Fatal("no convergence")
	}
	total := net.Counters().Total()
	if total > 24*24*40 {
		t.Errorf("suspiciously many messages: %d", total)
	}
	t.Logf("n=24 bounded: converged t=%d, msgs=%d", at, total)
}

func TestAnycastDeliversToOwner(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 16, graph.RandomIDs, 71)
	_, c := bootstrapped(t, topo,
		Config{CacheMode: cache.Bounded, CloseRing: true, BothDirections: true}, 71, 300000)
	c.Stop()
	nodes := topo.Nodes()
	// A key strictly between nodes[i] and nodes[i+1] is owned by nodes[i+1].
	for i := 0; i+1 < len(nodes); i += 3 {
		key := nodes[i] + (nodes[i+1]-nodes[i])/2
		if key == nodes[i] {
			continue
		}
		owner := nodes[i+1]
		src := nodes[(i+5)%len(nodes)]
		got := false
		c.Nodes[owner].OnDeliver = func(d Delivery) {
			if d.Anycast && d.Dst == key {
				got = true
			}
		}
		if !c.Nodes[src].SendAnycast(key, nil) {
			t.Fatalf("anycast send failed from %s", src)
		}
		eng := c.Net.Engine()
		eng.RunUntil(eng.Now()+8192, func() bool { return got })
		if !got {
			t.Errorf("key %s did not reach owner %s", key, owner)
		}
		c.Nodes[owner].OnDeliver = nil
	}
}

func TestAnycastWrapsPastMaximum(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 14, graph.RandomIDs, 73)
	_, c := bootstrapped(t, topo,
		Config{CacheMode: cache.Bounded, CloseRing: true, BothDirections: true}, 73, 300000)
	c.Stop()
	nodes := topo.Nodes()
	min, max := nodes[0], nodes[len(nodes)-1]
	// A key above the maximum wraps around to the minimum node.
	key := max + (1 << 10)
	if key < max {
		t.Skip("key overflowed; unlucky ids")
	}
	got := false
	c.Nodes[min].OnDeliver = func(d Delivery) {
		if d.Anycast {
			got = true
		}
	}
	src := nodes[len(nodes)/2]
	if !c.Nodes[src].SendAnycast(key, nil) {
		t.Fatal("anycast send failed")
	}
	eng := c.Net.Engine()
	eng.RunUntil(eng.Now()+8192, func() bool { return got })
	if !got {
		t.Error("wrap-around key did not reach the minimum node")
	}
}

func TestAnycastSelfOwned(t *testing.T) {
	topo := graph.Line([]ids.ID{10, 20, 30})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded, CloseRing: true, BothDirections: true})
	if _, ok := c.RunUntilConsistent(60000); !ok {
		t.Fatal("bootstrap failed")
	}
	got := false
	c.Nodes[20].OnDeliver = func(d Delivery) { got = d.Anycast }
	// Key 15 is owned by 20 (successor of the gap): send from 20 itself.
	if !c.Nodes[20].SendAnycast(15, nil) || !got {
		t.Error("self-owned anycast must deliver immediately")
	}
}
