package ssr

import (
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
)

// newPhysWithEngine builds a network on an existing engine (tests that also
// drive mobility share the engine).
func newPhysWithEngine(e *sim.Engine, topo *graph.Graph) *phys.Network {
	return phys.NewNetwork(e, topo)
}

// newMobility wires a mobility process for tests.
func newMobility(net *phys.Network, pos map[ids.ID][2]float64, radius float64) *phys.Mobility {
	return phys.NewMobility(net, pos, radius)
}
