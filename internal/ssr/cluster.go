package ssr

import (
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vring"
)

// Cluster runs SSR over an entire network and provides the convergence
// oracle and routing-experiment helpers.
type Cluster struct {
	Net   phys.Transport
	Nodes map[ids.ID]*Node
	cfg   Config

	minID, maxID ids.ID
	probeStopped bool
}

// NewCluster creates one SSR node per topology node and starts them with
// per-node jitter drawn from the engine's seeded source.
func NewCluster(net phys.Transport, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{Net: net, Nodes: make(map[ids.ID]*Node), cfg: cfg}
	nodes := net.Topology().Nodes()
	for _, v := range nodes {
		c.Nodes[v] = NewNode(net, v, cfg)
	}
	if len(nodes) > 0 {
		c.minID = nodes[0]
		c.maxID = nodes[len(nodes)-1]
	}
	for _, v := range nodes {
		c.Nodes[v].Start(sim.Time(net.Engine().Rand().Int63n(int64(cfg.TickInterval))))
	}
	return c
}

// VirtualGraph returns the current virtual edge set E_v: an undirected edge
// {v,u} for every cached route destination u of every node v.
func (c *Cluster) VirtualGraph() *graph.Graph {
	g := graph.New()
	for v, n := range c.Nodes {
		g.AddNode(v)
		for _, dst := range n.Cache().Destinations() {
			g.AddEdge(v, dst)
		}
	}
	return g
}

// LineReport diagnoses the line view of the current virtual graph.
func (c *Cluster) LineReport() vring.LineReport {
	return vring.AnalyzeLine(c.VirtualGraph())
}

// Consistent reports global consistency: every node caches a route to its
// own line predecessor and successor (two-sided line edges — the property
// greedy routing relies on, which the keepalives establish within one
// period once either side holds the edge), and — when ring closure is
// enabled — the true extremal nodes have acknowledged each other as wrap
// partners.
func (c *Cluster) Consistent() bool {
	if len(c.Nodes) < 2 {
		return true
	}
	nodes := make([]ids.ID, 0, len(c.Nodes))
	for v := range c.Nodes {
		nodes = append(nodes, v)
	}
	ids.SortAsc(nodes)
	for i, v := range nodes {
		n := c.Nodes[v]
		if i > 0 && n.Cache().Route(nodes[i-1]) == nil {
			return false
		}
		if i < len(nodes)-1 && n.Cache().Route(nodes[i+1]) == nil {
			return false
		}
	}
	if !c.cfg.CloseRing || len(c.Nodes) < 3 {
		return true
	}
	min, max := c.Nodes[c.minID], c.Nodes[c.maxID]
	return min.hasWrapLeft && min.wrapLeft == c.maxID &&
		max.hasWrapRight && max.wrapRight == c.minID
}

// RunUntilConsistent drives the simulation until global consistency or the
// deadline, returning the convergence time and whether it converged.
func (c *Cluster) RunUntilConsistent(deadline sim.Time) (sim.Time, bool) {
	eng := c.Net.Engine()
	const checkEvery = sim.Time(8)
	for next := eng.Now() + checkEvery; ; next += checkEvery {
		if next > deadline {
			next = deadline
		}
		eng.RunUntil(next, nil)
		if c.Consistent() {
			return eng.Now(), true
		}
		if next >= deadline || eng.Pending() == 0 {
			return eng.Now(), false
		}
	}
}

// Stop halts all nodes' periodic activity and any attached probes.
func (c *Cluster) Stop() {
	c.probeStopped = true
	for _, n := range c.Nodes {
		n.Stop()
	}
}

// AttachProbe samples the cluster's virtual graph into the convergence
// probe every `every` ticks, starting one interval from now, until Stop.
// Each sample is one "round" of the message-level convergence series —
// the hook that lets the round-by-round probes of the abstract model watch
// the asynchronous protocol too.
func (c *Cluster) AttachProbe(p *trace.Probe, every sim.Time) {
	if p == nil || every <= 0 {
		return
	}
	round := 0
	eng := c.Net.Engine()
	var tick func()
	tick = func() {
		if c.probeStopped {
			return
		}
		p.Observe(round, c.VirtualGraph())
		round++
		eng.After(every, tick)
	}
	eng.After(every, tick)
}

// PendingOps returns the total number of in-flight introduction operations
// across the cluster — the chaos harness's pending-state-leak probe. Each
// entry self-expires within 8 ticks of its creation, so the total is
// bounded by the introduction rate; unbounded growth is a leak.
func (c *Cluster) PendingOps() int {
	total := 0
	for _, n := range c.Nodes {
		total += len(n.pending)
	}
	return total
}

// AuditRoutes scans every cached route in the cluster and counts those
// containing a repeated node — the source-route loop-freedom probe of the
// chaos harness. The sroute constructors reject cycles, so looped must
// always be zero; a nonzero count means corrupted cache state.
func (c *Cluster) AuditRoutes() (total, looped int) {
	for _, n := range c.Nodes {
		for _, dst := range n.Cache().Destinations() {
			r := n.Cache().Route(dst)
			if r == nil {
				continue
			}
			total++
			seen := ids.NewSet()
			for _, hop := range r {
				if seen.Has(hop) {
					looped++
					break
				}
				seen.Add(hop)
			}
		}
	}
	return total, looped
}

// RouteResult describes one data-routing attempt (experiment E7).
type RouteResult struct {
	Src, Dst  ids.ID
	Delivered bool
	Hops      int // physical transmissions used
	Segments  int // greedy segments
	Shortest  int // physical shortest-path hops (stretch denominator)
}

// Stretch returns Hops/Shortest, or 0 when undefined.
func (r RouteResult) Stretch() float64 {
	if !r.Delivered || r.Shortest == 0 {
		return 0
	}
	return float64(r.Hops) / float64(r.Shortest)
}

// RouteData sends a packet from src to dst and runs the engine until it is
// delivered or the per-packet deadline elapses.
func (c *Cluster) RouteData(src, dst ids.ID, deadline sim.Time) RouteResult {
	res := RouteResult{Src: src, Dst: dst}
	if sp := c.Net.Topology().ShortestPath(src, dst); sp != nil {
		res.Shortest = len(sp) - 1
	}
	node, ok := c.Nodes[src]
	if !ok {
		return res
	}
	dstNode, ok := c.Nodes[dst]
	if !ok {
		return res
	}
	done := false
	prev := dstNode.OnDeliver
	dstNode.OnDeliver = func(d Delivery) {
		if d.Origin == src && !done {
			done = true
			res.Delivered = true
			res.Hops = d.Hops
			res.Segments = d.Segments
		}
	}
	defer func() { dstNode.OnDeliver = prev }()
	if !node.SendData(dst, nil) {
		return res
	}
	eng := c.Net.Engine()
	stop := eng.Now() + deadline
	for win := eng.Now() + 16; !done; win += 16 {
		if win > stop {
			win = stop
		}
		eng.RunUntil(win, func() bool { return done })
		if done || win >= stop || eng.Pending() == 0 {
			break
		}
	}
	return res
}

// AllPairsRouting routes between every ordered pair (or a sample capped at
// maxPairs) and aggregates success rate and stretch — experiment E7.
func (c *Cluster) AllPairsRouting(maxPairs int, perPacket sim.Time) []RouteResult {
	nodes := c.Net.Topology().Nodes()
	var out []RouteResult
	count := 0
	for _, s := range nodes {
		for _, d := range nodes {
			if s == d {
				continue
			}
			if maxPairs > 0 && count >= maxPairs {
				return out
			}
			out = append(out, c.RouteData(s, d, perPacket))
			count++
		}
	}
	return out
}
