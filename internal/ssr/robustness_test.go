package ssr

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
)

// twoNodeSetup builds a minimal live pair for handler-level poking.
func twoNodeSetup(t *testing.T) (*phys.Network, *Node, *Node) {
	t.Helper()
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	a := NewNode(net, 1, Config{})
	b := NewNode(net, 2, Config{})
	a.Start(0)
	b.Start(0)
	net.Engine().RunUntil(64, nil)
	return net, a, b
}

func route(t *testing.T, nodes ...ids.ID) sroute.Route {
	t.Helper()
	r, err := sroute.New(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMalformedPayloadsAreIgnored(t *testing.T) {
	net, _, b := twoNodeSetup(t)
	// Frames whose payload type does not match their kind must be dropped
	// without panicking or corrupting state.
	kinds := []string{KindNotify, KindAck, KindDiscover, KindDiscoverAck, KindData}
	for _, kind := range kinds {
		net.Send(phys.Message{From: 1, To: 2, Kind: kind,
			Payload: phys.SRPacket{Route: route(t, 1, 2), Hop: 0, Kind: kind, Payload: "garbage"}})
	}
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	if b.Failed != 0 {
		t.Errorf("garbage frames should not count as routing failures: %d", b.Failed)
	}
	// The node remains functional.
	if b.Cache().Route(1) == nil {
		t.Error("node lost its physical-neighbor route")
	}
}

func TestAckForUnknownPairIgnored(t *testing.T) {
	net, a, _ := twoNodeSetup(t)
	bogus := ackPayload{Pair: pairKey{Low: 77, High: 99}}
	net.Send(phys.Message{From: 2, To: 1, Kind: KindAck,
		Payload: phys.SRPacket{Route: route(t, 2, 1), Hop: 0, Kind: KindAck, Payload: bogus}})
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	if len(a.pending) != 0 {
		t.Error("bogus ack should not create pending state")
	}
}

func TestTeardownForUnknownNodeIgnored(t *testing.T) {
	net, a, _ := twoNodeSetup(t)
	before := a.Cache().Len()
	net.Send(phys.Message{From: 2, To: 1, Kind: KindTeardown,
		Payload: phys.SRPacket{Route: route(t, 2, 1), Hop: 0, Kind: KindTeardown}})
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	// The teardown removes the (existing) route to node 2 — that is its
	// semantics — but must not do anything else destructive.
	if a.Cache().Len() > before {
		t.Error("teardown grew the cache?")
	}
}

func TestNotifyWithMismatchedJoinIgnored(t *testing.T) {
	net, a, b := twoNodeSetup(t)
	// OtherRoute does not start at the notifier: composition must fail
	// gracefully, and no ack state should corrupt the pending table.
	bad := notifyPayload{OtherRoute: route(t, 9, 10), Pair: pairKey{Low: 1, High: 10}}
	net.Send(phys.Message{From: 1, To: 2, Kind: KindNotify,
		Payload: phys.SRPacket{Route: route(t, 1, 2), Hop: 0, Kind: KindNotify, Payload: bad}})
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	if b.Cache().Route(10) != nil {
		t.Error("mismatched notify must not create a route")
	}
	_ = a
}

func TestDiscoverAckFromForeignRouteIgnored(t *testing.T) {
	net, a, _ := twoNodeSetup(t)
	// RouteFromOrigin that does not start at the receiver must be ignored.
	bad := discoverAckPayload{RouteFromOrigin: route(t, 2, 1), Dir: ids.Left}
	net.Send(phys.Message{From: 2, To: 1, Kind: KindDiscoverAck,
		Payload: phys.SRPacket{Route: route(t, 2, 1), Hop: 0, Kind: KindDiscoverAck, Payload: bad}})
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	if a.hasWrapLeft {
		t.Error("foreign discover-ack must not set a wrap partner")
	}
}

func TestPendingPairExpires(t *testing.T) {
	// If acks never come back (link broken right after the notify), the
	// pending pair must expire so the introduction can be retried.
	topo := graph.Line([]ids.ID{10, 20, 30})
	net := newNet(t, topo, 3)
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	net.Engine().RunUntil(40, nil)
	n := c.Nodes[10]
	// Force a pending entry with partners that will never ack.
	key := pairKey{Low: 555, High: 777}
	n.pending[key] = &pendingOp{}
	n.net.Engine().After(8*n.cfg.TickInterval, func() { delete(n.pending, key) })
	net.Engine().RunUntil(net.Engine().Now()+10*16*8, nil)
	if _, still := n.pending[key]; still {
		t.Error("pending pair did not expire")
	}
}

// unstartedTriple builds a 1–2–3 line whose nodes are registered but never
// started: no periodic ticks interfere, yet the handlers run, so the
// introduction machinery can be driven by hand with exact timing.
func unstartedTriple(t *testing.T) (*phys.Network, *Node, *Node, *Node) {
	t.Helper()
	topo := graph.Line([]ids.ID{1, 2, 3})
	net := newNet(t, topo, 7)
	n1 := NewNode(net, 1, Config{})
	n2 := NewNode(net, 2, Config{})
	n3 := NewNode(net, 3, Config{})
	n2.rc.Insert(route(t, 2, 1))
	n2.rc.Insert(route(t, 2, 3))
	return net, n1, n2, n3
}

func TestStaleExpiryTimerKeepsNewerPending(t *testing.T) {
	// Regression: introduce() used to delete n.pending[key] unconditionally
	// when the 8-tick expiry fired, so a timer left over from a completed
	// op could kill a *newer* pendingOp for the same pair. The op is now
	// generation-stamped and only a matching generation expires it.
	net, _, n2, _ := unstartedTriple(t)
	key := pairKey{Low: 1, High: 3}
	eng := net.Engine()
	n2.introduce(1, 3, false) // t=0; expiry timer fires at t=128
	// Sync point: RunUntil leaves Now at the last fired event, so schedule
	// a no-op at t=32 to pin the second introduction's start time.
	eng.After(32, func() {})
	eng.RunUntil(32, nil)
	if _, still := n2.pending[key]; still {
		t.Fatal("first introduction should have completed via acks")
	}
	// Re-introduce before the first op's timer fires; cut the links first
	// so no acks can complete the second op, keeping it pending.
	net.RemoveLink(2, 1)
	net.RemoveLink(2, 3)
	delete(n2.introduced, key) // bypass the re-introduction rate limit
	n2.introduce(1, 3, false)  // t=32; its own expiry fires at t=160
	if _, ok := n2.pending[key]; !ok {
		t.Fatal("second introduction should be pending")
	}
	eng.RunUntil(140, nil) // past the first timer, before the second
	if _, ok := n2.pending[key]; !ok {
		t.Fatal("stale expiry timer killed the newer pending op")
	}
	eng.RunUntil(320, nil) // the newer op's own timer still works
	if _, ok := n2.pending[key]; ok {
		t.Fatal("newer pending op never expired")
	}
}

func TestAckBeforeCounterpartNotifyNoLeak(t *testing.T) {
	// Under WithJitter one Notify can draw a much larger delay than the
	// other, so the introducer sees an Ack from one endpoint while the
	// other endpoint's Notify is still in flight. Reproduced exactly: the
	// link to node 3 is cut, so only node 1's Ack ever arrives. The op must
	// stay half-acked without completing, then expire without leaking.
	net, _, n2, _ := unstartedTriple(t)
	key := pairKey{Low: 1, High: 3}
	net.RemoveLink(2, 3)
	n2.introduce(1, 3, false)
	net.Engine().RunUntil(32, nil)
	op, ok := n2.pending[key]
	if !ok {
		t.Fatal("half-acked op must stay pending")
	}
	if !op.ackLow || op.ackHigh {
		t.Fatalf("ack state = low %v high %v, want low-only", op.ackLow, op.ackHigh)
	}
	net.Engine().RunUntil(300, nil) // past the 8-tick expiry window
	if len(n2.pending) != 0 {
		t.Error("half-acked op leaked past its expiry")
	}
}

func TestDuplicateTeardownTolerated(t *testing.T) {
	// A retransmitted or jitter-duplicated Teardown must be idempotent:
	// route removed, peer tombstoned, no pending state and no panic.
	net, a, _ := twoNodeSetup(t)
	for i := 0; i < 2; i++ {
		net.Send(phys.Message{From: 2, To: 1, Kind: KindTeardown,
			Payload: phys.SRPacket{Route: route(t, 2, 1), Hop: 0, Kind: KindTeardown}})
		net.Engine().RunUntil(net.Engine().Now()+4, nil)
	}
	if a.Cache().Route(2) != nil {
		t.Error("teardown must remove the route")
	}
	if !a.tombstoned(2) {
		t.Error("teardown must tombstone the peer")
	}
	if len(a.pending) != 0 {
		t.Error("duplicate teardown leaked pending state")
	}
}

func TestJitterReorderingConvergesWithoutPendingLeak(t *testing.T) {
	// End-to-end: with per-frame jitter larger than the hop latency, acks
	// routinely overtake notifies and teardowns duplicate across paths.
	// The cluster must still reach global consistency and the pending
	// table must stay bounded.
	topo := graph.Line([]ids.ID{10, 20, 30, 40, 50, 60})
	net := phys.NewNetwork(sim.NewEngine(9), topo, phys.WithJitter(8))
	c := NewCluster(net, Config{CacheMode: cache.Unbounded})
	if at, ok := c.RunUntilConsistent(120000); !ok {
		t.Fatalf("did not converge under jitter by t=%d: %s", at, c.LineReport())
	}
	if p := c.PendingOps(); p > 3*len(c.Nodes) {
		t.Errorf("pending ops %d exceed bound %d", p, 3*len(c.Nodes))
	}
	if _, looped := c.AuditRoutes(); looped != 0 {
		t.Errorf("jitter reordering created %d looped routes", looped)
	}
	c.Stop()
}

func TestTombstoneBlocksRelearnThenExpires(t *testing.T) {
	net, a, _ := twoNodeSetup(t)
	// Tombstone node 9 and try to learn a route to it.
	a.tombstone(9, 4)
	topo := net.Topology()
	topo.AddNode(9)
	topo.AddEdge(1, 9)
	a.learn(route(t, 1, 9))
	if a.Cache().Route(9) != nil {
		t.Fatal("tombstoned destination must not be learned")
	}
	// After expiry the same route is accepted.
	net.Engine().RunUntil(net.Engine().Now()+5*16, nil)
	a.learn(route(t, 1, 9))
	if a.Cache().Route(9) == nil {
		t.Fatal("expired tombstone must not block learning")
	}
}

func TestStopIsIdempotentAndFinal(t *testing.T) {
	net, a, _ := twoNodeSetup(t)
	a.Stop()
	a.Stop()
	before := net.Counters().Total()
	net.Engine().RunUntil(net.Engine().Now()+2000, nil)
	// Node 2 still ticks; node 1 is silent. Allow node 2's traffic only.
	_ = before
	if !net.Up(1) {
		t.Error("Stop must not mark the node down at the physical layer")
	}
}

func TestKeepaliveAckRefreshesDetector(t *testing.T) {
	_, a, b := twoNodeSetup(t)
	eng := a.net.Engine()
	eng.RunUntil(eng.Now()+deadAfter*16*3, nil)
	// Both physical neighbors keep exchanging keepalives+acks, so neither
	// ever purges the other.
	if a.Cache().Route(2) == nil || b.Cache().Route(1) == nil {
		t.Error("live neighbors purged each other despite keepalive acks")
	}
}
