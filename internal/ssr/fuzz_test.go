package ssr

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
)

// byteFeed hands out fuzz bytes one at a time, wrapping to zero when the
// input runs dry so every prefix of the data is a complete program.
type byteFeed struct {
	data []byte
	i    int
}

func (f *byteFeed) next() byte {
	if f.i >= len(f.data) {
		return 0
	}
	b := f.data[f.i]
	f.i++
	return b
}

// fuzzRoute builds a raw (unvalidated) source route from fuzz bytes: hops
// drawn from the live nodes plus unknown and extreme identifiers, with
// loops and too-short routes all possible — exactly the malformed shapes a
// corrupted or forged frame could carry.
func fuzzRoute(f *byteFeed) sroute.Route {
	pool := []ids.ID{1, 2, 3, 99, 1 << 40, 0}
	n := int(f.next()) % 6
	r := make(sroute.Route, 0, n)
	for k := 0; k < n; k++ {
		r = append(r, pool[int(f.next())%len(pool)])
	}
	return r
}

// FuzzFramePayloadDecoding replays a fuzz-derived sequence of adversarial
// frames — wrong outer types, garbled payloads, source-routed packets with
// looped/foreign/too-short routes and out-of-range hop indices, typed
// payloads on mismatched kinds — against a live three-node cluster. The
// seed corpus mirrors the malformed-frame robustness tests. The cluster
// must neither panic nor corrupt its caches into looped routes.
func FuzzFramePayloadDecoding(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2})                               // garbage string on notify
	f.Add([]byte{1, 1, 2, 2, 3, 3})                         // Garbled frames
	f.Add([]byte{2, 4, 0, 1, 2, 3, 4, 5, 6, 7})             // SRPacket, garbage inner
	f.Add([]byte{3, 2, 5, 1, 0, 2, 2, 9, 9, 0, 1, 2, 3, 4}) // typed payloads, bad routes
	f.Add([]byte{5, 0, 4, 200, 3, 0, 2, 255, 1, 128})       // extreme hop indices
	f.Fuzz(func(t *testing.T, data []byte) {
		feed := &byteFeed{data: data}
		topo := graph.Line([]ids.ID{1, 2, 3})
		net := phys.NewNetwork(sim.NewEngine(7), topo)
		c := NewCluster(net, Config{})
		eng := net.Engine()
		eng.At(64, func() {})
		eng.RunUntil(64, nil)

		kinds := []string{KindNotify, KindAck, KindTeardown, KindDiscover,
			KindDiscoverAck, KindData, KindKeepalive, KindKeepAck}
		edges := [][2]ids.ID{{1, 2}, {2, 1}, {2, 3}, {3, 2}}
		for op := 0; op < 24 && feed.i < len(feed.data); op++ {
			kind := kinds[int(feed.next())%len(kinds)]
			e := edges[int(feed.next())%len(edges)]
			var payload any
			switch feed.next() % 6 {
			case 0:
				payload = "garbage"
			case 1:
				payload = phys.Garbled{}
			case 2:
				payload = phys.SRPacket{Route: fuzzRoute(feed),
					Hop: int(int8(feed.next())), Kind: kind, Payload: "garbage"}
			case 3:
				payload = phys.SRPacket{Route: fuzzRoute(feed), Hop: int(int8(feed.next())),
					Kind: kind, Payload: notifyPayload{OtherRoute: fuzzRoute(feed),
						Pair: pairKey{Low: ids.ID(feed.next()), High: ids.ID(feed.next())}}}
			case 4:
				var inner any
				switch feed.next() % 4 {
				case 0:
					inner = ackPayload{Pair: pairKey{Low: ids.ID(feed.next()), High: ids.ID(feed.next())}}
				case 1:
					inner = discoverPayload{Origin: ids.ID(feed.next()),
						Dir: ids.Dir(feed.next() % 2), RouteFromOrigin: fuzzRoute(feed)}
				case 2:
					inner = discoverAckPayload{RouteFromOrigin: fuzzRoute(feed),
						Dir: ids.Dir(feed.next() % 2)}
				case 3:
					inner = dataPayload{Origin: ids.ID(feed.next()), Dst: ids.ID(feed.next()),
						Hops: int(int8(feed.next())), Anycast: feed.next()%2 == 0}
				}
				payload = phys.SRPacket{Route: fuzzRoute(feed),
					Hop: int(int8(feed.next())), Kind: kind, Payload: inner}
			case 5:
				payload = phys.SRPacket{Route: sroute.Route{e[0], e[1]}, Hop: 0,
					Kind: kind, Payload: phys.Garbled{}}
			}
			net.Send(phys.Message{From: e[0], To: e[1], Kind: kind, Payload: payload})
			eng.RunUntil(eng.Now()+8, nil)
		}
		eng.At(eng.Now()+128, func() {})
		eng.RunUntil(eng.Now()+128, nil)

		if _, looped := c.AuditRoutes(); looped != 0 {
			t.Fatalf("adversarial frames corrupted %d cached routes into loops", looped)
		}
		c.Stop()
	})
}
