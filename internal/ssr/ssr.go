// Package ssr implements Scalable Source Routing: the network-layer routing
// protocol whose virtual ring the paper bootstraps with linearization.
//
// Each node keeps a route cache (package cache) whose entries — source
// routes — are the virtual edges E_v of §4. The cache is initialized from
// the physical neighborhood (E_v := E_p) and evolves through the
// message-level linearization protocol of §4:
//
//   - Neighbor notification: a node v1 with more than one right (left)
//     neighbor picks the two farthest, v2 < v3, and notifies each of the
//     other, enclosing its own source routes; v2 composes
//     route(v2→v3) = reverse(route(v1→v2)) ++ route(v1→v3) and enters it
//     into its cache (the edge {v2,v3} enters E_v).
//   - Acknowledgment: each notified node acknowledges; when v1 holds both
//     acks it may tear down its edge to the farther neighbor (teardown
//     message, so the other endpoint drops its state too). With teardown
//     enabled the protocol behaves like pure linearization; without it (or
//     with a Bounded cache) like linearization with memory/LSN.
//   - Discovery: a node with an empty left neighbor set sends a clockwise
//     discovery message, greedily routed through the virtual structure,
//     until it reaches the node with an empty right neighbor set, which
//     acknowledges — establishing the wrap edge that turns the line into
//     SSR's virtual ring. The counter-clockwise mirror runs for redundancy.
//     Wrap partners are exempt from linearization: they are ring state, not
//     line neighbors.
//
// Data routing follows §1's greedy rule: the current node picks from its
// cache the intermediate destination virtually closest to the packet's
// final destination (tie: physically closest), appends the according source
// route, and forwards; the process repeats at every intermediate
// destination. Once the ring is globally consistent this succeeds for every
// source/destination pair — experiment E7 verifies exactly that.
//
// For the E6 comparison the same cluster driver can bootstrap with ISPRP
// (package isprp) instead; message counters are shared via phys.Counters.
package ssr

import (
	"repro/internal/cache"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
	"repro/internal/trace"
)

// Message kinds for counter accounting.
const (
	KindNotify      = "ssr:notify"
	KindAck         = "ssr:ack"
	KindTeardown    = "ssr:teardown"
	KindDiscover    = "ssr:discover"
	KindDiscoverAck = "ssr:discoverack"
	KindData        = "ssr:data"
	KindKeepalive   = "ssr:keepalive"
	KindKeepAck     = "ssr:keepack"
)

// Config tunes an SSR node.
type Config struct {
	// TickInterval is the period of the linearization maintenance tick
	// (default 16). One pair per side is processed per tick.
	TickInterval sim.Time
	// CacheMode selects Bounded (LSN shortcut structure, the SSR default
	// per §4) or Unbounded (linearization with memory) caches.
	CacheMode cache.Mode
	// Teardown enables the §4 optional edge removal after both acks.
	Teardown bool
	// CloseRing enables the discovery messages that close the virtual ring.
	CloseRing bool
	// BothDirections sends the counter-clockwise discovery too (§4:
	// "It should do so for sake of redundancy."). Ablation E10.
	BothDirections bool
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 16
	}
	return c
}

// notifyPayload carries the route from the notifier to the *other* new
// neighbor; the receiver composes its own route by appending it to the
// reversed packet route.
type notifyPayload struct {
	OtherRoute sroute.Route
	Pair       pairKey
}

// ackPayload identifies the pending pair being acknowledged.
type ackPayload struct {
	Pair pairKey
}

// discoverPayload accumulates the virtual-hop path from the discovery
// origin; each greedy segment extends RouteFromOrigin.
type discoverPayload struct {
	Origin          ids.ID
	Dir             ids.Dir // Left: clockwise (seeking the max node)
	RouteFromOrigin sroute.Route
}

// discoverAckPayload returns the origin→endpoint route to the origin,
// tagged with the direction of the discovery it answers.
type discoverAckPayload struct {
	RouteFromOrigin sroute.Route
	Dir             ids.Dir
}

// dataPayload is an application packet riding SSR's greedy routing. With
// Anycast set, Dst is a point in the identifier space rather than a node:
// the packet is delivered to the key's *owner* — the first node clockwise
// at or after Dst on the virtual ring (Chord-style successor ownership,
// the semantics DHT applications over SSR rely on).
type dataPayload struct {
	Origin, Dst ids.ID
	Hops        int // physical transmissions so far
	Segments    int // greedy intermediate-destination hops so far
	Anycast     bool
	Body        any
}

// Delivery records a data packet that reached its destination. For anycast
// packets Dst is the key; the receiving node is its owner.
type Delivery struct {
	Origin, Dst ids.ID
	Hops        int // total physical transmissions used
	Segments    int // greedy segments used
	Anycast     bool
	Body        any
}

// pairKey names one notification operation (v1, side, v2, v3).
type pairKey struct {
	Low, High ids.ID // the two neighbors being introduced, Low < High
}

// revEntry is one reverse-neighbor record.
type revEntry struct {
	route sroute.Route // us -> the reverse neighbor
	at    sim.Time     // last refresh
}

type pendingOp struct {
	ackLow, ackHigh bool
	farther         ids.ID // the neighbor whose edge v1 tears down
	tear            bool   // whether this op removes the farther edge
	// gen distinguishes successive pendingOps for the same pair: the expiry
	// timer of an earlier op must not delete a newer op installed after the
	// earlier one completed (acks consumed it) and the pair was
	// re-introduced. Without the stamp a leftover timer silently kills the
	// newer op, losing its acks and its teardown.
	gen uint64
}

// Node is one SSR participant.
type Node struct {
	id      ids.ID
	net     phys.Transport
	courier *phys.Courier
	cfg     Config

	rc         *cache.Cache
	pending    map[pairKey]*pendingOp
	pendingGen uint64 // generation stamp for pendingOp expiry timers
	introduced map[pairKey]sim.Time
	// revNbrs tracks reverse neighbors: nodes known to cache a route to us
	// (we hear their notifications), with the reverse route and the last
	// refresh time. §4 makes the edges of E_v undirected; with Bounded
	// caches a node may evict a route while the other endpoint retains the
	// edge, and the retaining side's notifications keep the edge visible
	// here. Without this, close identifier pairs that every third party
	// collapses into one interval slot could never be introduced.
	revNbrs map[ids.ID]revEntry
	// tornDown tombstones partners that were deliberately removed (§4
	// teardown) or declared dead by the failure detector, mapping to the
	// tombstone's expiry time. Ambient traffic (keepalives, overheard
	// routes, stale third-party introductions) must not resurrect such an
	// edge: teardown mode would never quiesce, and gossip about a dead node
	// could circulate indefinitely.
	tornDown map[ids.ID]sim.Time
	// lastHeard is the failure detector's evidence: the last time any
	// packet from each cached destination arrived. Keepalives are
	// acknowledged, so a live two-way route refreshes this every keepalive
	// period; destinations silent for several periods are purged — this is
	// how SSR notices virtual links broken by churn (dead nodes or dead
	// intermediate hops).
	lastHeard map[ids.ID]sim.Time

	// Ring closure state: the wrap partners, exempt from linearization.
	// Wrap routes are stored here, not in the route cache, because the
	// cache's interval slots may be contested by ring-far but line-near
	// nodes; the wrap edge must survive regardless.
	wrapLeft, wrapRight           ids.ID
	hasWrapLeft, hasWrapRight     bool
	wrapLeftRoute, wrapRightRoute sroute.Route

	// OnDeliver, if set, observes data packets addressed to this node.
	OnDeliver func(d Delivery)
	// Failed counts data packets this node had to drop for lack of any
	// virtually closer candidate (routing failure).
	Failed int

	stopped bool
	ticks   int64
}

// NewNode creates and registers an SSR node. Call Start to begin activity.
func NewNode(net phys.Transport, id ids.ID, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		id:         id,
		net:        net,
		cfg:        cfg,
		rc:         cache.New(id, cfg.CacheMode),
		pending:    make(map[pairKey]*pendingOp),
		introduced: make(map[pairKey]sim.Time),
		revNbrs:    make(map[ids.ID]revEntry),
		tornDown:   make(map[ids.ID]sim.Time),
		lastHeard:  make(map[ids.ID]sim.Time),
	}
	n.courier = phys.NewCourier(net, id)
	n.courier.OnDeliver = n.deliver
	n.courier.OnForward = n.overhear
	net.Register(id, phys.HandlerFunc(func(m phys.Message) { n.courier.Handle(m) }))
	if fd, ok := net.(phys.FailureDetector); ok {
		// With a reliable transport underneath, the lease detector tells us
		// about dead physical neighbors long before our own keepalive
		// silence threshold (deadAfter ticks) would.
		fd.SubscribeLeases(id, n.onLease)
	}
	return n
}

// onLease consumes a failure-detector verdict about physical neighbor peer.
// Down: every cached route whose first hop crosses the dead link is
// unusable — purge it now instead of waiting out keepalive silence, and
// tombstone the peer so gossip cannot resurrect the direct edge while it is
// dead. Up: clear the tombstone and re-seed the direct edge (E_v := E_p for
// the healed link).
func (n *Node) onLease(peer ids.ID, up bool) {
	if n.stopped {
		return
	}
	if up {
		delete(n.tornDown, peer)
		if r, err := sroute.New(n.id, peer); err == nil {
			if n.rc.Insert(r) {
				n.lastHeard[peer] = n.net.Engine().Now()
				n.traceEvent(trace.EvEdgeAdd, peer, "lease-up")
			}
		}
		return
	}
	for _, dst := range n.rc.Destinations() {
		if r := n.rc.Route(dst); len(r) >= 2 && r[1] == peer {
			n.rc.Remove(dst)
			delete(n.lastHeard, dst)
			n.traceEvent(trace.EvEdgeDelegate, dst, "lease-down")
		}
	}
	for u, e := range n.revNbrs {
		if len(e.route) >= 2 && e.route[1] == peer {
			delete(n.revNbrs, u)
		}
	}
	if n.hasWrapLeft && (n.wrapLeft == peer || (len(n.wrapLeftRoute) >= 2 && n.wrapLeftRoute[1] == peer)) {
		n.hasWrapLeft, n.wrapLeftRoute = false, nil
	}
	if n.hasWrapRight && (n.wrapRight == peer || (len(n.wrapRightRoute) >= 2 && n.wrapRightRoute[1] == peer)) {
		n.hasWrapRight, n.wrapRightRoute = false, nil
	}
	n.tombstone(peer, deadAfter)
}

// ID returns the node identifier.
func (n *Node) ID() ids.ID { return n.id }

// Cache exposes the route cache for inspection by experiments.
func (n *Node) Cache() *cache.Cache { return n.rc }

// Successor returns this node's believed ring successor (the nearest right
// cache neighbor, or the wrap partner for the maximum node).
func (n *Node) Successor() (ids.ID, bool) { return n.successorID() }

// Predecessor returns this node's believed ring predecessor.
func (n *Node) Predecessor() (ids.ID, bool) { return n.predecessorID() }

// WrapPartners returns the established ring-closure partners.
func (n *Node) WrapPartners() (left, right ids.ID, hasLeft, hasRight bool) {
	return n.wrapLeft, n.wrapRight, n.hasWrapLeft, n.hasWrapRight
}

// Start seeds the cache with the physical neighborhood (E_v := E_p) and
// begins the maintenance tick. jitter staggers the first tick.
func (n *Node) Start(jitter sim.Time) {
	for _, u := range n.net.NeighborsOf(n.id) {
		if r, err := sroute.New(n.id, u); err == nil {
			n.rc.Insert(r)
		}
	}
	n.net.Engine().After(n.cfg.TickInterval+jitter, n.tick)
}

// Stop halts periodic activity after the current event.
func (n *Node) Stop() { n.stopped = true }

func (n *Node) tick() {
	if n.stopped {
		return
	}
	if !n.net.Up(n.id) {
		// Stay scheduled while down: a crashed node does no protocol work,
		// but keeping the chain alive means RecoverNode resumes maintenance
		// without anyone having to restart the node (crash/recover churn).
		n.net.Engine().After(n.cfg.TickInterval, n.tick)
		return
	}
	n.ticks++
	n.linearizeSide(ids.Right)
	n.linearizeSide(ids.Left)
	if n.cfg.CloseRing {
		n.maybeDiscover()
	}
	// Periodic keepalives let the other endpoint of every cached edge keep
	// its reverse-neighbor entry fresh. A node with a single virtual
	// neighbor sends no notifications, so without this its edge would
	// expire from the neighbor's view and the node would drop out of the
	// protocol entirely.
	if n.ticks%keepaliveEvery == 0 {
		now := n.net.Engine().Now()
		for _, dst := range n.rc.Destinations() {
			// Purge destinations that have been silent for several
			// keepalive periods: the node or the route to it is dead. The
			// tombstone outlives any gossip chain of stale third-party
			// routes, so the dead node cannot circulate indefinitely.
			if at, ok := n.lastHeard[dst]; ok && now-at > deadAfter*n.cfg.TickInterval {
				n.rc.Remove(dst)
				delete(n.revNbrs, dst)
				delete(n.lastHeard, dst)
				n.tombstone(dst, 4*deadAfter)
				continue
			}
			if r := n.rc.Route(dst); r != nil {
				n.courier.Send(r, KindKeepalive, nil)
			}
		}
		// Re-seed E_v from the *current* physical neighborhood: the link
		// layer knows which radios are in range right now (hello beacons in
		// a real deployment), so mobility-created links enter the virtual
		// graph and a direct neighbor is never tombstoned.
		for _, u := range n.net.NeighborsOf(n.id) {
			delete(n.tornDown, u)
			if r, err := sroute.New(n.id, u); err == nil {
				if n.rc.Insert(r) {
					n.lastHeard[u] = now
				}
			}
		}
	}
	n.net.Engine().After(n.cfg.TickInterval, n.tick)
}

// deadAfter is the failure-detection threshold in ticks (several keepalive
// periods, tolerant of sporadic frame loss).
const deadAfter = 5 * keepaliveEvery

// keepaliveEvery is the keepalive period in ticks — well under revNbrTTL.
const keepaliveEvery = 8

// lineNeighbors returns the cache destinations on the given side excluding
// wrap partners — the N_L / N_R sets of §4. Wrap partners are excluded by
// identity regardless of side: the minimum node's ring predecessor is the
// maximum node, which lies to its line-*right*.
func (n *Node) lineNeighbors(d ids.Dir) []ids.ID {
	now := n.net.Engine().Now()
	seen := ids.NewSet()
	var out []ids.ID
	add := func(u ids.ID) {
		if (n.hasWrapLeft && u == n.wrapLeft) || (n.hasWrapRight && u == n.wrapRight) {
			return
		}
		if ids.DirOf(n.id, u) == d && seen.Add(u) {
			out = append(out, u)
		}
	}
	for _, u := range n.rc.NeighborsDir(d) {
		add(u)
	}
	for u, e := range n.revNbrs {
		if now-e.at <= revNbrTTL*n.cfg.TickInterval {
			add(u)
		}
	}
	ids.SortAsc(out)
	return out
}

// revNbrTTL is how many tick intervals a reverse-neighbor entry stays live
// without a refreshing notification (two re-introduction periods).
const revNbrTTL = 64

// routeTo returns a usable route to x: the cached one, or the reverse
// route recorded for a reverse neighbor.
func (n *Node) routeTo(x ids.ID) sroute.Route {
	if r := n.rc.Route(x); r != nil {
		return r
	}
	if e, ok := n.revNbrs[x]; ok {
		return e.route
	}
	return nil
}

// linearizeSide performs the §4 linearization work on one side.
//
// With Teardown enabled this is the paper's operation verbatim: pick the
// two farthest neighbors v2 < v3, introduce them to each other, and — once
// both acknowledge — tear down the edge to the farther one, shrinking the
// neighbor set by one per completed operation (the message-level analog of
// pure linearization).
//
// Without Teardown, progress cannot come from removal, so the node instead
// introduces every *consecutive* pair of its sorted side list — exactly
// Algorithm 1's chain edges — which is the message-level analog of
// linearization with memory; combined with a Bounded cache it realizes LSN.
func (n *Node) linearizeSide(d ids.Dir) {
	nbrs := n.lineNeighbors(d)
	if len(nbrs) < 2 {
		return
	}
	if n.cfg.Teardown {
		// Farthest pair: Right side → the two largest; Left → two smallest.
		var a, b ids.ID // a closer to us than b
		if d == ids.Right {
			a, b = nbrs[len(nbrs)-2], nbrs[len(nbrs)-1]
		} else {
			a, b = nbrs[1], nbrs[0]
		}
		n.introduce(a, b, true)
		return
	}
	for i := 0; i+1 < len(nbrs); i++ {
		n.introduce(nbrs[i], nbrs[i+1], false)
	}
}

// introduce sends both §4 neighbor notifications for the pair (a, b). When
// tear is set, b (the farther neighbor) is torn down after both acks. Pairs
// are rate-limited: an introduction is not repeated while a previous one is
// pending or within the re-introduction interval, keeping steady-state
// traffic bounded while remaining robust to frame loss.
func (n *Node) introduce(a, b ids.ID, tear bool) {
	key := pairKey{Low: a, High: b}
	if key.Low > key.High {
		key.Low, key.High = key.High, key.Low
	}
	if _, busy := n.pending[key]; busy {
		return
	}
	now := n.net.Engine().Now()
	if last, seen := n.introduced[key]; seen && now-last < 32*n.cfg.TickInterval {
		return
	}
	ra, rb := n.routeTo(a), n.routeTo(b)
	if ra == nil || rb == nil {
		return
	}
	n.introduced[key] = now
	n.pendingGen++
	gen := n.pendingGen
	n.pending[key] = &pendingOp{farther: b, tear: tear, gen: gen}
	n.courier.Send(ra, KindNotify, notifyPayload{OtherRoute: rb.Clone(), Pair: key})
	n.courier.Send(rb, KindNotify, notifyPayload{OtherRoute: ra.Clone(), Pair: key})
	// Expire the pending pair if acks never arrive (lost frames, churn), so
	// the pair can be retried. The generation check keeps a stale timer from
	// deleting a newer op for the same pair.
	n.net.Engine().After(8*n.cfg.TickInterval, func() {
		if op, ok := n.pending[key]; ok && op.gen == gen {
			delete(n.pending, key)
		}
	})
}

// maybeDiscover sends ring-closure discovery from the extremal sides: a
// node with an empty left neighbor set sends clockwise discovery (seeking
// the node with an empty right set), and symmetrically for redundancy. An
// already-established wrap is re-validated: if the cache meanwhile knows a
// ring-closer partner, the stale wrap is dropped and discovery retried —
// this heals wraps that were established before the line had fully formed.
func (n *Node) maybeDiscover() {
	// Wrap state is only legitimate while the corresponding line side is
	// actually empty: a non-extremal node that adopted a wrap partner
	// during a transient empty-side phase would otherwise exempt its true
	// line neighbor from linearization forever. (The true extremes keep
	// theirs: the wrap partner itself is excluded from the side scan.)
	if n.hasWrapLeft && len(n.lineNeighbors(ids.Left)) > 0 {
		n.hasWrapLeft, n.wrapLeftRoute = false, nil
	}
	if n.hasWrapRight && len(n.lineNeighbors(ids.Right)) > 0 {
		n.hasWrapRight, n.wrapRightRoute = false, nil
	}
	if n.hasWrapLeft && !n.wrapStillBest(ids.Left) {
		n.hasWrapLeft, n.wrapLeftRoute = false, nil
	}
	if n.hasWrapRight && !n.wrapStillBest(ids.Right) {
		n.hasWrapRight, n.wrapRightRoute = false, nil
	}
	// Even an established wrap is re-probed periodically: with bounded
	// caches the extremal nodes may never learn of each other through the
	// cache alone (they evict each other's far-away entries), so a wrap
	// that was acknowledged by a transient dead end would otherwise freeze
	// forever. Re-discovery is cheap — only nodes with an empty side do it
	// — and best-wins adoption makes it converge to the true extreme.
	refresh := n.ticks%wrapRefreshEvery == 0
	if len(n.lineNeighbors(ids.Left)) == 0 && (!n.hasWrapLeft || refresh) {
		n.sendDiscover(ids.Left)
	}
	if n.cfg.BothDirections && len(n.lineNeighbors(ids.Right)) == 0 && (!n.hasWrapRight || refresh) {
		n.sendDiscover(ids.Right)
	}
}

// wrapRefreshEvery is the wrap re-probe period in ticks.
const wrapRefreshEvery = 8

// discoveryMetric returns the greedy metric of a discovery launched by
// origin in direction d: clockwise (Left) discovery seeks origin's ring
// predecessor, so candidates are ranked by clockwise distance *to* the
// origin; counter-clockwise (Right) discovery seeks the ring successor, so
// candidates are ranked by clockwise distance *from* the origin.
func discoveryMetric(origin ids.ID, d ids.Dir) func(ids.ID) uint64 {
	if d == ids.Left {
		return func(x ids.ID) uint64 { return ids.RingDist(x, origin) }
	}
	return func(x ids.ID) uint64 { return ids.RingDist(origin, x) }
}

// wrapStillBest reports whether the current wrap partner on side d is still
// the ring-closest candidate we know of.
func (n *Node) wrapStillBest(d ids.Dir) bool {
	metric := discoveryMetric(n.id, d)
	partner := n.wrapLeft
	if d == ids.Right {
		partner = n.wrapRight
	}
	best := metric(partner)
	for _, x := range n.rc.Destinations() {
		if x != n.id && metric(x) < best {
			return false
		}
	}
	for u := range n.liveRevNbrs() {
		if u != n.id && metric(u) < best {
			return false
		}
	}
	return true
}

// liveRevNbrs returns the fresh reverse-neighbor entries (see revNbrs).
func (n *Node) liveRevNbrs() map[ids.ID]sroute.Route {
	now := n.net.Engine().Now()
	out := make(map[ids.ID]sroute.Route, len(n.revNbrs))
	for u, e := range n.revNbrs {
		if now-e.at <= revNbrTTL*n.cfg.TickInterval {
			out[u] = e.route
		}
	}
	return out
}

// bestByMetric scans the virtual neighborhood — cache destinations plus
// live reverse neighbors, since E_v is undirected — for the node minimizing
// the metric, excluding the given origin.
func (n *Node) bestByMetric(exclude ids.ID, metric func(ids.ID) uint64) (ids.ID, sroute.Route, bool) {
	var bestID ids.ID
	var bestRoute sroute.Route
	found := false
	consider := func(x ids.ID, r sroute.Route) {
		if x == exclude || x == n.id || r == nil {
			return
		}
		if !found || metric(x) < metric(bestID) {
			bestID, bestRoute, found = x, r, true
		}
	}
	for _, x := range n.rc.Destinations() {
		consider(x, n.rc.Route(x))
	}
	for u, r := range n.liveRevNbrs() {
		consider(u, r)
	}
	return bestID, bestRoute, found
}

func (n *Node) sendDiscover(d ids.Dir) {
	metric := discoveryMetric(n.id, d)
	_, via, ok := n.bestByMetric(n.id, metric)
	if !ok || via == nil {
		return
	}
	n.courier.Send(via, KindDiscover, discoverPayload{
		Origin:          n.id,
		Dir:             d,
		RouteFromOrigin: via.Clone(),
	})
}

// deliver dispatches courier packets addressed to this node.
func (n *Node) deliver(pkt phys.SRPacket) {
	// Every received packet teaches the reverse route to its segment source
	// and proves the sender holds a route to us — refresh the undirected-
	// edge view (E_v, §4) regardless of message kind.
	back := pkt.Route.Reverse()
	n.learn(back)
	if len(back) >= 2 && back.Dst() != n.id && !n.tombstoned(back.Dst()) {
		now := n.net.Engine().Now()
		n.revNbrs[back.Dst()] = revEntry{route: back.Clone(), at: now}
		n.lastHeard[back.Dst()] = now
	}
	switch pkt.Kind {
	case KindNotify:
		n.handleNotify(pkt)
	case KindAck:
		n.handleAck(pkt)
	case KindKeepalive:
		// Acknowledge so the sender's failure detector sees the route live.
		if len(back) >= 2 {
			n.courier.Send(back, KindKeepAck, nil)
		}
	case KindKeepAck:
		// lastHeard was already refreshed above; nothing else to do.
	case KindTeardown:
		n.rc.Remove(pkt.Route.Src())
		delete(n.revNbrs, pkt.Route.Src())
		n.tombstone(pkt.Route.Src(), revNbrTTL)
		n.traceEvent(trace.EvEdgeDelegate, pkt.Route.Src(), "teardown-recv")
	case KindDiscover:
		n.handleDiscover(pkt)
	case KindDiscoverAck:
		n.handleDiscoverAck(pkt)
	case KindData:
		n.handleData(pkt)
	}
}

// overhear caches route segments of relayed packets (§1: nodes store
// overheard source routes).
func (n *Node) overhear(pkt phys.SRPacket) {
	if back := pkt.Route[:pkt.Hop+1].Reverse(); len(back) >= 2 {
		n.learn(back)
	}
	if fwd := pkt.Route[pkt.Hop:]; len(fwd) >= 2 {
		n.learn(fwd.Clone())
	}
}

// tombstoned reports whether the edge to x is currently tombstoned.
func (n *Node) tombstoned(x ids.ID) bool {
	expiry, ok := n.tornDown[x]
	if !ok {
		return false
	}
	if n.net.Engine().Now() >= expiry {
		delete(n.tornDown, x)
		return false
	}
	return true
}

// tombstone blocks re-learning routes to x for the given number of ticks.
func (n *Node) tombstone(x ids.ID, ticks sim.Time) {
	n.tornDown[x] = n.net.Engine().Now() + ticks*n.cfg.TickInterval
}

func (n *Node) learn(r sroute.Route) {
	// Received and overheard routes are untrusted input: a forged or
	// corrupted frame can carry a route that revisits a node, and caching
	// it would break source-route loop-freedom. Elide before inserting
	// (the elided route covers the same physical links, §1); the scan
	// keeps the common simple-route path allocation-free.
	if !routeSimple(r) {
		r = r.ElideLoops()
	}
	if len(r) >= 2 && r.Src() == n.id && r.Dst() != n.id && !n.tombstoned(r.Dst()) {
		if n.rc.Insert(r) {
			if _, ok := n.lastHeard[r.Dst()]; !ok {
				n.lastHeard[r.Dst()] = n.net.Engine().Now()
			}
			n.traceEvent(trace.EvEdgeAdd, r.Dst(), "")
		}
	}
}

// routeSimple reports whether no node repeats on r. Routes are short, so
// the quadratic scan beats building a set.
func routeSimple(r sroute.Route) bool {
	for i := 1; i < len(r); i++ {
		for j := 0; j < i; j++ {
			if r[i] == r[j] {
				return false
			}
		}
	}
	return true
}

// traceEvent emits a protocol-level event through the network's tracer:
// cached-route churn is E_v edge churn, and wrap adoption is ring closure.
func (n *Node) traceEvent(t trace.EventType, peer ids.ID, aux string) {
	if tr := n.net.Tracer(); tr != nil {
		tr.Emit(trace.Event{
			T: int64(n.net.Engine().Now()), Type: t, Node: n.id, Peer: peer, Aux: aux,
		})
	}
}

func (n *Node) handleNotify(pkt phys.SRPacket) {
	np, ok := pkt.Payload.(notifyPayload)
	if !ok {
		return
	}
	back := pkt.Route.Reverse() // us → notifier
	// A nil check is not enough: a forged or corrupted frame can carry an
	// empty non-nil route, and Src() on it panics.
	if len(np.OtherRoute) < 2 || len(back) < 2 || back.Dst() != np.OtherRoute.Src() {
		return
	}
	if composed, err := back.Append(np.OtherRoute); err == nil && len(composed) >= 2 {
		n.learn(composed)
	}
	// Acknowledge so the notifier can complete (and possibly tear down).
	n.courier.Send(back, KindAck, ackPayload{Pair: np.Pair})
}

func (n *Node) handleAck(pkt phys.SRPacket) {
	ap, ok := pkt.Payload.(ackPayload)
	if !ok {
		return
	}
	op, exists := n.pending[ap.Pair]
	if !exists {
		return
	}
	from := pkt.Route.Src()
	switch from {
	case ap.Pair.Low:
		op.ackLow = true
	case ap.Pair.High:
		op.ackHigh = true
	}
	if !(op.ackLow && op.ackHigh) {
		return
	}
	delete(n.pending, ap.Pair)
	if !op.tear {
		return
	}
	// Both sides confirmed: drop our edge to the farther neighbor and tell
	// it to drop its state for us too (§4's teardown acknowledgment).
	if r := n.rc.Route(op.farther); r != nil {
		n.courier.Send(r, KindTeardown, nil)
		n.rc.Remove(op.farther)
		delete(n.revNbrs, op.farther)
		n.tombstone(op.farther, revNbrTTL)
		n.traceEvent(trace.EvEdgeDelegate, op.farther, "teardown-send")
	}
}

func (n *Node) handleDiscover(pkt phys.SRPacket) {
	dp, ok := pkt.Payload.(discoverPayload)
	if !ok || dp.Origin == n.id {
		return
	}
	// Can we make greedy progress toward the sought extremal position? If
	// yes, extend the accumulated route and forward; if not, we are the
	// sought node: acknowledge, establishing the wrap edge.
	metric := discoveryMetric(dp.Origin, dp.Dir)
	if next, via, found := n.bestByMetric(dp.Origin, metric); found && via != nil && metric(next) < metric(n.id) {
		if extended, err := dp.RouteFromOrigin.Append(via); err == nil {
			n.courier.Send(via, KindDiscover, discoverPayload{
				Origin: dp.Origin, Dir: dp.Dir, RouteFromOrigin: extended,
			})
			return
		}
	}
	// We are the endpoint. Learn the wrap route and acknowledge. A
	// clockwise (Left) discovery makes its origin our ring successor, so we
	// record it on our right, and vice versa.
	back := dp.RouteFromOrigin.Reverse() // us → origin
	if len(back) < 2 || back.Src() != n.id {
		return
	}
	if dp.Dir == ids.Left {
		n.adoptWrap(ids.Right, dp.Origin, back)
	} else {
		n.adoptWrap(ids.Left, dp.Origin, back)
	}
	n.courier.Send(back, KindDiscoverAck, discoverAckPayload{RouteFromOrigin: dp.RouteFromOrigin.Clone(), Dir: dp.Dir})
}

// adoptWrap installs a wrap partner on the given ring side if it beats the
// incumbent under that side's discovery metric. Acks can arrive out of
// order (a stale pre-line discovery may be acknowledged after the correct
// one), so adoption must be best-wins, not last-wins.
func (n *Node) adoptWrap(side ids.Dir, partner ids.ID, route sroute.Route) {
	var metric func(ids.ID) uint64
	if side == ids.Left {
		// Our ring predecessor: ring-closest before us.
		metric = func(x ids.ID) uint64 { return ids.RingDist(x, n.id) }
	} else {
		// Our ring successor: ring-closest after us.
		metric = func(x ids.ID) uint64 { return ids.RingDist(n.id, x) }
	}
	switch side {
	case ids.Left:
		if n.hasWrapLeft && metric(n.wrapLeft) <= metric(partner) {
			return
		}
		n.wrapLeft, n.hasWrapLeft, n.wrapLeftRoute = partner, true, route.Clone()
		n.traceEvent(trace.EvRingClosed, partner, "wrap-left")
	default:
		if n.hasWrapRight && metric(n.wrapRight) <= metric(partner) {
			return
		}
		n.wrapRight, n.hasWrapRight, n.wrapRightRoute = partner, true, route.Clone()
		n.traceEvent(trace.EvRingClosed, partner, "wrap-right")
	}
}

func (n *Node) handleDiscoverAck(pkt phys.SRPacket) {
	da, ok := pkt.Payload.(discoverAckPayload)
	if !ok || len(da.RouteFromOrigin) < 2 || da.RouteFromOrigin.Src() != n.id {
		return
	}
	endpoint := da.RouteFromOrigin.Dst()
	if da.Dir == ids.Left {
		n.adoptWrap(ids.Left, endpoint, da.RouteFromOrigin)
	} else {
		n.adoptWrap(ids.Right, endpoint, da.RouteFromOrigin)
	}
}

// SendData launches an application packet toward dst using SSR's greedy
// routing. It reports whether a first segment could be sent (self-delivery
// counts as success).
func (n *Node) SendData(dst ids.ID, body any) bool {
	if dst == n.id {
		if n.OnDeliver != nil {
			n.OnDeliver(Delivery{Origin: n.id, Dst: dst, Body: body})
		}
		return true
	}
	return n.forwardData(dataPayload{Origin: n.id, Dst: dst, Body: body})
}

// SendAnycast routes a packet to the owner of the given key: the first
// node clockwise at or after key on the virtual ring. Requires a converged
// ring (bootstrap with CloseRing for keys that wrap past the maximum).
func (n *Node) SendAnycast(key ids.ID, body any) bool {
	dp := dataPayload{Origin: n.id, Dst: key, Anycast: true, Body: body}
	if n.ownsKey(key) {
		if n.OnDeliver != nil {
			n.OnDeliver(Delivery{Origin: n.id, Dst: key, Anycast: true, Body: body})
		}
		return true
	}
	return n.forwardAnycast(dp)
}

// predecessorID returns this node's believed ring predecessor: the wrap
// partner when the left side is empty, otherwise the nearest left neighbor.
func (n *Node) predecessorID() (ids.ID, bool) {
	if p, ok := n.rc.Nearest(ids.Left); ok {
		return p, true
	}
	if n.hasWrapLeft {
		return n.wrapLeft, true
	}
	return 0, false
}

// successorID mirrors predecessorID on the right side.
func (n *Node) successorID() (ids.ID, bool) {
	if s, ok := n.rc.Nearest(ids.Right); ok {
		return s, true
	}
	if n.hasWrapRight {
		return n.wrapRight, true
	}
	return 0, false
}

// ownsKey reports whether this node is the key's owner: the key lies in
// the arc (predecessor, self].
func (n *Node) ownsKey(key ids.ID) bool {
	pred, ok := n.predecessorID()
	if !ok {
		return true // only node we know of
	}
	return ids.BetweenIncl(key, pred, n.id)
}

// forwardAnycast performs one greedy step toward the key. When no cached
// candidate makes ring progress, this node is the key's closest
// predecessor, so the owner is our ring successor: hand the packet over
// directly.
func (n *Node) forwardAnycast(dp dataPayload) bool {
	if n.forwardData(dp) {
		return true
	}
	succ, ok := n.successorID()
	if !ok {
		return false
	}
	via := n.routeTo(succ)
	if via == nil && n.hasWrapRight && succ == n.wrapRight {
		via = n.wrapRightRoute
	}
	if via == nil {
		return false
	}
	return n.courier.Send(via, KindData, dp)
}

// handleData continues a packet at an intermediate destination or delivers.
func (n *Node) handleData(pkt phys.SRPacket) {
	dp, ok := pkt.Payload.(dataPayload)
	if !ok {
		return
	}
	dp.Hops += pkt.Route.Hops()
	dp.Segments++
	if dp.Dst == n.id || (dp.Anycast && n.ownsKey(dp.Dst)) {
		if n.OnDeliver != nil {
			n.OnDeliver(Delivery{Origin: dp.Origin, Dst: dp.Dst, Hops: dp.Hops,
				Segments: dp.Segments, Anycast: dp.Anycast, Body: dp.Body})
		}
		return
	}
	if dp.Anycast {
		if !n.forwardAnycast(dp) {
			n.Failed++
		}
		return
	}
	if !n.forwardData(dp) {
		n.Failed++
	}
}

// forwardData performs one greedy step (§1): pick the candidate virtually
// closest to the destination — from the cache (including intermediate nodes
// of cached routes) or from the reverse neighbors — and send the packet
// along the corresponding source route.
func (n *Node) forwardData(dp dataPayload) bool {
	var via sroute.Route
	bestDist := ids.RingDist(n.id, dp.Dst)
	if cand, ok := n.rc.BestToward(dp.Dst); ok {
		via = cand.Via
		bestDist = ids.RingDist(cand.Node, dp.Dst)
	}
	for u, r := range n.liveRevNbrs() {
		if d := ids.RingDist(u, dp.Dst); d < bestDist {
			via, bestDist = r, d
		}
	}
	if n.hasWrapLeft && n.wrapLeftRoute != nil {
		if d := ids.RingDist(n.wrapLeft, dp.Dst); d < bestDist {
			via, bestDist = n.wrapLeftRoute, d
		}
	}
	if n.hasWrapRight && n.wrapRightRoute != nil {
		if d := ids.RingDist(n.wrapRight, dp.Dst); d < bestDist {
			via, bestDist = n.wrapRightRoute, d
		}
	}
	if via == nil {
		return false
	}
	return n.courier.Send(via, KindData, dp)
}
