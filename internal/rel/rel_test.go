package rel

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
)

// newPair builds a two-node reliable network over one link with the given
// options, returning the rel network and a delivery log for node 2.
func newPair(t *testing.T, seed int64, cfg Config, opts ...phys.Option) (*Network, *[]phys.Message) {
	t.Helper()
	raw := phys.NewNetwork(sim.NewEngine(seed), graph.Line([]ids.ID{1, 2}), opts...)
	n := New(raw, cfg)
	var got []phys.Message
	n.Register(1, phys.HandlerFunc(func(m phys.Message) {}))
	n.Register(2, phys.HandlerFunc(func(m phys.Message) { got = append(got, m) }))
	return n, &got
}

// TestReliableDeliveryUnderLoss floods one lossy link and requires
// exactly-once delivery of every frame: retransmission recovers the losses,
// dedup suppresses the duplicates that lost ACKs provoke.
func TestReliableDeliveryUnderLoss(t *testing.T) {
	const frames = 200
	n, got := newPair(t, 11, DefaultConfig(), phys.WithLoss(0.3))
	eng := n.Engine()
	for i := 0; i < frames; i++ {
		i := i
		eng.At(sim.Time(1+i), func() {
			if !n.Send(phys.Message{From: 1, To: 2, Kind: "test:data", Payload: i}) {
				t.Errorf("send %d rejected", i)
			}
		})
	}
	eng.At(60000, func() {})
	eng.RunUntil(60000, nil)

	seen := make(map[int]int)
	for _, m := range *got {
		seen[m.Payload.(int)]++
	}
	for i := 0; i < frames; i++ {
		if seen[i] != 1 {
			t.Fatalf("frame %d delivered %d times, want exactly once", i, seen[i])
		}
	}
	st := n.Stats()
	if st.Retransmits == 0 {
		t.Fatal("30%% loss produced zero retransmissions")
	}
	if st.Duplicates == 0 {
		t.Fatal("lost ACKs produced zero receiver-side duplicates")
	}
	if n.Counters().Get("drop:duplicate") != st.Duplicates {
		t.Fatalf("duplicate accounting diverged: counter %d vs stats %d",
			n.Counters().Get("drop:duplicate"), st.Duplicates)
	}
}

// TestLosslessLinkNoOverhead checks the sublayer is quiet when nothing is
// lost: no retransmissions, no duplicates, RTT samples flowing.
func TestLosslessLinkNoOverhead(t *testing.T) {
	n, got := newPair(t, 3, DefaultConfig())
	eng := n.Engine()
	for i := 0; i < 50; i++ {
		i := i
		eng.At(sim.Time(1+2*i), func() {
			n.Send(phys.Message{From: 1, To: 2, Kind: "test:data", Payload: i})
		})
	}
	eng.At(2000, func() {})
	eng.RunUntil(2000, nil)
	if len(*got) != 50 {
		t.Fatalf("delivered %d frames, want 50", len(*got))
	}
	st := n.Stats()
	if st.Retransmits != 0 || st.Duplicates != 0 || st.Abandons != 0 {
		t.Fatalf("lossless link produced overhead: %+v", st)
	}
	if st.RTTSamples == 0 {
		t.Fatal("no RTT samples on a healthy link")
	}
}

// TestWindowQueueing fills the in-flight window and checks queued frames
// drain in order once ACKs free slots.
func TestWindowQueueing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 4
	n, got := newPair(t, 5, cfg)
	eng := n.Engine()
	eng.At(1, func() {
		for i := 0; i < 40; i++ {
			n.Send(phys.Message{From: 1, To: 2, Kind: "test:data", Payload: i})
		}
	})
	eng.At(4000, func() {})
	eng.RunUntil(4000, nil)
	if len(*got) != 40 {
		t.Fatalf("delivered %d frames, want 40", len(*got))
	}
	for i, m := range *got {
		if m.Payload.(int) != i {
			t.Fatalf("same-burst frames reordered: position %d got %d", i, m.Payload.(int))
		}
	}
}

// TestAbandonAfterMaxRetries removes the link permanently; every in-flight
// frame must eventually be abandoned, not retried forever.
func TestAbandonAfterMaxRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 3
	n, got := newPair(t, 7, cfg)
	raw := n.Raw()
	eng := n.Engine()
	eng.At(1, func() {
		for i := 0; i < 5; i++ {
			n.Send(phys.Message{From: 1, To: 2, Kind: "test:data", Payload: i})
		}
	})
	// Tear the link down before anything can arrive (latency is 1 tick, so
	// removal at the same tick as the sends races — remove at once via the
	// engine so in-flight frames die as stale).
	eng.At(1, func() { raw.RemoveLink(1, 2) })
	eng.At(50000, func() {})
	eng.RunUntil(50000, nil)
	if len(*got) != 0 {
		t.Fatalf("delivered %d frames across a removed link", len(*got))
	}
	st := n.Stats()
	if st.Abandons != 5 {
		t.Fatalf("abandoned %d frames, want all 5", st.Abandons)
	}
	if n.Counters().Get("drop:rel-abandon") != 5 {
		t.Fatalf("drop:rel-abandon = %d, want 5", n.Counters().Get("drop:rel-abandon"))
	}
	if st.Retransmits != 5*3 {
		t.Fatalf("retransmitted %d times, want MaxRetries (3) per frame", st.Retransmits)
	}
}

// TestLeaseDownUp crashes a neighbor and checks the failure detector's
// verdict sequence at the survivor: down after the lease expires, up when
// the recovered neighbor's heartbeats resume.
func TestLeaseDownUp(t *testing.T) {
	cfg := DefaultConfig()
	n, _ := newPair(t, 13, cfg)
	raw := n.Raw()
	eng := n.Engine()
	type verdict struct {
		peer ids.ID
		up   bool
		at   sim.Time
	}
	var verdicts []verdict
	n.SubscribeLeases(1, func(peer ids.ID, up bool) {
		verdicts = append(verdicts, verdict{peer, up, eng.Now()})
	})

	// Let heartbeats establish the lease, then crash node 2.
	crashAt := 4 * cfg.HeartbeatEvery
	eng.At(crashAt, func() { raw.FailNode(2) })
	recoverAt := crashAt + 4*cfg.LeaseDuration
	eng.At(recoverAt, func() { raw.RecoverNode(2) })
	end := recoverAt + 4*cfg.LeaseDuration
	eng.At(end, func() {})
	eng.RunUntil(end, nil)

	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts %v, want down then up", len(verdicts), verdicts)
	}
	if verdicts[0].up || verdicts[0].peer != 2 {
		t.Fatalf("first verdict %v, want peer 2 down", verdicts[0])
	}
	if verdicts[0].at < crashAt+cfg.LeaseDuration {
		t.Fatalf("down verdict at %d, before the lease (crash %d + lease %d) could expire",
			verdicts[0].at, crashAt, cfg.LeaseDuration)
	}
	if !verdicts[1].up || verdicts[1].peer != 2 {
		t.Fatalf("second verdict %v, want peer 2 up", verdicts[1])
	}
	if verdicts[1].at < recoverAt {
		t.Fatalf("up verdict at %d, before recovery at %d", verdicts[1].at, recoverAt)
	}
	st := n.Stats()
	if st.LeaseDowns != 1 || st.LeaseUps != 1 {
		t.Fatalf("lease stats %+v, want exactly one down and one up", st)
	}
}

// TestDeterministicSchedule runs the same lossy workload twice from the same
// seed and requires identical counter ledgers and stats — the reproducibility
// contract everything downstream (chaos, benches) relies on.
func TestDeterministicSchedule(t *testing.T) {
	run := func() string {
		raw := phys.NewNetwork(sim.NewEngine(21), graph.Line([]ids.ID{1, 2, 3}), phys.WithLoss(0.25), phys.WithJitter(3))
		n := New(raw, DefaultConfig())
		for _, v := range []ids.ID{1, 2, 3} {
			n.Register(v, phys.HandlerFunc(func(m phys.Message) {}))
		}
		eng := n.Engine()
		for i := 0; i < 60; i++ {
			i := i
			eng.At(sim.Time(1+i), func() {
				n.Send(phys.Message{From: 1, To: 2, Kind: "test:a", Payload: i})
				n.Send(phys.Message{From: 2, To: 3, Kind: "test:b", Payload: i})
				n.Send(phys.Message{From: 3, To: 2, Kind: "test:c", Payload: i})
			})
		}
		eng.At(20000, func() {})
		eng.RunUntil(20000, nil)
		return fmt.Sprintf("%v|%+v", n.Counters().Snapshot(), n.Stats())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different ledgers:\n%s\n%s", a, b)
	}
}

// TestRelRaceHammer runs many independent reliable simulations concurrently
// under -race: the sublayer shares nothing across engines, so the sharded
// executor may run one per worker.
func TestRelRaceHammer(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			raw := phys.NewNetwork(sim.NewEngine(seed), graph.Line([]ids.ID{1, 2, 3, 4}), phys.WithLoss(0.2))
			n := New(raw, DefaultConfig())
			delivered := 0
			for _, v := range []ids.ID{1, 2, 3, 4} {
				n.Register(v, phys.HandlerFunc(func(m phys.Message) { delivered++ }))
			}
			eng := n.Engine()
			for i := 0; i < 50; i++ {
				i := i
				eng.At(sim.Time(1+i), func() {
					n.Send(phys.Message{From: 1, To: 2, Kind: "test:x", Payload: i})
					n.Send(phys.Message{From: 3, To: 4, Kind: "test:y", Payload: i})
				})
			}
			eng.At(30000, func() {})
			eng.RunUntil(30000, nil)
			if delivered != 100 {
				t.Errorf("seed %d: delivered %d, want 100", seed, delivered)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
