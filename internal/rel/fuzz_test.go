package rel

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
)

// byteFeed hands out fuzz bytes one at a time, wrapping to zero when the
// input runs dry so every prefix of the data is a complete program (the
// same idiom as ssr.FuzzFramePayloadDecoding).
type byteFeed struct {
	data []byte
	i    int
}

func (f *byteFeed) next() byte {
	if f.i >= len(f.data) {
		return 0
	}
	b := f.data[f.i]
	f.i++
	return b
}

func (f *byteFeed) next64() uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(f.next())
	}
	return v
}

// FuzzRelFrameDecoding feeds the sublayer's frame dispatcher adversarial
// payloads — forged ACKs for never-sent sequences, heartbeats, data frames
// with extreme/duplicate/overflowing sequence numbers, garbled frames, and
// raw non-sublayer traffic — interleaved with legitimate reliable sends.
// The endpoint must not panic, must keep its out-of-order buffer bounded,
// and must still deliver the honest traffic exactly once.
func FuzzRelFrameDecoding(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})                                // forged acks
	f.Add([]byte{1, 0, 1, 0, 255, 255, 255, 255})            // heartbeats + extreme seqs
	f.Add([]byte{2, 2, 2, 2, 2, 2})                          // duplicate data seqs
	f.Add([]byte{3, 255, 255, 255, 255, 255, 255, 255, 255}) // overflow seq
	f.Add([]byte{4, 5, 0, 4, 5, 0})                          // garbled + passthrough mix
	f.Fuzz(func(t *testing.T, data []byte) {
		feed := &byteFeed{data: data}
		raw := phys.NewNetwork(sim.NewEngine(17), graph.Line([]ids.ID{1, 2}))
		n := New(raw, DefaultConfig())
		delivered := map[int]int{}
		n.Register(1, phys.HandlerFunc(func(m phys.Message) {}))
		n.Register(2, phys.HandlerFunc(func(m phys.Message) {
			if v, ok := m.Payload.(int); ok {
				delivered[v]++
			}
		}))
		eng := n.Engine()

		honest := 0
		for op := 0; op < 32 && feed.i < len(feed.data); op++ {
			var payload any
			switch feed.next() % 6 {
			case 0:
				payload = Ack{Seq: feed.next64(), Cum: feed.next64()}
			case 1:
				payload = Heartbeat{Seq: feed.next64()}
			case 2:
				payload = Frame{Seq: feed.next64(), Hops: int(int8(feed.next())), Inner: "garbage"}
			case 3:
				payload = phys.Garbled{}
			case 4:
				payload = "not-sublayer-traffic"
			case 5:
				// A legitimate reliable send woven between the forgeries.
				n.Send(phys.Message{From: 1, To: 2, Kind: "test:honest", Payload: honest})
				honest++
				eng.RunUntil(eng.Now()+4, nil)
				continue
			}
			// Forged frames arrive on the raw network, bypassing the sender
			// machinery — exactly what a corrupted or malicious frame does.
			raw.Send(phys.Message{From: 1, To: 2, Kind: "test:forged", Payload: payload})
			eng.RunUntil(eng.Now()+4, nil)
		}
		eng.At(eng.Now()+4096, func() {})
		eng.RunUntil(eng.Now()+4096, nil)

		for i := 0; i < honest; i++ {
			if delivered[i] != 1 {
				t.Fatalf("honest frame %d delivered %d times amid forgeries, want exactly once", i, delivered[i])
			}
		}
		// The out-of-order buffer must stay bounded no matter what sequence
		// numbers the forgeries carried.
		bound := 4*n.Config().Window + 4
		for _, ep := range n.eps {
			for peer, l := range ep.links {
				if len(l.ahead) > bound {
					t.Fatalf("node %v link %v: out-of-order buffer grew to %d (> %d)",
						ep.self, peer, len(l.ahead), bound)
				}
			}
		}
	})
}
