package rel

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Frame wraps one protocol payload with a per-link sequence number. The
// enclosing phys.Message keeps the inner protocol Kind, so per-kind counters
// stay comparable between raw and reliable runs — a retransmission costs one
// more physical frame of its own kind, which is exactly the overhead the
// reliability bench measures.
type Frame struct {
	Seq   uint64
	Hops  int // sender-side hop count of the inner message
	Inner any
}

// Ack confirms receipt of one frame. Seq names the frame that triggered the
// ACK (the RTT sample source); Cum is the receiver's cumulative high-water
// mark — every frame with sequence ≤ Cum has been delivered, so one ACK can
// retire several in-flight frames after an ACK loss.
type Ack struct {
	Seq uint64
	Cum uint64
}

// Heartbeat keeps a link's lease alive when no data flows. Seq increments
// per heartbeat so traces show gaps.
type Heartbeat struct {
	Seq uint64
}

// Counter kinds for the sublayer's own traffic. They ride phys.Counters like
// any other kind, so Total() reflects the true physical cost of reliability.
const (
	AckKind       = "rel:ack"
	HeartbeatKind = "rel:hb"
)

// Config tunes the sublayer. All durations are simulator ticks.
type Config struct {
	// MinRTO / MaxRTO clamp the adaptive retransmission timeout; InitialRTO
	// is used before the first RTT sample.
	MinRTO, MaxRTO, InitialRTO sim.Time
	// Window bounds the unacked frames in flight per link; further sends
	// queue FIFO until the window drains.
	Window int
	// MaxRetries bounds retransmissions per frame; beyond it the frame is
	// abandoned (counted as drop:rel-abandon) — the lease detector, not
	// infinite retry, is the answer to a dead peer.
	MaxRetries int
	// HeartbeatEvery is the idle-link heartbeat (and lease check) period.
	HeartbeatEvery sim.Time
	// LeaseDuration is how long a once-heard neighbor may stay silent before
	// the failure detector declares it down.
	LeaseDuration sim.Time
}

// DefaultConfig returns the tuning used by the harness: RTO in [4, 256]
// ticks starting at 16, window 512, 10 retries, heartbeats every 32 ticks
// with an 8-heartbeat lease.
//
// The window must comfortably exceed the largest per-link protocol burst:
// it exists to bound sender state, not to throttle. A tight window (32)
// turns bootstrap floods at n=256 into queueing delay that outlasts the
// protocols' own timers — they retry into the backlog and livelock. The
// 8-heartbeat lease keeps the spurious-down probability negligible under
// the heaviest swept loss (0.15^8 ≈ 2.6e-7 per window per link) while
// still detecting a real crash within 256 ticks.
func DefaultConfig() Config {
	return Config{
		MinRTO:         4,
		MaxRTO:         256,
		InitialRTO:     16,
		Window:         512,
		MaxRetries:     10,
		HeartbeatEvery: 32,
		LeaseDuration:  256,
	}
}

// Stats aggregates the sublayer's behavior across all links for reports.
type Stats struct {
	Sent        int64 // data frames accepted from protocols
	Retransmits int64 // extra physical transmissions of data frames
	Abandons    int64 // frames dropped after MaxRetries
	Duplicates  int64 // received data frames already delivered (re-ACKed)
	AcksSent    int64
	Heartbeats  int64
	RTTSamples  int64 // valid (Karn) RTT samples absorbed
	LeaseDowns  int64 // neighbor-down verdicts
	LeaseUps    int64 // neighbor-up verdicts
}

// Network is the reliable transport. It implements phys.Transport by
// wrapping a raw *phys.Network, and phys.FailureDetector for lease
// subscriptions. Like the raw network it is single-threaded: everything
// runs inside the embedded engine's event loop.
type Network struct {
	raw   *phys.Network
	cfg   Config
	eps   map[ids.ID]*endpoint
	stats Stats
}

// New wraps a raw physical network. Protocols registered through the
// returned Network get reliable delivery; traffic sent directly on the raw
// network bypasses it (the harness never mixes the two).
func New(raw *phys.Network, cfg Config) *Network {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	return &Network{raw: raw, cfg: cfg, eps: make(map[ids.ID]*endpoint)}
}

// Raw returns the wrapped physical network (fault injection and counters
// live there).
func (n *Network) Raw() *phys.Network { return n.raw }

// Config returns the sublayer tuning.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the sublayer's aggregate behavior.
func (n *Network) Stats() Stats { return n.stats }

// Engine returns the underlying event engine.
func (n *Network) Engine() *sim.Engine { return n.raw.Engine() }

// Topology returns the live physical graph.
func (n *Network) Topology() *graph.Graph { return n.raw.Topology() }

// Counters returns the per-kind message accounting of the raw network —
// reliable and raw runs are compared on the same ledger.
func (n *Network) Counters() *phys.Counters { return n.raw.Counters() }

// Tracer returns the raw network's tracer (nil when tracing is off).
func (n *Network) Tracer() trace.Tracer { return n.raw.Tracer() }

// Nodes returns all registered node identifiers in ascending order.
func (n *Network) Nodes() []ids.ID { return n.raw.Nodes() }

// NeighborsOf returns the live physical neighbors of v, ascending.
func (n *Network) NeighborsOf(v ids.ID) []ids.ID { return n.raw.NeighborsOf(v) }

// Up reports whether v is registered and not failed.
func (n *Network) Up(v ids.ID) bool { return n.raw.Up(v) }

// FailNode marks v down on the underlying network.
func (n *Network) FailNode(v ids.ID) { n.raw.FailNode(v) }

// RecoverNode brings a failed node back up on the underlying network.
func (n *Network) RecoverNode(v ids.ID) { n.raw.RecoverNode(v) }

// Register installs the protocol handler for a node and starts the node's
// heartbeat/lease chain. The sublayer interposes its own phys handler; the
// protocol sees only deduplicated, in-window data frames.
func (n *Network) Register(v ids.ID, h phys.Handler) {
	ep, ok := n.eps[v]
	if !ok {
		ep = &endpoint{net: n, self: v, links: make(map[ids.ID]*link)}
		n.eps[v] = ep
		n.raw.Register(v, phys.HandlerFunc(ep.handle))
		n.raw.Engine().After(n.cfg.HeartbeatEvery, ep.tick)
	}
	ep.inner = h
}

// SubscribeLeases registers cb for failure-detector verdicts about self's
// physical neighbors (phys.FailureDetector).
func (n *Network) SubscribeLeases(self ids.ID, cb phys.LeaseFunc) {
	ep, ok := n.eps[self]
	if !ok {
		// Subscribing before Register is a harness bug worth failing loudly
		// on: the endpoint's handler wiring would silently never exist.
		panic(fmt.Sprintf("rel: SubscribeLeases(%v) before Register", self))
	}
	ep.leaseCbs = append(ep.leaseCbs, cb)
}

// Send accepts a single-hop frame for reliable delivery. Parity with the
// raw semantics: a sender that is down or has no link to m.To fails
// immediately ("drop:no-link"); otherwise the frame is sequenced and either
// transmitted or queued behind the in-flight window. Send reports whether
// the frame was accepted, not whether it was (yet) transmitted.
func (n *Network) Send(m phys.Message) bool {
	ep, ok := n.eps[m.From]
	if !ok || !n.raw.Up(m.From) || !n.raw.Topology().HasEdge(m.From, m.To) {
		n.raw.Counters().Inc("drop:no-link", 1)
		if tr := n.raw.Tracer(); tr != nil {
			tr.Emit(trace.Event{
				T: int64(n.raw.Engine().Now()), Type: trace.EvMsgDrop,
				Node: m.From, Peer: m.To, Kind: m.Kind, Aux: "no-link",
			})
		}
		return false
	}
	n.stats.Sent++
	ep.link(m.To).send(m)
	return true
}

// Broadcast reliably sends a frame to every live physical neighbor of from
// and returns the number of frames accepted.
func (n *Network) Broadcast(from ids.ID, kind string, payload any) int {
	sent := 0
	for _, u := range n.raw.NeighborsOf(from) {
		if n.Send(phys.Message{From: from, To: u, Kind: kind, Payload: payload}) {
			sent++
		}
	}
	return sent
}

// endpoint is one node's view of the sublayer: per-peer link state, the
// wrapped protocol handler, and lease subscribers.
type endpoint struct {
	net   *Network
	self  ids.ID
	inner phys.Handler
	links map[ids.ID]*link

	hbSeq    uint64
	leaseCbs []phys.LeaseFunc
	selfDown bool // observed own crash; re-grant leases on recovery
}

func (ep *endpoint) link(peer ids.ID) *link {
	l, ok := ep.links[peer]
	if !ok {
		l = &link{
			ep:       ep,
			peer:     peer,
			inflight: make(map[uint64]*pending),
			ahead:    make(map[uint64]struct{}),
			est:      NewRTOEstimator(ep.net.cfg.MinRTO, ep.net.cfg.MaxRTO, ep.net.cfg.InitialRTO),
		}
		ep.links[peer] = l
	}
	return l
}

// sortedPeers returns the endpoint's link peers in ascending order so that
// per-tick iteration schedules engine events deterministically.
func (ep *endpoint) sortedPeers() []ids.ID {
	out := make([]ids.ID, 0, len(ep.links))
	for p := range ep.links {
		out = append(out, p)
	}
	ids.SortAsc(out)
	return out
}

// tick is the heartbeat/lease chain: every HeartbeatEvery it broadcasts a
// heartbeat to the live physical neighbors and checks every once-heard
// link's lease. The chain stays scheduled while the node is down (the
// existing down-self idiom) so a recovered node resumes on its own.
func (ep *endpoint) tick() {
	n := ep.net
	eng := n.raw.Engine()
	defer eng.After(n.cfg.HeartbeatEvery, ep.tick)
	if !n.raw.Up(ep.self) {
		ep.selfDown = true
		return
	}
	if ep.selfDown {
		// We just came back from a crash: every lease clock is stale by our
		// entire downtime. Re-grant them all — neighbors that really died
		// while we were deaf expire again within one LeaseDuration, without
		// the recovery storm of declaring everyone down at once.
		ep.selfDown = false
		now := eng.Now()
		for _, peer := range ep.sortedPeers() {
			ep.links[peer].lastHeard = now
		}
	}
	ep.hbSeq++
	for _, u := range n.raw.NeighborsOf(ep.self) {
		// Heartbeats ride the raw network unreliably: retransmitting a
		// liveness probe would defeat its purpose, the next tick is the retry.
		if n.raw.Send(phys.Message{From: ep.self, To: u, Kind: HeartbeatKind, Payload: Heartbeat{Seq: ep.hbSeq}}) {
			n.stats.Heartbeats++
		}
	}
	now := eng.Now()
	for _, peer := range ep.sortedPeers() {
		l := ep.links[peer]
		if l.heardEver && !l.down && now-l.lastHeard > n.cfg.LeaseDuration {
			l.down = true
			n.stats.LeaseDowns++
			ep.emitLease(peer, false)
		}
	}
}

// emitLease traces one failure-detector verdict and notifies subscribers.
func (ep *endpoint) emitLease(peer ids.ID, up bool) {
	n := ep.net
	if tr := n.raw.Tracer(); tr != nil {
		v, aux := 1.0, "down"
		if up {
			v, aux = 0.0, "up"
		}
		tr.Emit(trace.Event{
			T: int64(n.raw.Engine().Now()), Type: trace.EvLeaseExpire,
			Node: ep.self, Peer: peer, Kind: "lease", Aux: aux, Value: v,
		})
	}
	for _, cb := range ep.leaseCbs {
		cb(peer, up)
	}
}

// handle is the endpoint's phys handler: it decodes sublayer framing and
// feeds the protocol only fresh, deduplicated data frames.
func (ep *endpoint) handle(m phys.Message) {
	switch pl := m.Payload.(type) {
	case phys.Garbled:
		// The bits arrived destroyed: liveness evidence, but nothing to
		// decode and — crucially — nothing to ACK; the sender retransmits.
		ep.link(m.From).heard()
	case Frame:
		ep.link(m.From).recvData(m, pl)
	case Ack:
		ep.link(m.From).recvAck(pl)
	case Heartbeat:
		ep.link(m.From).heard()
	default:
		// Not sublayer traffic (a harness layer talking on the raw seam);
		// pass through untouched.
		ep.link(m.From).heard()
		if ep.inner != nil {
			ep.inner.HandleMessage(m)
		}
	}
}

// pending is one unacked data frame on a link's sender side.
type pending struct {
	m        phys.Message // original protocol message (pre-wrap)
	seq      uint64
	attempts int // retransmissions so far
	sentAt   sim.Time
	retx     bool // ever retransmitted → Karn: no RTT sample
}

// link holds both directions of one (self, peer) pair: the sender window
// and RTO state for frames to peer, the receiver dedup state for frames
// from peer, and the liveness lease.
type link struct {
	ep   *endpoint
	peer ids.ID

	// sender side
	nextSeq  uint64
	inflight map[uint64]*pending
	queue    []*pending
	est      *RTOEstimator

	// receiver side: every seq ≤ maxRun has been delivered; ahead holds the
	// out-of-order deliveries beyond it.
	maxRun uint64
	ahead  map[uint64]struct{}

	// lease
	lastHeard sim.Time
	heardEver bool
	down      bool
}

// heard records liveness evidence from the peer and flips a down lease back
// up.
func (l *link) heard() {
	l.lastHeard = l.ep.net.raw.Engine().Now()
	l.heardEver = true
	if l.down {
		l.down = false
		l.ep.net.stats.LeaseUps++
		l.ep.emitLease(l.peer, true)
	}
}

// send sequences a protocol message and transmits it, or queues it behind
// the in-flight window.
func (l *link) send(m phys.Message) {
	l.nextSeq++
	p := &pending{m: m, seq: l.nextSeq}
	if len(l.inflight) < l.ep.net.cfg.Window {
		l.transmit(p)
	} else {
		l.queue = append(l.queue, p)
	}
}

// transmit puts p on the air (first attempt) and arms its retransmission
// timer.
func (l *link) transmit(p *pending) {
	l.inflight[p.seq] = p
	p.sentAt = l.ep.net.raw.Engine().Now()
	l.ep.net.raw.Send(phys.Message{
		From: p.m.From, To: p.m.To, Kind: p.m.Kind, Hops: p.m.Hops,
		Payload: Frame{Seq: p.seq, Hops: p.m.Hops, Inner: p.m.Payload},
	})
	l.armTimer(p)
}

// armTimer schedules the retransmission check for p at the link's current
// RTO. Timers are never cancelled — a fired timer whose frame was ACKed (or
// superseded) notices and does nothing, the engine-idiomatic dangling-timer
// pattern.
func (l *link) armTimer(p *pending) {
	eng := l.ep.net.raw.Engine()
	eng.After(l.est.RTO(), func() {
		if l.inflight[p.seq] != p {
			return // ACKed or abandoned; stale timer
		}
		l.retransmit(p)
	})
}

// retransmit handles one expired retransmission timer: back off, re-send,
// or abandon after MaxRetries.
func (l *link) retransmit(p *pending) {
	n := l.ep.net
	eng := n.raw.Engine()
	if !n.raw.Up(p.m.From) {
		// Down sender: hold the frame without burning attempts; recovery
		// resumes the retry chain (crash/recover churn idiom).
		l.armTimer(p)
		return
	}
	if p.attempts >= n.cfg.MaxRetries {
		delete(l.inflight, p.seq)
		n.stats.Abandons++
		n.raw.Counters().Inc("drop:rel-abandon", 1)
		if tr := n.raw.Tracer(); tr != nil {
			tr.Emit(trace.Event{
				T: int64(eng.Now()), Type: trace.EvMsgDrop,
				Node: p.m.From, Peer: p.m.To, Kind: p.m.Kind, Aux: "rel-abandon",
			})
		}
		l.pump()
		return
	}
	p.attempts++
	p.retx = true
	l.est.Backoff()
	n.stats.Retransmits++
	if tr := n.raw.Tracer(); tr != nil {
		tr.Emit(trace.Event{
			T: int64(eng.Now()), Type: trace.EvRetransmit,
			Node: p.m.From, Peer: p.m.To, Kind: p.m.Kind, Value: float64(p.attempts),
		})
	}
	n.raw.Send(phys.Message{
		From: p.m.From, To: p.m.To, Kind: p.m.Kind, Hops: p.m.Hops,
		Payload: Frame{Seq: p.seq, Hops: p.m.Hops, Inner: p.m.Payload},
	})
	l.armTimer(p)
}

// pump moves queued frames into the freed window space.
func (l *link) pump() {
	for len(l.queue) > 0 && len(l.inflight) < l.ep.net.cfg.Window {
		p := l.queue[0]
		l.queue = l.queue[1:]
		l.transmit(p)
	}
}

// recvData processes an incoming data frame: dedup, deliver, ACK.
func (l *link) recvData(m phys.Message, f Frame) {
	n := l.ep.net
	l.heard()
	// Bound the out-of-order buffer against forged/corrupted sequence
	// numbers: an honest sender never runs more than Window unacked frames,
	// so anything far beyond the cumulative mark is garbage. Dropping
	// without an ACK keeps state bounded under fuzz and attack.
	if f.Seq > l.maxRun+uint64(4*n.cfg.Window)+4 {
		n.raw.Counters().Inc("drop:rel-overflow", 1)
		return
	}
	fresh := f.Seq > l.maxRun
	if fresh {
		if _, dup := l.ahead[f.Seq]; dup {
			fresh = false
		}
	}
	if fresh {
		l.ahead[f.Seq] = struct{}{}
		for {
			if _, ok := l.ahead[l.maxRun+1]; !ok {
				break
			}
			delete(l.ahead, l.maxRun+1)
			l.maxRun++
		}
	} else {
		// Duplicate: the ACK was lost or the retransmission raced it.
		// Re-ACK (below) so the sender stops; never re-deliver.
		n.stats.Duplicates++
		n.raw.Counters().Inc("drop:duplicate", 1)
	}
	// ACKs ride the raw network unreliably; the cumulative mark lets a
	// later ACK retire frames whose own ACK was lost.
	if n.raw.Send(phys.Message{From: m.To, To: m.From, Kind: AckKind, Payload: Ack{Seq: f.Seq, Cum: l.maxRun}}) {
		n.stats.AcksSent++
	}
	if fresh && l.ep.inner != nil {
		// Rebuild the protocol-visible message. Hops reflects protocol
		// forwarding depth (sender's count + this link), not physical
		// retransmissions — stretch must not depend on loss luck.
		l.ep.inner.HandleMessage(phys.Message{
			From: m.From, To: m.To, Kind: m.Kind, Payload: f.Inner, Hops: f.Hops + 1,
		})
	}
}

// recvAck retires in-flight frames and feeds the RTO estimator.
func (l *link) recvAck(a Ack) {
	n := l.ep.net
	l.heard()
	if p, ok := l.inflight[a.Seq]; ok {
		delete(l.inflight, a.Seq)
		if !p.retx {
			// Karn's rule: only never-retransmitted frames yield unambiguous
			// RTT samples.
			rtt := n.raw.Engine().Now() - p.sentAt
			l.est.Sample(rtt)
			n.stats.RTTSamples++
			if tr := n.raw.Tracer(); tr != nil {
				tr.Emit(trace.Event{
					T: int64(n.raw.Engine().Now()), Type: trace.EvRtoUpdate,
					Node: p.m.From, Peer: p.m.To, Kind: "rto",
					Aux:   fmt.Sprintf("srtt=%.2f rttvar=%.2f", l.est.SRTT(), l.est.RTTVar()),
					Value: float64(l.est.RTO()),
				})
			}
		}
	}
	// Cumulative retirement, ascending for deterministic pump order.
	var retired []uint64
	for seq := range l.inflight {
		if seq <= a.Cum {
			retired = append(retired, seq)
		}
	}
	if len(retired) > 0 {
		sortUint64(retired)
		for _, seq := range retired {
			delete(l.inflight, seq)
		}
	}
	l.pump()
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
