// Package rel is the reliable-delivery sublayer: it wraps the fire-and-forget
// phys.Network behind the same Send/Handler seam (phys.Transport), adding
// sequence-numbered frames with receiver-side dedup, per-frame ACKs,
// retransmission driven by an adaptive RTO, and a heartbeat/lease failure
// detector that tells protocols when a physical neighbor died instead of
// letting each protocol wait out its own silence threshold.
//
// The RTO follows Jacobson's SRTT/RTTVAR estimator with Karn's rule: only
// frames that were never retransmitted contribute RTT samples (an ACK for a
// retransmitted frame is ambiguous — it may answer any of the copies), and
// each retransmission doubles the timeout up to a cap, so a dead link backs
// off instead of flooding.
package rel

import (
	"repro/internal/sim"
)

// RTOEstimator computes the retransmission timeout from smoothed RTT
// statistics (Jacobson/Karn, the TCP estimator adapted to simulator ticks):
//
//	first sample R:  SRTT = R, RTTVAR = R/2
//	later samples:   RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
//	                 SRTT   = 7/8·SRTT + 1/8·R
//	RTO = clamp(SRTT + 4·RTTVAR, [Min, Max]), then doubled per backoff
//	step (capped at Max) until the next valid sample resets the backoff.
//
// The zero value is unusable; construct with NewRTOEstimator. The estimator
// is pure state — it never touches the engine — so tests can drive it with
// hand-computed sample sequences.
type RTOEstimator struct {
	min, max sim.Time

	srtt, rttvar float64
	sampled      bool
	base         sim.Time // clamped SRTT + 4·RTTVAR, before backoff
	backoff      uint     // consecutive-retransmission exponent
}

// NewRTOEstimator returns an estimator clamping RTOs to [min, max]. Before
// the first sample the RTO is initial (itself clamped), mirroring TCP's
// conservative pre-measurement timeout.
func NewRTOEstimator(min, max, initial sim.Time) *RTOEstimator {
	e := &RTOEstimator{min: min, max: max}
	e.base = clampTime(initial, min, max)
	return e
}

// Sample feeds one valid RTT measurement (Karn's rule: callers must only
// sample frames that were never retransmitted). It recomputes the RTO and
// resets any backoff.
func (e *RTOEstimator) Sample(r sim.Time) {
	fr := float64(r)
	if !e.sampled {
		e.srtt = fr
		e.rttvar = fr / 2
		e.sampled = true
	} else {
		d := e.srtt - fr
		if d < 0 {
			d = -d
		}
		e.rttvar = 0.75*e.rttvar + 0.25*d
		e.srtt = 0.875*e.srtt + 0.125*fr
	}
	e.base = clampTime(ceilTime(e.srtt+4*e.rttvar), e.min, e.max)
	e.backoff = 0
}

// Backoff doubles the effective RTO (capped at Max) after a retransmission.
func (e *RTOEstimator) Backoff() {
	if e.RTO() < e.max {
		e.backoff++
	}
}

// RTO returns the current effective retransmission timeout, including any
// exponential backoff, clamped to [Min, Max].
func (e *RTOEstimator) RTO() sim.Time {
	r := e.base
	for i := uint(0); i < e.backoff; i++ {
		r *= 2
		if r >= e.max {
			return e.max
		}
	}
	return clampTime(r, e.min, e.max)
}

// SRTT returns the smoothed RTT (0 before the first sample).
func (e *RTOEstimator) SRTT() float64 { return e.srtt }

// RTTVar returns the smoothed RTT deviation (0 before the first sample).
func (e *RTOEstimator) RTTVar() float64 { return e.rttvar }

// Sampled reports whether at least one valid RTT sample has been absorbed.
func (e *RTOEstimator) Sampled() bool { return e.sampled }

func clampTime(v, lo, hi sim.Time) sim.Time {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ceilTime rounds a fractional tick count up: a timeout strictly shorter
// than the measured RTT would retransmit spuriously every frame.
func ceilTime(f float64) sim.Time {
	t := sim.Time(f)
	if float64(t) < f {
		t++
	}
	return t
}
