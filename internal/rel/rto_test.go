package rel

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// almost compares floats to the precision the hand computations carry.
func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestRTOEvolution pins the Jacobson estimator against hand-computed SRTT /
// RTTVAR sequences: first sample R gives SRTT=R, RTTVAR=R/2; later samples
// apply RTTVAR = 3/4·RTTVAR + 1/4·|SRTT−R| then SRTT = 7/8·SRTT + 1/8·R;
// RTO = ceil(SRTT + 4·RTTVAR) clamped to [min, max].
func TestRTOEvolution(t *testing.T) {
	cases := []struct {
		name     string
		min, max sim.Time
		samples  []sim.Time
		srtt     []float64
		rttvar   []float64
		rto      []sim.Time
	}{
		{
			// Steady then jittered: 8, 12, 4.
			// s=8:  srtt=8,      rttvar=4,     rto=8+16=24
			// s=12: rttvar=3/4·4+1/4·|8−12|=4;        srtt=7/8·8+1/8·12=8.5;     rto=⌈24.5⌉=25
			// s=4:  rttvar=3/4·4+1/4·|8.5−4|=4.125;   srtt=7/8·8.5+1/8·4=7.9375; rto=⌈24.4375⌉=25
			name: "jittered", min: 1, max: 256,
			samples: []sim.Time{8, 12, 4},
			srtt:    []float64{8, 8.5, 7.9375},
			rttvar:  []float64{4, 4, 4.125},
			rto:     []sim.Time{24, 25, 25},
		},
		{
			// Constant RTT: variance decays geometrically toward zero and the
			// RTO floor takes over.
			// s=2: srtt=2, rttvar=1, rto=6
			// s=2: rttvar=0.75, srtt=2, rto=5
			// s=2: rttvar=0.5625, srtt=2, rto=⌈4.25⌉=5
			// s=2: rttvar=0.421875, srtt=2, rto=⌈3.6875⌉ → clamp to min 4
			name: "constant-decay", min: 4, max: 256,
			samples: []sim.Time{2, 2, 2, 2},
			srtt:    []float64{2, 2, 2, 2},
			rttvar:  []float64{1, 0.75, 0.5625, 0.421875},
			rto:     []sim.Time{6, 5, 5, 4},
		},
		{
			// A spike blows the RTO through the cap.
			// s=10:  srtt=10, rttvar=5, rto=30
			// s=200: rttvar=3/4·5+1/4·190=51.25; srtt=7/8·10+1/8·200=33.75;
			//        rto=⌈238.75⌉=239 → clamp to max 64
			name: "spike-capped", min: 4, max: 64,
			samples: []sim.Time{10, 200},
			srtt:    []float64{10, 33.75},
			rttvar:  []float64{5, 51.25},
			rto:     []sim.Time{30, 64},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewRTOEstimator(tc.min, tc.max, 16)
			if e.Sampled() {
				t.Fatal("fresh estimator claims to have samples")
			}
			if got := e.RTO(); got != 16 {
				t.Fatalf("initial RTO = %d, want 16", got)
			}
			for i, s := range tc.samples {
				e.Sample(s)
				if !almost(e.SRTT(), tc.srtt[i]) {
					t.Fatalf("after sample %d (%d): SRTT = %v, want %v", i, s, e.SRTT(), tc.srtt[i])
				}
				if !almost(e.RTTVar(), tc.rttvar[i]) {
					t.Fatalf("after sample %d (%d): RTTVAR = %v, want %v", i, s, e.RTTVar(), tc.rttvar[i])
				}
				if got := e.RTO(); got != tc.rto[i] {
					t.Fatalf("after sample %d (%d): RTO = %d, want %d", i, s, got, tc.rto[i])
				}
			}
			if !e.Sampled() {
				t.Fatal("estimator lost track of having samples")
			}
		})
	}
}

// TestRTOBackoff pins the capped exponential backoff and its reset on the
// next valid sample (Karn).
func TestRTOBackoff(t *testing.T) {
	e := NewRTOEstimator(4, 100, 16)
	e.Sample(8) // srtt=8 rttvar=4 → rto=24
	want := []sim.Time{48, 96, 100, 100}
	for i, w := range want {
		e.Backoff()
		if got := e.RTO(); got != w {
			t.Fatalf("backoff %d: RTO = %d, want %d", i+1, got, w)
		}
	}
	// A fresh sample resets the backoff entirely (and updates the estimate:
	// rttvar = 3/4·4 + 0 = 3, srtt = 8 → rto = 20).
	e.Sample(8)
	if got := e.RTO(); got != 20 {
		t.Fatalf("RTO after sample = %d, want backoff reset to 20", got)
	}
}

// TestRTOInitialClamp checks the pre-sample timeout is clamped like any
// other.
func TestRTOInitialClamp(t *testing.T) {
	if got := NewRTOEstimator(8, 64, 2).RTO(); got != 8 {
		t.Fatalf("initial RTO below min: got %d, want 8", got)
	}
	if got := NewRTOEstimator(8, 64, 1000).RTO(); got != 64 {
		t.Fatalf("initial RTO above max: got %d, want 64", got)
	}
}
