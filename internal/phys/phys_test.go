package phys

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
)

func lineNet(t *testing.T, n int, opts ...Option) (*sim.Engine, *Network) {
	t.Helper()
	nodes := make([]ids.ID, n)
	for i := range nodes {
		nodes[i] = ids.ID(i + 1)
	}
	e := sim.NewEngine(1)
	net := NewNetwork(e, graph.Line(nodes), opts...)
	return e, net
}

func TestSendDeliversToAdjacent(t *testing.T) {
	e, net := lineNet(t, 3)
	var got []Message
	for _, v := range []ids.ID{1, 2, 3} {
		v := v
		net.Register(v, HandlerFunc(func(m Message) { got = append(got, m) }))
	}
	if !net.Send(Message{From: 1, To: 2, Kind: "t:x", Payload: "hi"}) {
		t.Fatal("send to adjacent node should succeed")
	}
	e.Run(0)
	if len(got) != 1 || got[0].From != 1 || got[0].To != 2 || got[0].Payload != "hi" {
		t.Fatalf("delivery wrong: %+v", got)
	}
	if got[0].Hops != 1 {
		t.Errorf("Hops = %d, want 1", got[0].Hops)
	}
	if net.Counters().Get("t:x") != 1 {
		t.Error("counter not incremented")
	}
}

func TestSendRejectsNonAdjacent(t *testing.T) {
	e, net := lineNet(t, 3)
	net.Register(1, HandlerFunc(func(Message) { t.Error("should not deliver") }))
	net.Register(3, HandlerFunc(func(Message) { t.Error("should not deliver") }))
	if net.Send(Message{From: 1, To: 3, Kind: "t:x"}) {
		t.Error("send across a non-link should fail")
	}
	e.Run(0)
}

func TestSendFromDownNode(t *testing.T) {
	e, net := lineNet(t, 2)
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(Message) { t.Error("should not deliver") }))
	net.FailNode(1)
	if net.Send(Message{From: 1, To: 2, Kind: "t:x"}) {
		t.Error("down sender should fail")
	}
	net.RecoverNode(1)
	if !net.Send(Message{From: 1, To: 2, Kind: "t:x"}) {
		t.Error("recovered sender should succeed")
	}
	net.FailNode(2) // fails after transmission: in-flight frame dropped
	e.Run(0)
	if net.Counters().Get("drop:dest-down") != 1 {
		t.Errorf("dest-down drops = %d, want 1", net.Counters().Get("drop:dest-down"))
	}
}

func TestInFlightDropWhenDestFails(t *testing.T) {
	e, net := lineNet(t, 2, WithLatency(ConstantLatency(10)))
	delivered := false
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(Message) { delivered = true }))
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.After(5, func() { net.FailNode(2) })
	e.Run(0)
	if delivered {
		t.Error("frame should be dropped when destination fails mid-flight")
	}
}

func TestInFlightDropWhenLinkRemoved(t *testing.T) {
	e, net := lineNet(t, 2, WithLatency(ConstantLatency(10)))
	delivered := false
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(m Message) { delivered = true }))
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.After(5, func() { net.RemoveLink(1, 2) })
	e.Run(0)
	if delivered {
		t.Error("frame should be dropped when the link vanishes mid-flight")
	}
	net.AddLink(1, 2)
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.Run(0)
	if !delivered {
		t.Error("restored link should deliver")
	}
	// Attribution: a vanished link is "link-gone", not "dest-down".
	if net.Counters().Get("drop:link-gone") != 1 {
		t.Errorf("link-gone drops = %d, want 1", net.Counters().Get("drop:link-gone"))
	}
	if net.Counters().Get("drop:dest-down") != 0 {
		t.Errorf("dest-down drops = %d, want 0", net.Counters().Get("drop:dest-down"))
	}
}

func TestInFlightDropWhenLinkFlaps(t *testing.T) {
	// A frame in flight when its link is removed must stay dead even if the
	// link is re-added before the delivery instant: re-adding starts a new
	// link epoch, and frames from an earlier epoch are dropped as
	// "stale-link" rather than resurrected as zombies.
	e, net := lineNet(t, 2, WithLatency(ConstantLatency(10)))
	delivered := 0
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(m Message) { delivered++ }))
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.After(5, func() { net.RemoveLink(1, 2) })
	e.After(6, func() { net.AddLink(1, 2) })
	e.Run(0)
	if delivered != 0 {
		t.Error("frame launched before a link flap must not survive it")
	}
	if net.Counters().Get("drop:stale-link") != 1 {
		t.Errorf("stale-link drops = %d, want 1", net.Counters().Get("drop:stale-link"))
	}
	// The flap is over; the new epoch carries traffic normally.
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.Run(0)
	if delivered != 1 {
		t.Error("post-flap frame should deliver on the new link epoch")
	}
}

func TestLinkFlapScheduleDeterministic(t *testing.T) {
	// Same seed, same flap workload, twice: the counter ledgers must match
	// byte for byte. This pins the epoch bookkeeping (map-backed) out of
	// the delivery schedule — a regression here would poison every
	// downstream reproducibility guarantee.
	run := func() string {
		e := sim.NewEngine(77)
		nodes := []ids.ID{1, 2, 3, 4}
		net := NewNetwork(e, graph.Ring(nodes), WithLoss(0.2), WithJitter(4))
		for _, v := range nodes {
			net.Register(v, HandlerFunc(func(Message) {}))
		}
		for i := 0; i < 40; i++ {
			i := i
			e.At(sim.Time(1+i), func() {
				net.Send(Message{From: 1, To: 2, Kind: "t:a", Payload: i})
				net.Send(Message{From: 3, To: 4, Kind: "t:b", Payload: i})
			})
			if i%8 == 3 {
				e.At(sim.Time(2+i), func() { net.RemoveLink(1, 2) })
				e.At(sim.Time(4+i), func() { net.AddLink(1, 2) })
			}
		}
		e.At(500, func() {})
		e.RunUntil(500, nil)
		return fmt.Sprintf("%v", net.Counters().Snapshot())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different ledgers:\n%s\nvs\n%s", a, b)
	}
}

func TestCorruptionDeliversGarbled(t *testing.T) {
	e, net := lineNet(t, 2, WithCorruption(1.0))
	var got []Message
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(m Message) { got = append(got, m) }))
	net.Send(Message{From: 1, To: 2, Kind: "t:x", Payload: "precious"})
	e.Run(0)
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1 (corruption must not suppress delivery)", len(got))
	}
	if _, ok := got[0].Payload.(Garbled); !ok {
		t.Errorf("payload = %#v, want Garbled", got[0].Payload)
	}
	if net.Counters().Get("drop:corrupt") != 1 {
		t.Errorf("corrupt count = %d, want 1", net.Counters().Get("drop:corrupt"))
	}
}

func TestRuntimeFaultSetters(t *testing.T) {
	e, net := lineNet(t, 2)
	delivered := 0
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(Message) { delivered++ }))
	net.SetLoss(1.0)
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.Run(0)
	if delivered != 0 {
		t.Fatal("SetLoss(1.0) must drop the frame")
	}
	net.SetLoss(0)
	net.SetCorruption(1.0)
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.Run(0)
	if delivered != 1 {
		t.Fatal("after SetLoss(0) the frame must arrive")
	}
	net.SetCorruption(0)
	net.SetJitter(4)
	start := e.Now()
	var arrival sim.Time
	net.Register(2, HandlerFunc(func(Message) { arrival = e.Now() }))
	net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	e.Run(0)
	if d := arrival - start; d < 1 || d > 5 {
		t.Errorf("jittered delivery after %d ticks, want within [1,5]", d)
	}
}

func TestLoss(t *testing.T) {
	e, net := lineNet(t, 2, WithLoss(1.0))
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(Message) { t.Error("loss=1 must drop everything") }))
	for i := 0; i < 10; i++ {
		if !net.Send(Message{From: 1, To: 2, Kind: "t:x"}) {
			t.Error("lossy send still counts as transmitted")
		}
	}
	e.Run(0)
	if net.Counters().Get("t:x") != 10 {
		t.Errorf("transmissions = %d, want 10", net.Counters().Get("t:x"))
	}
}

func TestJitterStaysWithinBound(t *testing.T) {
	e, net := lineNet(t, 2, WithLatency(ConstantLatency(5)), WithJitter(3))
	var at []sim.Time
	net.Register(1, HandlerFunc(func(Message) {}))
	net.Register(2, HandlerFunc(func(Message) { at = append(at, e.Now()) }))
	for i := 0; i < 50; i++ {
		net.Send(Message{From: 1, To: 2, Kind: "t:x"})
	}
	e.Run(0)
	for _, a := range at {
		if a < 5 || a > 8 {
			t.Errorf("delivery at %d outside [5,8]", a)
		}
	}
	if len(at) != 50 {
		t.Errorf("deliveries = %d, want 50", len(at))
	}
}

func TestBroadcast(t *testing.T) {
	e, net := lineNet(t, 3)
	heard := map[ids.ID]int{}
	for _, v := range []ids.ID{1, 2, 3} {
		v := v
		net.Register(v, HandlerFunc(func(m Message) { heard[v]++ }))
	}
	if sent := net.Broadcast(2, "t:b", nil); sent != 2 {
		t.Errorf("Broadcast sent %d, want 2", sent)
	}
	e.Run(0)
	if heard[1] != 1 || heard[3] != 1 || heard[2] != 0 {
		t.Errorf("heard = %v", heard)
	}
}

func TestNeighborsOfAndUp(t *testing.T) {
	_, net := lineNet(t, 3)
	for _, v := range []ids.ID{1, 2, 3} {
		net.Register(v, HandlerFunc(func(Message) {}))
	}
	nbrs := net.NeighborsOf(2)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Errorf("NeighborsOf(2) = %v", nbrs)
	}
	net.FailNode(3)
	nbrs = net.NeighborsOf(2)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Errorf("NeighborsOf(2) with 3 down = %v", nbrs)
	}
	if net.NeighborsOf(3) != nil {
		t.Error("down node has no neighbors")
	}
	if net.Up(3) || !net.Up(2) || net.Up(99) {
		t.Error("Up is wrong")
	}
	all := net.Nodes()
	if len(all) != 3 || all[0] != 1 {
		t.Errorf("Nodes = %v", all)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a:x", 2)
	c.Inc("a:y", 3)
	c.Inc("drop:loss", 5)
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5 (drops excluded)", c.Total())
	}
	if got := c.TotalMatching(func(k string) bool { return k == "a:x" }); got != 2 {
		t.Errorf("TotalMatching = %d, want 2", got)
	}
	snap := c.Snapshot()
	if len(snap) != 3 || snap[0].Kind != "a:x" || snap[0].String() != "a:x=2" {
		t.Errorf("Snapshot = %v", snap)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset failed")
	}
}

func TestBeaconerDiscoveryAndRepresentative(t *testing.T) {
	e, net := lineNet(t, 3)
	beacons := map[ids.ID]*Beaconer{}
	var newNbr, lost []ids.ID
	var reprSeen []ids.ID
	for _, v := range []ids.ID{1, 2, 3} {
		v := v
		b := NewBeaconer(net, v, 10)
		beacons[v] = b
		net.Register(v, HandlerFunc(func(m Message) {
			if m.Kind == BeaconKind {
				b.HandleHello(m)
			}
		}))
	}
	beacons[2].OnNewNeighbor = func(u ids.ID) { newNbr = append(newNbr, u) }
	beacons[2].OnLostNeighbor = func(u ids.ID) { lost = append(lost, u) }
	beacons[1].OnRepresentative = func(r ids.ID) { reprSeen = append(reprSeen, r) }
	for _, b := range beacons {
		b.Start()
	}
	e.RunUntil(100, nil)
	nbrs := beacons[2].Neighbors()
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("beacon neighbors of 2 = %v", nbrs)
	}
	if len(newNbr) != 2 {
		t.Errorf("OnNewNeighbor fired %d times, want 2", len(newNbr))
	}
	// Representative propagates: node 1 hears 2, and via 2's piggyback, 3.
	if beacons[1].Representative() != 3 {
		t.Errorf("node 1 representative = %v, want 3", beacons[1].Representative())
	}
	if len(reprSeen) == 0 {
		t.Error("OnRepresentative never fired")
	}
	// Fail node 3; after MissLimit intervals node 2 expires it.
	net.FailNode(3)
	e.RunUntil(300, nil)
	nbrs = beacons[2].Neighbors()
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Errorf("after failure, neighbors of 2 = %v", nbrs)
	}
	if len(lost) != 1 || lost[0] != 3 {
		t.Errorf("OnLostNeighbor = %v", lost)
	}
	for _, b := range beacons {
		b.Stop()
	}
}

func TestBeaconerStop(t *testing.T) {
	e, net := lineNet(t, 2)
	b := NewBeaconer(net, 1, 10)
	net.Register(1, HandlerFunc(func(Message) {}))
	count := 0
	net.Register(2, HandlerFunc(func(m Message) { count++ }))
	b.Start()
	e.RunUntil(35, nil)
	b.Stop()
	e.Run(0)
	if count != 3 {
		t.Errorf("beacons heard = %d, want 3 (at t=10,20,30)", count)
	}
}

func TestBeaconerIgnoresBadPayload(t *testing.T) {
	_, net := lineNet(t, 2)
	b := NewBeaconer(net, 1, 10)
	b.HandleHello(Message{From: 2, Payload: "not a hello"})
	if len(b.Neighbors()) != 0 {
		t.Error("bad payload should be ignored")
	}
}

func TestTopologyIsCloned(t *testing.T) {
	nodes := []ids.ID{1, 2}
	orig := graph.Line(nodes)
	net := NewNetwork(sim.NewEngine(1), orig)
	net.RemoveLink(1, 2)
	if !orig.HasEdge(1, 2) {
		t.Error("network must clone the topology")
	}
}
