package phys

import (
	"repro/internal/ids"
	"repro/internal/sroute"
)

// SRPacket is a source-routed protocol packet: it travels hop by hop along
// Route, one physical frame per hop. Kind tags the protocol message type
// for accounting (each hop counts one transmission of that kind, so message
// totals reflect real physical cost, as in the E6 experiment).
type SRPacket struct {
	Route   sroute.Route
	Hop     int // index of the node currently holding the packet
	Kind    string
	Payload any
}

// Courier sends and forwards source-routed packets on behalf of one node.
// Protocols embed one Courier per node and pass incoming messages to
// Handle; packets addressed to this node surface through OnDeliver.
type Courier struct {
	net  Transport
	self ids.ID
	// OnDeliver receives packets whose route terminates at this node.
	OnDeliver func(pkt SRPacket)
	// OnForward, if set, observes packets this node relays (e.g. so SSR can
	// learn routes from forwarded traffic).
	OnForward func(pkt SRPacket)
	// OnUndeliverable, if set, observes packets this node could not relay
	// (next hop not a live physical neighbor).
	OnUndeliverable func(pkt SRPacket)
}

// NewCourier returns a courier for node self on the given transport.
func NewCourier(net Transport, self ids.ID) *Courier {
	return &Courier{net: net, self: self}
}

// Send launches payload from this node along route (which must start at
// this node). It reports whether the first hop was transmitted.
func (c *Courier) Send(route sroute.Route, kind string, payload any) bool {
	if len(route) < 2 || route.Src() != c.self {
		return false
	}
	pkt := SRPacket{Route: route.Clone(), Hop: 0, Kind: kind, Payload: payload}
	return c.transmit(pkt)
}

// transmit sends pkt to the next node on its route.
func (c *Courier) transmit(pkt SRPacket) bool {
	next := pkt.Route[pkt.Hop+1]
	ok := c.net.Send(Message{From: c.self, To: next, Kind: pkt.Kind, Payload: pkt})
	if !ok && c.OnUndeliverable != nil {
		c.OnUndeliverable(pkt)
	}
	return ok
}

// Handle processes an incoming physical frame. It returns true if the frame
// was a source-routed packet (delivered here or forwarded onward); false
// means the frame is not courier traffic and the caller should handle it.
func (c *Courier) Handle(m Message) bool {
	pkt, ok := m.Payload.(SRPacket)
	if !ok {
		return false
	}
	pkt.Hop++
	// A well-formed packet arrives with Hop >= 0 (senders start at 0), so
	// anything below 1 after the increment is forged or corrupted — guard
	// before indexing, a negative index would panic.
	if pkt.Hop < 1 || pkt.Hop >= len(pkt.Route) || pkt.Route[pkt.Hop] != c.self {
		// Route corrupted or we moved; drop.
		if c.OnUndeliverable != nil {
			c.OnUndeliverable(pkt)
		}
		return true
	}
	if pkt.Hop == len(pkt.Route)-1 {
		if c.OnDeliver != nil {
			c.OnDeliver(pkt)
		}
		return true
	}
	if c.OnForward != nil {
		c.OnForward(pkt)
	}
	c.transmit(pkt)
	return true
}
