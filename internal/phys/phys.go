// Package phys simulates the physical network underneath SSR/VRR: nodes
// joined by communication links (radio links in the wireless case), per-link
// latency and loss, neighbor discovery, and churn.
//
// The physical graph E_p is the input topology; protocols send messages only
// across physical links (source routes are sequences of such single-hop
// sends). Delivery is mediated by a deterministic discrete-event engine
// (package sim), so runs are reproducible from their seed. Per-message
// accounting feeds the E6 experiment (message cost of ISPRP+flooding vs.
// linearization).
package phys

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Message is a single-hop physical-layer frame. Protocol payloads ride in
// Payload; Kind tags the protocol message type for accounting.
type Message struct {
	From, To ids.ID
	Kind     string
	Payload  any
	// Hops counts how many physical transmissions the enclosing protocol
	// operation has used so far; protocols thread it through multi-hop
	// forwards so stretch can be measured.
	Hops int
}

// Handler receives messages addressed to a node. Handlers run inside the
// simulation event loop and may send further messages.
type Handler interface {
	HandleMessage(m Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m Message)

// HandleMessage calls f(m).
func (f HandlerFunc) HandleMessage(m Message) { f(m) }

// Transport is the Send/Handler seam the protocols run over. The raw
// Network implements it directly (fire-and-forget frames); rel.Network
// wraps a Network behind the same surface, adding sequence-numbered
// delivery with ACKs, retransmission and a lease-based failure detector.
// Protocol packages accept a Transport, so "which delivery semantics" is a
// harness decision (the -transport flag), not a per-protocol rewrite.
type Transport interface {
	// Engine returns the underlying discrete-event engine.
	Engine() *sim.Engine
	// Topology returns the live physical graph.
	Topology() *graph.Graph
	// Counters returns the per-kind message accounting.
	Counters() *Counters
	// Tracer returns the transport's tracer (nil when tracing is off).
	Tracer() trace.Tracer
	// Register installs the protocol handler for a node.
	Register(v ids.ID, h Handler)
	// Nodes returns all registered node identifiers in ascending order.
	Nodes() []ids.ID
	// NeighborsOf returns the live physical neighbors of v, ascending.
	NeighborsOf(v ids.ID) []ids.ID
	// Up reports whether v is registered and not failed.
	Up(v ids.ID) bool
	// Send transmits (or for reliable transports: accepts for delivery) a
	// single-hop frame.
	Send(m Message) bool
	// Broadcast sends a frame to every live physical neighbor of from.
	Broadcast(from ids.ID, kind string, payload any) int
	// FailNode / RecoverNode drive node churn (harness-side; membership
	// experiments call them through the cluster drivers).
	FailNode(v ids.ID)
	RecoverNode(v ids.ID)
}

// LeaseFunc observes one failure-detector verdict about a physical
// neighbor of the subscribing node: up=false when the neighbor's lease
// expired (no traffic, heartbeats unanswered), up=true when traffic from a
// previously-dead neighbor resumed.
type LeaseFunc func(peer ids.ID, up bool)

// FailureDetector is the optional Transport capability the reliable
// sublayer adds: protocols subscribe per node and tear down state for dead
// neighbors on the down edge instead of waiting out their own silence
// thresholds. Raw networks do not implement it; protocols must type-assert
// and degrade gracefully.
type FailureDetector interface {
	SubscribeLeases(self ids.ID, cb LeaseFunc)
}

// LatencyModel computes the delivery delay for a frame crossing one link.
type LatencyModel func(from, to ids.ID) sim.Time

// ConstantLatency returns a model with a fixed per-link delay.
func ConstantLatency(d sim.Time) LatencyModel {
	return func(ids.ID, ids.ID) sim.Time { return d }
}

// Network is the simulated physical network. It is not safe for concurrent
// use; everything runs on the embedded event engine's single thread.
type Network struct {
	engine   *sim.Engine
	topo     *graph.Graph
	handlers map[ids.ID]Handler
	down     ids.Set

	latency     LatencyModel
	lossProb    float64
	jitter      sim.Time // uniform extra delay in [0, jitter]
	corruptProb float64  // probability a delivered frame arrives garbled

	// linkEpoch counts how many times each link has been torn down. A frame
	// carries the epoch of its link at send time; if the link churns away
	// while the frame is in flight, the epoch no longer matches at delivery
	// time and the frame is dropped as "stale-link" — even when the link has
	// been re-added in between. Without this, jitter reordering could
	// deliver a frame across a link incarnation it never traveled.
	linkEpoch map[linkKey]uint64

	counters *Counters
	tracer   trace.Tracer
}

// linkKey canonicalizes an undirected link for epoch accounting.
type linkKey struct{ U, V ids.ID }

func mkLinkKey(u, v ids.ID) linkKey {
	if u > v {
		u, v = v, u
	}
	return linkKey{U: u, V: v}
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the per-link latency model (default: constant 1 tick).
func WithLatency(m LatencyModel) Option { return func(n *Network) { n.latency = m } }

// WithJitter adds a uniform random delay in [0, j] per frame.
func WithJitter(j sim.Time) Option { return func(n *Network) { n.jitter = j } }

// WithLoss drops each frame independently with probability p.
func WithLoss(p float64) Option { return func(n *Network) { n.lossProb = p } }

// WithCorruption garbles each delivered frame independently with
// probability p (see SetCorruption).
func WithCorruption(p float64) Option { return func(n *Network) { n.corruptProb = p } }

// SetLoss changes the frame-loss probability mid-run — the hook the chaos
// harness uses for scheduled loss bursts.
func (n *Network) SetLoss(p float64) { n.lossProb = p }

// SetJitter changes the per-frame delivery jitter mid-run. Frames already
// in flight keep the delay they were assigned at send time.
func (n *Network) SetJitter(j sim.Time) { n.jitter = j }

// SetCorruption changes the frame-corruption probability mid-run. A
// corrupted frame is still delivered — its payload is replaced by Garbled —
// so the receivers' decode paths face malformed input, which they must
// ignore without panicking or leaking state.
func (n *Network) SetCorruption(p float64) { n.corruptProb = p }

// Garbled is the payload of a corrupted frame: the bits arrived, the
// content is destroyed. Every protocol's payload type switch fails on it
// and must drop the frame gracefully.
type Garbled struct{}

// WithTracer installs a tracer receiving per-frame EvMsgSend / EvMsgRecv /
// EvMsgDrop events. A nil tracer (the default) keeps the send path on the
// zero-cost branch.
func WithTracer(t trace.Tracer) Option { return func(n *Network) { n.tracer = t } }

// NewNetwork builds a network over the given topology. The topology is
// cloned; later churn does not affect the caller's graph.
func NewNetwork(engine *sim.Engine, topo *graph.Graph, opts ...Option) *Network {
	n := &Network{
		engine:    engine,
		topo:      topo.Clone(),
		handlers:  make(map[ids.ID]Handler),
		down:      ids.NewSet(),
		latency:   ConstantLatency(1),
		linkEpoch: make(map[linkKey]uint64),
		counters:  NewCounters(),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Engine returns the underlying event engine.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Topology returns the live physical graph. Mutate it only through the
// churn methods below.
func (n *Network) Topology() *graph.Graph { return n.topo }

// Counters returns the per-kind message accounting.
func (n *Network) Counters() *Counters { return n.counters }

// Tracer returns the network's tracer (nil when tracing is disabled).
// Protocol layers emit their own events — ring closure, edge delegation —
// through it, so one sink sees the whole stack.
func (n *Network) Tracer() trace.Tracer { return n.tracer }

// SetTracer installs (or with nil removes) the network's tracer.
func (n *Network) SetTracer(t trace.Tracer) { n.tracer = t }

// Register installs the protocol handler for a node.
func (n *Network) Register(v ids.ID, h Handler) {
	n.topo.AddNode(v)
	n.handlers[v] = h
}

// Nodes returns all registered node identifiers in ascending order.
func (n *Network) Nodes() []ids.ID {
	out := make([]ids.ID, 0, len(n.handlers))
	for v := range n.handlers {
		out = append(out, v)
	}
	ids.SortAsc(out)
	return out
}

// NeighborsOf returns the live physical neighbors of v (up nodes only), in
// ascending order. This models idealized link-layer neighbor discovery; the
// beacon-based discovery in beacons.go models the lossy variant.
func (n *Network) NeighborsOf(v ids.ID) []ids.ID {
	if n.down.Has(v) {
		return nil
	}
	var out []ids.ID
	for u := range n.topo.Neighbors(v) {
		if !n.down.Has(u) {
			out = append(out, u)
		}
	}
	ids.SortAsc(out)
	return out
}

// Up reports whether v is registered and not failed.
func (n *Network) Up(v ids.ID) bool {
	_, ok := n.handlers[v]
	return ok && !n.down.Has(v)
}

// Send transmits a single-hop frame from m.From to m.To. Both must be up
// and physically adjacent; otherwise the frame is dropped (counted as
// "drop"). Delivery is asynchronous at now+latency(+jitter), unless the
// loss model discards it. Send reports whether the frame was put on the
// air (not whether it will arrive).
func (n *Network) Send(m Message) bool {
	if !n.Up(m.From) || !n.topo.HasEdge(m.From, m.To) {
		n.counters.Inc("drop:no-link", 1)
		n.traceDrop(m, "no-link")
		return false
	}
	n.counters.Inc(m.Kind, 1)
	if n.lossProb > 0 && n.engine.Rand().Float64() < n.lossProb {
		n.counters.Inc("drop:loss", 1)
		n.traceDrop(m, "loss")
		return true // transmitted, never arrives
	}
	d := n.latency(m.From, m.To)
	if n.jitter > 0 {
		d += sim.Time(n.engine.Rand().Int63n(int64(n.jitter) + 1))
	}
	epoch := n.linkEpoch[mkLinkKey(m.From, m.To)]
	if n.tracer != nil {
		n.tracer.Emit(trace.Event{
			T: int64(n.engine.Now()), Type: trace.EvMsgSend,
			Node: m.From, Peer: m.To, Kind: m.Kind, Value: float64(d),
		})
	}
	m.Hops++
	n.engine.After(d, func() {
		// In-flight losses are attributed precisely: a dead receiver is
		// "dest-down", a link that churned away mid-flight is "link-gone".
		// Chaos runs rely on the distinction to tell crash faults from
		// partition faults in the drop economy.
		if !n.Up(m.To) {
			n.counters.Inc("drop:dest-down", 1)
			n.traceDrop(m, "dest-down")
			return
		}
		if !n.topo.HasEdge(m.From, m.To) {
			n.counters.Inc("drop:link-gone", 1)
			n.traceDrop(m, "link-gone")
			return
		}
		if n.linkEpoch[mkLinkKey(m.From, m.To)] != epoch {
			// The link was torn down (and re-added) while the frame was in
			// flight: the frame traveled a link incarnation that no longer
			// exists. Jitter reordering made this reachable — a late frame
			// could otherwise slip across the healed link.
			n.counters.Inc("drop:stale-link", 1)
			n.traceDrop(m, "stale-link")
			return
		}
		if n.corruptProb > 0 && n.engine.Rand().Float64() < n.corruptProb {
			// The frame arrives, its content does not: deliver Garbled so
			// the receiver's decode path sees malformed input.
			n.counters.Inc("drop:corrupt", 1)
			n.traceDrop(m, "corrupt")
			m.Payload = Garbled{}
		}
		if n.tracer != nil {
			n.tracer.Emit(trace.Event{
				T: int64(n.engine.Now()), Type: trace.EvMsgRecv,
				Node: m.To, Peer: m.From, Kind: m.Kind,
			})
		}
		if h, ok := n.handlers[m.To]; ok {
			h.HandleMessage(m)
		}
	})
	return true
}

// traceDrop emits a loss event tagged with its reason.
func (n *Network) traceDrop(m Message, reason string) {
	if n.tracer == nil {
		return
	}
	n.tracer.Emit(trace.Event{
		T: int64(n.engine.Now()), Type: trace.EvMsgDrop,
		Node: m.From, Peer: m.To, Kind: m.Kind, Aux: reason,
	})
}

// Broadcast sends a frame of the given kind to every live physical neighbor
// of from and returns the number of frames transmitted. It models a
// wireless local broadcast as individual unicasts (simulator-level
// simplification that preserves message counts per receiver).
func (n *Network) Broadcast(from ids.ID, kind string, payload any) int {
	sent := 0
	for _, u := range n.NeighborsOf(from) {
		if n.Send(Message{From: from, To: u, Kind: kind, Payload: payload}) {
			sent++
		}
	}
	return sent
}

// FailNode marks v down. Frames to or from v are dropped until RecoverNode.
func (n *Network) FailNode(v ids.ID) { n.down.Add(v) }

// RecoverNode brings a failed node back up.
func (n *Network) RecoverNode(v ids.ID) { n.down.Remove(v) }

// AddLink inserts a physical link (e.g. two radios moving into range).
func (n *Network) AddLink(u, v ids.ID) { n.topo.AddEdge(u, v) }

// RemoveLink removes a physical link. Frames already in flight across it
// are lost ("stale-link") even if the link is later re-added.
func (n *Network) RemoveLink(u, v ids.ID) {
	if n.topo.HasEdge(u, v) {
		n.linkEpoch[mkLinkKey(u, v)]++
	}
	n.topo.RemoveEdge(u, v)
}

// Counters tallies messages by kind. Kinds use a "proto:type" convention,
// e.g. "ssr:notify" or "isprp:flood".
type Counters struct {
	byKind map[string]int64
}

// NewCounters returns empty accounting.
func NewCounters() *Counters { return &Counters{byKind: make(map[string]int64)} }

// Inc adds delta transmissions of the given kind (0 registers the kind).
func (c *Counters) Inc(kind string, delta int64) { c.byKind[kind] += delta }

// Get returns the count for a kind.
func (c *Counters) Get(kind string) int64 { return c.byKind[kind] }

// Total returns the number of frames transmitted across all kinds,
// excluding the drop:* diagnostics.
func (c *Counters) Total() int64 {
	var t int64
	for kind, v := range c.byKind {
		if len(kind) >= 5 && kind[:5] == "drop:" {
			continue
		}
		t += v
	}
	return t
}

// TotalMatching returns the summed count over kinds for which match returns
// true.
func (c *Counters) TotalMatching(match func(kind string) bool) int64 {
	var t int64
	for kind, v := range c.byKind {
		if match(kind) {
			t += v
		}
	}
	return t
}

// Reset zeroes all counters.
func (c *Counters) Reset() { c.byKind = make(map[string]int64) }

// Snapshot returns a sorted, stable rendering of all counters for reports.
func (c *Counters) Snapshot() []KindCount {
	out := make([]KindCount, 0, len(c.byKind))
	for k, v := range c.byKind {
		out = append(out, KindCount{Kind: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// KindCount is one row of a counter snapshot.
type KindCount struct {
	Kind  string
	Count int64
}

// String renders "kind=count".
func (kc KindCount) String() string { return fmt.Sprintf("%s=%d", kc.Kind, kc.Count) }
