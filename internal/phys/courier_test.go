package phys

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/sroute"
)

func courierNet(t *testing.T, n int) (*Network, map[ids.ID]*Courier, map[ids.ID][]SRPacket) {
	t.Helper()
	_, net := lineNet(t, n)
	couriers := make(map[ids.ID]*Courier)
	delivered := make(map[ids.ID][]SRPacket)
	for i := 1; i <= n; i++ {
		v := ids.ID(i)
		c := NewCourier(net, v)
		c.OnDeliver = func(p SRPacket) { delivered[v] = append(delivered[v], p) }
		couriers[v] = c
		net.Register(v, HandlerFunc(func(m Message) {
			if !c.Handle(m) {
				t.Errorf("node %s got non-courier frame", v)
			}
		}))
	}
	return net, couriers, delivered
}

func TestCourierDeliversAlongRoute(t *testing.T) {
	net, couriers, delivered := courierNet(t, 4)
	r, _ := sroute.New(1, 2, 3, 4)
	if !couriers[1].Send(r, "t:pkt", "hello") {
		t.Fatal("Send failed")
	}
	net.Engine().Run(0)
	if len(delivered[4]) != 1 || delivered[4][0].Payload != "hello" {
		t.Fatalf("delivery = %v", delivered[4])
	}
	if len(delivered[2]) != 0 || len(delivered[3]) != 0 {
		t.Error("intermediate nodes must forward, not deliver")
	}
	// 3 hops = 3 transmissions of the kind.
	if net.Counters().Get("t:pkt") != 3 {
		t.Errorf("transmissions = %d, want 3", net.Counters().Get("t:pkt"))
	}
}

func TestCourierOnForward(t *testing.T) {
	net, couriers, _ := courierNet(t, 3)
	var seen []ids.ID
	couriers[2].OnForward = func(p SRPacket) { seen = append(seen, p.Route[p.Hop]) }
	r, _ := sroute.New(1, 2, 3)
	couriers[1].Send(r, "t:pkt", nil)
	net.Engine().Run(0)
	if len(seen) != 1 || seen[0] != 2 {
		t.Errorf("OnForward saw %v", seen)
	}
}

func TestCourierRejectsForeignRoute(t *testing.T) {
	_, couriers, _ := courierNet(t, 3)
	r, _ := sroute.New(2, 3)
	if couriers[1].Send(r, "t:pkt", nil) {
		t.Error("route not starting at self must be rejected")
	}
	short := sroute.Route{1}
	if couriers[1].Send(short, "t:pkt", nil) {
		t.Error("1-node route must be rejected")
	}
}

func TestCourierUndeliverableBrokenLink(t *testing.T) {
	net, couriers, delivered := courierNet(t, 4)
	var failed []SRPacket
	couriers[2].OnUndeliverable = func(p SRPacket) { failed = append(failed, p) }
	net.RemoveLink(2, 3)
	r, _ := sroute.New(1, 2, 3, 4)
	couriers[1].Send(r, "t:pkt", nil)
	net.Engine().Run(0)
	if len(delivered[4]) != 0 {
		t.Error("packet should not arrive across a broken link")
	}
	if len(failed) != 1 {
		t.Errorf("OnUndeliverable fired %d times, want 1", len(failed))
	}
}

func TestCourierCorruptHopDropped(t *testing.T) {
	net, couriers, delivered := courierNet(t, 3)
	var bad []SRPacket
	couriers[2].OnUndeliverable = func(p SRPacket) { bad = append(bad, p) }
	// Hand-craft a frame whose route does not list node 2 at the next hop.
	r, _ := sroute.New(1, 3, 2)
	net.Send(Message{From: 1, To: 2, Kind: "t:pkt", Payload: SRPacket{Route: r, Hop: 0, Kind: "t:pkt"}})
	net.Engine().Run(0)
	if len(bad) != 1 {
		t.Errorf("corrupt packet should be flagged, got %v", bad)
	}
	if len(delivered[2]) != 0 {
		t.Error("corrupt packet must not be delivered")
	}
}

func TestCourierRouteIsCloned(t *testing.T) {
	net, couriers, delivered := courierNet(t, 3)
	r, _ := sroute.New(1, 2, 3)
	couriers[1].Send(r, "t:pkt", nil)
	r[1] = 99 // mutate after send: must not affect the in-flight packet
	net.Engine().Run(0)
	if len(delivered[3]) != 1 {
		t.Error("mutating the caller's route corrupted the packet")
	}
}
