package phys

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
)

func snapshotPositions(m *Mobility) map[ids.ID][2]float64 {
	out := make(map[ids.ID][2]float64, len(m.Positions()))
	for v, p := range m.Positions() {
		out[v] = p
	}
	return out
}

func TestMobilityMovesAndRewires(t *testing.T) {
	e := sim.NewEngine(5)
	nodes := graph.MakeIDs(16, graph.RandomIDs, e.Rand())
	radius := 0.4
	topo, pos := graph.UnitDisk(nodes, radius, e.Rand())
	net := NewNetwork(e, topo)
	m := NewMobility(net, pos, radius)
	m.Speed = 0.05
	m.Interval = 10
	var ups, downs int
	m.OnLinkUp = func(a, b ids.ID) { ups++ }
	m.OnLinkDown = func(a, b ids.ID) { downs++ }
	m.Start()
	before := snapshotPositions(m)
	e.RunUntil(500, nil)
	m.Stop()
	moved := 0
	for v, p := range m.Positions() {
		if p != before[v] {
			moved++
		}
		if p[0] < 0 || p[0] > 1 || p[1] < 0 || p[1] > 1 {
			t.Errorf("node %s left the unit square: %v", v, p)
		}
	}
	if moved < len(nodes)/2 {
		t.Errorf("only %d nodes moved", moved)
	}
	if !net.Topology().Connected() {
		t.Error("mobility must preserve physical connectivity")
	}
	if int64(ups+downs) != m.LinkChanges() {
		t.Errorf("callback count %d != LinkChanges %d", ups+downs, m.LinkChanges())
	}
	if m.LinkChanges() == 0 {
		t.Error("expected some link churn at this speed")
	}
}

func TestMobilityStopHaltsMovement(t *testing.T) {
	e := sim.NewEngine(9)
	nodes := graph.MakeIDs(8, graph.RandomIDs, e.Rand())
	topo, pos := graph.UnitDisk(nodes, 0.5, e.Rand())
	net := NewNetwork(e, topo)
	m := NewMobility(net, pos, 0.5)
	m.Interval = 10
	m.Start()
	e.RunUntil(100, nil)
	m.Stop()
	e.Run(0)
	frozen := snapshotPositions(m)
	e.RunUntil(e.Now()+500, nil)
	for v, p := range m.Positions() {
		if p != frozen[v] {
			t.Errorf("node %s moved after Stop", v)
		}
	}
}

func TestMobilityLinksMatchRadius(t *testing.T) {
	e := sim.NewEngine(13)
	nodes := graph.MakeIDs(12, graph.RandomIDs, e.Rand())
	radius := 0.35
	topo, pos := graph.UnitDisk(nodes, radius, e.Rand())
	net := NewNetwork(e, topo)
	m := NewMobility(net, pos, radius)
	m.Speed = 0.03
	m.Interval = 10
	m.Start()
	e.RunUntil(400, nil)
	m.Stop()
	// Every in-range pair must be linked; out-of-range links are allowed
	// only when needed for connectivity.
	rr := radius * radius
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			pa, pb := m.Positions()[a], m.Positions()[b]
			dx, dy := pa[0]-pb[0], pa[1]-pb[1]
			if dx*dx+dy*dy <= rr && !net.Topology().HasEdge(a, b) {
				t.Errorf("in-range pair %s-%s not linked", a, b)
			}
		}
	}
}
