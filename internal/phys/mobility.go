package phys

import (
	"math"

	"repro/internal/ids"
	"repro/internal/sim"
)

// Mobility moves nodes of a unit-disk network with the random-waypoint
// model: each node picks a uniform waypoint in the unit square, travels
// toward it at its speed, then picks the next. Radio links are recomputed
// after every movement step; link changes surface through the network's
// topology (and through the optional callbacks), which is what drives the
// MANET experiments — SSR/VRR must keep the virtual ring consistent while
// the physical graph changes underneath.
type Mobility struct {
	net    *Network
	pos    map[ids.ID][2]float64
	wp     map[ids.ID][2]float64
	radius float64
	// Speed is distance traveled per movement step.
	Speed float64
	// Interval is the simulated time between movement steps.
	Interval sim.Time

	// OnLinkUp / OnLinkDown, if set, observe link changes.
	OnLinkUp, OnLinkDown func(a, b ids.ID)

	linkChanges int64
	stopped     bool
}

// NewMobility creates (but does not start) a mobility process over the
// given initial positions (e.g. from graph.UnitDisk) and radio radius.
func NewMobility(net *Network, positions map[ids.ID][2]float64, radius float64) *Mobility {
	pos := make(map[ids.ID][2]float64, len(positions))
	for v, p := range positions {
		pos[v] = p
	}
	return &Mobility{
		net:      net,
		pos:      pos,
		wp:       make(map[ids.ID][2]float64, len(positions)),
		radius:   radius,
		Speed:    0.01,
		Interval: 16,
	}
}

// Positions returns the live positions (read-only by convention).
func (m *Mobility) Positions() map[ids.ID][2]float64 { return m.pos }

// LinkChanges returns how many link up/down events have occurred.
func (m *Mobility) LinkChanges() int64 { return m.linkChanges }

// Start begins periodic movement.
func (m *Mobility) Start() {
	for v := range m.pos {
		m.wp[v] = m.randomWaypoint()
	}
	m.net.Engine().After(m.Interval, m.step)
}

// Stop halts movement after the current step.
func (m *Mobility) Stop() { m.stopped = true }

func (m *Mobility) randomWaypoint() [2]float64 {
	r := m.net.Engine().Rand()
	return [2]float64{r.Float64(), r.Float64()}
}

func (m *Mobility) step() {
	if m.stopped {
		return
	}
	for v, p := range m.pos {
		t := m.wp[v]
		dx, dy := t[0]-p[0], t[1]-p[1]
		d := math.Hypot(dx, dy)
		if d <= m.Speed {
			m.pos[v] = t
			m.wp[v] = m.randomWaypoint()
			continue
		}
		m.pos[v] = [2]float64{p[0] + dx/d*m.Speed, p[1] + dy/d*m.Speed}
	}
	m.recomputeLinks()
	m.net.Engine().After(m.Interval, m.step)
}

// recomputeLinks diffs the unit-disk graph against the network topology and
// applies link changes. To keep the experiments meaningful the network is
// never allowed to partition: links whose removal would disconnect the
// graph are kept (modeling a minimum-connectivity deployment, consistent
// with the paper's standing assumption of a connected physical network).
func (m *Mobility) recomputeLinks() {
	nodes := make([]ids.ID, 0, len(m.pos))
	for v := range m.pos {
		nodes = append(nodes, v)
	}
	ids.SortAsc(nodes)
	rr := m.radius * m.radius
	topo := m.net.Topology()
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			pa, pb := m.pos[a], m.pos[b]
			dx, dy := pa[0]-pb[0], pa[1]-pb[1]
			inRange := dx*dx+dy*dy <= rr
			has := topo.HasEdge(a, b)
			switch {
			case inRange && !has:
				m.net.AddLink(a, b)
				m.linkChanges++
				if m.OnLinkUp != nil {
					m.OnLinkUp(a, b)
				}
			case !inRange && has:
				// Keep the link if removing it would disconnect the graph.
				topo.RemoveEdge(a, b)
				if !topo.Connected() {
					topo.AddEdge(a, b)
					continue
				}
				m.linkChanges++
				if m.OnLinkDown != nil {
					m.OnLinkDown(a, b)
				}
			}
		}
	}
}
