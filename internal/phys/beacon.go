package phys

import (
	"repro/internal/ids"
	"repro/internal/sim"
)

// Hello is the payload of a periodic hello beacon. VRR-style protocols
// piggyback the address of the current representative on these beacons to
// detect global inconsistency; the linearized variants leave Representative
// zero and never need it.
type Hello struct {
	// Representative is the largest node address the sender has heard of
	// (VRR's flooding-equivalent consistency mechanism).
	Representative ids.ID
	// Seq numbers beacons so receivers can expire stale neighbor entries.
	Seq uint64
}

// BeaconKind is the counter kind used for hello beacons.
const BeaconKind = "phys:hello"

// Beaconer periodically broadcasts hello beacons for one node and tracks
// the neighbors heard from. It models VRR's link-layer neighbor discovery;
// entries expire after MissLimit beacon intervals without a hello.
type Beaconer struct {
	net      Transport
	self     ids.ID
	interval sim.Time
	// MissLimit is how many intervals a neighbor may stay silent before it
	// is expired (default 3).
	MissLimit int

	seq       uint64
	lastHeard map[ids.ID]sim.Time
	repr      ids.ID // largest representative heard, including self
	stopped   bool

	// OnNewNeighbor, if set, fires when a neighbor is heard for the first
	// time (or again after expiry).
	OnNewNeighbor func(u ids.ID)
	// OnLostNeighbor, if set, fires when a neighbor entry expires.
	OnLostNeighbor func(u ids.ID)
	// OnRepresentative, if set, fires when a strictly larger representative
	// is learned.
	OnRepresentative func(r ids.ID)
}

// NewBeaconer creates (but does not start) a beaconer for self.
func NewBeaconer(net Transport, self ids.ID, interval sim.Time) *Beaconer {
	return &Beaconer{
		net:       net,
		self:      self,
		interval:  interval,
		MissLimit: 3,
		lastHeard: make(map[ids.ID]sim.Time),
		repr:      self,
	}
}

// Start begins periodic beaconing. The first beacon goes out after one
// interval (nodes typically jitter their start by scheduling Start itself).
func (b *Beaconer) Start() {
	b.net.Engine().After(b.interval, b.tick)
}

// Stop halts beaconing after the current tick.
func (b *Beaconer) Stop() { b.stopped = true }

func (b *Beaconer) tick() {
	if b.stopped {
		return
	}
	if !b.net.Up(b.self) {
		// A down radio sends no beacons but the chain stays scheduled, so a
		// recovered node resumes hello traffic (crash/recover churn).
		b.net.Engine().After(b.interval, b.tick)
		return
	}
	b.seq++
	b.net.Broadcast(b.self, BeaconKind, Hello{Representative: b.repr, Seq: b.seq})
	b.expire()
	b.net.Engine().After(b.interval, b.tick)
}

func (b *Beaconer) expire() {
	deadline := b.net.Engine().Now() - sim.Time(b.MissLimit)*b.interval
	for u, at := range b.lastHeard {
		if at < deadline {
			delete(b.lastHeard, u)
			if b.OnLostNeighbor != nil {
				b.OnLostNeighbor(u)
			}
		}
	}
}

// HandleHello processes a received hello beacon. The owning protocol's
// message handler must route BeaconKind messages here.
func (b *Beaconer) HandleHello(m Message) {
	hello, ok := m.Payload.(Hello)
	if !ok {
		return
	}
	_, known := b.lastHeard[m.From]
	b.lastHeard[m.From] = b.net.Engine().Now()
	if !known && b.OnNewNeighbor != nil {
		b.OnNewNeighbor(m.From)
	}
	// Adopt a larger representative (VRR consistency piggyback). The sender
	// itself is also a representative candidate.
	cand := hello.Representative
	if m.From > cand {
		cand = m.From
	}
	if cand > b.repr {
		b.repr = cand
		if b.OnRepresentative != nil {
			b.OnRepresentative(cand)
		}
	}
}

// Neighbors returns the currently known live neighbors in ascending order.
func (b *Beaconer) Neighbors() []ids.ID {
	out := make([]ids.ID, 0, len(b.lastHeard))
	for u := range b.lastHeard {
		out = append(out, u)
	}
	ids.SortAsc(out)
	return out
}

// Representative returns the largest address heard so far (at least self).
func (b *Beaconer) Representative() ids.ID { return b.repr }
