package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	s := telemetry.NewServer()
	tr := s.Tracer()
	tr.Emit(trace.Event{T: 1, Type: trace.EvMsgSend, Node: 3, Peer: 9, Kind: "ssr:notify"})
	tr.Emit(trace.Event{T: 1, Type: trace.EvMsgSend, Node: 3, Peer: 7, Kind: "ssr:notify"})
	tr.Emit(trace.Event{T: 1, Type: trace.EvMsgDrop, Node: 7, Peer: 3, Kind: "ssr:ack", Aux: "loss"})
	tr.Emit(trace.Event{T: 2, Type: trace.EvEdgeAdd, Node: 3, Peer: 9})
	tr.Emit(trace.Event{T: 2, Type: trace.EvRoundEnd, Value: 5})
	for kind, val := range map[string]float64{
		"distance": 4, "connected": 1, "multi-left": 2, "multi-right": 1, "edges": 9,
	} {
		tr.Emit(trace.Event{T: 7, Type: trace.EvProbe, Kind: kind, Value: val})
	}

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr

	body, ctype := get(t, base+"/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("metrics content-type = %q", ctype)
	}
	for _, want := range []string{
		`ssr_messages_sent_total{kind="ssr:notify"} 2`,
		`ssr_node_messages_sent_total{node="3"} 2`,
		`ssr_messages_dropped_total{reason="loss"} 1`,
		`ssr_rounds_total 1`,
		`ssr_round_edge_churn_count 1`,
		`ssr_probe{metric="distance"} 4`,
		"# TYPE ssr_messages_sent counter",
		"# EOF",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, ctype = get(t, base+"/probe")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("probe content-type = %q", ctype)
	}
	var probe struct {
		Present  bool `json:"present"`
		Distance int  `json:"distance"`
		Sample   struct {
			Round     int
			Connected bool
			Edges     int
		} `json:"sample"`
	}
	if err := json.Unmarshal([]byte(body), &probe); err != nil {
		t.Fatalf("probe json: %v in %s", err, body)
	}
	if !probe.Present || probe.Distance != 4 || probe.Sample.Round != 7 || !probe.Sample.Connected || probe.Sample.Edges != 9 {
		t.Errorf("probe = %+v", probe)
	}

	body, _ = get(t, base+"/healthz")
	var health struct {
		Status string `json:"status"`
		Events int64  `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz json: %v", err)
	}
	if health.Status != "ok" || health.Events != 10 {
		t.Errorf("healthz = %+v", health)
	}
}

func TestFoldProbeDecomposition(t *testing.T) {
	s := telemetry.NewServer()
	tr := s.Tracer()
	// A modern round carries the scalar plus its decomposition: the
	// reassembled sample must hold the true Missing/Surplus split, not the
	// parked scalar.
	tr.Emit(trace.Event{T: 5, Type: trace.EvProbe, Kind: "distance", Value: 15})
	tr.Emit(trace.Event{T: 5, Type: trace.EvProbe, Kind: "missing", Value: 2})
	tr.Emit(trace.Event{T: 5, Type: trace.EvProbe, Kind: "surplus", Value: 13})
	sample, ok := s.LastProbe()
	if !ok || sample.Round != 5 || sample.Missing != 2 || sample.Surplus != 13 || sample.Distance() != 15 {
		t.Errorf("sample = %+v ok=%v, want missing=2 surplus=13", sample, ok)
	}
	// An older-trace round with only the scalar falls back to parking it in
	// Surplus — and must not inherit the previous round's decomposition.
	tr.Emit(trace.Event{T: 6, Type: trace.EvProbe, Kind: "distance", Value: 3})
	sample, ok = s.LastProbe()
	if !ok || sample.Round != 6 || sample.Missing != 0 || sample.Surplus != 3 {
		t.Errorf("fallback sample = %+v ok=%v, want missing=0 surplus=3", sample, ok)
	}
}

func TestProbeEmptyBeforeSamples(t *testing.T) {
	s := telemetry.NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	body, _ := get(t, "http://"+addr+"/probe")
	var probe struct {
		Present bool `json:"present"`
	}
	if err := json.Unmarshal([]byte(body), &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Present {
		t.Error("probe must report present=false before any sample")
	}
}

// TestCollectorConcurrentWithScrapes emits from parallel goroutines while
// scraping — the live-scrape-mid-bootstrap shape. Meaningful under -race.
func TestCollectorConcurrentWithScrapes(t *testing.T) {
	s := telemetry.NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := s.Tracer()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(trace.Event{T: int64(i), Type: trace.EvMsgSend, Node: 1, Kind: "k"})
				tr.Emit(trace.Event{T: int64(i), Type: trace.EvProbe, Kind: "distance", Value: float64(i % 7)})
				tr.Emit(trace.Event{T: int64(i), Type: trace.EvRoundEnd})
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		get(t, "http://"+addr+"/metrics")
		get(t, "http://"+addr+"/probe")
	}
	wg.Wait()
	if sample, ok := s.LastProbe(); !ok || sample.Round < 0 {
		t.Errorf("last probe = %+v ok=%v", sample, ok)
	}
}

func TestCollectorFoldsShardAndGaugeEvents(t *testing.T) {
	s := telemetry.NewServer()
	tr := s.Tracer()
	tr.Emit(trace.Event{T: 0, Type: trace.EvShardRound, Kind: "0", Aux: "interior", Value: 12})
	tr.Emit(trace.Event{T: 1, Type: trace.EvShardRound, Kind: "0", Aux: "interior", Value: 3})
	tr.Emit(trace.Event{T: 1, Type: trace.EvShardRound, Kind: "1", Aux: "boundary", Value: 2})
	tr.Emit(trace.Event{T: 0, Type: trace.EvShardRound, Kind: "policy", Aux: "locality", Value: 8})
	tr.Emit(trace.Event{T: 1, Type: trace.EvShardRound, Kind: "policy", Aux: "locality", Value: 9})
	tr.Emit(trace.Event{T: 1, Type: trace.EvGauge, Kind: "parallel/interior-activations", Value: 15})
	tr.Emit(trace.Event{T: 2, Type: trace.EvGauge, Kind: "parallel/interior-activations", Value: 4})

	reg := s.Registry()
	if v := reg.Counter("ssr_shard_activations", "shard", "0", "phase", "interior").Value(); v != 15 {
		t.Errorf("shard 0 interior activations = %v, want 15", v)
	}
	if v := reg.Counter("ssr_shard_activations", "shard", "1", "phase", "boundary").Value(); v != 2 {
		t.Errorf("shard 1 boundary activations = %v, want 2", v)
	}
	// The "policy" stamp must not be folded as a shard row: it counts
	// rounds per policy and tracks the latest shard count instead.
	if v := reg.Counter("ssr_partition_rounds", "policy", "locality").Value(); v != 2 {
		t.Errorf("partition rounds = %v, want 2", v)
	}
	if v := reg.Gauge("ssr_partition_shards", "policy", "locality").Value(); v != 9 {
		t.Errorf("partition shards = %v, want latest value 9", v)
	}
	if v := reg.Counter("ssr_shard_activations", "shard", "policy", "phase", "locality").Value(); v != 0 {
		t.Errorf("policy stamp leaked into shard activations: %v", v)
	}
	// Gauges keep the latest reading, not a sum.
	if v := reg.Gauge("ssr_gauge", "metric", "parallel/interior-activations").Value(); v != 4 {
		t.Errorf("gauge = %v, want latest value 4", v)
	}
}

func TestCollectorFoldsSpanEvents(t *testing.T) {
	s := telemetry.NewServer()
	tr := s.Tracer()
	tr.Emit(trace.Event{T: 0, Type: trace.EvSpan, Kind: "phase/prepare", Value: 2e9})
	tr.Emit(trace.Event{T: 1, Type: trace.EvSpan, Kind: "phase/prepare", Value: 1e9})
	tr.Emit(trace.Event{T: 0, Type: trace.EvSpan, Kind: "shard/execute", Aux: "3", Value: 5e8})
	tr.Emit(trace.Event{T: 0, Type: trace.EvSpan, Kind: "snapshot/rebuild", Aux: "memory", Value: 1e9})
	tr.Emit(trace.Event{T: 0, Type: trace.EvSpan, Kind: "imbalance", Value: 1.75})
	tr.Emit(trace.Event{T: 1, Type: trace.EvSpan, Kind: "imbalance", Value: 1.25})
	tr.Emit(trace.Event{T: 0, Type: trace.EvSpan, Kind: "allocs", Value: 1024})
	tr.Emit(trace.Event{T: 1, Type: trace.EvSpan, Kind: "allocs", Value: 1024})
	tr.Emit(trace.Event{T: 0, Type: trace.EvSpan, Kind: "mallocs", Value: 10})
	tr.Emit(trace.Event{T: 0, Type: trace.EvSpan, Kind: "gc", Value: 2})
	tr.Emit(trace.Event{T: 5, Type: trace.EvSimFire, Value: 42})

	reg := s.Registry()
	if v := reg.Counter("ssr_phase_seconds", "phase", "prepare").Value(); v != 3 {
		t.Errorf("phase prepare seconds = %v, want 3", v)
	}
	if v := reg.Counter("ssr_shard_busy_seconds", "shard", "3", "phase", "execute").Value(); v != 0.5 {
		t.Errorf("shard busy seconds = %v, want 0.5", v)
	}
	if v := reg.Counter("ssr_phase_seconds", "phase", "snapshot/rebuild").Value(); v != 1 {
		t.Errorf("snapshot rebuild seconds = %v, want 1", v)
	}
	// Imbalance is a gauge: latest reading wins.
	if v := reg.Gauge("ssr_shard_imbalance").Value(); v != 1.25 {
		t.Errorf("imbalance = %v, want 1.25", v)
	}
	if v := reg.Counter("ssr_alloc_bytes").Value(); v != 2048 {
		t.Errorf("alloc bytes = %v, want 2048", v)
	}
	if v := reg.Counter("ssr_mallocs").Value(); v != 10 {
		t.Errorf("mallocs = %v, want 10", v)
	}
	if v := reg.Counter("ssr_gc_cycles").Value(); v != 2 {
		t.Errorf("gc cycles = %v, want 2", v)
	}
	if v := reg.Gauge("ssr_event_queue_depth").Value(); v != 42 {
		t.Errorf("queue depth = %v, want 42", v)
	}
}
