// Package telemetry serves live observability for a running simulation:
// an HTTP endpoint exposing the metrics registry in OpenMetrics text
// format (/metrics), a liveness check (/healthz), and the latest
// convergence-probe sample as JSON (/probe). The cmd/ tools wire it behind
// a -listen flag, so a long-running MANET-churn bootstrap can be scraped
// by Prometheus or curled mid-run.
//
// The server owns a collector — a trace.Tracer that folds every event into
// a metrics.Registry, a trace.StatsSink and the latest probe sample. When
// -listen is unset nothing is constructed and the simulation keeps its
// nil-tracer fast path.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Server is the live telemetry endpoint. Create with NewServer, attach
// Tracer() to the simulation, then Start.
type Server struct {
	reg   *metrics.Registry
	stats *trace.StatsSink

	mu         sync.Mutex
	last       trace.ProbeSample
	haveProbe  bool
	decomposed bool // this round carried missing/surplus events
	probeAt    time.Time
	churn      float64 // edge adds+delegates since the last round end

	started time.Time
	events  *metrics.Counter

	httpSrv *http.Server
	lis     net.Listener
}

// NewServer builds a server with a fresh registry and stats sink.
func NewServer() *Server {
	reg := metrics.NewRegistry()
	reg.Describe("ssr_trace_events", "trace events observed, by event type")
	reg.Describe("ssr_messages_sent", "physical frames put on the air, by kind")
	reg.Describe("ssr_messages_dropped", "physical frames lost, by reason")
	reg.Describe("ssr_node_messages_sent", "physical frames put on the air, by sending node")
	reg.Describe("ssr_rounds", "synchronous rounds completed")
	reg.Describe("ssr_round_edge_churn", "virtual-edge adds+delegations per round")
	reg.Describe("ssr_probe", "latest convergence-probe reading, by metric")
	reg.Describe("ssr_gauge", "latest generic gauge reading, by metric")
	reg.Describe("ssr_shard_activations", "sharded-executor activations, by shard and phase")
	reg.Describe("ssr_invariant_checks", "chaos-harness invariant checks, by invariant")
	reg.Describe("ssr_invariant_violations", "chaos-harness invariant violations, by invariant")
	reg.Describe("ssr_retransmits", "reliable-sublayer retransmissions, by frame kind")
	reg.Describe("ssr_rto_ticks", "latest adaptive RTO reading, by sender node")
	reg.Describe("ssr_lease_verdicts", "failure-detector verdicts, by direction")
	reg.Describe("ssr_phase_seconds", "profiler wall time inside executor phases, by phase")
	reg.Describe("ssr_shard_busy_seconds", "profiler per-shard busy time in the parallel phases, by shard and phase")
	reg.Describe("ssr_shard_imbalance", "latest per-round load-imbalance ratio (max/mean shard busy)")
	reg.Describe("ssr_alloc_bytes", "profiler heap bytes allocated during rounds")
	reg.Describe("ssr_mallocs", "profiler heap objects allocated during rounds")
	reg.Describe("ssr_gc_cycles", "profiler GC cycles completed during rounds")
	reg.Describe("ssr_event_queue_depth", "latest engine event-queue depth after a firing")
	return &Server{
		reg:     reg,
		stats:   trace.NewStatsSink(),
		started: time.Now(),
		events:  reg.Counter("ssr_trace_events_all"),
	}
}

// Registry exposes the server's metrics registry so harnesses can add
// their own series next to the trace-fed ones.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Stats exposes the server's aggregating sink.
func (s *Server) Stats() *trace.StatsSink { return s.stats }

// collector folds trace events into the registry, the stats sink, and the
// latest-probe state.
type collector struct {
	s *Server
}

// Emit implements trace.Tracer.
func (c collector) Emit(e trace.Event) {
	s := c.s
	s.stats.Emit(e)
	s.events.Inc()
	s.reg.Counter("ssr_trace_events", "ev", e.Type.String()).Inc()
	switch e.Type {
	case trace.EvMsgSend:
		s.reg.Counter("ssr_messages_sent", "kind", e.Kind).Inc()
		s.reg.Counter("ssr_node_messages_sent", "node", e.Node.String()).Inc()
	case trace.EvMsgDrop:
		s.reg.Counter("ssr_messages_dropped", "reason", e.Aux).Inc()
	case trace.EvEdgeAdd, trace.EvEdgeDelegate:
		s.mu.Lock()
		s.churn++
		s.mu.Unlock()
	case trace.EvRoundEnd:
		s.reg.Counter("ssr_rounds").Inc()
		s.mu.Lock()
		churn := s.churn
		s.churn = 0
		s.mu.Unlock()
		s.reg.Histogram("ssr_round_edge_churn", metrics.ExponentialBuckets(1, 2, 12)).Observe(churn)
	case trace.EvProbe:
		s.reg.Gauge("ssr_probe", "metric", e.Kind).Set(e.Value)
		s.foldProbe(e)
	case trace.EvGauge:
		s.reg.Gauge("ssr_gauge", "metric", e.Kind).Set(e.Value)
	case trace.EvShardRound:
		// Kind "policy" is the executor's per-round partition stamp (Aux =
		// policy name, Value = shard count); numeric Kinds carry per-shard
		// activation counts.
		if e.Kind == "policy" {
			s.reg.Counter("ssr_partition_rounds", "policy", e.Aux).Inc()
			s.reg.Gauge("ssr_partition_shards", "policy", e.Aux).Set(e.Value)
		} else {
			s.reg.Counter("ssr_shard_activations", "shard", e.Kind, "phase", e.Aux).Add(e.Value)
		}
	case trace.EvInvariant:
		s.reg.Counter("ssr_invariant_checks", "invariant", e.Kind).Inc()
		if e.Value != 0 {
			s.reg.Counter("ssr_invariant_violations", "invariant", e.Kind).Inc()
		}
	case trace.EvRetransmit:
		s.reg.Counter("ssr_retransmits", "kind", e.Kind).Inc()
	case trace.EvRtoUpdate:
		s.reg.Gauge("ssr_rto_ticks", "node", e.Node.String()).Set(e.Value)
	case trace.EvLeaseExpire:
		s.reg.Counter("ssr_lease_verdicts", "verdict", e.Aux).Inc()
	case trace.EvSimFire:
		s.reg.Gauge("ssr_event_queue_depth").Set(e.Value)
	case trace.EvSpan:
		s.foldSpan(e)
	}
}

// foldSpan folds one profiler span into the perf series. Timing spans
// arrive in nanoseconds and are exported in seconds, matching the
// OpenMetrics unit conventions.
func (s *Server) foldSpan(e trace.Event) {
	const nsPerSec = 1e9
	switch {
	case strings.HasPrefix(e.Kind, "phase/"):
		s.reg.Counter("ssr_phase_seconds", "phase", strings.TrimPrefix(e.Kind, "phase/")).Add(e.Value / nsPerSec)
	case strings.HasPrefix(e.Kind, "shard/"):
		s.reg.Counter("ssr_shard_busy_seconds", "shard", e.Aux, "phase", strings.TrimPrefix(e.Kind, "shard/")).Add(e.Value / nsPerSec)
	case e.Kind == "imbalance":
		s.reg.Gauge("ssr_shard_imbalance").Set(e.Value)
	case e.Kind == "allocs":
		s.reg.Counter("ssr_alloc_bytes").Add(e.Value)
	case e.Kind == "mallocs":
		s.reg.Counter("ssr_mallocs").Add(e.Value)
	case e.Kind == "gc":
		s.reg.Counter("ssr_gc_cycles").Add(e.Value)
	default:
		// Ad-hoc spans (e.g. snapshot/rebuild) fold into the phase series
		// under their full name, so nothing measured is dropped.
		s.reg.Counter("ssr_phase_seconds", "phase", e.Kind).Add(e.Value / nsPerSec)
	}
}

// foldProbe reassembles ProbeSample fields from the per-metric EvProbe
// events trace.Probe emits (all sharing one T = round index).
func (s *Server) foldProbe(e trace.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	round := int(e.T)
	if !s.haveProbe || round != s.last.Round {
		s.last = trace.ProbeSample{Round: round}
		s.haveProbe = true
		s.decomposed = false
	}
	switch e.Kind {
	case "distance":
		// The scalar is Missing+Surplus; when this round also carries the
		// decomposition events those take over, otherwise park it in
		// Surplus with Missing zero (older traces).
		if !s.decomposed {
			s.last.Missing = 0
			s.last.Surplus = int(e.Value)
		}
	case "missing":
		if !s.decomposed {
			s.last.Surplus = 0
			s.decomposed = true
		}
		s.last.Missing = int(e.Value)
	case "surplus":
		if !s.decomposed {
			s.last.Missing = 0
			s.decomposed = true
		}
		s.last.Surplus = int(e.Value)
	case "connected":
		s.last.Connected = e.Value != 0
	case "multi-left":
		s.last.MultiLeft = int(e.Value)
	case "multi-right":
		s.last.MultiRight = int(e.Value)
	case "edges":
		s.last.Edges = int(e.Value)
	}
	s.probeAt = time.Now()
}

// Tracer returns the event collector feeding this server. Tee it with the
// run's other sinks.
func (s *Server) Tracer() trace.Tracer { return collector{s} }

// LastProbe returns the most recent reassembled probe sample.
func (s *Server) LastProbe() (trace.ProbeSample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.haveProbe
}

// Handler returns the telemetry mux, also usable under a larger server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/probe", s.handleProbe)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteOpenMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"uptime_s":  time.Since(s.started).Seconds(),
		"events":    int64(s.events.Value()),
		"msgs_sent": s.stats.TotalSent(),
	})
}

// probeResponse is the /probe JSON shape: the latest sample plus the
// derived scalar the convergence claim is about.
type probeResponse struct {
	Present    bool              `json:"present"`
	Sample     trace.ProbeSample `json:"sample,omitempty"`
	Distance   int               `json:"distance"`
	AgeSeconds float64           `json:"age_s"`
}

func (s *Server) handleProbe(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := probeResponse{Present: s.haveProbe, Sample: s.last, Distance: s.last.Distance()}
	if s.haveProbe {
		resp.AgeSeconds = time.Since(s.probeAt).Seconds()
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// Start binds addr (":0" picks a free port) and serves in a background
// goroutine. It returns the bound address, so callers can print a curlable
// URL even for ":0".
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: %w", err)
	}
	s.lis = lis
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpSrv.Serve(lis); err != nil && err != http.ErrServerClosed {
			// The listener died under us; nothing to do mid-simulation.
			_ = err
		}
	}()
	return lis.Addr().String(), nil
}

// Close shuts the HTTP server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}
