package trace_test

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/linearize"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vring"
)

func TestRenderRingLoopy(t *testing.T) {
	out := trace.RenderRing(vring.LoopyExample())
	if !strings.Contains(out, "ring 1:") {
		t.Errorf("missing ring header: %q", out)
	}
	if strings.Contains(out, "ring 2:") {
		t.Error("loopy state is a single (wrong) ring")
	}
	if !strings.HasPrefix(out, "ring 1: 1 -> 9 -> 18 -> 25 -> 4 -> 13 -> 21 -> (1)") {
		t.Errorf("loopy cycle rendering: %q", out)
	}
}

func TestRenderRingSeparate(t *testing.T) {
	out := trace.RenderRing(vring.SeparateRingsExample())
	if !strings.Contains(out, "ring 1:") || !strings.Contains(out, "ring 2:") {
		t.Errorf("want two rings: %q", out)
	}
}

func TestRenderRingBroken(t *testing.T) {
	out := trace.RenderRing(vring.SuccMap{1: 2, 2: 3, 3: 2})
	if !strings.Contains(out, "broken: [1]") {
		t.Errorf("broken tail missing: %q", out)
	}
}

func TestRenderLineFlagsViolations(t *testing.T) {
	g := vring.LoopyExample().ToGraph()
	out := trace.RenderLine(g)
	// §3's diagnosis: 1 and 4 have two right neighbors, 21 and 25 two left.
	if strings.Count(out, "!multi-right") != 2 {
		t.Errorf("want 2 multi-right flags:\n%s", out)
	}
	if strings.Count(out, "!multi-left") != 2 {
		t.Errorf("want 2 multi-left flags:\n%s", out)
	}
	line := graph.Line(vring.FigureNodes)
	clean := trace.RenderLine(line)
	if strings.Contains(clean, "!multi") {
		t.Errorf("perfect line must not be flagged:\n%s", clean)
	}
	if !strings.Contains(clean, "{}") {
		t.Error("extremal nodes should show empty sides")
	}
}

func TestRenderEdgesCompact(t *testing.T) {
	g := graph.Line([]ids.ID{1, 4, 9})
	if got := trace.RenderEdgesCompact(g); got != "{1,4} {4,9}" {
		t.Errorf("compact = %q", got)
	}
	if got := trace.RenderEdgesCompact(graph.New()); got != "" {
		t.Errorf("empty compact = %q", got)
	}
}

func TestRenderArcs(t *testing.T) {
	g := graph.Line([]ids.ID{1, 4, 9})
	g.AddEdge(1, 9)
	out := trace.RenderArcs(g)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // axis + 3 edges
		t.Fatalf("arc lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "1") || !strings.Contains(lines[0], "9") {
		t.Errorf("axis row = %q", lines[0])
	}
	// Edges sorted by span: short edges first, the long {1,9} last.
	if len(lines[3]) <= len(lines[1]) {
		t.Errorf("long edge should render longest:\n%s", out)
	}
	if !strings.Contains(lines[1], "o") || !strings.Contains(lines[3], "=") {
		t.Errorf("arc glyphs missing:\n%s", out)
	}
}

func TestRoundTraceWithEngine(t *testing.T) {
	// Drive a real linearization run and capture the Fig. 3 trace.
	g := vring.LoopyExample().ToGraph()
	var rt trace.RoundTrace
	rt.ObserveInitial(g)
	cfg := linearize.Config{
		Variant:   linearize.Pure,
		Scheduler: sim.Synchronous,
		OnRound:   rt.Observe,
	}
	stats, final := linearize.Run(g, cfg)
	if !stats.Converged {
		t.Fatalf("run did not converge: %s", stats)
	}
	if rt.Len() != stats.Rounds+1 {
		t.Errorf("frames = %d, want rounds+initial = %d", rt.Len(), stats.Rounds+1)
	}
	out := rt.String()
	if !strings.Contains(out, "initial state") || !strings.Contains(out, "after round 1") {
		t.Errorf("trace headers missing:\n%s", out)
	}
	if !final.IsLinearized() {
		t.Error("final graph should be the line")
	}
}
