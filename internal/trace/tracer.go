package trace

// This file adds the structured event layer on top of the ASCII renderers:
// a Tracer interface that the simulation engine, the physical network, the
// linearization engine and the message-level protocols emit timestamped
// events into. The nil Tracer is the disabled state — every emission site
// guards with a nil check, so tracing costs one predictable branch when off.

import (
	"encoding/json"
	"fmt"

	"repro/internal/ids"
)

// EventType classifies a trace event. The taxonomy covers the three layers
// the experiments need to see inside: the event engine (SimFire/SimCancel),
// the physical network (Msg*), and the linearization/protocol layer
// (Edge*, Round*, NodeActivate, RingClosed, Probe) plus generic
// counter/gauge hooks.
type EventType uint8

const (
	// EvMsgSend records a physical frame put on the air.
	EvMsgSend EventType = iota
	// EvMsgRecv records a physical frame delivered to its handler.
	EvMsgRecv
	// EvMsgDrop records a frame lost or destroyed (Aux: "no-link", "loss",
	// "dest-down", "link-gone", "corrupt").
	EvMsgDrop
	// EvEdgeAdd records a virtual edge entering E_v.
	EvEdgeAdd
	// EvEdgeDelegate records a virtual edge delegated away (removed after
	// its endpoint was connected to a closer node) — never a plain delete.
	EvEdgeDelegate
	// EvRoundStart opens a synchronous round (Value: current edge count).
	EvRoundStart
	// EvRoundEnd closes a round (Value: edge count after the round).
	EvRoundEnd
	// EvNodeActivate records one node applying its operation
	// (Value: keep-set size for pruning variants).
	EvNodeActivate
	// EvRingClosed records a wrap edge / wrap partner being established.
	EvRingClosed
	// EvSimFire records an engine event firing (Value: queue depth after).
	EvSimFire
	// EvSimCancel records a scheduled engine event being cancelled.
	EvSimCancel
	// EvCounter is a named monotonic counter increment (Kind, Value).
	EvCounter
	// EvGauge is a named instantaneous measurement (Kind, Value).
	EvGauge
	// EvProbe is a convergence-probe sample; Kind names the metric
	// ("distance", "connected", "multi-left", …), Value carries it.
	EvProbe
	// EvShardRound is one shard's per-round accounting from the sharded
	// parallel executor (Kind: shard index in decimal; Aux: the phase —
	// "propose", "interior" or "boundary"; Value: state-changing
	// activations).
	EvShardRound
	// EvInvariant records an online invariant check from the chaos harness.
	// Kind names the invariant ("connectivity", "pending-bound",
	// "route-loops", "reconverge"); Aux carries the violation detail when
	// Value != 0. Value is 0 for a passing check and 1 for a violation, so
	// a trace's violation count is the sum of the series.
	EvInvariant
	// EvRetransmit records the reliable sublayer re-sending an unacked frame
	// (Kind: the inner frame kind; Value: the attempt number, 1 for the
	// first retransmission).
	EvRetransmit
	// EvRtoUpdate records an RTO estimator update after an RTT sample
	// (Kind: "rto"; Value: the new retransmission timeout in ticks; Aux
	// carries "srtt=<v> rttvar=<v>" for offline analysis).
	EvRtoUpdate
	// EvLeaseExpire records a failure-detector verdict about a physical
	// neighbor (Peer). Value is 1 when the lease expired (neighbor declared
	// down) and 0 when traffic resumed (neighbor declared up again); Aux is
	// "down" or "up" accordingly.
	EvLeaseExpire
	// EvSpan is one completed performance span from the deterministic-safe
	// profiler (internal/perf): a measured cost attributed to a phase, a
	// shard, or an allocation series of one round. T is the round index;
	// Kind names the span ("phase/prepare", "shard/execute",
	// "snapshot/rebuild", "imbalance", "allocs", "mallocs", "gc"); Aux
	// qualifies it (the shard index for shard/* spans, the variant or phase
	// otherwise); Value carries the measurement — wall nanoseconds for
	// timing spans, a ratio for "imbalance", byte/object/cycle deltas for
	// the allocation spans. Spans flow on a side channel that never feeds
	// back into protocol state: stripping every EvSpan from a profiled
	// trace yields the byte-identical stream of an unprofiled run.
	EvSpan
)

var eventNames = [...]string{
	EvMsgSend:      "msg-send",
	EvMsgRecv:      "msg-recv",
	EvMsgDrop:      "msg-drop",
	EvEdgeAdd:      "edge-add",
	EvEdgeDelegate: "edge-delegate",
	EvRoundStart:   "round-start",
	EvRoundEnd:     "round-end",
	EvNodeActivate: "node-activate",
	EvRingClosed:   "ring-closed",
	EvSimFire:      "sim-fire",
	EvSimCancel:    "sim-cancel",
	EvCounter:      "counter",
	EvGauge:        "gauge",
	EvProbe:        "probe",
	EvShardRound:   "shard-round",
	EvInvariant:    "invariant",
	EvRetransmit:   "retransmit",
	EvRtoUpdate:    "rto-update",
	EvLeaseExpire:  "lease-expire",
	EvSpan:         "span",
}

// String names the event type (the `ev` field of the JSONL encoding).
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("event-%d", uint8(t))
}

// ParseEventType inverts String. It returns ok=false for unknown names.
func ParseEventType(s string) (EventType, bool) {
	for i, n := range eventNames {
		if n == s {
			return EventType(i), true
		}
	}
	return 0, false
}

// MarshalJSON encodes the type as its name, keeping JSONL traces readable
// and stable across taxonomy reorderings.
func (t EventType) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON decodes a type name.
func (t *EventType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, ok := ParseEventType(s)
	if !ok {
		return fmt.Errorf("trace: unknown event type %q", s)
	}
	*t = v
	return nil
}

// Level grades event granularity so hot-path events can be filtered out
// without touching the emission sites.
type Level uint8

const (
	// LevelOff suppresses everything (only meaningful in a LevelFilter).
	LevelOff Level = iota
	// LevelRound keeps coarse events: rounds, ring closure, probes,
	// counters and gauges — one event per round/sample, not per message.
	LevelRound
	// LevelMsg keeps everything, including per-message and per-edge events.
	LevelMsg
)

// ParseLevel maps the CLI spellings to a Level.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "off":
		return LevelOff, true
	case "round", "coarse":
		return LevelRound, true
	case "msg", "fine", "all":
		return LevelMsg, true
	}
	return LevelOff, false
}

// LevelOf returns the intrinsic granularity of an event type.
func LevelOf(t EventType) Level {
	switch t {
	case EvRoundStart, EvRoundEnd, EvRingClosed, EvCounter, EvGauge, EvProbe, EvInvariant,
		EvLeaseExpire, EvSpan, EvShardRound:
		// Lease verdicts are rare and diagnostic gold under churn, so they
		// survive coarse traces; retransmissions and RTO updates are
		// per-frame noise and stay at LevelMsg. Spans and per-shard round
		// accounting are bounded by shards-per-round, so they survive coarse
		// traces too — a profiled round-level trace is exactly what
		// `tracectl perf` consumes.
		return LevelRound
	default:
		return LevelMsg
	}
}

// Event is one timestamped observation. T is simulated time for the
// message-level protocols and the round index for the round model; the
// producer documents which. Node/Peer identify the acting node and its
// counterpart (receiver, edge endpoint, wrap partner); Kind carries the
// message kind or metric name; Aux is a free-form qualifier (drop reason,
// variant name, ring side); Value is the numeric payload (latency, gauge
// reading, keep-set size, probe metric).
type Event struct {
	T     int64     `json:"t"`
	Type  EventType `json:"ev"`
	Node  ids.ID    `json:"node,omitempty"`
	Peer  ids.ID    `json:"peer,omitempty"`
	Kind  string    `json:"kind,omitempty"`
	Aux   string    `json:"aux,omitempty"`
	Value float64   `json:"val,omitempty"`
}

// String renders one event the way it appears in a JSONL trace, minus the
// encoding.
func (e Event) String() string {
	return fmt.Sprintf("t=%d %s node=%s peer=%s kind=%s aux=%s val=%g",
		e.T, e.Type, e.Node, e.Peer, e.Kind, e.Aux, e.Value)
}

// Tracer consumes events. Implementations must tolerate being shared by
// every layer of one simulation run; the built-in sinks are mutex-guarded
// so the goroutine-based harnesses can share them too.
//
// The disabled state is a nil Tracer, not a no-op implementation: emission
// sites guard with `if tr != nil`, which keeps the hot paths free of
// interface calls when tracing is off.
type Tracer interface {
	Emit(e Event)
}

// Multi fans each event out to several sinks (e.g. a JSONL file plus the
// aggregating stats sink). Nil members are skipped.
type Multi []Tracer

// Emit forwards e to every non-nil member.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		if t != nil {
			t.Emit(e)
		}
	}
}

// Tee combines tracers, dropping nils; it returns nil when nothing
// remains, preserving the "nil means disabled" fast path.
func Tee(ts ...Tracer) Tracer {
	var out Multi
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// LevelFilter drops events finer than Max before they reach Sink — the
// implementation of the -trace-level flag.
type LevelFilter struct {
	Sink Tracer
	Max  Level
}

// Emit forwards e only if its intrinsic level is within Max.
func (f LevelFilter) Emit(e Event) {
	if f.Sink != nil && LevelOf(e.Type) <= f.Max {
		f.Sink.Emit(e)
	}
}

// WithLevel wraps t so that only events at or below level pass. A nil t or
// LevelOff collapses to nil (disabled).
func WithLevel(t Tracer, level Level) Tracer {
	if t == nil || level == LevelOff {
		return nil
	}
	if level >= LevelMsg {
		return t
	}
	return LevelFilter{Sink: t, Max: level}
}
