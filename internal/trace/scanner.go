package trace

// This file is the streaming half of the JSONL format: a Scanner that
// decodes one event per Scan call, so cmd/tracectl can analyze multi-GB
// traces without ever holding more than one line in memory.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Scanner streams events out of a JSONL trace. Usage mirrors
// bufio.Scanner:
//
//	sc := trace.NewScanner(r)
//	for sc.Scan() {
//		e := sc.Event()
//		…
//	}
//	if err := sc.Err(); err != nil { … }
//
// Lines are read one at a time with no length limit; blank lines are
// skipped. Scan returns false at EOF or on the first malformed line; Err
// distinguishes the two (nil on clean EOF). A truncated final line — a
// partial write with no trailing newline, the crash-recovery case — yields
// every complete event first, then an error.
type Scanner struct {
	r    *bufio.Reader
	ev   Event
	err  error
	line int
	n    int64
}

// NewScanner wraps r. The reader is buffered internally; do not read from
// r while scanning.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReaderSize(r, 1<<16)}
}

// Scan advances to the next event, reporting false at EOF or on error.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		raw, err := s.r.ReadBytes('\n')
		if len(raw) == 0 && err != nil {
			if err != io.EOF {
				s.err = err
			}
			return false
		}
		s.line++
		data := bytes.TrimSpace(raw)
		if len(data) == 0 {
			// Blank line: tolerate and keep going (or finish at EOF).
			if err != nil {
				if err != io.EOF {
					s.err = err
				}
				return false
			}
			continue
		}
		var e Event
		if uerr := json.Unmarshal(data, &e); uerr != nil {
			s.err = fmt.Errorf("trace: line %d: %w", s.line, uerr)
			return false
		}
		s.ev = e
		s.n++
		// A final line without a newline still decoded fine; the next Scan
		// will observe the EOF.
		if err != nil && err != io.EOF {
			s.err = err
		}
		return true
	}
}

// Event returns the event decoded by the last successful Scan.
func (s *Scanner) Event() Event { return s.ev }

// Err returns the first error encountered; nil after a clean EOF.
func (s *Scanner) Err() error { return s.err }

// Line returns the 1-based line number of the last line read.
func (s *Scanner) Line() int { return s.line }

// Count returns how many events have been decoded so far.
func (s *Scanner) Count() int64 { return s.n }
