// Package trace renders virtual-ring and line-view states as ASCII art,
// reproducing the visual content of the paper's Figures 1–3: the loopy
// state drawn as a ring and as a line (Fig. 1), separate rings (Fig. 2),
// and the step-by-step progress of the linearization algorithm (Fig. 3).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/vring"
)

// RenderRing draws the successor structure as cycles, e.g.
//
//	ring 1: 1 -> 9 -> 18 -> (1)
//	ring 2: 4 -> 13 -> 21 -> (4)
//
// Broken tails, if any, are listed afterwards.
func RenderRing(s vring.SuccMap) string {
	cycles, broken := s.Cycles()
	var b strings.Builder
	for i, cyc := range cycles {
		fmt.Fprintf(&b, "ring %d: ", i+1)
		for _, v := range cyc {
			fmt.Fprintf(&b, "%s -> ", v)
		}
		fmt.Fprintf(&b, "(%s)\n", cyc[0])
	}
	if len(broken) > 0 {
		fmt.Fprintf(&b, "broken: %v\n", broken)
	}
	return b.String()
}

// RenderLine draws the line view of a virtual graph: nodes in identifier
// order with each node's left/right neighbor sets, flagging line-local
// inconsistencies the way §3 diagnoses Fig. 1 ("nodes 1 and 4 have two
// right neighbors each; nodes 21 and 25 have two left neighbors each").
func RenderLine(g *graph.Graph) string {
	var b strings.Builder
	for _, v := range g.Nodes() {
		var left, right []ids.ID
		for u := range g.Neighbors(v) {
			if ids.DirOf(v, u) == ids.Left {
				left = append(left, u)
			} else {
				right = append(right, u)
			}
		}
		ids.SortAsc(left)
		ids.SortAsc(right)
		flag := ""
		if len(left) > 1 {
			flag += " !multi-left"
		}
		if len(right) > 1 {
			flag += " !multi-right"
		}
		fmt.Fprintf(&b, "%6s  L=%-18s R=%-18s%s\n", v, fmtIDs(left), fmtIDs(right), flag)
	}
	return b.String()
}

func fmtIDs(xs []ids.ID) string {
	if len(xs) == 0 {
		return "{}"
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// RenderEdgesCompact draws the edge set as a single sorted list, e.g.
// "{1,9} {4,13} …" — the most compact state dump for round-by-round traces.
func RenderEdgesCompact(g *graph.Graph) string {
	edges := g.Edges()
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// RenderArcs draws the line view as an arc diagram on one axis: nodes laid
// out in identifier order, one row per edge showing its span. Long edges
// (which linearization progressively shortens) are visually obvious:
//
//	1    4    9   13   18   21   25
//	o====o
//	     o=========o
//	o==============o                 <- long edge
func RenderArcs(g *graph.Graph) string {
	nodes := g.Nodes()
	pos := make(map[ids.ID]int, len(nodes))
	const cell = 5
	for i, v := range nodes {
		pos[v] = i * cell
	}
	var b strings.Builder
	// Axis row with identifiers.
	for i, v := range nodes {
		label := v.String()
		if i > 0 {
			b.WriteString(strings.Repeat(" ", cell-len(label)))
		}
		b.WriteString(label)
	}
	b.WriteString("\n")
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		li := ids.LineDist(edges[i].U, edges[i].V)
		lj := ids.LineDist(edges[j].U, edges[j].V)
		if li != lj {
			return li < lj
		}
		return edges[i].U < edges[j].U
	})
	for _, e := range edges {
		a, c := pos[e.U], pos[e.V]
		if a > c {
			a, c = c, a
		}
		line := strings.Repeat(" ", a) + "o" + strings.Repeat("=", c-a-1) + "o"
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// RoundTrace accumulates per-round snapshots of a linearization run and
// renders them as the Fig. 3-style step-by-step story.
type RoundTrace struct {
	titles []string
	frames []string
}

// Observe records the state after the given round. Use as the OnRound hook
// of a linearize.Engine.
func (rt *RoundTrace) Observe(round int, g *graph.Graph) {
	rt.titles = append(rt.titles, fmt.Sprintf("after round %d (%d edges)", round+1, g.NumEdges()))
	rt.frames = append(rt.frames, RenderArcs(g))
}

// ObserveInitial records the starting state before any round.
func (rt *RoundTrace) ObserveInitial(g *graph.Graph) {
	rt.titles = append(rt.titles, fmt.Sprintf("initial state (%d edges)", g.NumEdges()))
	rt.frames = append(rt.frames, RenderArcs(g))
}

// Len returns the number of recorded frames.
func (rt *RoundTrace) Len() int { return len(rt.frames) }

// String renders all frames in order.
func (rt *RoundTrace) String() string {
	var b strings.Builder
	for i := range rt.frames {
		fmt.Fprintf(&b, "--- %s ---\n%s\n", rt.titles[i], rt.frames[i])
	}
	return b.String()
}
