package trace_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/ids"
	"repro/internal/trace"
)

func writeEvents(t *testing.T, events []trace.Event) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return &buf
}

func TestScannerStreamsAllEvents(t *testing.T) {
	in := []trace.Event{
		{T: 1, Type: trace.EvMsgSend, Node: 3, Peer: 9, Kind: "ssr:notify"},
		{T: 2, Type: trace.EvProbe, Kind: "distance", Value: 4},
		{T: 3, Type: trace.EvRoundEnd, Value: 12},
	}
	sc := trace.NewScanner(writeEvents(t, in))
	var out []trace.Event
	for sc.Scan() {
		out = append(out, sc.Event())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("err: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("scanned %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	if sc.Count() != int64(len(in)) {
		t.Errorf("count=%d", sc.Count())
	}
}

func TestScannerTruncatedFinalLine(t *testing.T) {
	buf := writeEvents(t, []trace.Event{
		{T: 1, Type: trace.EvProbe, Kind: "distance", Value: 3},
		{T: 2, Type: trace.EvProbe, Kind: "distance", Value: 1},
	})
	// Simulate a crash mid-write: a partial line with no newline.
	buf.WriteString(`{"t":3,"ev":"pro`)
	sc := trace.NewScanner(buf)
	var got int
	for sc.Scan() {
		got++
	}
	if got != 2 {
		t.Errorf("complete events = %d, want 2", got)
	}
	if sc.Err() == nil {
		t.Error("want an error for the truncated final line")
	}
}

func TestScannerSkipsBlankLines(t *testing.T) {
	input := "\n{\"t\":1,\"ev\":\"probe\"}\n\n{\"t\":2,\"ev\":\"probe\"}\n\n"
	evs, err := trace.ReadJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatalf("err: %v", err)
	}
	if len(evs) != 2 {
		t.Errorf("events = %d, want 2", len(evs))
	}
}

func TestScannerErrorReportsLineNumber(t *testing.T) {
	input := "{\"t\":1,\"ev\":\"probe\"}\nbogus\n"
	sc := trace.NewScanner(strings.NewReader(input))
	for sc.Scan() {
	}
	err := sc.Err()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 in message", err)
	}
	if sc.Line() != 2 {
		t.Errorf("line = %d, want 2", sc.Line())
	}
}

func TestReadJSONLTruncatedFinalLine(t *testing.T) {
	buf := writeEvents(t, []trace.Event{
		{T: 1, Type: trace.EvMsgSend, Kind: "a"},
		{T: 2, Type: trace.EvMsgSend, Kind: "b"},
		{T: 3, Type: trace.EvMsgSend, Kind: "c"},
	})
	full := buf.String()
	cut := full[:len(full)-7] // chop into the final line
	evs, err := trace.ReadJSONL(strings.NewReader(cut))
	if err == nil {
		t.Fatal("want error for truncated trace")
	}
	if len(evs) != 2 {
		t.Errorf("complete events = %d, want 2", len(evs))
	}
}

// failAfter fails every write after the first n bytes.
type failAfter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errDiskFull
	}
	f.written += len(p)
	return len(p), nil
}

func TestJSONLWriterStickyFlushError(t *testing.T) {
	w := trace.NewJSONLWriter(&failAfter{n: 0})
	w.Emit(trace.Event{T: 1, Type: trace.EvProbe})
	if err := w.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("flush err = %v, want %v", err, errDiskFull)
	}
	if err := w.Err(); !errors.Is(err, errDiskFull) {
		t.Errorf("Err() = %v, want sticky %v", err, errDiskFull)
	}
	before := w.Count()
	w.Emit(trace.Event{T: 2, Type: trace.EvProbe}) // must not encode into a dead writer
	if w.Count() != before {
		t.Errorf("count advanced to %d after a failed flush", w.Count())
	}
	if err := w.Close(); !errors.Is(err, errDiskFull) {
		t.Errorf("close err = %v, want the sticky error", err)
	}
}

func TestStatsSinkPerNodeAggregation(t *testing.T) {
	s := trace.NewStatsSink()
	for i := 0; i < 5; i++ {
		s.Emit(trace.Event{Type: trace.EvMsgSend, Node: 1, Peer: 2, Kind: "k"})
	}
	for i := 0; i < 3; i++ {
		s.Emit(trace.Event{Type: trace.EvMsgSend, Node: 2, Peer: 1, Kind: "k"})
	}
	s.Emit(trace.Event{Type: trace.EvMsgRecv, Node: 2, Peer: 1, Kind: "k"})
	s.Emit(trace.Event{Type: trace.EvMsgDrop, Node: 2, Peer: 1, Kind: "k", Aux: "loss"})

	top := s.TopSenders(1)
	if len(top) != 1 || top[0].Node != 1 || top[0].Count != 5 {
		t.Errorf("top senders = %+v", top)
	}
	if r := s.TopReceivers(10); len(r) != 1 || r[0].Node != 2 || r[0].Count != 1 {
		t.Errorf("top receivers = %+v", r)
	}
	if d := s.TopDroppers(10); len(d) != 1 || d[0].Node != 2 || d[0].Count != 1 {
		t.Errorf("top droppers = %+v", d)
	}
	sent, recvd, dropped := s.NodeActivity(2)
	if sent != 3 || recvd != 1 || dropped != 1 {
		t.Errorf("node 2 activity = %d/%d/%d", sent, recvd, dropped)
	}
	tab := s.HotSpotTable(10).String()
	if !strings.Contains(tab, "node") || s.HotSpotTable(10).NumRows() != 2 {
		t.Errorf("hot-spot table:\n%s", tab)
	}
}

func TestTopSendersDeterministicTieBreak(t *testing.T) {
	s := trace.NewStatsSink()
	for _, n := range []uint64{9, 3, 7} {
		s.Emit(trace.Event{Type: trace.EvMsgSend, Node: ids.ID(n), Kind: "k"})
	}
	top := s.TopSenders(0)
	if len(top) != 3 || top[0].Node != 3 || top[1].Node != 7 || top[2].Node != 9 {
		t.Errorf("tie-break order = %+v", top)
	}
}

// TestStatsSinkConcurrent hammers one sink from parallel goroutines, the
// shape of a message-model cluster emitting from multiple nodes. Run with
// -race.
func TestStatsSinkConcurrent(t *testing.T) {
	s := trace.NewStatsSink()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit(trace.Event{Type: trace.EvMsgSend, Node: ids.ID(uint64(w)), Kind: "k"})
				s.Emit(trace.Event{Type: trace.EvCounter, Kind: "c", Value: 1})
				if i%500 == 0 {
					_ = s.TopSenders(3)
					_ = s.TaxonomyTable()
				}
			}
		}(w)
	}
	wg.Wait()
	if s.TotalSent() != workers*per {
		t.Errorf("total sent = %d, want %d", s.TotalSent(), workers*per)
	}
	if c := s.Counter("c"); c != workers*per {
		t.Errorf("counter = %v", c)
	}
}

func TestAnalysisVerdictConverged(t *testing.T) {
	a := trace.NewAnalysis()
	for i, d := range []float64{5, 3, 4, 2, 0, 0} {
		a.Emit(trace.Event{T: int64(i), Type: trace.EvProbe, Kind: "distance", Value: d})
		a.Emit(trace.Event{T: int64(i), Type: trace.EvProbe, Kind: "connected", Value: 1})
	}
	v := a.Verdict()
	if !v.Converged || v.ConvergedAt != 4 {
		t.Errorf("verdict = %+v, want converged at 4", v)
	}
	if v.Oscillations != 1 {
		t.Errorf("oscillations = %d, want 1 (3→4)", v.Oscillations)
	}
	if !v.ConnectedAll {
		t.Error("connectivity held every round")
	}
	if !strings.Contains(v.String(), "CONVERGED at round 4") {
		t.Errorf("verdict string: %s", v)
	}
}

func TestAnalysisVerdictNotConverged(t *testing.T) {
	a := trace.NewAnalysis()
	// Touches zero mid-run but regresses: must not count as converged.
	for i, d := range []float64{4, 0, 2, 1} {
		a.Emit(trace.Event{T: int64(i), Type: trace.EvProbe, Kind: "distance", Value: d})
	}
	a.Emit(trace.Event{T: 2, Type: trace.EvProbe, Kind: "connected", Value: 0})
	v := a.Verdict()
	if v.Converged || v.ConvergedAt != -1 {
		t.Errorf("verdict = %+v, want not converged", v)
	}
	if v.ConnectedAll {
		t.Error("a disconnected sample must clear ConnectedAll")
	}
	if !strings.Contains(v.String(), "NOT CONVERGED") {
		t.Errorf("verdict string: %s", v)
	}
}

func TestAnalysisVerdictPrefersMissing(t *testing.T) {
	// A converged SSR run: missing hits zero while legitimate route-cache
	// surplus keeps the scalar distance nonzero. The verdict must judge on
	// the missing series, not the distance.
	a := trace.NewAnalysis()
	missing := []float64{6, 2, 0, 0}
	surplus := []float64{9, 11, 12, 12}
	for i := range missing {
		ti := int64(i)
		a.Emit(trace.Event{T: ti, Type: trace.EvProbe, Kind: "distance", Value: missing[i] + surplus[i]})
		a.Emit(trace.Event{T: ti, Type: trace.EvProbe, Kind: "missing", Value: missing[i]})
		a.Emit(trace.Event{T: ti, Type: trace.EvProbe, Kind: "surplus", Value: surplus[i]})
		a.Emit(trace.Event{T: ti, Type: trace.EvProbe, Kind: "connected", Value: 1})
	}
	v := a.Verdict()
	if v.Metric != "missing" {
		t.Errorf("metric = %q, want missing", v.Metric)
	}
	if !v.Converged || v.ConvergedAt != 2 {
		t.Errorf("verdict = %+v, want converged at 2", v)
	}
	if v.FinalDistance != 0 || v.Probes != 4 {
		t.Errorf("final = %g probes = %d", v.FinalDistance, v.Probes)
	}
	if v.Oscillations != 0 {
		t.Errorf("oscillations = %d, want 0 (growing surplus must not count)", v.Oscillations)
	}
}

func TestAnalysisTaxonomyFallsBackToCounters(t *testing.T) {
	a := trace.NewAnalysis()
	a.Emit(trace.Event{Type: trace.EvCounter, Kind: trace.MsgCounterPrefix + "ssr:notify", Value: 40})
	a.Emit(trace.Event{Type: trace.EvCounter, Kind: trace.DropCounterPrefix + "loss", Value: 2})
	a.Emit(trace.Event{Type: trace.EvCounter, Kind: "unrelated", Value: 9})
	tax := a.Taxonomy()
	if len(tax) != 1 || tax[0].Kind != "ssr:notify" || tax[0].Count != 40 {
		t.Errorf("taxonomy fallback = %+v", tax)
	}
	if d := a.DropTotals(); len(d) != 1 || d[0].Kind != "loss" || d[0].Count != 2 {
		t.Errorf("drops fallback = %+v", d)
	}
	if a.TotalSent() != 40 {
		t.Errorf("total = %d", a.TotalSent())
	}
	// A per-message event outranks the summary counters.
	a.Emit(trace.Event{Type: trace.EvMsgSend, Node: 1, Kind: "ssr:join"})
	if tax := a.Taxonomy(); len(tax) != 1 || tax[0].Kind != "ssr:join" {
		t.Errorf("taxonomy with msg events = %+v", tax)
	}
}

func TestAnalyzeStream(t *testing.T) {
	buf := writeEvents(t, []trace.Event{
		{T: 0, Type: trace.EvProbe, Kind: "distance", Value: 2},
		{T: 1, Type: trace.EvProbe, Kind: "distance", Value: 0},
		{T: 1, Type: trace.EvRoundEnd},
	})
	a, err := trace.AnalyzeStream(trace.NewScanner(buf))
	if err != nil {
		t.Fatalf("err: %v", err)
	}
	if a.Events() != 3 {
		t.Errorf("events = %d", a.Events())
	}
	if first, last := a.TimeSpan(); first != 0 || last != 1 {
		t.Errorf("span = [%d,%d]", first, last)
	}
	if v := a.Verdict(); !v.Converged || v.Rounds != 1 {
		t.Errorf("verdict = %+v", v)
	}
}
