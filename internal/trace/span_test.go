package trace

// Round-trip coverage for the profiler's span side channel: EvSpan events
// written as JSONL survive Scanner streaming — plain, gzipped, and with a
// truncated tail — and fold into Analysis.Perf() with nothing lost.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math"
	"testing"
)

// spanFixture is a two-round profiled trace: round events, shard
// accounting, and every span family the profiler emits.
func spanFixture() []Event {
	var evs []Event
	for round := int64(0); round < 2; round++ {
		evs = append(evs,
			Event{T: round, Type: EvRoundStart, Aux: "lsn", Value: 100},
			Event{T: round, Type: EvSpan, Kind: "phase/begin", Value: 1000},
			Event{T: round, Type: EvSpan, Kind: "snapshot/rebuild", Aux: "memory", Value: 2500},
			Event{T: round, Type: EvSpan, Kind: "phase/prepare", Value: 8000},
			Event{T: round, Type: EvSpan, Kind: "shard/prepare", Aux: "0", Value: 5000},
			Event{T: round, Type: EvSpan, Kind: "shard/prepare", Aux: "1", Value: 3000},
			Event{T: round, Type: EvSpan, Kind: "phase/execute", Value: 6000},
			Event{T: round, Type: EvSpan, Kind: "shard/execute", Aux: "0", Value: 4000},
			Event{T: round, Type: EvSpan, Kind: "shard/execute", Aux: "1", Value: 2000},
			Event{T: round, Type: EvSpan, Kind: "phase/finish", Value: 12000},
			Event{T: round, Type: EvShardRound, Kind: "0", Aux: "interior", Value: 10},
			Event{T: round, Type: EvShardRound, Kind: "1", Aux: "interior", Value: 20},
			Event{T: round, Type: EvShardRound, Kind: "0", Aux: "boundary", Value: 70},
			Event{T: round, Type: EvShardRound, Kind: "1", Aux: "boundary", Value: 50},
			Event{T: round, Type: EvSpan, Kind: "phase/end", Value: 500},
			Event{T: round, Type: EvSpan, Kind: "imbalance", Value: 1.25},
			Event{T: round, Type: EvSpan, Kind: "allocs", Value: 4096},
			Event{T: round, Type: EvSpan, Kind: "mallocs", Value: 32},
			Event{T: round, Type: EvSpan, Kind: "gc", Value: 1},
			Event{T: round, Type: EvRoundEnd, Aux: "lsn", Value: 110},
		)
	}
	return evs
}

// checkPerf asserts the fixture's aggregates, shared by every transport.
func checkPerf(t *testing.T, p PerfReport) {
	t.Helper()
	if p.Empty() {
		t.Fatal("perf report empty")
	}
	wantSpans := map[string]float64{ // kind -> total over 2 rounds
		"phase/begin": 2000, "phase/prepare": 16000, "phase/execute": 12000,
		"phase/finish": 24000, "phase/end": 1000, "snapshot/rebuild": 5000,
	}
	got := map[string]SpanTotal{}
	for _, s := range p.Spans {
		got[s.Name] = s
	}
	for kind, total := range wantSpans {
		s, ok := got[kind]
		if !ok || s.TotalNs != total || s.Count != 2 {
			t.Fatalf("span %s = %+v (ok=%v), want total %g count 2", kind, s, ok, total)
		}
	}
	if len(p.Shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(p.Shards))
	}
	if p.Shards[0].BusyNs != 18000 || p.Shards[1].BusyNs != 10000 {
		t.Fatalf("shard busy = %g, %g, want 18000, 10000", p.Shards[0].BusyNs, p.Shards[1].BusyNs)
	}
	acts := p.ActivationTotals()
	if acts["interior"] != 60 || acts["boundary"] != 240 {
		t.Fatalf("activations = %v, want interior 60 boundary 240", acts)
	}
	if p.ImbalanceMean != 1.25 || p.ImbalanceMax != 1.25 {
		t.Fatalf("imbalance mean/max = %g/%g, want 1.25", p.ImbalanceMean, p.ImbalanceMax)
	}
	if p.AllocBytes != 8192 || p.Mallocs != 64 || p.GCCycles != 2 {
		t.Fatalf("alloc totals = %g/%g/%g", p.AllocBytes, p.Mallocs, p.GCCycles)
	}
	// seq = begin+finish+end+snapshot = 32000; par = prepare+execute = 28000.
	if seq, par := p.SeqNs(), p.ParNs(); seq != 32000 || par != 28000 {
		t.Fatalf("seq/par = %g/%g, want 32000/28000", seq, par)
	}
	wantShare := 32000.0 / 60000.0
	if math.Abs(p.SeqShare()-wantShare) > 1e-12 {
		t.Fatalf("seq share = %g, want %g", p.SeqShare(), wantShare)
	}
	if math.Abs(p.AmdahlCeiling()-1/wantShare) > 1e-9 {
		t.Fatalf("ceiling = %g, want %g", p.AmdahlCeiling(), 1/wantShare)
	}
}

// TestSpanRoundTripPlain pins the plain JSONL path.
func TestSpanRoundTripPlain(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, e := range spanFixture() {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeStream(NewScanner(&buf))
	if err != nil {
		t.Fatal(err)
	}
	checkPerf(t, a.Perf())
}

// TestSpanRoundTripGzip pins the .gz path tracectl serves.
func TestSpanRoundTripGzip(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	w := NewJSONLWriter(gz)
	for _, e := range spanFixture() {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	gr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeStream(NewScanner(gr))
	if err != nil {
		t.Fatal(err)
	}
	checkPerf(t, a.Perf())
}

// TestSpanRoundTripTruncatedTail pins the crash-recovery path: a trace cut
// mid-line yields every complete span, then an error — and the partial
// analysis still carries the spans that made it to disk.
func TestSpanRoundTripTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	fixture := spanFixture()
	for _, e := range fixture {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cut := append([]byte(nil), full[:len(full)-10]...) // slice into the last line

	a, err := AnalyzeStream(NewScanner(bytes.NewReader(cut)))
	if err == nil {
		t.Fatal("expected a truncation error")
	}
	if got, want := a.Events(), int64(len(fixture)-1); got != want {
		t.Fatalf("decoded %d events before the cut, want %d", got, want)
	}
	p := a.Perf()
	if p.Empty() {
		t.Fatal("partial perf report empty")
	}
	// The cut line is the second EvRoundEnd; every span survived.
	checkPerf(t, p)
}

// TestSpanSurvivesLevelFilter pins that spans ride the round-level channel:
// a LevelRound filter keeps them, LevelOff drops everything.
func TestSpanSurvivesLevelFilter(t *testing.T) {
	rec := &Recorder{}
	f := WithLevel(rec, LevelRound)
	for _, e := range spanFixture() {
		f.Emit(e)
	}
	spans := rec.Filter(EvSpan)
	if len(spans) != 28 { // 14 spans per round x 2 rounds
		t.Fatalf("got %d spans through LevelRound, want 28", len(spans))
	}
	if tr := WithLevel(rec, LevelOff); tr != nil {
		t.Fatal("LevelOff should collapse to nil")
	}
	if s := fmt.Sprint(EvSpan); s != "span" {
		t.Fatalf("EvSpan renders as %q", s)
	}
	if typ, ok := ParseEventType("span"); !ok || typ != EvSpan {
		t.Fatalf("ParseEventType(span) = %v, %v", typ, ok)
	}
}
