package trace_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/ssr"
	"repro/internal/trace"
)

// TestSSRBootstrapTraceReplay is the capture/replay acceptance path: a
// 256-node unit-disk SSR bootstrap streams its trace to a JSONL file, and
// the convergence series is reconstructed purely from the decoded events.
func TestSSRBootstrapTraceReplay(t *testing.T) {
	const n = 256
	const seed = 7

	topo, err := graph.Generate(graph.TopoUnitDisk, n, graph.RandomIDs, seed)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "bootstrap.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewJSONLWriter(f)
	sink := trace.NewStatsSink()
	// Probe/round events stream to disk; per-message traffic only feeds
	// the in-memory aggregator, keeping the file at O(rounds).
	eng := sim.NewEngine(seed, sim.WithTracer(sink))
	net := phys.NewNetwork(eng, topo,
		phys.WithTracer(trace.Tee(trace.WithLevel(w, trace.LevelRound), sink)))

	c := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded})
	probe := &trace.Probe{Tracer: trace.Tee(w, sink)}
	c.AttachProbe(probe, 8)

	at, ok := c.RunUntilConsistent(2_000_000)
	if !ok {
		t.Fatalf("bootstrap not consistent by t=%d: %s", at, c.LineReport())
	}
	c.Stop()
	// One final sample so the series ends on the converged state.
	probe.Observe(probe.Len(), c.VirtualGraph())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Live-side checks on the probe itself.
	if probe.Len() < 2 {
		t.Fatalf("only %d probe samples; interval too coarse", probe.Len())
	}
	last, _ := probe.Last()
	if last.Missing != 0 {
		t.Errorf("converged virtual graph still missing %d line edges", last.Missing)
	}
	if !probe.ConnectedAllRounds() {
		t.Error("connectivity invariant violated during bootstrap")
	}
	if sink.TotalSent() == 0 {
		t.Error("stats sink saw no protocol messages")
	}

	// Replay: decode the JSONL file and rebuild the series from events only.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	events, err := trace.ReadJSONL(rf)
	if err != nil {
		t.Fatalf("replay decode: %v", err)
	}
	series := trace.SeriesFromEvents(events)

	dist, okD := series["distance"]
	conn, okC := series["connected"]
	if !okD || !okC {
		t.Fatalf("replayed series missing keys; have %d events", len(events))
	}
	if len(dist.Y) != probe.Len() {
		t.Fatalf("replayed %d distance points, probe recorded %d", len(dist.Y), probe.Len())
	}
	for i, s := range probe.Samples() {
		if int(dist.Y[i]) != s.Distance() {
			t.Errorf("sample %d: replayed distance %v != live %d", i, dist.Y[i], s.Distance())
		}
	}
	// The invariant must be checkable from the replay alone.
	for i, y := range conn.Y {
		if y != 1 {
			t.Errorf("replayed connectivity broke at sample %d", i)
		}
	}
	if got := int(dist.Y[len(dist.Y)-1]); got != last.Distance() {
		t.Errorf("replayed final distance %d != live %d", got, last.Distance())
	}
}
