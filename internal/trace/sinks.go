package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// --- Recorder -------------------------------------------------------------

// Recorder is the in-memory sink for tests and interactive inspection: a
// ring buffer of the most recent events. The zero value records up to
// DefaultRecorderCap events; set Cap before first use to change it.
type Recorder struct {
	// Cap bounds the number of retained events (<=0: DefaultRecorderCap).
	Cap int

	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest retained event
	total   int64
	dropped int64
}

// DefaultRecorderCap is the retention bound of a zero-value Recorder.
const DefaultRecorderCap = 1 << 16

// Emit appends e, evicting the oldest event when full.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	capN := r.Cap
	if capN <= 0 {
		capN = DefaultRecorderCap
	}
	r.total++
	if len(r.buf) < capN {
		r.buf = append(r.buf, e)
		return
	}
	// Overwrite the oldest slot; the buffer is a ring from here on.
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// Total returns how many events were emitted (including evicted ones).
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events the ring buffer evicted.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Filter returns the retained events of the given type, oldest first.
func (r *Recorder) Filter(t EventType) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all retained events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf, r.start, r.total, r.dropped = nil, 0, 0, 0
}

// --- JSONL writer ---------------------------------------------------------

// JSONLWriter streams events as one JSON object per line — the offline
// analysis format. Writes are buffered; call Close (or Flush) before
// reading the output.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // underlying closer, if any
	enc *json.Encoder
	n   int64
	err error
}

// NewJSONLWriter wraps w. If w is an io.Closer, Close closes it too.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	j := &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit encodes e as one line. The first error — encode or flush — is
// sticky: once the writer is dead, later emissions are dropped instead of
// encoded into a failed destination. Close (or Err) reports it.
func (j *JSONLWriter) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = err
		return
	}
	j.n++
}

// Count returns the number of events successfully encoded.
func (j *JSONLWriter) Count() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the sticky error, if any — the first encode or flush failure
// over the writer's lifetime.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush pushes buffered lines to the underlying writer. A flush failure is
// as sticky as an encode failure: the writer stops accepting events.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Close flushes and closes the underlying writer (when closable),
// returning the first error encountered over the writer's lifetime.
func (j *JSONLWriter) Close() error {
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL decodes a JSONL trace back into events — the replay half of
// the format, kept as the convenient load-all API on top of the streaming
// Scanner. It stops at the first malformed line and returns the events
// decoded so far alongside the error; a truncated final line therefore
// yields every complete event plus the error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := NewScanner(r)
	var out []Event
	for sc.Scan() {
		out = append(out, sc.Event())
	}
	return out, sc.Err()
}

// --- Stats sink -----------------------------------------------------------

// KindTotal is one row of a message-taxonomy breakdown.
type KindTotal struct {
	Kind  string
	Count int64
}

// GaugeStat summarizes one named gauge.
type GaugeStat struct {
	Last, Max float64
	N         int64
}

// NodeTotal is one row of a per-node hot-spot breakdown.
type NodeTotal struct {
	Node  ids.ID
	Count int64
}

// nodeStat accumulates one node's message activity.
type nodeStat struct {
	sent, recvd, dropped int64
}

// StatsSink aggregates events instead of retaining them: per-type totals,
// per-kind message taxonomy (sends and drops separately), per-node
// activity (hot-spot senders/receivers/droppers), named counters and
// gauges, and round bookkeeping. It is the tracer-fed replacement for
// ad-hoc experiment counters and feeds internal/metrics tables directly.
type StatsSink struct {
	mu       sync.Mutex
	byType   map[EventType]int64
	sends    map[string]int64 // message kind -> frames sent
	drops    map[string]int64 // drop reason (Aux) -> frames lost
	byNode   map[ids.ID]*nodeStat
	counters map[string]float64
	gauges   map[string]GaugeStat
	rounds   int64
}

// NewStatsSink returns an empty aggregator.
func NewStatsSink() *StatsSink {
	return &StatsSink{
		byType:   make(map[EventType]int64),
		sends:    make(map[string]int64),
		drops:    make(map[string]int64),
		byNode:   make(map[ids.ID]*nodeStat),
		counters: make(map[string]float64),
		gauges:   make(map[string]GaugeStat),
	}
}

func (s *StatsSink) nodeStatFor(v ids.ID) *nodeStat {
	ns := s.byNode[v]
	if ns == nil {
		ns = &nodeStat{}
		s.byNode[v] = ns
	}
	return ns
}

// Emit folds e into the aggregates.
func (s *StatsSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byType[e.Type]++
	switch e.Type {
	case EvMsgSend:
		s.sends[e.Kind]++
		s.nodeStatFor(e.Node).sent++
	case EvMsgRecv:
		s.nodeStatFor(e.Node).recvd++
	case EvMsgDrop:
		s.drops[e.Aux]++
		s.nodeStatFor(e.Node).dropped++
	case EvCounter:
		s.counters[e.Kind] += e.Value
	case EvGauge:
		g := s.gauges[e.Kind]
		g.Last = e.Value
		if e.Value > g.Max || g.N == 0 {
			g.Max = e.Value
		}
		g.N++
		s.gauges[e.Kind] = g
	case EvRoundEnd:
		s.rounds++
	}
}

// TypeCount returns how many events of type t were seen.
func (s *StatsSink) TypeCount(t EventType) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byType[t]
}

// Rounds returns the number of completed rounds observed.
func (s *StatsSink) Rounds() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// Counter returns the accumulated value of a named counter.
func (s *StatsSink) Counter(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Counters returns every named counter total, sorted by name. Values are
// rounded to integers: trace counters count discrete happenings.
func (s *StatsSink) Counters() []KindTotal {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]KindTotal, 0, len(s.counters))
	for k, v := range s.counters {
		out = append(out, KindTotal{Kind: k, Count: int64(math.Round(v))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Gauge returns the summary of a named gauge.
func (s *StatsSink) Gauge(name string) GaugeStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gauges[name]
}

// MessageTaxonomy returns the per-kind send totals, sorted by kind — the
// breakdown the E6-family reports print.
func (s *StatsSink) MessageTaxonomy() []KindTotal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedTotals(s.sends)
}

// Drops returns the per-reason loss totals, sorted by reason.
func (s *StatsSink) Drops() []KindTotal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedTotals(s.drops)
}

// TotalSent returns the number of frames sent across all kinds.
func (s *StatsSink) TotalSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.sends {
		t += v
	}
	return t
}

// TaxonomyTable renders the message taxonomy (plus a TOTAL row) as a
// metrics table, ready to embed in an experiment report.
func (s *StatsSink) TaxonomyTable() *metrics.Table {
	tab := metrics.NewTable("kind", "frames", "share")
	total := s.TotalSent()
	for _, kt := range s.MessageTaxonomy() {
		share := 0.0
		if total > 0 {
			share = float64(kt.Count) / float64(total)
		}
		tab.AddRow(kt.Kind, kt.Count, share)
	}
	tab.AddRow("TOTAL", total, 1.0)
	return tab
}

// topNodes returns the k largest entries by pick(stat), ties broken by
// ascending node id for determinism; k <= 0 means all.
func (s *StatsSink) topNodes(k int, pick func(*nodeStat) int64) []NodeTotal {
	s.mu.Lock()
	out := make([]NodeTotal, 0, len(s.byNode))
	for v, ns := range s.byNode {
		if c := pick(ns); c > 0 {
			out = append(out, NodeTotal{Node: v, Count: c})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Node < out[j].Node
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// TopSenders returns the k nodes that put the most frames on the air.
func (s *StatsSink) TopSenders(k int) []NodeTotal {
	return s.topNodes(k, func(ns *nodeStat) int64 { return ns.sent })
}

// TopReceivers returns the k nodes that had the most frames delivered.
func (s *StatsSink) TopReceivers(k int) []NodeTotal {
	return s.topNodes(k, func(ns *nodeStat) int64 { return ns.recvd })
}

// TopDroppers returns the k nodes whose transmissions were lost most often.
func (s *StatsSink) TopDroppers(k int) []NodeTotal {
	return s.topNodes(k, func(ns *nodeStat) int64 { return ns.dropped })
}

// NodeActivity returns one node's (sent, received, dropped) totals.
func (s *StatsSink) NodeActivity(v ids.ID) (sent, recvd, dropped int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := s.byNode[v]
	if ns == nil {
		return 0, 0, 0
	}
	return ns.sent, ns.recvd, ns.dropped
}

// HotSpotTable renders the k busiest nodes by frames sent, with their
// receive and drop totals alongside — the per-node view that localizes a
// pathological talker (or a partitioned island that stops receiving).
func (s *StatsSink) HotSpotTable(k int) *metrics.Table {
	tab := metrics.NewTable("node", "sent", "recvd", "dropped")
	for _, nt := range s.TopSenders(k) {
		sent, recvd, dropped := s.NodeActivity(nt.Node)
		tab.AddRow(nt.Node, sent, recvd, dropped)
	}
	return tab
}

func sortedTotals(m map[string]int64) []KindTotal {
	out := make([]KindTotal, 0, len(m))
	for k, v := range m {
		out = append(out, KindTotal{Kind: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
