package trace

// This file is the offline-analysis layer consumed by cmd/tracectl: an
// Analysis folds a stream of events — live from a Tracer or replayed
// through a Scanner — into the convergence verdict and message-economy
// aggregates that the report/diff subcommands render. It never retains
// events, so it composes with Scanner into a constant-memory pipeline.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Counter-name prefixes under which a round-level trace can carry its
// message economy as summary EvCounter events (one per kind, emitted at
// the end of a run by the boot harness). Analysis falls back to these when
// a trace has no per-message events, so `tracectl report` works on coarse
// traces too.
const (
	MsgCounterPrefix  = "msgs/"
	DropCounterPrefix = "drops/"
)

// Verdict is the convergence story of one trace, reconstructed from its
// EvProbe samples (and round bookkeeping when present). The convergence
// criterion is the "missing" series — consecutive line edges not yet
// present — when the trace carries it, because legitimate surplus edges
// (route-cache state) keep the scalar distance nonzero on converged SSR
// runs; older traces with only a "distance" series fall back to it.
type Verdict struct {
	Metric        string // series the criterion used: "missing" or "distance"
	Probes        int    // criterion samples seen
	Converged     bool   // criterion series ended at zero
	ConvergedAt   int64  // T of the first sample of the final all-zero suffix (-1: never)
	FinalDistance float64
	Oscillations  int  // criterion samples that regressed upward
	ConnectedAll  bool // connectivity invariant held at every sample
	Rounds        int64
	// Invariant accounting from EvInvariant events (chaos-harness traces):
	// checks seen and checks that reported a violation. Zero on traces
	// without online invariant checking.
	InvariantChecks     int64
	InvariantViolations int64
}

// String renders the verdict as the one-line summary tracectl prints.
func (v Verdict) String() string {
	if v.Probes == 0 {
		return "no probe samples in trace (run with -trace-level round or finer)"
	}
	var b strings.Builder
	if v.Converged {
		fmt.Fprintf(&b, "CONVERGED at round %d", v.ConvergedAt)
	} else {
		fmt.Fprintf(&b, "NOT CONVERGED (final %s %g)", v.Metric, v.FinalDistance)
	}
	fmt.Fprintf(&b, " | metric=%s probes=%d oscillations=%d connectedAll=%v", v.Metric, v.Probes, v.Oscillations, v.ConnectedAll)
	if v.Rounds > 0 {
		fmt.Fprintf(&b, " rounds=%d", v.Rounds)
	}
	if v.InvariantChecks > 0 {
		fmt.Fprintf(&b, " invariants=%d/%d violated", v.InvariantViolations, v.InvariantChecks)
	}
	return b.String()
}

// seriesTrack folds one probe series into the convergence statistics the
// verdict needs: last value, onset of the final all-zero suffix, and
// upward regressions.
type seriesTrack struct {
	have        bool
	n           int
	last        float64
	convergedAt int64 // -1 while the series is nonzero
	osc         int
}

func (st *seriesTrack) add(t int64, v float64) {
	st.n++
	if st.have && v > st.last {
		st.osc++
	}
	if v == 0 {
		if st.convergedAt < 0 {
			st.convergedAt = t
		}
	} else {
		st.convergedAt = -1
	}
	st.last = v
	st.have = true
}

// Analysis aggregates one trace. The zero value is not usable; create
// with NewAnalysis. It implements Tracer, so it can also watch a live run.
type Analysis struct {
	Stats *StatsSink

	mu           sync.Mutex
	events       int64
	firstT       int64
	lastT        int64
	haveT        bool
	distance     seriesTrack
	missing      seriesTrack
	disconnected bool

	// Invariant accounting: per-invariant check/violation totals keyed by
	// the EvInvariant event's Kind, plus each invariant's first violation
	// (timestamp and detail) for failure attribution.
	invChecks     map[string]int64
	invViolations map[string]int64
	invFirst      map[string]InvariantViolation

	// Reliable-sublayer accounting (EvRetransmit / EvRtoUpdate /
	// EvLeaseExpire). All zero on raw-transport traces.
	retx       map[string]int64
	maxAttempt float64
	rtoSamples int64
	rtoMin     float64
	rtoMax     float64
	rtoLast    float64
	leaseDowns int64
	leaseUps   int64

	// Profiler accounting (EvSpan + EvShardRound): per-span-kind cost
	// aggregates, per-shard busy time and activation attribution, load
	// imbalance, and allocation/GC deltas. All zero on unprofiled traces
	// (EvShardRound still folds on sharded-executor traces).
	spans        map[string]*spanAgg
	shardBusy    map[int]float64          // shard -> busy ns across all phases
	shardActs    map[string]map[int]int64 // phase -> shard -> activations
	policy       string                   // partition policy stamped by the executor
	policyShards int                      // shard count of the last partition stamp
	imbSum       float64
	imbN         int64
	imbMax       float64
	allocBytes   float64
	mallocs      float64
	gcCycles     float64
}

// spanAgg accumulates one span kind's cost.
type spanAgg struct {
	count int64
	total float64 // sum of Value (ns for timing spans)
	max   float64
}

// InvariantViolation is the first recorded violation of one invariant.
type InvariantViolation struct {
	Invariant string // EvInvariant Kind
	T         int64  // simulated time of the first violation
	Detail    string // the event's Aux
}

// NewAnalysis returns an empty aggregator.
func NewAnalysis() *Analysis {
	return &Analysis{
		Stats:         NewStatsSink(),
		distance:      seriesTrack{convergedAt: -1},
		missing:       seriesTrack{convergedAt: -1},
		invChecks:     make(map[string]int64),
		invViolations: make(map[string]int64),
		invFirst:      make(map[string]InvariantViolation),
		retx:          make(map[string]int64),
		spans:         make(map[string]*spanAgg),
		shardBusy:     make(map[int]float64),
		shardActs:     make(map[string]map[int]int64),
	}
}

// Emit folds one event. Implements Tracer.
func (a *Analysis) Emit(e Event) {
	a.Stats.Emit(e)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	if !a.haveT || e.T < a.firstT {
		a.firstT = e.T
	}
	if !a.haveT || e.T > a.lastT {
		a.lastT = e.T
	}
	a.haveT = true
	switch e.Type {
	case EvRetransmit:
		a.retx[e.Kind]++
		if e.Value > a.maxAttempt {
			a.maxAttempt = e.Value
		}
		return
	case EvRtoUpdate:
		if a.rtoSamples == 0 || e.Value < a.rtoMin {
			a.rtoMin = e.Value
		}
		if e.Value > a.rtoMax {
			a.rtoMax = e.Value
		}
		a.rtoLast = e.Value
		a.rtoSamples++
		return
	case EvLeaseExpire:
		if e.Aux == "up" {
			a.leaseUps++
		} else {
			a.leaseDowns++
		}
		return
	case EvSpan:
		a.foldSpan(e)
		return
	case EvShardRound:
		// Kind "policy" is the executor's per-round partition stamp
		// (Aux = policy name, Value = shard count); numeric Kinds are
		// per-shard activation attribution.
		if e.Kind == "policy" {
			a.policy = e.Aux
			a.policyShards = int(e.Value)
			return
		}
		if shard, err := strconv.Atoi(e.Kind); err == nil {
			m := a.shardActs[e.Aux]
			if m == nil {
				m = make(map[int]int64)
				a.shardActs[e.Aux] = m
			}
			m[shard] += int64(e.Value)
		}
		return
	}
	if e.Type == EvInvariant {
		a.invChecks[e.Kind]++
		if e.Value != 0 {
			a.invViolations[e.Kind]++
			if _, seen := a.invFirst[e.Kind]; !seen {
				a.invFirst[e.Kind] = InvariantViolation{Invariant: e.Kind, T: e.T, Detail: e.Aux}
			}
		}
		return
	}
	if e.Type != EvProbe {
		return
	}
	switch e.Kind {
	case "distance":
		a.distance.add(e.T, e.Value)
	case "missing":
		a.missing.add(e.T, e.Value)
	case "connected":
		if e.Value == 0 {
			a.disconnected = true
		}
	}
}

// Events returns how many events were folded in.
func (a *Analysis) Events() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events
}

// TimeSpan returns the smallest and largest timestamps seen.
func (a *Analysis) TimeSpan() (first, last int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.firstT, a.lastT
}

// Verdict assembles the convergence verdict from the folded probe series,
// judging on "missing" when the trace carries the decomposition and on
// the scalar "distance" otherwise.
func (a *Analysis) Verdict() Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	crit, metric := &a.missing, "missing"
	if !a.missing.have {
		crit, metric = &a.distance, "distance"
	}
	v := Verdict{
		Metric:        metric,
		Probes:        crit.n,
		FinalDistance: crit.last,
		Oscillations:  crit.osc,
		ConnectedAll:  !a.disconnected && crit.n > 0,
		ConvergedAt:   crit.convergedAt,
		Rounds:        a.Stats.Rounds(),
	}
	for _, c := range a.invChecks {
		v.InvariantChecks += c
	}
	for _, c := range a.invViolations {
		v.InvariantViolations += c
	}
	v.Converged = crit.have && crit.last == 0
	if !v.Converged {
		v.ConvergedAt = -1
	}
	return v
}

// InvariantReport is the per-invariant check/violation summary of a trace.
type InvariantReport struct {
	Invariant  string
	Checks     int64
	Violations int64
	// First is the earliest violation (zero value when Violations == 0).
	First InvariantViolation
}

// Invariants returns the per-invariant accounting, sorted by name. Empty on
// traces without EvInvariant events.
func (a *Analysis) Invariants() []InvariantReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]InvariantReport, 0, len(a.invChecks))
	for kind, checks := range a.invChecks {
		out = append(out, InvariantReport{
			Invariant:  kind,
			Checks:     checks,
			Violations: a.invViolations[kind],
			First:      a.invFirst[kind],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Invariant < out[j].Invariant })
	return out
}

// RelReport is the reliable-sublayer story of one trace: retransmission
// volume by frame kind, the adaptive-RTO envelope observed across all
// links, and failure-detector verdicts. The zero value means the trace
// carried no sublayer events (a raw-transport run).
type RelReport struct {
	Retransmits []KindTotal // per inner frame kind, descending count
	Total       int64       // all retransmissions
	MaxAttempt  int         // deepest per-frame retry seen
	RTOSamples  int64       // EvRtoUpdate events (valid Karn RTT samples)
	RTOMin      float64
	RTOMax      float64
	RTOLast     float64
	LeaseDowns  int64 // neighbor-down verdicts
	LeaseUps    int64 // neighbor-up verdicts
}

// Empty reports whether the trace carried no reliable-sublayer events.
func (r RelReport) Empty() bool {
	return r.Total == 0 && r.RTOSamples == 0 && r.LeaseDowns == 0 && r.LeaseUps == 0
}

// Rel returns the reliable-sublayer aggregates of the trace.
func (a *Analysis) Rel() RelReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := RelReport{
		MaxAttempt: int(a.maxAttempt),
		RTOSamples: a.rtoSamples,
		RTOMin:     a.rtoMin,
		RTOMax:     a.rtoMax,
		RTOLast:    a.rtoLast,
		LeaseDowns: a.leaseDowns,
		LeaseUps:   a.leaseUps,
	}
	for kind, c := range a.retx {
		r.Retransmits = append(r.Retransmits, KindTotal{Kind: kind, Count: c})
		r.Total += c
	}
	sort.Slice(r.Retransmits, func(i, j int) bool {
		if r.Retransmits[i].Count != r.Retransmits[j].Count {
			return r.Retransmits[i].Count > r.Retransmits[j].Count
		}
		return r.Retransmits[i].Kind < r.Retransmits[j].Kind
	})
	return r
}

// Taxonomy returns the per-kind send totals: from per-message events when
// the trace has them, else from "msgs/…" summary counters (coarse traces).
func (a *Analysis) Taxonomy() []KindTotal {
	if tax := a.Stats.MessageTaxonomy(); len(tax) > 0 {
		return tax
	}
	return a.counterTotals(MsgCounterPrefix)
}

// DropTotals returns per-reason loss totals, with the same summary-counter
// fallback as Taxonomy.
func (a *Analysis) DropTotals() []KindTotal {
	if d := a.Stats.Drops(); len(d) > 0 {
		return d
	}
	return a.counterTotals(DropCounterPrefix)
}

// TotalSent sums the taxonomy.
func (a *Analysis) TotalSent() int64 {
	var t int64
	for _, kt := range a.Taxonomy() {
		t += kt.Count
	}
	return t
}

func (a *Analysis) counterTotals(prefix string) []KindTotal {
	var out []KindTotal
	for _, kt := range a.Stats.Counters() {
		if strings.HasPrefix(kt.Kind, prefix) {
			out = append(out, KindTotal{Kind: strings.TrimPrefix(kt.Kind, prefix), Count: kt.Count})
		}
	}
	return out
}

// foldSpan folds one EvSpan event. Caller holds a.mu.
func (a *Analysis) foldSpan(e Event) {
	switch {
	case strings.HasPrefix(e.Kind, "shard/"):
		if shard, err := strconv.Atoi(e.Aux); err == nil {
			a.shardBusy[shard] += e.Value
		}
		return // per-shard spans are attributed, not aggregated by kind
	case e.Kind == "imbalance":
		a.imbSum += e.Value
		a.imbN++
		if e.Value > a.imbMax {
			a.imbMax = e.Value
		}
		return
	case e.Kind == "allocs":
		a.allocBytes += e.Value
		return
	case e.Kind == "mallocs":
		a.mallocs += e.Value
		return
	case e.Kind == "gc":
		a.gcCycles += e.Value
		return
	}
	ag := a.spans[e.Kind]
	if ag == nil {
		ag = &spanAgg{}
		a.spans[e.Kind] = ag
	}
	ag.count++
	ag.total += e.Value
	if e.Value > ag.max {
		ag.max = e.Value
	}
}

// SpanTotal is one span kind's aggregate cost over a trace.
type SpanTotal struct {
	Name    string
	Count   int64
	TotalNs float64
	MaxNs   float64
}

// ShardPerf is one shard's cost-attribution row: wall time spent inside
// the shard's parallel-phase work plus its activation counts by phase
// ("propose" for Jacobi, "interior"/"boundary" for the atomic variants).
type ShardPerf struct {
	Shard       int
	BusyNs      float64
	Activations map[string]int64
}

// PerfReport is the performance story of one trace, reconstructed from the
// profiler's EvSpan side channel and the executor's EvShardRound
// accounting. The zero value means the trace carried neither.
type PerfReport struct {
	Spans  []SpanTotal // timing spans, sorted by name
	Shards []ShardPerf // sorted by shard index
	Rounds int64

	// Policy is the partition policy the sharded executor stamped into the
	// trace ("" on traces predating the stamp or without the executor);
	// PolicyShards is the shard count of the last stamp.
	Policy       string
	PolicyShards int

	ImbalanceMean float64 // mean over rounds of max/mean parallel shard busy
	ImbalanceMax  float64

	AllocBytes float64 // heap bytes allocated across the run
	Mallocs    float64
	GCCycles   float64
}

// Empty reports whether the trace carried no profiler or shard accounting.
func (p PerfReport) Empty() bool { return len(p.Spans) == 0 && len(p.Shards) == 0 }

// parallelSpan reports whether a phase span names work done inside the
// parallel phases of the sharded executor — including the conflict-free
// boundary waves, which execute their picks through the worker pool
// (everything else — begin, finish, end, snapshot rebuilds — is the
// sequential share).
func parallelSpan(name string) bool {
	return name == "phase/prepare" || name == "phase/execute" || name == "phase/waves"
}

// SeqNs returns the wall time spent in the sequential share of the rounds.
func (p PerfReport) SeqNs() float64 {
	var t float64
	for _, s := range p.Spans {
		if !parallelSpan(s.Name) {
			t += s.TotalNs
		}
	}
	return t
}

// ParNs returns the wall time spent in the parallel phases.
func (p PerfReport) ParNs() float64 {
	var t float64
	for _, s := range p.Spans {
		if parallelSpan(s.Name) {
			t += s.TotalNs
		}
	}
	return t
}

// SeqShare returns the sequential fraction of the measured round time —
// the f in Amdahl's law.
func (p PerfReport) SeqShare() float64 {
	seq, par := p.SeqNs(), p.ParNs()
	if seq+par <= 0 {
		return 0
	}
	return seq / (seq + par)
}

// AmdahlCeiling returns the speedup bound 1/f implied by the sequential
// share: no worker count can beat it. Returns 0 when the trace has no
// timing spans (unknown), +Inf is avoided by flooring f at 1e-9.
func (p PerfReport) AmdahlCeiling() float64 {
	if p.SeqNs()+p.ParNs() <= 0 {
		return 0
	}
	f := p.SeqShare()
	if f < 1e-9 {
		f = 1e-9
	}
	return 1 / f
}

// SpeedupAt estimates the achievable speedup with the given worker count:
// 1 / (f + (1-f)/w), assuming perfectly balanced shards (the imbalance
// columns say how optimistic that is).
func (p PerfReport) SpeedupAt(workers int) float64 {
	if workers < 1 || p.SeqNs()+p.ParNs() <= 0 {
		return 0
	}
	f := p.SeqShare()
	return 1 / (f + (1-f)/float64(workers))
}

// Perf returns the performance aggregates of the trace.
func (a *Analysis) Perf() PerfReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := PerfReport{
		ImbalanceMax: a.imbMax,
		AllocBytes:   a.allocBytes,
		Mallocs:      a.mallocs,
		GCCycles:     a.gcCycles,
		Rounds:       a.Stats.Rounds(),
		Policy:       a.policy,
		PolicyShards: a.policyShards,
	}
	if a.imbN > 0 {
		p.ImbalanceMean = a.imbSum / float64(a.imbN)
	}
	for name, ag := range a.spans {
		p.Spans = append(p.Spans, SpanTotal{Name: name, Count: ag.count, TotalNs: ag.total, MaxNs: ag.max})
	}
	sort.Slice(p.Spans, func(i, j int) bool { return p.Spans[i].Name < p.Spans[j].Name })
	shardSet := make(map[int]bool, len(a.shardBusy))
	for s := range a.shardBusy {
		shardSet[s] = true
	}
	for _, m := range a.shardActs {
		for s := range m {
			shardSet[s] = true
		}
	}
	for s := range shardSet {
		row := ShardPerf{Shard: s, BusyNs: a.shardBusy[s], Activations: make(map[string]int64)}
		for phase, m := range a.shardActs {
			if c, ok := m[s]; ok {
				row.Activations[phase] = c
			}
		}
		p.Shards = append(p.Shards, row)
	}
	sort.Slice(p.Shards, func(i, j int) bool { return p.Shards[i].Shard < p.Shards[j].Shard })
	return p
}

// ActivationTotals sums the per-shard activation attribution by phase —
// the boundary-vs-interior imbalance number, trace-wide.
func (p PerfReport) ActivationTotals() map[string]int64 {
	out := make(map[string]int64)
	for _, s := range p.Shards {
		for phase, c := range s.Activations {
			out[phase] += c
		}
	}
	return out
}

// AnalyzeStream drains a Scanner into a fresh Analysis. It returns the
// analysis of everything decoded, alongside the scanner's error if the
// trace was cut short — the partial analysis is still meaningful (the
// crash-recovery read path).
func AnalyzeStream(sc *Scanner) (*Analysis, error) {
	a := NewAnalysis()
	for sc.Scan() {
		a.Emit(sc.Event())
	}
	return a, sc.Err()
}
