package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/linearize"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vring"
)

func TestEventTypeRoundTrip(t *testing.T) {
	for ev := trace.EvMsgSend; ev <= trace.EvProbe; ev++ {
		name := ev.String()
		back, ok := trace.ParseEventType(name)
		if !ok || back != ev {
			t.Errorf("round trip %d: name=%q back=%v ok=%v", ev, name, back, ok)
		}
	}
	if _, ok := trace.ParseEventType("bogus"); ok {
		t.Error("bogus name parsed")
	}
}

func TestRecorderRingBuffer(t *testing.T) {
	r := &trace.Recorder{Cap: 4}
	for i := 0; i < 10; i++ {
		r.Emit(trace.Event{T: int64(i), Type: trace.EvCounter})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.T != int64(6+i) {
			t.Errorf("slot %d: T=%d, want %d (oldest-first ring order)", i, e.T, 6+i)
		}
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Errorf("total=%d dropped=%d", r.Total(), r.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	in := []trace.Event{
		{T: 1, Type: trace.EvMsgSend, Node: 3, Peer: 9, Kind: "ssr:notify", Value: 2},
		{T: 2, Type: trace.EvMsgDrop, Node: 3, Peer: 9, Kind: "ssr:notify", Aux: "loss"},
		{T: 5, Type: trace.EvProbe, Kind: "distance", Value: 7},
	}
	for _, e := range in {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if w.Count() != int64(len(in)) {
		t.Errorf("count=%d", w.Count())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(in) {
		t.Errorf("lines=%d, want %d", lines, len(in))
	}
	out, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	evs, err := trace.ReadJSONL(strings.NewReader("{\"t\":1,\"ev\":\"probe\"}\nnot json\n"))
	if err == nil {
		t.Fatal("want error on malformed line")
	}
	if len(evs) != 1 {
		t.Errorf("decoded %d events before error, want 1", len(evs))
	}
}

func TestLevelFilterAndTee(t *testing.T) {
	coarse, fine := &trace.Recorder{}, &trace.Recorder{}
	tr := trace.Tee(trace.WithLevel(coarse, trace.LevelRound), trace.WithLevel(fine, trace.LevelMsg))
	tr.Emit(trace.Event{Type: trace.EvMsgSend})
	tr.Emit(trace.Event{Type: trace.EvRoundEnd})
	tr.Emit(trace.Event{Type: trace.EvProbe})
	if got := len(coarse.Events()); got != 2 {
		t.Errorf("coarse saw %d, want 2 (round-level only)", got)
	}
	if got := len(fine.Events()); got != 3 {
		t.Errorf("fine saw %d, want 3", got)
	}
	if trace.Tee(nil, nil) != nil {
		t.Error("Tee of nils must collapse to nil (disabled fast path)")
	}
	if trace.WithLevel(coarse, trace.LevelOff) != nil {
		t.Error("LevelOff must collapse to nil")
	}
}

func TestStatsSinkAggregates(t *testing.T) {
	s := trace.NewStatsSink()
	s.Emit(trace.Event{Type: trace.EvMsgSend, Kind: "ssr:notify"})
	s.Emit(trace.Event{Type: trace.EvMsgSend, Kind: "ssr:notify"})
	s.Emit(trace.Event{Type: trace.EvMsgSend, Kind: "ssr:ack"})
	s.Emit(trace.Event{Type: trace.EvMsgDrop, Kind: "ssr:ack", Aux: "loss"})
	s.Emit(trace.Event{Type: trace.EvCounter, Kind: "isprp:flood-origin", Value: 1})
	s.Emit(trace.Event{Type: trace.EvGauge, Kind: "queue", Value: 5})
	s.Emit(trace.Event{Type: trace.EvGauge, Kind: "queue", Value: 3})
	s.Emit(trace.Event{Type: trace.EvRoundEnd})
	if s.TotalSent() != 3 {
		t.Errorf("total sent %d", s.TotalSent())
	}
	tax := s.MessageTaxonomy()
	if len(tax) != 2 || tax[0].Kind != "ssr:ack" || tax[0].Count != 1 || tax[1].Count != 2 {
		t.Errorf("taxonomy %+v", tax)
	}
	if d := s.Drops(); len(d) != 1 || d[0].Kind != "loss" {
		t.Errorf("drops %+v", d)
	}
	if s.Counter("isprp:flood-origin") != 1 {
		t.Errorf("counter %v", s.Counter("isprp:flood-origin"))
	}
	if g := s.Gauge("queue"); g.Last != 3 || g.Max != 5 || g.N != 2 {
		t.Errorf("gauge %+v", g)
	}
	if s.Rounds() != 1 {
		t.Errorf("rounds %d", s.Rounds())
	}
	tab := s.TaxonomyTable().String()
	if !strings.Contains(tab, "ssr:notify") || !strings.Contains(tab, "TOTAL") {
		t.Errorf("taxonomy table:\n%s", tab)
	}
}

func TestProbeOnLoopyConvergence(t *testing.T) {
	rec := &trace.Recorder{}
	p := &trace.Probe{Tracer: rec}
	g := vring.LoopyExample().ToGraph()
	p.Observe(0, g) // pre-run sample: loopy state is far from the line
	stats, final := linearize.Run(g, linearize.Config{
		Variant:   linearize.Memory,
		Scheduler: sim.Synchronous,
		Probe:     p,
	})
	if !stats.Converged {
		t.Fatalf("did not converge: %s", stats)
	}
	if p.Len() != stats.Rounds+1 {
		t.Errorf("samples=%d, want rounds+pre=%d", p.Len(), stats.Rounds+1)
	}
	if !p.ConnectedAllRounds() {
		t.Error("connectivity invariant must hold every round")
	}
	first, _ := p.Samples()[0], final
	if first.Distance() == 0 {
		t.Error("loopy state should start at nonzero distance")
	}
	if last, _ := p.Last(); last.Missing != 0 {
		t.Errorf("converged run still missing %d line edges", last.Missing)
	}
	if p.Stalled() {
		t.Error("converged run should not report a stall")
	}
	// The probe's tracer view must reconstruct the same series.
	series := trace.SeriesFromEvents(rec.Events())
	dist := series["distance"]
	if len(dist.Y) != p.Len() {
		t.Fatalf("event series has %d points, probe %d", len(dist.Y), p.Len())
	}
	for i, s := range p.Samples() {
		if int(dist.Y[i]) != s.Distance() {
			t.Errorf("round %d: event distance %v != sample %d", i, dist.Y[i], s.Distance())
		}
	}
	conn := series["connected"]
	for i, y := range conn.Y {
		if y != 1 {
			t.Errorf("connected series dropped to %v at sample %d", y, i)
		}
	}
}

func TestProbeStallDetection(t *testing.T) {
	p := &trace.Probe{StallWindow: 3}
	// A graph that never changes and is never the line: star around 100.
	g := graph.New()
	for _, v := range []ids.ID{1, 2, 3} {
		g.AddEdge(100, v)
	}
	for round := 0; round < 6; round++ {
		p.Observe(round, g)
	}
	if !p.Stalled() {
		t.Error("constant nonzero distance must register as a stall")
	}
	if p.Converged() {
		t.Error("star is not the line")
	}
}

func TestLineDistance(t *testing.T) {
	nodes := []ids.ID{1, 4, 9, 13}
	line := graph.Line(nodes)
	if m, s := vring.LineDistance(line); m != 0 || s != 0 {
		t.Errorf("line: missing=%d surplus=%d", m, s)
	}
	ring := graph.Ring(nodes)
	if m, s := vring.LineDistance(ring); m != 0 || s != 0 {
		t.Errorf("sorted ring (wrap edge exempt): missing=%d surplus=%d", m, s)
	}
	g := graph.Line(nodes)
	g.RemoveEdge(4, 9)
	g.AddEdge(1, 9)
	if m, s := vring.LineDistance(g); m != 1 || s != 1 {
		t.Errorf("perturbed: missing=%d surplus=%d, want 1,1", m, s)
	}
}

func TestSimEngineTracing(t *testing.T) {
	rec := &trace.Recorder{}
	eng := sim.NewEngine(1, sim.WithTracer(rec))
	fired := 0
	eng.After(1, func() { fired++ })
	eng.After(2, func() { fired++ })
	cancelled := eng.After(3, func() { fired++ })
	cancelled.Cancel()
	cancelled.Cancel() // idempotent: must not double-count
	eng.Run(0)
	if fired != 2 {
		t.Fatalf("fired=%d", fired)
	}
	if got := len(rec.Filter(trace.EvSimFire)); got != 2 {
		t.Errorf("EvSimFire=%d, want 2", got)
	}
	if got := len(rec.Filter(trace.EvSimCancel)); got != 1 {
		t.Errorf("EvSimCancel=%d, want 1", got)
	}
}

func TestLinearizeTracerEvents(t *testing.T) {
	rec := &trace.Recorder{}
	g := vring.LoopyExample().ToGraph()
	stats, _ := linearize.Run(g, linearize.Config{
		Variant:   linearize.LSN,
		Scheduler: sim.Synchronous,
		CloseRing: true,
		Tracer:    rec,
	})
	if !stats.Converged {
		t.Fatalf("did not converge: %s", stats)
	}
	starts := rec.Filter(trace.EvRoundStart)
	ends := rec.Filter(trace.EvRoundEnd)
	if len(starts) != stats.Rounds || len(ends) != stats.Rounds {
		t.Errorf("rounds traced start=%d end=%d, stats=%d", len(starts), len(ends), stats.Rounds)
	}
	closed := rec.Filter(trace.EvRingClosed)
	if len(closed) != 1 {
		t.Errorf("EvRingClosed=%d, want exactly 1", len(closed))
	}
	// The closure edge counts in EdgesAdded but is traced as EvRingClosed.
	if adds := rec.Filter(trace.EvEdgeAdd); int64(len(adds)+len(closed)) != stats.EdgesAdded {
		t.Errorf("EvEdgeAdd=%d + closed=%d, stats.EdgesAdded=%d", len(adds), len(closed), stats.EdgesAdded)
	}
	if drops := rec.Filter(trace.EvEdgeDelegate); int64(len(drops)) != stats.EdgesDropped {
		t.Errorf("EvEdgeDelegate=%d, stats.EdgesDropped=%d", len(drops), stats.EdgesDropped)
	}
	for _, e := range rec.Filter(trace.EvNodeActivate) {
		if e.Value <= 0 {
			t.Errorf("keep-set size gauge missing on activation %+v", e)
		}
	}
}
