package trace

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vring"
)

// ProbeSample is one per-round convergence observation: the
// distance-to-linearized decomposition, the connectivity invariant, and the
// line-view local-consistency cardinalities (§3's diagnosis of Fig. 1).
type ProbeSample struct {
	Round      int
	Missing    int // consecutive line edges not yet present
	Surplus    int // non-line, non-wrap edges still present
	Edges      int
	Connected  bool
	MultiLeft  int // nodes with >1 left neighbor
	MultiRight int // nodes with >1 right neighbor
}

// Distance is the scalar convergence metric: missing + surplus edges.
func (s ProbeSample) Distance() int { return s.Missing + s.Surplus }

// Probe is the convergence monitor: fed one graph snapshot per round (its
// Observe method matches linearize.Config.OnRound and the cluster probes of
// the message-level protocols), it records the round-by-round
// distance-to-linearized series, watches the connectivity invariant, and
// detects stalls and oscillation. When Tracer is set, every sample is also
// emitted as EvProbe events, so JSONL traces carry the series for offline
// replay.
type Probe struct {
	// Tracer, if set, receives each sample as EvProbe events.
	Tracer Tracer
	// StallWindow is how many consecutive non-improving rounds count as a
	// stall (<=0: DefaultStallWindow).
	StallWindow int

	mu      sync.Mutex
	samples []ProbeSample
}

// DefaultStallWindow is the stall threshold of a zero-value Probe.
const DefaultStallWindow = 16

// Observe records a sample for the given round. The graph is read, never
// retained. Safe for use as a linearize OnRound hook or a scheduled
// cluster probe.
func (p *Probe) Observe(round int, g *graph.Graph) {
	missing, surplus := vring.LineDistance(g)
	rep := vring.AnalyzeLine(g)
	s := ProbeSample{
		Round:      round,
		Missing:    missing,
		Surplus:    surplus,
		Edges:      g.NumEdges(),
		Connected:  rep.Components <= 1,
		MultiLeft:  len(rep.MultiLeft),
		MultiRight: len(rep.MultiRight),
	}
	p.mu.Lock()
	p.samples = append(p.samples, s)
	p.mu.Unlock()
	if p.Tracer != nil {
		conn := 0.0
		if s.Connected {
			conn = 1.0
		}
		t := int64(round)
		p.Tracer.Emit(Event{T: t, Type: EvProbe, Kind: "distance", Value: float64(s.Distance())})
		// The decomposition travels too: missing==0 is the global-consistency
		// criterion that stays meaningful when legitimate surplus edges
		// (route-cache state) keep the scalar distance nonzero.
		p.Tracer.Emit(Event{T: t, Type: EvProbe, Kind: "missing", Value: float64(s.Missing)})
		p.Tracer.Emit(Event{T: t, Type: EvProbe, Kind: "surplus", Value: float64(s.Surplus)})
		p.Tracer.Emit(Event{T: t, Type: EvProbe, Kind: "connected", Value: conn})
		p.Tracer.Emit(Event{T: t, Type: EvProbe, Kind: "multi-left", Value: float64(s.MultiLeft)})
		p.Tracer.Emit(Event{T: t, Type: EvProbe, Kind: "multi-right", Value: float64(s.MultiRight)})
		p.Tracer.Emit(Event{T: t, Type: EvProbe, Kind: "edges", Value: float64(s.Edges)})
	}
}

// Samples returns a copy of the recorded series, in observation order.
func (p *Probe) Samples() []ProbeSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ProbeSample(nil), p.samples...)
}

// Len returns the number of recorded samples.
func (p *Probe) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.samples)
}

// Last returns the most recent sample (ok=false when empty).
func (p *Probe) Last() (ProbeSample, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.samples) == 0 {
		return ProbeSample{}, false
	}
	return p.samples[len(p.samples)-1], true
}

// Series renders the round → distance curve for the figure toolkit.
func (p *Probe) Series(name string) metrics.Series {
	s := metrics.Series{Name: name}
	for _, smp := range p.Samples() {
		s.Add(float64(smp.Round), float64(smp.Distance()))
	}
	return s
}

// ConnectedAllRounds reports whether the connectivity invariant — the
// property that makes local consistency equal global consistency on the
// line (§3) — held in every observed round.
func (p *Probe) ConnectedAllRounds() bool {
	for _, s := range p.Samples() {
		if !s.Connected {
			return false
		}
	}
	return true
}

// Converged reports whether the latest sample reached distance zero.
func (p *Probe) Converged() bool {
	last, ok := p.Last()
	return ok && last.Distance() == 0
}

// Stalled reports whether the trailing StallWindow samples show no
// improvement of the distance metric while it is still nonzero.
func (p *Probe) Stalled() bool {
	window := p.StallWindow
	if window <= 0 {
		window = DefaultStallWindow
	}
	samples := p.Samples()
	if len(samples) <= window {
		return false
	}
	tail := samples[len(samples)-window-1:]
	best := tail[0].Distance()
	if best == 0 {
		return false
	}
	for _, s := range tail[1:] {
		if s.Distance() < best {
			return false
		}
	}
	return true
}

// Oscillations counts rounds in which the distance metric increased —
// zero for the monotone variants; persistent positive counts flag the
// crossing-chord regeneration pathology the synchronous pure variant is
// known for.
func (p *Probe) Oscillations() int {
	samples := p.Samples()
	osc := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].Distance() > samples[i-1].Distance() {
			osc++
		}
	}
	return osc
}

// String summarizes the probe's verdict.
func (p *Probe) String() string {
	last, ok := p.Last()
	if !ok {
		return "probe: no samples"
	}
	return fmt.Sprintf("probe: rounds=%d distance=%d connectedAll=%v stalled=%v oscillations=%d",
		p.Len(), last.Distance(), p.ConnectedAllRounds(), p.Stalled(), p.Oscillations())
}

// SeriesFromEvents reconstructs the per-round convergence series from a
// replayed event stream: for each probe metric name it collects the (T,
// Value) points in stream order. This is the offline half of the JSONL
// format — what a trace viewer or a regression test uses to recompute the
// convergence story without re-running the simulation.
func SeriesFromEvents(events []Event) map[string]metrics.Series {
	out := make(map[string]metrics.Series)
	for _, e := range events {
		if e.Type != EvProbe {
			continue
		}
		s := out[e.Kind]
		s.Name = e.Kind
		s.Add(float64(e.T), e.Value)
		out[e.Kind] = s
	}
	return out
}
