// Package graph provides the graph substrate for the SSR/VRR reproduction:
// undirected graphs keyed by node identifier, the topology generators used by
// the paper's experiments (random regular, Erdős–Rényi, power-law, unit-disk,
// grid, line, ring, star), and the traversal/connectivity algorithms that the
// consistency checkers and the physical network simulator build on.
//
// Graphs here serve two distinct roles:
//
//   - The *physical* network graph E_p: communication links between nodes.
//   - The *virtual* network graph E_v: source routes (SSR) or path state
//     (VRR), which the linearization algorithm transforms into the virtual
//     ring. §4 of the paper initializes E_v := E_p.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ids"
)

// Graph is an undirected simple graph over node identifiers. Self-loops are
// rejected; parallel edges collapse. The zero value is not usable; call New.
type Graph struct {
	adj map[ids.ID]ids.Set
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[ids.ID]ids.Set)}
}

// NewWithNodes returns a graph containing the given nodes and no edges.
func NewWithNodes(nodes ...ids.ID) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	return g
}

// AddNode inserts an isolated node if not present.
func (g *Graph) AddNode(v ids.ID) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = ids.NewSet()
	}
}

// RemoveNode deletes v and all incident edges. It is a no-op if v is absent.
func (g *Graph) RemoveNode(v ids.ID) {
	nbrs, ok := g.adj[v]
	if !ok {
		return
	}
	for u := range nbrs {
		g.adj[u].Remove(v)
	}
	delete(g.adj, v)
}

// HasNode reports whether v is in the graph.
func (g *Graph) HasNode(v ids.ID) bool {
	_, ok := g.adj[v]
	return ok
}

// AddEdge inserts the undirected edge {u,v}, adding the endpoints if needed.
// It reports whether the edge was newly added. Self-loops are ignored.
func (g *Graph) AddEdge(u, v ids.ID) bool {
	if u == v {
		return false
	}
	g.AddNode(u)
	g.AddNode(v)
	added := g.adj[u].Add(v)
	g.adj[v].Add(u)
	return added
}

// RemoveEdge deletes the undirected edge {u,v} and reports whether it was
// present.
func (g *Graph) RemoveEdge(u, v ids.ID) bool {
	if _, ok := g.adj[u]; !ok {
		return false
	}
	removed := g.adj[u].Remove(v)
	if nbrs, ok := g.adj[v]; ok {
		nbrs.Remove(u)
	}
	return removed
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v ids.ID) bool {
	nbrs, ok := g.adj[u]
	return ok && nbrs.Has(v)
}

// Neighbors returns the neighbor set of v. The returned set is the graph's
// internal state; callers must not mutate it. It is nil if v is absent.
func (g *Graph) Neighbors(v ids.ID) ids.Set { return g.adj[v] }

// NeighborsSorted returns the neighbors of v in ascending identifier order.
func (g *Graph) NeighborsSorted(v ids.ID) []ids.ID {
	return g.adj[v].Sorted()
}

// NeighborsSortedInto appends the neighbors of v in ascending identifier
// order to dst (reusing its capacity) and returns the extended slice — the
// allocation-free variant of NeighborsSorted for per-round hot paths.
func (g *Graph) NeighborsSortedInto(v ids.ID, dst []ids.ID) []ids.ID {
	base := len(dst)
	for u := range g.adj[v] {
		dst = append(dst, u)
	}
	out := dst[base:]
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return dst
}

// Degree returns the degree of v, or 0 if absent.
func (g *Graph) Degree(v ids.ID) int { return g.adj[v].Len() }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += nbrs.Len()
	}
	return total / 2
}

// Nodes returns all node identifiers in ascending order.
func (g *Graph) Nodes() []ids.ID {
	out := make([]ids.ID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	ids.SortAsc(out)
	return out
}

// Edge is an undirected edge with U < V canonically.
type Edge struct {
	U, V ids.ID
}

// NewEdge returns the canonical form of the edge {u,v}.
func NewEdge(u, v ids.ID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// String renders the edge as "{u,v}".
func (e Edge) String() string { return fmt.Sprintf("{%s,%s}", e.U, e.V) }

// Edges returns all edges in canonical, deterministic order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v, nbrs := range g.adj {
		for u := range nbrs {
			if v < u {
				out = append(out, Edge{U: v, V: u})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make(map[ids.ID]ids.Set, len(g.adj))}
	for v, nbrs := range g.adj {
		c.adj[v] = nbrs.Clone()
	}
	return c
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if len(g.adj) != len(h.adj) {
		return false
	}
	for v, nbrs := range g.adj {
		hn, ok := h.adj[v]
		if !ok || hn.Len() != nbrs.Len() {
			return false
		}
		for u := range nbrs {
			if !hn.Has(u) {
				return false
			}
		}
	}
	return true
}

// MaxDegree returns the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if nbrs.Len() > max {
			max = nbrs.Len()
		}
	}
	return max
}

// AvgDegree returns the average node degree (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(len(g.adj))
}

// BFSFrom runs a breadth-first search from src and returns the hop distance
// to every reachable node (src included at distance 0).
func (g *Graph) BFSFrom(src ids.ID) map[ids.ID]int {
	dist := make(map[ids.ID]int)
	if !g.HasNode(src) {
		return dist
	}
	dist[src] = 0
	queue := []ids.ID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ShortestPath returns a minimum-hop path from src to dst (inclusive of both
// endpoints), or nil if dst is unreachable. Ties are broken by ascending
// identifier to keep results deterministic.
func (g *Graph) ShortestPath(src, dst ids.ID) []ids.ID {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	if src == dst {
		return []ids.ID{src}
	}
	parent := map[ids.ID]ids.ID{src: src}
	queue := []ids.ID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v].Sorted() {
			if _, seen := parent[u]; seen {
				continue
			}
			parent[u] = v
			if u == dst {
				path := []ids.ID{dst}
				for p := dst; p != src; {
					p = parent[p]
					path = append(path, p)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, u)
		}
	}
	return nil
}

// Connected reports whether the graph is connected. The empty graph counts
// as connected.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	var src ids.ID
	for v := range g.adj {
		src = v
		break
	}
	return len(g.BFSFrom(src)) == len(g.adj)
}

// Components returns the connected components, each sorted ascending, in
// deterministic order (by smallest member).
func (g *Graph) Components() [][]ids.ID {
	seen := ids.NewSet()
	var comps [][]ids.ID
	for _, v := range g.Nodes() {
		if seen.Has(v) {
			continue
		}
		var comp []ids.ID
		for u := range g.BFSFrom(v) {
			comp = append(comp, u)
			seen.Add(u)
		}
		ids.SortAsc(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Diameter returns the maximum eccentricity over all nodes. It returns -1
// for a disconnected or empty graph. This is O(V·E) and intended for the
// modest topologies used in experiments.
func (g *Graph) Diameter() int {
	if len(g.adj) == 0 {
		return -1
	}
	diam := 0
	for v := range g.adj {
		dist := g.BFSFrom(v)
		if len(dist) != len(g.adj) {
			return -1
		}
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// IsLinearized reports whether the graph is exactly the sorted line over its
// node set: node i is adjacent to node i-1 and i+1 (in identifier order) and
// to nothing else. This is the fixed point of linearization before ring
// closure. Graphs with fewer than two nodes are trivially linearized when
// they have no edges.
func (g *Graph) IsLinearized() bool {
	nodes := g.Nodes()
	if len(nodes) < 2 {
		return g.NumEdges() == 0
	}
	if g.NumEdges() != len(nodes)-1 {
		return false
	}
	for i := 0; i < len(nodes)-1; i++ {
		if !g.HasEdge(nodes[i], nodes[i+1]) {
			return false
		}
	}
	return true
}

// IsSortedRing reports whether the graph is exactly the virtual ring over
// its node set: the sorted line plus the closing edge between the smallest
// and largest identifier. Rings need at least three nodes; two nodes with
// one edge also count (line == ring then), matching SSR's degenerate cases.
func (g *Graph) IsSortedRing() bool {
	nodes := g.Nodes()
	switch len(nodes) {
	case 0, 1:
		return g.NumEdges() == 0
	case 2:
		return g.NumEdges() == 1 && g.HasEdge(nodes[0], nodes[1])
	}
	if g.NumEdges() != len(nodes) {
		return false
	}
	for i := 0; i < len(nodes)-1; i++ {
		if !g.HasEdge(nodes[i], nodes[i+1]) {
			return false
		}
	}
	return g.HasEdge(nodes[0], nodes[len(nodes)-1])
}

// SupersetOfLine reports whether the graph contains every consecutive edge
// of the sorted line over its node set (it may contain more edges). This is
// the fixed point of linearization *with memory*, which never removes edges.
func (g *Graph) SupersetOfLine() bool {
	nodes := g.Nodes()
	for i := 0; i+1 < len(nodes); i++ {
		if !g.HasEdge(nodes[i], nodes[i+1]) {
			return false
		}
	}
	return true
}

// RandomSpanningConnected adds random edges to g (over its current node set)
// until it is connected, using r for randomness. It is used by generators
// that can produce disconnected graphs, so experiments always start from the
// paper's standing assumption of a connected physical network.
func (g *Graph) RandomSpanningConnected(r *rand.Rand) {
	comps := g.Components()
	for len(comps) > 1 {
		a := comps[0][r.Intn(len(comps[0]))]
		c2 := comps[1+r.Intn(len(comps)-1)]
		b := c2[r.Intn(len(c2))]
		g.AddEdge(a, b)
		comps = g.Components()
	}
}
