package graph

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ids"
)

// IDAssignment controls how node identifiers are drawn for generated
// topologies. SSR explicitly does not assume addresses to match topology
// (§1), so the default draws identifiers uniformly at random from the full
// 64-bit space; Sequential is convenient for small didactic examples like
// the paper's figures.
type IDAssignment int

const (
	// RandomIDs draws unique uniform random 64-bit identifiers.
	RandomIDs IDAssignment = iota
	// SequentialIDs assigns 1..n. Useful for readable traces.
	SequentialIDs
)

// MakeIDs returns n unique identifiers per the assignment policy.
func MakeIDs(n int, policy IDAssignment, r *rand.Rand) []ids.ID {
	out := make([]ids.ID, 0, n)
	switch policy {
	case SequentialIDs:
		for i := 1; i <= n; i++ {
			out = append(out, ids.ID(i))
		}
	default:
		seen := ids.NewSet()
		for len(out) < n {
			id := ids.ID(r.Uint64())
			if seen.Add(id) {
				out = append(out, id)
			}
		}
	}
	return out
}

// Line returns the sorted-line graph over the given nodes.
func Line(nodes []ids.ID) *Graph {
	sorted := append([]ids.ID(nil), nodes...)
	ids.SortAsc(sorted)
	g := NewWithNodes(sorted...)
	for i := 0; i+1 < len(sorted); i++ {
		g.AddEdge(sorted[i], sorted[i+1])
	}
	return g
}

// Ring returns the sorted virtual ring over the given nodes: the line plus
// the wrap edge.
func Ring(nodes []ids.ID) *Graph {
	g := Line(nodes)
	sorted := g.Nodes()
	if len(sorted) > 2 {
		g.AddEdge(sorted[0], sorted[len(sorted)-1])
	}
	return g
}

// Star returns a star with the first node as hub.
func Star(nodes []ids.ID) *Graph {
	g := NewWithNodes(nodes...)
	if len(nodes) == 0 {
		return g
	}
	hub := nodes[0]
	for _, v := range nodes[1:] {
		g.AddEdge(hub, v)
	}
	return g
}

// Grid returns a rows×cols grid over the given nodes (len must be
// rows*cols), wiring 4-neighborhoods. It models the regular deployments
// used in sensor-network evaluations of SSR.
func Grid(nodes []ids.ID, rows, cols int) (*Graph, error) {
	if rows*cols != len(nodes) {
		return nil, fmt.Errorf("grid %dx%d needs %d nodes, got %d", rows, cols, rows*cols, len(nodes))
	}
	g := NewWithNodes(nodes...)
	at := func(rw, c int) ids.ID { return nodes[rw*cols+c] }
	for rw := 0; rw < rows; rw++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(at(rw, c), at(rw, c+1))
			}
			if rw+1 < rows {
				g.AddEdge(at(rw, c), at(rw+1, c))
			}
		}
	}
	return g, nil
}

// ErdosRenyi returns a G(n,p) random graph over the given nodes, then
// patches in random edges until connected (the paper assumes a connected
// physical graph throughout).
func ErdosRenyi(nodes []ids.ID, p float64, r *rand.Rand) *Graph {
	g := NewWithNodes(nodes...)
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if r.Float64() < p {
				g.AddEdge(nodes[i], nodes[j])
			}
		}
	}
	g.RandomSpanningConnected(r)
	return g
}

// RandomRegular returns a connected random d-regular-ish graph over the
// given nodes using the pairing model with retries; imperfect pairings fall
// back to near-regular (degree d±1). Onus et al. evaluate linearization on
// regular random graphs; the round counts depend on the degree distribution,
// not exact regularity.
func RandomRegular(nodes []ids.ID, d int, r *rand.Rand) *Graph {
	n := len(nodes)
	g := NewWithNodes(nodes...)
	if n < 2 || d < 1 {
		return g
	}
	if d >= n {
		d = n - 1
	}
	// Pairing model: d stubs per node, shuffle, pair consecutive stubs.
	// Discard self-loops and duplicates; a handful of lost stubs is fine.
	stubs := make([]ids.ID, 0, n*d)
	for _, v := range nodes {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	for attempt := 0; attempt < 10; attempt++ {
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		trial := NewWithNodes(nodes...)
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || trial.HasEdge(u, v) {
				ok = false
				continue
			}
			trial.AddEdge(u, v)
		}
		g = trial
		if ok {
			break
		}
	}
	g.RandomSpanningConnected(r)
	return g
}

// PowerLaw returns a connected graph whose degree distribution follows a
// power law with the given exponent alpha, built with the configuration
// model: node i (in random order) gets degree proportional to a Pareto draw
// with tail exponent alpha, clamped to [1, n-1]. The paper quotes Onus et
// al.'s experiment on power-law graphs with alpha = 2.
func PowerLaw(nodes []ids.ID, alpha float64, r *rand.Rand) *Graph {
	n := len(nodes)
	g := NewWithNodes(nodes...)
	if n < 2 {
		return g
	}
	stubs := make([]ids.ID, 0, 4*n)
	for _, v := range nodes {
		// Inverse-transform sample of a zeta-like distribution:
		// P(deg >= k) ~ k^(1-alpha). Draw u uniform, deg = u^(-1/(alpha-1)).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		deg := int(math.Pow(u, -1/(alpha-1)))
		if deg < 1 {
			deg = 1
		}
		if deg > n-1 {
			deg = n - 1
		}
		for k := 0; k < deg; k++ {
			stubs = append(stubs, v)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		g.AddEdge(stubs[i], stubs[i+1]) // self-loops/duplicates collapse
	}
	g.RandomSpanningConnected(r)
	return g
}

// PreferentialAttachment returns a Barabási–Albert graph: each new node
// attaches to m existing nodes chosen proportionally to degree. This gives
// power-law graphs with exponent ~3 and is the standard alternative
// power-law generator for the E4 sweeps.
func PreferentialAttachment(nodes []ids.ID, m int, r *rand.Rand) *Graph {
	n := len(nodes)
	g := NewWithNodes(nodes...)
	if n < 2 {
		return g
	}
	if m < 1 {
		m = 1
	}
	// Repeated-targets list: each edge endpoint appears once, so sampling
	// uniformly from it is degree-proportional sampling.
	targets := []ids.ID{nodes[0]}
	for i := 1; i < n; i++ {
		v := nodes[i]
		k := m
		if k > i {
			k = i
		}
		chosen := ids.NewSet()
		for chosen.Len() < k {
			u := targets[r.Intn(len(targets))]
			if u != v {
				chosen.Add(u)
			}
		}
		for u := range chosen {
			g.AddEdge(v, u)
			targets = append(targets, u)
		}
		targets = append(targets, v)
	}
	return g
}

// UnitDisk places the given nodes uniformly at random on the unit square
// and links every pair within the given radio radius — the standard model
// for the wireless/ad-hoc networks SSR targets. The result is patched to be
// connected. Positions are returned for visualization and for physical-
// proximity-aware experiments.
func UnitDisk(nodes []ids.ID, radius float64, r *rand.Rand) (*Graph, map[ids.ID][2]float64) {
	g := NewWithNodes(nodes...)
	pos := make(map[ids.ID][2]float64, len(nodes))
	for _, v := range nodes {
		pos[v] = [2]float64{r.Float64(), r.Float64()}
	}
	rr := radius * radius
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := pos[nodes[i]], pos[nodes[j]]
			dx, dy := a[0]-b[0], a[1]-b[1]
			if dx*dx+dy*dy <= rr {
				g.AddEdge(nodes[i], nodes[j])
			}
		}
	}
	g.RandomSpanningConnected(r)
	return g, pos
}

// Topology names a generator for the CLI tools and sweep harnesses.
type Topology string

// Topologies selectable in experiments.
const (
	TopoLine     Topology = "line"
	TopoRing     Topology = "ring"
	TopoStar     Topology = "star"
	TopoGrid     Topology = "grid"
	TopoER       Topology = "er"
	TopoRegular  Topology = "regular"
	TopoPowerLaw Topology = "powerlaw"
	TopoBarabasi Topology = "barabasi"
	TopoUnitDisk Topology = "unitdisk"
)

// Generate builds the named topology over n nodes with sensible default
// parameters for the experiment sweeps. The identifier policy and seed make
// runs reproducible.
func Generate(topo Topology, n int, policy IDAssignment, seed int64) (*Graph, error) {
	r := rand.New(rand.NewSource(seed))
	nodes := MakeIDs(n, policy, r)
	switch topo {
	case TopoLine:
		return Line(nodes), nil
	case TopoRing:
		return Ring(nodes), nil
	case TopoStar:
		return Star(nodes), nil
	case TopoGrid:
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 1 {
			side = 1
		}
		return Grid(nodes[:side*side], side, side)
	case TopoER:
		p := 2 * math.Log(float64(n)+1) / float64(n) // comfortably above the connectivity threshold
		if p > 1 {
			p = 1
		}
		return ErdosRenyi(nodes, p, r), nil
	case TopoRegular:
		return RandomRegular(nodes, 4, r), nil
	case TopoPowerLaw:
		return PowerLaw(nodes, 2.0, r), nil
	case TopoBarabasi:
		return PreferentialAttachment(nodes, 2, r), nil
	case TopoUnitDisk:
		radius := 1.8 * math.Sqrt(math.Log(float64(n)+1)/(math.Pi*float64(n)))
		g, _ := UnitDisk(nodes, radius, r)
		return g, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

// AllTopologies lists every selectable topology, for sweeps and CLIs.
func AllTopologies() []Topology {
	return []Topology{
		TopoLine, TopoRing, TopoStar, TopoGrid, TopoER,
		TopoRegular, TopoPowerLaw, TopoBarabasi, TopoUnitDisk,
	}
}
