package graph

// This file provides the read-optimized snapshot form of a Graph: a
// compressed-sparse-row adjacency image. The map-of-sets representation is
// the right shape for the mutation-heavy protocol paths, but the per-round
// neighbor scans of the synchronous executors touch every adjacency exactly
// once in identifier order — a workload where map iteration plus a fresh
// sort per node dominates the profile. The CSR snapshot pays one O(V+E)
// conversion per round and then serves sorted neighbor rows as contiguous
// slices, binary-searchable membership, and O(1) per-node identifier spans
// (the footprint test of the sharded executor).
//
// A CSR is immutable after construction and therefore safe for concurrent
// readers without locking — the property the parallel round executor's
// snapshot phase relies on.

import (
	"sort"
	"sync"

	"repro/internal/ids"
)

// CSR is an immutable compressed-sparse-row snapshot of a Graph. Rows are
// indexed by the node's dense position in ascending identifier order, so
// row order and identifier order coincide.
type CSR struct {
	nodes []ids.ID // ascending
	row   []int32  // len(nodes)+1 offsets into nbr
	nbr   []ids.ID // concatenated per-row neighbor identifiers, each row sorted
	index map[ids.ID]int32
}

// NewCSR snapshots g single-threaded. See NewCSRParallel.
func NewCSR(g *Graph) *CSR { return NewCSRParallel(g, 1) }

// NewCSRParallel snapshots g using up to workers goroutines for the row
// fill+sort (the dominant cost). workers <= 1 builds sequentially. The
// result is independent of the worker count.
func NewCSRParallel(g *Graph, workers int) *CSR {
	nodes := g.Nodes()
	n := len(nodes)
	c := &CSR{
		nodes: nodes,
		row:   make([]int32, n+1),
		index: make(map[ids.ID]int32, n),
	}
	total := int32(0)
	for i, v := range nodes {
		c.index[v] = int32(i)
		c.row[i] = total
		total += int32(g.Degree(v))
	}
	c.row[n] = total
	c.nbr = make([]ids.ID, total)

	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out := c.nbr[c.row[i]:c.row[i+1]:c.row[i+1]]
			k := 0
			for u := range g.Neighbors(nodes[i]) {
				out[k] = u
				k++
			}
			sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		}
	}
	if workers <= 1 || n < 2*workers {
		fill(0, n)
		return c
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fill(lo, hi)
		}()
	}
	wg.Wait()
	return c
}

// WithEdges returns a snapshot equal to c plus the given undirected edges,
// sharing the (immutable) node slice and index map with c — the delta
// update that lets the Jacobi executor avoid a full O(V+E) rebuild plus
// index re-hash per round when only a handful of edges were accepted.
//
// Caller contract: every endpoint must be a node of c (the executor's node
// set is fixed for a run), and adds should be edges absent from c —
// duplicates among adds are ignored, but an add already present in c would
// produce a (harmless but wasteful) repeated row entry. workers bounds the
// parallel row merge as in NewCSRParallel. An empty adds returns c itself.
func (c *CSR) WithEdges(adds []Edge, workers int) *CSR {
	if len(adds) == 0 {
		return c
	}
	type pair struct {
		i   int32
		nbr ids.ID
	}
	pairs := make([]pair, 0, 2*len(adds))
	for _, e := range adds {
		iu, okU := c.index[e.U]
		iv, okV := c.index[e.V]
		if !okU || !okV {
			continue // unknown endpoint: not representable in this snapshot
		}
		pairs = append(pairs, pair{iu, e.V}, pair{iv, e.U})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].nbr < pairs[b].nbr
	})
	dd := pairs[:0]
	for _, p := range pairs {
		if len(dd) > 0 && dd[len(dd)-1] == p {
			continue
		}
		dd = append(dd, p)
	}
	pairs = dd

	n := len(c.nodes)
	out := &CSR{nodes: c.nodes, index: c.index, row: make([]int32, n+1)}
	total := int32(0)
	p := 0
	for i := 0; i < n; i++ {
		out.row[i] = total
		total += c.row[i+1] - c.row[i]
		for p < len(pairs) && int(pairs[p].i) == i {
			total++
			p++
		}
	}
	out.row[n] = total
	out.nbr = make([]ids.ID, total)

	merge := func(lo, hi int) {
		p := sort.Search(len(pairs), func(k int) bool { return int(pairs[k].i) >= lo })
		for i := lo; i < hi; i++ {
			old := c.nbr[c.row[i]:c.row[i+1]]
			dst := out.nbr[out.row[i]:out.row[i+1]]
			oi, di := 0, 0
			for p < len(pairs) && int(pairs[p].i) == i {
				nb := pairs[p].nbr
				for oi < len(old) && old[oi] < nb {
					dst[di] = old[oi]
					oi++
					di++
				}
				dst[di] = nb
				di++
				p++
			}
			copy(dst[di:], old[oi:])
		}
	}
	if workers <= 1 || n < 2*workers {
		merge(0, n)
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			merge(lo, hi)
		}()
	}
	wg.Wait()
	return out
}

// NumNodes returns the node count.
func (c *CSR) NumNodes() int { return len(c.nodes) }

// NumEdges returns the undirected edge count.
func (c *CSR) NumEdges() int { return len(c.nbr) / 2 }

// Node returns the identifier at dense index i (ascending order).
func (c *CSR) Node(i int) ids.ID { return c.nodes[i] }

// Nodes returns the ascending identifier slice. Callers must not mutate it.
func (c *CSR) Nodes() []ids.ID { return c.nodes }

// IndexOf returns the dense index of v, or ok=false if absent.
func (c *CSR) IndexOf(v ids.ID) (int, bool) {
	i, ok := c.index[v]
	return int(i), ok
}

// Row returns the sorted neighbor identifiers of the node at dense index i.
// The slice aliases the snapshot; callers must not mutate it.
func (c *CSR) Row(i int) []ids.ID { return c.nbr[c.row[i]:c.row[i+1]] }

// Degree returns the degree of the node at dense index i.
func (c *CSR) Degree(i int) int { return int(c.row[i+1] - c.row[i]) }

// RowSpan returns the smallest and largest neighbor identifier of the node
// at dense index i, or ok=false for an isolated node. This is the O(1)
// identifier footprint that shard-interior classification uses.
func (c *CSR) RowSpan(i int) (lo, hi ids.ID, ok bool) {
	r := c.Row(i)
	if len(r) == 0 {
		return 0, 0, false
	}
	return r[0], r[len(r)-1], true
}

// HasEdge reports whether the snapshot contains the undirected edge {u,v},
// by binary search in u's row.
func (c *CSR) HasEdge(u, v ids.ID) bool {
	i, ok := c.index[u]
	if !ok {
		return false
	}
	r := c.Row(int(i))
	k := sort.Search(len(r), func(j int) bool { return r[j] >= v })
	return k < len(r) && r[k] == v
}

// MaxDegree returns the maximum degree in the snapshot.
func (c *CSR) MaxDegree() int {
	maxDeg := 0
	for i := 0; i < len(c.nodes); i++ {
		if d := c.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// SupersetOfLine reports whether the snapshot contains every consecutive
// edge of the sorted line over its node set — Graph.SupersetOfLine on the
// frozen image, without map lookups.
func (c *CSR) SupersetOfLine() bool {
	for i := 0; i+1 < len(c.nodes); i++ {
		next := c.nodes[i+1]
		r := c.Row(i)
		// The successor is the first row entry greater than nodes[i] that
		// could equal next; binary search keeps wide rows cheap.
		k := sort.Search(len(r), func(j int) bool { return r[j] >= next })
		if k == len(r) || r[k] != next {
			return false
		}
	}
	return true
}
