package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New()
	if !g.AddEdge(1, 2) {
		t.Error("AddEdge(1,2) should be newly added")
	}
	if g.AddEdge(1, 2) || g.AddEdge(2, 1) {
		t.Error("duplicate edge should not be newly added")
	}
	if g.AddEdge(3, 3) {
		t.Error("self-loop must be rejected")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("edge should be undirected")
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Errorf("NumEdges=%d NumNodes=%d, want 1,2", g.NumEdges(), g.NumNodes())
	}
	if !g.RemoveEdge(2, 1) {
		t.Error("RemoveEdge should report present")
	}
	if g.RemoveEdge(1, 2) {
		t.Error("RemoveEdge twice should report absent")
	}
	if g.HasEdge(1, 2) {
		t.Error("edge should be gone")
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.RemoveNode(2)
	if g.HasNode(2) {
		t.Error("node 2 should be gone")
	}
	if g.HasEdge(1, 2) || g.HasEdge(3, 2) {
		t.Error("incident edges should be gone")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Errorf("NumNodes=%d NumEdges=%d, want 2,0", g.NumNodes(), g.NumEdges())
	}
	g.RemoveNode(99) // absent: no-op
}

func TestNodesAndEdgesDeterministic(t *testing.T) {
	g := New()
	g.AddEdge(5, 1)
	g.AddEdge(3, 5)
	g.AddEdge(1, 3)
	nodes := g.Nodes()
	want := []ids.ID{1, 3, 5}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
	edges := g.Edges()
	wantE := []Edge{{1, 3}, {1, 5}, {3, 5}}
	if len(edges) != len(wantE) {
		t.Fatalf("Edges = %v, want %v", edges, wantE)
	}
	for i := range wantE {
		if edges[i] != wantE[i] {
			t.Fatalf("Edges = %v, want %v", edges, wantE)
		}
	}
}

func TestNewEdgeCanonical(t *testing.T) {
	if NewEdge(5, 2) != (Edge{2, 5}) {
		t.Error("NewEdge should canonicalize order")
	}
	if NewEdge(2, 5).String() != "{2,5}" {
		t.Errorf("Edge.String = %q", NewEdge(2, 5).String())
	}
}

func TestBFSAndShortestPath(t *testing.T) {
	g := Line([]ids.ID{1, 2, 3, 4, 5})
	dist := g.BFSFrom(1)
	if dist[5] != 4 || dist[1] != 0 || dist[3] != 2 {
		t.Errorf("BFS distances wrong: %v", dist)
	}
	path := g.ShortestPath(1, 5)
	if len(path) != 5 || path[0] != 1 || path[4] != 5 {
		t.Errorf("ShortestPath = %v", path)
	}
	if p := g.ShortestPath(1, 1); len(p) != 1 || p[0] != 1 {
		t.Errorf("ShortestPath to self = %v", p)
	}
	g2 := NewWithNodes(1, 99)
	g2.AddEdge(1, 2)
	if g2.ShortestPath(1, 99) != nil {
		t.Error("unreachable dst should give nil path")
	}
	if g2.ShortestPath(1, 1234) != nil {
		t.Error("absent dst should give nil path")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if g.Connected() {
		t.Error("two components should not be connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	if comps[0][0] != 1 || comps[1][0] != 3 {
		t.Errorf("Components order wrong: %v", comps)
	}
	g.AddEdge(2, 3)
	if !g.Connected() {
		t.Error("should be connected now")
	}
	if !New().Connected() {
		t.Error("empty graph counts as connected")
	}
}

func TestDiameter(t *testing.T) {
	g := Line([]ids.ID{1, 2, 3, 4})
	if d := g.Diameter(); d != 3 {
		t.Errorf("line diameter = %d, want 3", d)
	}
	r := Ring([]ids.ID{1, 2, 3, 4, 5, 6})
	if d := r.Diameter(); d != 3 {
		t.Errorf("ring diameter = %d, want 3", d)
	}
	disc := NewWithNodes(1, 2)
	if d := disc.Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
	if d := New().Diameter(); d != -1 {
		t.Errorf("empty diameter = %d, want -1", d)
	}
}

func TestIsLinearizedAndSortedRing(t *testing.T) {
	line := Line([]ids.ID{1, 4, 9, 13})
	if !line.IsLinearized() {
		t.Error("line should be linearized")
	}
	if line.IsSortedRing() {
		t.Error("line is not a closed ring")
	}
	ring := Ring([]ids.ID{1, 4, 9, 13})
	if ring.IsLinearized() {
		t.Error("ring has the wrap edge, not a pure line")
	}
	if !ring.IsSortedRing() {
		t.Error("ring should be a sorted ring")
	}
	// Extra chord breaks both.
	chord := Ring([]ids.ID{1, 4, 9, 13})
	chord.AddEdge(1, 9)
	if chord.IsSortedRing() || chord.IsLinearized() {
		t.Error("chord should break both predicates")
	}
	// A line with right count but wrong wiring.
	bad := NewWithNodes(1, 2, 3)
	bad.AddEdge(1, 3)
	bad.AddEdge(1, 2)
	if bad.IsLinearized() {
		t.Error("1-3,1-2 is not the sorted line")
	}
	// Degenerate sizes.
	if !New().IsLinearized() || !New().IsSortedRing() {
		t.Error("empty graph is trivially both")
	}
	single := NewWithNodes(7)
	if !single.IsLinearized() || !single.IsSortedRing() {
		t.Error("single node is trivially both")
	}
	pair := Line([]ids.ID{3, 8})
	if !pair.IsLinearized() || !pair.IsSortedRing() {
		t.Error("two connected nodes are both line and ring")
	}
	super := Line([]ids.ID{1, 2, 3, 4})
	super.AddEdge(1, 4)
	if !super.SupersetOfLine() {
		t.Error("line+chord is a superset of the line")
	}
	super.RemoveEdge(2, 3)
	if super.SupersetOfLine() {
		t.Error("missing consecutive edge breaks SupersetOfLine")
	}
}

func TestCloneEqual(t *testing.T) {
	g := Ring([]ids.ID{1, 2, 3, 4})
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Error("clone should equal original")
	}
	c.AddEdge(1, 3)
	if g.Equal(c) {
		t.Error("modified clone should differ")
	}
	if g.HasEdge(1, 3) {
		t.Error("clone must not alias original")
	}
	h := Ring([]ids.ID{1, 2, 3, 5})
	if g.Equal(h) {
		t.Error("different node sets should differ")
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star([]ids.ID{10, 1, 2, 3})
	if g.MaxDegree() != 3 {
		t.Errorf("star MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("star AvgDegree = %f, want 1.5", got)
	}
	if New().MaxDegree() != 0 || New().AvgDegree() != 0 {
		t.Error("empty graph degree stats should be 0")
	}
}

func TestGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	nodes := MakeIDs(60, RandomIDs, r)
	if len(nodes) != 60 {
		t.Fatalf("MakeIDs returned %d ids", len(nodes))
	}
	seen := ids.NewSet()
	for _, v := range nodes {
		if !seen.Add(v) {
			t.Fatal("MakeIDs produced a duplicate")
		}
	}

	type gen struct {
		name string
		g    *Graph
	}
	grid, err := Grid(nodes[:36], 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	ud, pos := UnitDisk(nodes, 0.25, r)
	if len(pos) != 60 {
		t.Errorf("UnitDisk positions = %d, want 60", len(pos))
	}
	gens := []gen{
		{"line", Line(nodes)},
		{"ring", Ring(nodes)},
		{"star", Star(nodes)},
		{"grid", grid},
		{"er", ErdosRenyi(nodes, 0.1, r)},
		{"regular", RandomRegular(nodes, 4, r)},
		{"powerlaw", PowerLaw(nodes, 2.0, r)},
		{"barabasi", PreferentialAttachment(nodes, 2, r)},
		{"unitdisk", ud},
	}
	for _, gn := range gens {
		if !gn.g.Connected() {
			t.Errorf("%s generator produced a disconnected graph", gn.name)
		}
		if gn.g.NumNodes() == 0 {
			t.Errorf("%s generator produced an empty graph", gn.name)
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := Grid([]ids.ID{1, 2, 3}, 2, 2); err == nil {
		t.Error("Grid with wrong node count should error")
	}
	g, err := Grid([]ids.ID{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Errorf("2x2 grid should have 4 edges, got %d", g.NumEdges())
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nodes := MakeIDs(100, RandomIDs, r)
	g := RandomRegular(nodes, 4, r)
	for _, v := range g.Nodes() {
		d := g.Degree(v)
		if d < 1 || d > 8 {
			t.Errorf("node degree %d far from regular target 4", d)
		}
	}
	if g.AvgDegree() < 3 || g.AvgDegree() > 5 {
		t.Errorf("avg degree %f far from 4", g.AvgDegree())
	}
}

func TestGenerateAllTopologies(t *testing.T) {
	for _, topo := range AllTopologies() {
		g, err := Generate(topo, 50, RandomIDs, 42)
		if err != nil {
			t.Errorf("Generate(%s) error: %v", topo, err)
			continue
		}
		if !g.Connected() {
			t.Errorf("Generate(%s) produced disconnected graph", topo)
		}
	}
	if _, err := Generate("nope", 10, RandomIDs, 1); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, _ := Generate(TopoER, 40, RandomIDs, 99)
	g2, _ := Generate(TopoER, 40, RandomIDs, 99)
	if !g1.Equal(g2) {
		t.Error("same seed should give identical graphs")
	}
}

func TestMakeIDsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	got := MakeIDs(4, SequentialIDs, r)
	want := []ids.ID{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MakeIDs sequential = %v", got)
		}
	}
}

func TestRandomSpanningConnectedProperty(t *testing.T) {
	// Property: for any set of isolated nodes, RandomSpanningConnected
	// yields a connected graph without touching the node set.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		g := New()
		for _, x := range raw {
			g.AddNode(ids.ID(x))
		}
		n := g.NumNodes()
		g.RandomSpanningConnected(rand.New(rand.NewSource(3)))
		return g.Connected() && g.NumNodes() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLinePathProperty(t *testing.T) {
	// Property: a line over k distinct ids has k-1 edges, is connected, and
	// is linearized.
	f := func(raw []uint32) bool {
		set := ids.NewSet()
		for _, x := range raw {
			set.Add(ids.ID(x))
		}
		nodes := set.Sorted()
		g := Line(nodes)
		if len(nodes) == 0 {
			return g.NumEdges() == 0
		}
		return g.NumEdges() == len(nodes)-1 && g.Connected() && g.IsLinearized()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
