package graph

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
)

// randomTestGraph builds a messy random graph with isolated nodes included.
func randomTestGraph(n int, p float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	nodes := MakeIDs(n, RandomIDs, r)
	g := NewWithNodes(nodes...)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(nodes[i], nodes[j])
			}
		}
	}
	return g
}

func TestCSRMatchesGraph(t *testing.T) {
	g := randomTestGraph(200, 0.05, 7)
	c := NewCSR(g)
	if c.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes: csr %d graph %d", c.NumNodes(), g.NumNodes())
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges: csr %d graph %d", c.NumEdges(), g.NumEdges())
	}
	nodes := g.Nodes()
	for i, v := range nodes {
		if c.Node(i) != v {
			t.Fatalf("Node(%d) = %s, want %s", i, c.Node(i), v)
		}
		if idx, ok := c.IndexOf(v); !ok || idx != i {
			t.Fatalf("IndexOf(%s) = %d,%v want %d", v, idx, ok, i)
		}
		row := c.Row(i)
		want := g.NeighborsSorted(v)
		if len(row) != len(want) {
			t.Fatalf("Row(%s): len %d want %d", v, len(row), len(want))
		}
		for k := range row {
			if row[k] != want[k] {
				t.Fatalf("Row(%s)[%d] = %s want %s", v, k, row[k], want[k])
			}
		}
		if lo, hi, ok := c.RowSpan(i); ok != (len(want) > 0) {
			t.Fatalf("RowSpan(%s) ok=%v with %d neighbors", v, ok, len(want))
		} else if ok && (lo != want[0] || hi != want[len(want)-1]) {
			t.Fatalf("RowSpan(%s) = [%s,%s] want [%s,%s]", v, lo, hi, want[0], want[len(want)-1])
		}
	}
	// Edge membership agrees on present and absent pairs.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		u := nodes[r.Intn(len(nodes))]
		v := nodes[r.Intn(len(nodes))]
		if c.HasEdge(u, v) != g.HasEdge(u, v) {
			t.Fatalf("HasEdge(%s,%s): csr %v graph %v", u, v, c.HasEdge(u, v), g.HasEdge(u, v))
		}
	}
	if c.MaxDegree() != g.MaxDegree() {
		t.Fatalf("MaxDegree: csr %d graph %d", c.MaxDegree(), g.MaxDegree())
	}
	if c.HasEdge(ids.ID(1234567), nodes[0]) {
		t.Fatal("HasEdge on absent node must be false")
	}
}

func TestCSRSupersetOfLine(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	nodes := MakeIDs(64, RandomIDs, r)
	line := Line(nodes)
	if c := NewCSR(line); !c.SupersetOfLine() {
		t.Fatal("line graph: SupersetOfLine must hold")
	}
	line.AddEdge(line.Nodes()[0], line.Nodes()[10])
	if c := NewCSR(line); !c.SupersetOfLine() {
		t.Fatal("line + chord: SupersetOfLine must hold")
	}
	sorted := line.Nodes()
	line.RemoveEdge(sorted[4], sorted[5])
	if c := NewCSR(line); c.SupersetOfLine() {
		t.Fatal("broken line: SupersetOfLine must fail")
	}
	if g := randomTestGraph(50, 0.1, 11); NewCSR(g).SupersetOfLine() != g.SupersetOfLine() {
		t.Fatal("SupersetOfLine disagrees with Graph on random graph")
	}
}

func TestCSRParallelBuildIdentical(t *testing.T) {
	g := randomTestGraph(500, 0.02, 21)
	base := NewCSR(g)
	for _, w := range []int{2, 4, 8} {
		c := NewCSRParallel(g, w)
		if c.NumNodes() != base.NumNodes() || c.NumEdges() != base.NumEdges() {
			t.Fatalf("workers=%d: size mismatch", w)
		}
		for i := 0; i < base.NumNodes(); i++ {
			r1, r2 := base.Row(i), c.Row(i)
			if len(r1) != len(r2) {
				t.Fatalf("workers=%d row %d: len %d want %d", w, i, len(r2), len(r1))
			}
			for k := range r1 {
				if r1[k] != r2[k] {
					t.Fatalf("workers=%d row %d[%d]: %s want %s", w, i, k, r2[k], r1[k])
				}
			}
		}
	}
}

func TestCSREmptyAndTiny(t *testing.T) {
	if c := NewCSR(New()); c.NumNodes() != 0 || c.NumEdges() != 0 || c.SupersetOfLine() != true {
		t.Fatal("empty graph CSR misbehaves")
	}
	g := NewWithNodes(ids.ID(5))
	c := NewCSR(g)
	if _, _, ok := c.RowSpan(0); ok {
		t.Fatal("isolated node must have no row span")
	}
}

// sameCSR asserts two snapshots agree row for row.
func sameCSR(t *testing.T, label string, got, want *CSR) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: size mismatch: %d/%d nodes, %d/%d edges",
			label, got.NumNodes(), want.NumNodes(), got.NumEdges(), want.NumEdges())
	}
	for i := 0; i < want.NumNodes(); i++ {
		r1, r2 := want.Row(i), got.Row(i)
		if len(r1) != len(r2) {
			t.Fatalf("%s row %d: len %d want %d", label, i, len(r2), len(r1))
		}
		for k := range r1 {
			if r1[k] != r2[k] {
				t.Fatalf("%s row %d[%d]: %s want %s", label, i, k, r2[k], r1[k])
			}
		}
	}
}

// TestCSRWithEdgesMatchesRebuild: a delta-applied snapshot must be
// indistinguishable from a full rebuild of the mutated graph, across
// repeated delta generations and worker counts.
func TestCSRWithEdgesMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomTestGraph(300, 0.01, 5)
	nodes := g.Nodes()
	for _, workers := range []int{1, 4} {
		gen := g.Clone()
		c := NewCSR(gen)
		for round := 0; round < 5; round++ {
			var adds []Edge
			for len(adds) < 40 {
				u := nodes[r.Intn(len(nodes))]
				v := nodes[r.Intn(len(nodes))]
				if u == v || gen.HasEdge(u, v) {
					continue
				}
				gen.AddEdge(u, v)
				adds = append(adds, NewEdge(u, v))
			}
			c = c.WithEdges(adds, workers)
			sameCSR(t, "delta round", c, NewCSR(gen))
		}
	}
}

// TestCSRWithEdgesEdgeCases: empty deltas share the snapshot, duplicate
// adds collapse, and unknown endpoints are skipped rather than corrupting
// the rows.
func TestCSRWithEdgesEdgeCases(t *testing.T) {
	g := randomTestGraph(40, 0.1, 9)
	c := NewCSR(g)
	if c.WithEdges(nil, 4) != c {
		t.Fatal("empty delta must return the receiver")
	}
	nodes := g.Nodes()
	var u, v ids.ID
	found := false
	for i := 0; i < len(nodes) && !found; i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				u, v, found = nodes[i], nodes[j], true
				break
			}
		}
	}
	if !found {
		t.Skip("graph too dense for the test")
	}
	dup := []Edge{NewEdge(u, v), NewEdge(u, v), NewEdge(ids.ID(987654321), u)}
	got := c.WithEdges(dup, 1)
	want := g.Clone()
	want.AddEdge(u, v)
	sameCSR(t, "dup+unknown", got, NewCSR(want))
}
