package graph

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
)

// randomTestGraph builds a messy random graph with isolated nodes included.
func randomTestGraph(n int, p float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	nodes := MakeIDs(n, RandomIDs, r)
	g := NewWithNodes(nodes...)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(nodes[i], nodes[j])
			}
		}
	}
	return g
}

func TestCSRMatchesGraph(t *testing.T) {
	g := randomTestGraph(200, 0.05, 7)
	c := NewCSR(g)
	if c.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes: csr %d graph %d", c.NumNodes(), g.NumNodes())
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges: csr %d graph %d", c.NumEdges(), g.NumEdges())
	}
	nodes := g.Nodes()
	for i, v := range nodes {
		if c.Node(i) != v {
			t.Fatalf("Node(%d) = %s, want %s", i, c.Node(i), v)
		}
		if idx, ok := c.IndexOf(v); !ok || idx != i {
			t.Fatalf("IndexOf(%s) = %d,%v want %d", v, idx, ok, i)
		}
		row := c.Row(i)
		want := g.NeighborsSorted(v)
		if len(row) != len(want) {
			t.Fatalf("Row(%s): len %d want %d", v, len(row), len(want))
		}
		for k := range row {
			if row[k] != want[k] {
				t.Fatalf("Row(%s)[%d] = %s want %s", v, k, row[k], want[k])
			}
		}
		if lo, hi, ok := c.RowSpan(i); ok != (len(want) > 0) {
			t.Fatalf("RowSpan(%s) ok=%v with %d neighbors", v, ok, len(want))
		} else if ok && (lo != want[0] || hi != want[len(want)-1]) {
			t.Fatalf("RowSpan(%s) = [%s,%s] want [%s,%s]", v, lo, hi, want[0], want[len(want)-1])
		}
	}
	// Edge membership agrees on present and absent pairs.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		u := nodes[r.Intn(len(nodes))]
		v := nodes[r.Intn(len(nodes))]
		if c.HasEdge(u, v) != g.HasEdge(u, v) {
			t.Fatalf("HasEdge(%s,%s): csr %v graph %v", u, v, c.HasEdge(u, v), g.HasEdge(u, v))
		}
	}
	if c.MaxDegree() != g.MaxDegree() {
		t.Fatalf("MaxDegree: csr %d graph %d", c.MaxDegree(), g.MaxDegree())
	}
	if c.HasEdge(ids.ID(1234567), nodes[0]) {
		t.Fatal("HasEdge on absent node must be false")
	}
}

func TestCSRSupersetOfLine(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	nodes := MakeIDs(64, RandomIDs, r)
	line := Line(nodes)
	if c := NewCSR(line); !c.SupersetOfLine() {
		t.Fatal("line graph: SupersetOfLine must hold")
	}
	line.AddEdge(line.Nodes()[0], line.Nodes()[10])
	if c := NewCSR(line); !c.SupersetOfLine() {
		t.Fatal("line + chord: SupersetOfLine must hold")
	}
	sorted := line.Nodes()
	line.RemoveEdge(sorted[4], sorted[5])
	if c := NewCSR(line); c.SupersetOfLine() {
		t.Fatal("broken line: SupersetOfLine must fail")
	}
	if g := randomTestGraph(50, 0.1, 11); NewCSR(g).SupersetOfLine() != g.SupersetOfLine() {
		t.Fatal("SupersetOfLine disagrees with Graph on random graph")
	}
}

func TestCSRParallelBuildIdentical(t *testing.T) {
	g := randomTestGraph(500, 0.02, 21)
	base := NewCSR(g)
	for _, w := range []int{2, 4, 8} {
		c := NewCSRParallel(g, w)
		if c.NumNodes() != base.NumNodes() || c.NumEdges() != base.NumEdges() {
			t.Fatalf("workers=%d: size mismatch", w)
		}
		for i := 0; i < base.NumNodes(); i++ {
			r1, r2 := base.Row(i), c.Row(i)
			if len(r1) != len(r2) {
				t.Fatalf("workers=%d row %d: len %d want %d", w, i, len(r2), len(r1))
			}
			for k := range r1 {
				if r1[k] != r2[k] {
					t.Fatalf("workers=%d row %d[%d]: %s want %s", w, i, k, r2[k], r1[k])
				}
			}
		}
	}
}

func TestCSREmptyAndTiny(t *testing.T) {
	if c := NewCSR(New()); c.NumNodes() != 0 || c.NumEdges() != 0 || c.SupersetOfLine() != true {
		t.Fatal("empty graph CSR misbehaves")
	}
	g := NewWithNodes(ids.ID(5))
	c := NewCSR(g)
	if _, _, ok := c.RowSpan(0); ok {
		t.Fatal("isolated node must have no row span")
	}
}
