// Package chord implements the classic Chord overlay (Stoica et al.,
// SIGCOMM 2001) as the comparator that motivates SSR: the paper's §1 builds
// directly on Chord's virtual ring, and the SSR line of work exists because
// overlay DHTs route without regard for the physical topology underneath.
//
// Nodes join through an existing member, then run the standard maintenance
// loop — stabilize (reconcile successor/predecessor), notify, and
// fix-fingers (finger[i] = successor(n + 2^i)) — until the ring and finger
// tables are correct. Lookups use iterative closest-preceding-finger
// routing, resolving in O(log n) overlay hops.
//
// The overlay abstraction is the point of the comparison: each overlay hop
// is an end-to-end message between arbitrary nodes, which the underlay must
// carry along a full physical path. The E13 experiment charges every
// overlay hop its physical shortest-path length and compares the total
// against SSR routing the same pairs natively in the underlay.
package chord

import (
	"fmt"

	"repro/internal/ids"
)

// M is the identifier width in bits (fingers per node).
const M = 64

// Node is one Chord participant. Fields are manipulated by the Ring's
// protocol loop; read access is exported for experiments.
type Node struct {
	id      ids.ID
	succ    ids.ID
	pred    ids.ID
	hasPred bool
	fingers [M]ids.ID // fingers[i] targets successor(id + 2^i)
}

// ID returns the node identifier.
func (n *Node) ID() ids.ID { return n.id }

// Successor returns the current successor pointer.
func (n *Node) Successor() ids.ID { return n.succ }

// Predecessor returns the current predecessor pointer.
func (n *Node) Predecessor() (ids.ID, bool) { return n.pred, n.hasPred }

// Finger returns finger i (0 ≤ i < M).
func (n *Node) Finger(i int) ids.ID { return n.fingers[i] }

// Ring is a Chord overlay: the node set plus the protocol driver. The
// overlay assumes any node can message any other directly (the IP
// abstraction); the physical cost of that assumption is exactly what E13
// measures.
type Ring struct {
	nodes map[ids.ID]*Node
	// Hops counts overlay messages exchanged by protocol operations
	// (joins, stabilization rounds, lookups) for accounting.
	Hops int64
}

// NewRing bootstraps an overlay: the first node forms a singleton ring and
// every subsequent node joins through it, followed by enough stabilization
// rounds for all successor pointers to be exact.
func NewRing(members []ids.ID) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("chord: empty member set")
	}
	r := &Ring{nodes: make(map[ids.ID]*Node, len(members))}
	first := members[0]
	r.nodes[first] = &Node{id: first, succ: first}
	for _, v := range members[1:] {
		if _, dup := r.nodes[v]; dup {
			return nil, fmt.Errorf("chord: duplicate member %s", v)
		}
		r.join(v, first)
	}
	// Joins set provisional successors; stabilization makes them exact and
	// populates predecessors. Run to quiescence (bounded well above the
	// worst case for a sequential join wave).
	for i := 0; i < 4*len(members)+4; i++ {
		if r.StabilizeRound() == 0 {
			break
		}
	}
	r.FixAllFingers()
	return r, nil
}

// Nodes returns the member identifiers in ascending order.
func (r *Ring) Nodes() []ids.ID {
	out := make([]ids.ID, 0, len(r.nodes))
	for v := range r.nodes {
		out = append(out, v)
	}
	ids.SortAsc(out)
	return out
}

// Node exposes a member for inspection.
func (r *Ring) Node(v ids.ID) *Node { return r.nodes[v] }

// join inserts v via the gateway: v's successor is found with a lookup
// from the gateway, exactly as in the Chord paper.
func (r *Ring) join(v ids.ID, gateway ids.ID) {
	succ, _ := r.Lookup(gateway, v)
	n := &Node{id: v, succ: succ}
	r.nodes[v] = n
}

// StabilizeRound runs one round of the Chord maintenance protocol at every
// node: ask your successor for its predecessor, adopt it if it sits between
// you, then notify the successor of your existence. It returns the number
// of pointer changes (0 at the fixed point).
func (r *Ring) StabilizeRound() int {
	changes := 0
	for _, v := range r.Nodes() {
		n := r.nodes[v]
		s := r.nodes[n.succ]
		r.Hops++ // get-predecessor
		if s.hasPred && s.pred != v && ids.Between(s.pred, v, n.succ) {
			n.succ = s.pred
			s = r.nodes[n.succ]
			changes++
		}
		// notify(successor, v)
		r.Hops++
		if !s.hasPred || ids.Between(v, s.pred, s.id) {
			if !s.hasPred || s.pred != v {
				changes++
			}
			s.pred = v
			s.hasPred = true
		}
	}
	return changes
}

// FixAllFingers runs fix-fingers to completion at every node: finger[i] :=
// successor(id + 2^i), found by lookup through the current overlay.
func (r *Ring) FixAllFingers() {
	for _, v := range r.Nodes() {
		n := r.nodes[v]
		for i := 0; i < M; i++ {
			target := ids.ID(uint64(v) + 1<<uint(i))
			n.fingers[i], _ = r.Lookup(v, target)
		}
	}
}

// closestPreceding returns the finger (or successor) of n that most closely
// precedes key, the Chord routing step.
func (r *Ring) closestPreceding(n *Node, key ids.ID) ids.ID {
	for i := M - 1; i >= 0; i-- {
		f := n.fingers[i]
		if _, ok := r.nodes[f]; ok && f != n.id && ids.Between(f, n.id, key) {
			return f
		}
	}
	if n.succ != n.id && ids.Between(n.succ, n.id, key) {
		return n.succ
	}
	return n.id
}

// Lookup resolves the owner of key (its ring successor) starting from the
// given node, returning the owner and the overlay path taken (inclusive of
// the start, exclusive of the final owner-successor handoff). Ring.Hops is
// charged one per overlay hop.
func (r *Ring) Lookup(from ids.ID, key ids.ID) (owner ids.ID, path []ids.ID) {
	cur := r.nodes[from]
	path = append(path, from)
	for hop := 0; hop < 2*M; hop++ {
		// Owner test: key in (cur, cur.succ].
		if cur.succ == cur.id || ids.BetweenIncl(key, cur.id, cur.succ) {
			r.Hops++
			return cur.succ, path
		}
		next := r.closestPreceding(cur, key)
		if next == cur.id {
			// No finger precedes the key: hand to the successor.
			next = cur.succ
		}
		r.Hops++
		cur = r.nodes[next]
		path = append(path, next)
	}
	// Routing failed to terminate (should not happen on a correct ring).
	return cur.id, path
}

// Correct verifies the overlay invariants against the oracle: every
// successor/predecessor pointer exact, every finger the true successor of
// its target.
func (r *Ring) Correct() error {
	members := r.Nodes()
	succOf := func(x ids.ID) ids.ID {
		// First member at or after x, wrapping.
		best := members[0]
		found := false
		for _, v := range members {
			if !found || ids.RingDist(x, v) < ids.RingDist(x, best) {
				best = v
				found = true
			}
		}
		return best
	}
	for i, v := range members {
		n := r.nodes[v]
		wantSucc := members[(i+1)%len(members)]
		if len(members) == 1 {
			wantSucc = v
		}
		if n.succ != wantSucc {
			return fmt.Errorf("chord: %s succ = %s, want %s", v, n.succ, wantSucc)
		}
		wantPred := members[(i-1+len(members))%len(members)]
		if len(members) > 1 && (!n.hasPred || n.pred != wantPred) {
			return fmt.Errorf("chord: %s pred = %s, want %s", v, n.pred, wantPred)
		}
		for k := 0; k < M; k++ {
			target := ids.ID(uint64(v) + 1<<uint(k))
			if want := succOf(target); n.fingers[k] != want {
				return fmt.Errorf("chord: %s finger[%d] = %s, want %s", v, k, n.fingers[k], want)
			}
		}
	}
	return nil
}

// Owner returns the key's owner per the oracle (for tests).
func (r *Ring) Owner(key ids.ID) ids.ID {
	members := r.Nodes()
	best := members[0]
	found := false
	for _, v := range members {
		if !found || ids.RingDist(key, v) < ids.RingDist(key, best) {
			best = v
			found = true
		}
	}
	return best
}
