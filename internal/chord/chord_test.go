package chord

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ids"
)

func ringOf(t *testing.T, n int, seed int64) *Ring {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	members := graph.MakeIDs(n, graph.RandomIDs, r)
	ring, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

func TestRingFormsCorrectly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 40, 100} {
		ring := ringOf(t, n, int64(n))
		if err := ring.Correct(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestEmptyAndDuplicateRejected(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty member set must error")
	}
	if _, err := NewRing([]ids.ID{5, 7, 5}); err == nil {
		t.Error("duplicate member must error")
	}
}

func TestLookupFindsOwner(t *testing.T) {
	ring := ringOf(t, 50, 3)
	members := ring.Nodes()
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		key := ids.ID(r.Uint64())
		from := members[r.Intn(len(members))]
		owner, path := ring.Lookup(from, key)
		if want := ring.Owner(key); owner != want {
			t.Fatalf("Lookup(%s) = %s, want %s (path %v)", key, owner, want, path)
		}
		if len(path) == 0 || path[0] != from {
			t.Fatalf("path must start at the origin: %v", path)
		}
	}
}

func TestLookupForMemberKeyReturnsMember(t *testing.T) {
	ring := ringOf(t, 20, 5)
	for _, v := range ring.Nodes() {
		owner, _ := ring.Lookup(ring.Nodes()[0], v)
		if owner != v {
			t.Errorf("owner of member key %s = %s", v, owner)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	// Chord's headline bound: O(log n) overlay hops per lookup.
	ring := ringOf(t, 256, 7)
	members := ring.Nodes()
	r := rand.New(rand.NewSource(11))
	maxHops := 0
	total := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		key := ids.ID(r.Uint64())
		from := members[r.Intn(len(members))]
		_, path := ring.Lookup(from, key)
		if len(path) > maxHops {
			maxHops = len(path)
		}
		total += len(path)
	}
	logN := math.Log2(float64(len(members)))
	if float64(maxHops) > 3*logN {
		t.Errorf("max overlay hops %d exceeds 3·log2(n)=%.1f", maxHops, 3*logN)
	}
	mean := float64(total) / trials
	if mean > 1.5*logN {
		t.Errorf("mean hops %.1f exceeds 1.5·log2(n)=%.1f", mean, 1.5*logN)
	}
	t.Logf("n=256 lookup hops: mean %.2f, max %d (log2 n = %.1f)", mean, maxHops, logN)
}

func TestStabilizeQuiesces(t *testing.T) {
	ring := ringOf(t, 30, 13)
	if ch := ring.StabilizeRound(); ch != 0 {
		t.Errorf("stable ring reported %d changes", ch)
	}
}

func TestAccessors(t *testing.T) {
	ring := ringOf(t, 4, 17)
	members := ring.Nodes()
	n := ring.Node(members[1])
	if n.ID() != members[1] {
		t.Error("ID broken")
	}
	if n.Successor() != members[2] {
		t.Errorf("Successor = %v, want %v", n.Successor(), members[2])
	}
	if p, ok := n.Predecessor(); !ok || p != members[0] {
		t.Errorf("Predecessor = %v,%v", p, ok)
	}
	if n.Finger(0) == 0 && ring.Node(n.Finger(0)) == nil {
		t.Log("finger 0 may legitimately be any member")
	}
	if ring.Hops == 0 {
		t.Error("protocol accounting should be non-zero after bootstrap")
	}
}

func TestSingletonRing(t *testing.T) {
	ring, err := NewRing([]ids.ID{42})
	if err != nil {
		t.Fatal(err)
	}
	owner, path := ring.Lookup(42, 7)
	if owner != 42 || len(path) != 1 {
		t.Errorf("singleton lookup = %v, %v", owner, path)
	}
	if err := ring.Correct(); err != nil {
		t.Error(err)
	}
}

func TestLookupOwnerProperty(t *testing.T) {
	ring := ringOf(t, 64, 23)
	members := ring.Nodes()
	f := func(keyRaw uint64, fromIdx uint8) bool {
		key := ids.ID(keyRaw)
		from := members[int(fromIdx)%len(members)]
		owner, _ := ring.Lookup(from, key)
		// Ownership invariant: no member lies in (key, owner) — owner is
		// the first member at or after key.
		for _, v := range members {
			if v != owner && ids.Between(v, key-1, owner) && ids.RingDist(key, v) < ids.RingDist(key, owner) {
				return false
			}
		}
		return owner == ring.Owner(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
