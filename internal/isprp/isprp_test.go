package isprp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
	"repro/internal/vring"
)

func newNet(t *testing.T, topo *graph.Graph, seed int64) *phys.Network {
	t.Helper()
	return phys.NewNetwork(sim.NewEngine(seed), topo)
}

func TestConvergesOnLineTopology(t *testing.T) {
	topo := graph.Line([]ids.ID{10, 20, 30, 40, 50})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{EnableFlood: true})
	at, ok := c.RunUntilConsistent(20000)
	if !ok {
		t.Fatalf("ISPRP did not converge on a line; succ=%v", c.SuccMap())
	}
	t.Logf("line converged at t=%d, msgs=%d", at, net.Counters().Total())
	if c.SuccMap().Classify() != vring.Consistent {
		t.Error("oracle disagrees with Classify")
	}
}

func TestConvergesOnRandomTopologies(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		topo, err := graph.Generate(graph.TopoER, 24, graph.RandomIDs, seed)
		if err != nil {
			t.Fatal(err)
		}
		net := newNet(t, topo, seed)
		c := NewCluster(net, Config{EnableFlood: true})
		if _, ok := c.RunUntilConsistent(60000); !ok {
			t.Errorf("seed %d: not consistent: %v", seed, c.SuccMap().Classify())
		}
		c.Stop()
	}
}

func TestFloodHappensAndIsCounted(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoRegular, 20, graph.RandomIDs, 7)
	net := newNet(t, topo, 7)
	c := NewCluster(net, Config{EnableFlood: true})
	c.RunUntilConsistent(60000)
	if net.Counters().Get(KindFlood) == 0 {
		t.Error("ISPRP baseline must flood")
	}
	// The representative flood touches every link at least once, so flood
	// frames should be at least the number of nodes.
	if net.Counters().Get(KindFlood) < int64(topo.NumNodes()) {
		t.Errorf("flood frames = %d, suspiciously few for %d nodes",
			net.Counters().Get(KindFlood), topo.NumNodes())
	}
}

// injectLoopy builds the Fig. 1 scenario: physical topology = the loopy
// graph, every node's successor preloaded to the loopy pointer.
func injectLoopy(t *testing.T, seed int64, cfg Config) (*phys.Network, *Cluster) {
	t.Helper()
	loopySucc := vring.LoopyExample()
	topo := loopySucc.ToGraph() // physical links mirror the loopy virtual edges
	net := newNet(t, topo, seed)
	c := &Cluster{Net: net, Nodes: make(map[ids.ID]*Node)}
	for _, v := range topo.Nodes() {
		c.Nodes[v] = NewNode(net, v, cfg)
	}
	for v, n := range c.Nodes {
		r, err := sroute.New(v, loopySucc[v])
		if err != nil {
			t.Fatal(err)
		}
		n.SetSuccessor(r)
		n.Start(sim.Time(int64(v) % 8))
	}
	return net, c
}

func TestLoopyStateStuckWithoutFlood(t *testing.T) {
	// E1 (negative half): the loopy state is locally consistent, so without
	// the flood ISPRP never escapes it.
	_, c := injectLoopy(t, 3, Config{EnableFlood: false})
	_, ok := c.RunUntilConsistent(20000)
	if ok {
		t.Fatal("loopy state must persist without flooding")
	}
	if got := c.SuccMap().Classify(); got != vring.Loopy {
		t.Errorf("state = %v, want still loopy", got)
	}
}

func TestLoopyStateResolvedByFlood(t *testing.T) {
	// E1 (positive half): with the representative flood, ISPRP detects and
	// iteratively resolves the loopy state.
	_, c := injectLoopy(t, 3, Config{EnableFlood: true})
	if _, ok := c.RunUntilConsistent(60000); !ok {
		t.Fatalf("flood failed to resolve loopy state: %v (%v)",
			c.SuccMap().Classify(), c.SuccMap())
	}
}

// injectSeparateRings builds the Fig. 2 scenario: two virtual rings over a
// connected physical graph (ring edges plus one physical bridge).
func injectSeparateRings(t *testing.T, cfg Config) (*phys.Network, *Cluster) {
	t.Helper()
	succ := vring.SeparateRingsExample()
	topo := succ.ToGraph()
	topo.AddEdge(18, 21) // physical bridge between the two islands
	net := newNet(t, topo, 5)
	c := &Cluster{Net: net, Nodes: make(map[ids.ID]*Node)}
	for _, v := range topo.Nodes() {
		c.Nodes[v] = NewNode(net, v, cfg)
	}
	for v, n := range c.Nodes {
		r, err := sroute.New(v, succ[v])
		if err != nil {
			t.Fatal(err)
		}
		n.SetSuccessor(r)
		n.Start(sim.Time(int64(v) % 8))
	}
	return net, c
}

func TestSeparateRingsMergedByFlood(t *testing.T) {
	// E2: flooding crosses the physical bridge, so each island learns the
	// other's representative and the rings merge.
	_, c := injectSeparateRings(t, Config{EnableFlood: true})
	if _, ok := c.RunUntilConsistent(60000); !ok {
		t.Fatalf("rings not merged: %v (%v)", c.SuccMap().Classify(), c.SuccMap())
	}
}

func TestNotifyMessagesFlow(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2, 3})
	net := newNet(t, topo, 2)
	c := NewCluster(net, Config{EnableFlood: true})
	c.RunUntilConsistent(5000)
	if net.Counters().Get(KindNotify) == 0 {
		t.Error("no notify messages were sent")
	}
}

func TestNodeAccessors(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	n := NewNode(net, 1, Config{})
	if n.ID() != 1 {
		t.Error("ID broken")
	}
	if _, ok := n.Successor(); ok {
		t.Error("fresh node has no successor")
	}
	if n.Cache().Len() != 0 {
		t.Error("fresh cache should be empty")
	}
	n.Start(0)
	if s, ok := n.Successor(); !ok || s != 2 {
		t.Errorf("after Start, successor = %v,%v, want 2", s, ok)
	}
}

func TestStopHaltsTicks(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{EnableFlood: false, TickInterval: 10})
	net.Engine().RunUntil(100, nil)
	c.Stop()
	before := net.Counters().Get(KindNotify)
	net.Engine().RunUntil(1000, nil)
	after := net.Counters().Get(KindNotify)
	// One in-flight tick per node may still fire; beyond that, silence.
	if after > before+2 {
		t.Errorf("notifies kept flowing after Stop: %d -> %d", before, after)
	}
}

func TestBetweenRewiringRule(t *testing.T) {
	topo := graph.Line([]ids.ID{10, 20, 30})
	net := newNet(t, topo, 1)
	n := NewNode(net, 10, Config{})
	n.Start(0)
	// succ is 20 (only neighbor learned is 20). Learning 15 rewires; 25 not.
	topo2 := net.Topology()
	topo2.AddNode(15)
	r, _ := sroute.New(10, 20, 15)
	n.learnRoute(r)
	if s, _ := n.Successor(); s != 15 {
		t.Errorf("succ = %v, want 15 after learning a between-node", s)
	}
	r2, _ := sroute.New(10, 20, 25)
	n.learnRoute(r2)
	if s, _ := n.Successor(); s != 15 {
		t.Errorf("succ = %v, learning 25 must not rewire", s)
	}
}
