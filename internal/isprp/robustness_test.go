package isprp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sroute"
)

func TestFloodSuppression(t *testing.T) {
	// Once a node relays an origin, smaller or repeated origins must not be
	// re-flooded; a strictly larger origin must be.
	topo := graph.Line([]ids.ID{1, 2, 3})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{EnableFlood: false})
	net.Engine().RunUntil(40, nil)
	_ = c
	before := net.Counters().Get(KindFlood)
	inject := func(origin ids.ID) {
		net.Send(phys.Message{From: 1, To: 2, Kind: KindFlood,
			Payload: floodPayload{Origin: origin, Path: []ids.ID{1}}})
		// The injected frame itself is counted; run the cascade.
		net.Engine().RunUntil(net.Engine().Now()+64, nil)
	}
	inject(50)
	afterFirst := net.Counters().Get(KindFlood)
	if afterFirst <= before+1 {
		t.Fatal("first flood should cascade beyond the injected frame")
	}
	inject(50) // duplicate: only the injected frame, no relays
	afterDup := net.Counters().Get(KindFlood)
	if afterDup != afterFirst+1 {
		t.Errorf("duplicate origin re-flooded: %d -> %d", afterFirst, afterDup)
	}
	inject(40) // smaller: suppressed too
	afterSmaller := net.Counters().Get(KindFlood)
	if afterSmaller != afterDup+1 {
		t.Errorf("smaller origin re-flooded: %d -> %d", afterDup, afterSmaller)
	}
	inject(60) // larger: must cascade again
	afterLarger := net.Counters().Get(KindFlood)
	if afterLarger <= afterSmaller+1 {
		t.Error("larger origin should cascade")
	}
}

func TestFloodTeachesRoutes(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2, 3, 4})
	net := newNet(t, topo, 2)
	c := NewCluster(net, Config{EnableFlood: true, FloodDelay: 8})
	net.Engine().RunUntil(400, nil)
	// The representative (4) flooded; every node must hold a valid route
	// back to it.
	for v, n := range c.Nodes {
		if v == 4 {
			continue
		}
		r := n.Cache().Route(4)
		if r == nil {
			t.Fatalf("node %s has no route to the representative", v)
		}
		if err := r.ValidOn(topo); err != nil {
			t.Fatalf("flood-learned route invalid: %v", err)
		}
	}
}

func TestMalformedFloodIgnored(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	NewCluster(net, Config{EnableFlood: false})
	net.Send(phys.Message{From: 1, To: 2, Kind: KindFlood, Payload: "garbage"})
	net.Engine().RunUntil(100, nil)
	// No panic, no cascade.
	if got := net.Counters().Get(KindFlood); got != 1 {
		t.Errorf("garbage flood cascaded: %d frames", got)
	}
}

func TestUpdateComposesRoute(t *testing.T) {
	// B receives update(A→C) and must compose B→C = (B→A) ++ (A→C),
	// adopting C as successor when it lies between.
	topo := graph.Line([]ids.ID{10, 20, 30}) // B=10, A=20, C=30
	net := newNet(t, topo, 3)
	b := NewNode(net, 10, Config{})
	NewNode(net, 20, Config{})
	NewNode(net, 30, Config{})
	b.Start(0)
	net.Engine().RunUntil(40, nil)
	if s, _ := b.Successor(); s != 20 {
		t.Fatalf("precondition: succ = %v, want 20", s)
	}
	ac, _ := sroute.New(20, 30)
	net.Send(phys.Message{From: 20, To: 10, Kind: KindUpdate,
		Payload: phys.SRPacket{Route: mustR(t, 20, 10), Hop: 0, Kind: KindUpdate,
			Payload: updatePayload{BetterRoute: ac}}})
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	r := b.Cache().Route(30)
	if r == nil {
		t.Fatal("update did not teach the composed route")
	}
	if err := r.ValidOn(net.Topology()); err != nil {
		t.Fatalf("composed route invalid: %v", err)
	}
	// 30 is not between 10 and succ 20, so the successor must not change.
	if s, _ := b.Successor(); s != 20 {
		t.Errorf("successor changed to %v", s)
	}
}

func mustR(t *testing.T, nodes ...ids.ID) sroute.Route {
	t.Helper()
	r, err := sroute.New(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOverhearLearnsSegments(t *testing.T) {
	// A packet relayed through node 2 teaches it routes to both endpoints.
	topo := graph.Line([]ids.ID{1, 2, 3})
	net := newNet(t, topo, 5)
	NewNode(net, 1, Config{})
	mid := NewNode(net, 2, Config{})
	NewNode(net, 3, Config{})
	courier := phys.NewCourier(net, 1)
	courier.Send(mustR(t, 1, 2, 3), KindNotify, nil)
	net.Engine().RunUntil(100, nil)
	if mid.Cache().Route(1) == nil || mid.Cache().Route(3) == nil {
		t.Error("relay node failed to learn overheard segments")
	}
}
