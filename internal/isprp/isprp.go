// Package isprp implements the Iterative Successor Pointer Rewiring
// Protocol — the bootstrap mechanism SSR originally used and the baseline
// that linearization replaces (§3).
//
// Each node maintains a pointer to its presumed ring successor and
// periodically sends it a notification message (carrying a source route, so
// the successor learns a route back). A node that detects a local
// inconsistency — more than one node claiming it as successor — sends
// update messages that impose a partial order among the claimants: if B and
// C both notified A and B < C < A (in ring order), A points B at C by
// sending B the source route A→C, which B appends to its route B→A to
// obtain B→C. This repeats until every node has exactly one successor and
// one predecessor: local consistency.
//
// Local consistency does not imply global consistency: the loopy state
// (Fig. 1) and separate rings (Fig. 2) are locally consistent. ISPRP
// therefore requires the node with the numerically largest address (the
// representative) to flood the network; the flood hands every node a route
// to the representative, and the normal rewiring process then dissolves the
// global inconsistency. This flooding cost is what the linearization
// approach eliminates, and the E6 experiment measures it.
//
// Generalized rewiring rule (the TR's iterative mechanism): whenever a node
// learns of any node x with x strictly between itself and its current
// successor on the ring, it adopts x as its new successor; and a notified
// successor A answers a claimant B with the best successor for B that A
// knows about (which subsumes the two-claimant example above).
package isprp

import (
	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
	"repro/internal/trace"
	"repro/internal/vring"
)

// Message kinds, for counter accounting.
const (
	KindNotify = "isprp:notify"
	KindUpdate = "isprp:update"
	KindFlood  = "isprp:flood"
)

// Config tunes the protocol.
type Config struct {
	// TickInterval is the successor-notification period (default 16).
	TickInterval sim.Time
	// FloodDelay is when local maxima initiate the representative flood
	// (default 64). Only nodes that still believe themselves the largest
	// initiate; floods for smaller origins are suppressed by larger ones.
	FloodDelay sim.Time
	// EnableFlood switches the representative flood on (the ISPRP
	// baseline). Disabling it is the ablation that demonstrates why ISPRP
	// needs flooding: loopy and partitioned states then persist forever.
	EnableFlood bool
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 16
	}
	if c.FloodDelay <= 0 {
		c.FloodDelay = 64
	}
	return c
}

// updatePayload is the body of an update message: the receiver appends
// BetterRoute (sender→better) to its reversed packet route to obtain its
// own route to the better successor.
type updatePayload struct {
	BetterRoute sroute.Route
}

// floodPayload is the body of a representative flood frame.
type floodPayload struct {
	Origin ids.ID
	Path   []ids.ID // origin → … → sender
}

// Node is one ISPRP participant.
type Node struct {
	id      ids.ID
	net     phys.Transport
	courier *phys.Courier
	cfg     Config

	rc        *cache.Cache
	succ      ids.ID
	hasSucc   bool
	claimants ids.Set
	// floodedMax is the largest flood origin this node has relayed;
	// floods for origins ≤ floodedMax are suppressed.
	floodedMax ids.ID
	hasFlooded bool
	stopped    bool
}

// NewNode creates and registers an ISPRP node on the network. Call Start
// to begin protocol activity.
func NewNode(net phys.Transport, id ids.ID, cfg Config) *Node {
	n := &Node{
		id:        id,
		net:       net,
		cfg:       cfg.withDefaults(),
		rc:        cache.New(id, cache.Unbounded),
		claimants: ids.NewSet(),
	}
	n.courier = phys.NewCourier(net, id)
	n.courier.OnDeliver = n.deliver
	n.courier.OnForward = n.overhear
	net.Register(id, phys.HandlerFunc(n.handle))
	if fd, ok := net.(phys.FailureDetector); ok {
		fd.SubscribeLeases(id, n.onLease)
	}
	return n
}

// onLease consumes a failure-detector verdict about physical neighbor peer.
// Down: purge every cached route crossing the dead link and re-pick the
// successor from the surviving destinations — a successor pointer through a
// dead first hop would otherwise keep notifying into the void until a
// better route happened by. Up: re-learn the direct edge.
func (n *Node) onLease(peer ids.ID, up bool) {
	if n.stopped {
		return
	}
	if up {
		if r, err := sroute.New(n.id, peer); err == nil {
			n.learnRoute(r)
		}
		return
	}
	for _, dst := range n.rc.Destinations() {
		if r := n.rc.Route(dst); len(r) >= 2 && r[1] == peer {
			n.rc.Remove(dst)
		}
	}
	if n.hasSucc && n.rc.Route(n.succ) == nil {
		n.hasSucc = false
		// Adopt the ring-closest surviving destination; the rewiring rule
		// refines it as better candidates are learned.
		for _, x := range n.rc.Destinations() {
			if !n.hasSucc || ids.Between(x, n.id, n.succ) {
				n.succ, n.hasSucc = x, true
			}
		}
	}
}

// ID returns the node identifier.
func (n *Node) ID() ids.ID { return n.id }

// Successor returns the current successor pointer.
func (n *Node) Successor() (ids.ID, bool) { return n.succ, n.hasSucc }

// Cache exposes the node's route cache (for inspection in experiments).
func (n *Node) Cache() *cache.Cache { return n.rc }

// SetSuccessor injects a successor pointer and its route — used to place
// nodes into adversarial initial states such as the Fig. 1 loopy state.
func (n *Node) SetSuccessor(route sroute.Route) {
	n.rc.Insert(route)
	n.succ = route.Dst()
	n.hasSucc = true
}

// Start learns the physical neighborhood, picks the initial successor, and
// begins periodic notifications. jitter staggers the first tick.
func (n *Node) Start(jitter sim.Time) {
	for _, u := range n.net.NeighborsOf(n.id) {
		if r, err := sroute.New(n.id, u); err == nil {
			n.learnRoute(r)
		}
	}
	n.net.Engine().After(n.cfg.TickInterval+jitter, n.tick)
	if n.cfg.EnableFlood {
		n.net.Engine().After(n.cfg.FloodDelay+jitter, n.maybeFlood)
	}
}

// Stop halts periodic activity after the current event.
func (n *Node) Stop() { n.stopped = true }

func (n *Node) tick() {
	if n.stopped {
		return
	}
	if !n.net.Up(n.id) {
		// Keep the chain scheduled while down so RecoverNode resumes
		// maintenance (crash/recover churn in the chaos harness).
		n.net.Engine().After(n.cfg.TickInterval, n.tick)
		return
	}
	if n.hasSucc {
		if r := n.rc.Route(n.succ); r != nil {
			n.courier.Send(r, KindNotify, nil)
		}
	}
	n.net.Engine().After(n.cfg.TickInterval, n.tick)
}

// maybeFlood initiates the representative flood if this node still believes
// itself the numerically largest (§3: "SSR and VRR propose to choose the
// node with the numerically largest address as (one) representative").
func (n *Node) maybeFlood() {
	if n.stopped || !n.net.Up(n.id) {
		return
	}
	if n.believesLargest() && (!n.hasFlooded || n.floodedMax < n.id) {
		n.hasFlooded = true
		n.floodedMax = n.id
		if tr := n.net.Tracer(); tr != nil {
			// One counter event per flood origination; the per-frame flood
			// taxonomy is covered by the network's EvMsgSend events.
			tr.Emit(trace.Event{
				T: int64(n.net.Engine().Now()), Type: trace.EvCounter,
				Node: n.id, Kind: "isprp:flood-origin", Value: 1,
			})
		}
		n.net.Broadcast(n.id, KindFlood, floodPayload{Origin: n.id, Path: []ids.ID{n.id}})
	}
}

func (n *Node) believesLargest() bool {
	for _, x := range n.rc.Destinations() {
		if x > n.id {
			return false
		}
	}
	return true
}

// handle is the raw frame handler: courier traffic first, then floods.
func (n *Node) handle(m phys.Message) {
	if n.courier.Handle(m) {
		return
	}
	if m.Kind == KindFlood {
		n.handleFlood(m)
	}
}

func (n *Node) handleFlood(m phys.Message) {
	fp, ok := m.Payload.(floodPayload)
	if !ok {
		return
	}
	// Learn a route back to the origin: reverse the accumulated path.
	full := append(append([]ids.ID(nil), fp.Path...), n.id)
	back := sroute.Route(full).Reverse().ElideLoops()
	if len(back) >= 2 {
		n.learnRoute(back)
	}
	// Relay if this origin beats everything we have relayed so far and we
	// are not ourselves larger (a larger node will start its own flood).
	if fp.Origin > n.floodedMax && fp.Origin != n.id {
		n.floodedMax = fp.Origin
		n.hasFlooded = true
		n.net.Broadcast(n.id, KindFlood, floodPayload{Origin: fp.Origin, Path: full})
	}
}

// deliver handles courier packets addressed to this node.
func (n *Node) deliver(pkt phys.SRPacket) {
	from := pkt.Route.Src()
	// Any packet teaches us the reverse route to its sender.
	n.learnRoute(pkt.Route.Reverse())
	switch pkt.Kind {
	case KindNotify:
		n.handleNotify(from)
	case KindUpdate:
		up, ok := pkt.Payload.(updatePayload)
		if !ok {
			return
		}
		n.handleUpdate(pkt.Route, up)
	}
}

// overhear lets forwarding nodes cache route segments of relayed packets —
// SSR route learning (§1: nodes "store (some of) these source routes").
func (n *Node) overhear(pkt phys.SRPacket) {
	if back := pkt.Route[:pkt.Hop+1].Reverse(); len(back) >= 2 {
		n.learnRoute(back)
	}
	if fwd := pkt.Route[pkt.Hop:]; len(fwd) >= 2 {
		n.learnRoute(fwd.Clone())
	}
}

// handleNotify processes a successor claim from node from.
func (n *Node) handleNotify(from ids.ID) {
	n.claimants.Add(from)
	// Answer with the best successor for the claimant that we know of. If
	// we know a node D strictly between from and us, from should use D.
	if best, ok := n.bestSuccessorFor(from); ok && best != n.id {
		n.sendUpdate(from, best)
	}
	if n.claimants.Len() <= 1 {
		return
	}
	// Multiple claimants: impose the partial order of §3. Sort claimants by
	// ring position approaching us; point each at the next one and keep the
	// closest as our predecessor.
	order := n.claimants.Sorted()
	// Sort by descending ring distance to us: farthest first.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if ids.RingDist(order[j], n.id) > ids.RingDist(order[i], n.id) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for i := 0; i+1 < len(order); i++ {
		n.sendUpdate(order[i], order[i+1])
	}
	n.claimants = ids.NewSet(order[len(order)-1])
}

// bestSuccessorFor returns the cached node (or us) ring-closest after from.
func (n *Node) bestSuccessorFor(from ids.ID) (ids.ID, bool) {
	best := n.id
	found := true
	for _, x := range n.rc.Destinations() {
		if x == from {
			continue
		}
		if ids.RingDist(from, x) < ids.RingDist(from, best) {
			best = x
		}
	}
	return best, found
}

// sendUpdate points node to at node better, carrying our route to better so
// the receiver can compose its own.
func (n *Node) sendUpdate(to, better ids.ID) {
	if to == better {
		return
	}
	rTo := n.rc.Route(to)
	rBetter := n.rc.Route(better)
	if rTo == nil || rBetter == nil {
		return
	}
	n.courier.Send(rTo, KindUpdate, updatePayload{BetterRoute: rBetter.Clone()})
}

// handleUpdate composes the route to the suggested better successor and
// rewires if it improves.
func (n *Node) handleUpdate(pktRoute sroute.Route, up updatePayload) {
	back := pktRoute.Reverse() // us → sender
	if up.BetterRoute == nil || back.Dst() != up.BetterRoute.Src() {
		return
	}
	composed, err := back.Append(up.BetterRoute)
	if err != nil || len(composed) < 2 {
		return
	}
	n.learnRoute(composed)
}

// learnRoute caches a route and applies the successor rewiring rule: adopt
// the destination if it falls strictly between us and our current
// successor.
func (n *Node) learnRoute(r sroute.Route) {
	if len(r) < 2 || r.Src() != n.id {
		return
	}
	n.rc.Insert(r)
	dst := r.Dst()
	switch {
	case !n.hasSucc:
		n.succ = dst
		n.hasSucc = true
	case ids.Between(dst, n.id, n.succ):
		n.succ = dst
	}
}

// --- Cluster driver --------------------------------------------------------

// Cluster runs ISPRP over an entire network and provides the convergence
// oracle used by experiments.
type Cluster struct {
	Net          phys.Transport
	Nodes        map[ids.ID]*Node
	probeStopped bool
}

// NewCluster creates one ISPRP node per registered topology node and starts
// them with per-node jitter.
func NewCluster(net phys.Transport, cfg Config) *Cluster {
	c := &Cluster{Net: net, Nodes: make(map[ids.ID]*Node)}
	for _, v := range net.Topology().Nodes() {
		c.Nodes[v] = NewNode(net, v, cfg)
	}
	for _, v := range net.Topology().Nodes() {
		c.Nodes[v].Start(sim.Time(net.Engine().Rand().Int63n(int64(cfg.withDefaults().TickInterval))))
	}
	return c
}

// SuccMap snapshots all successor pointers.
func (c *Cluster) SuccMap() vring.SuccMap {
	s := make(vring.SuccMap, len(c.Nodes))
	for v, n := range c.Nodes {
		if succ, ok := n.Successor(); ok {
			s[v] = succ
		}
	}
	return s
}

// VirtualGraph snapshots the successor structure as an undirected virtual
// graph — the view the convergence probes measure. A consistent ring shows
// up as the sorted line plus the wrap edge, which LineDistance exempts.
func (c *Cluster) VirtualGraph() *graph.Graph {
	g := graph.New()
	for v, n := range c.Nodes {
		g.AddNode(v)
		if succ, ok := n.Successor(); ok {
			g.AddEdge(v, succ)
		}
	}
	return g
}

// AttachProbe samples the cluster's successor structure into the
// convergence probe every `every` ticks, starting one interval from now,
// until Stop — the same observation contract as ssr.Cluster.AttachProbe,
// so linearization and ISPRP bootstraps produce comparable trace series.
func (c *Cluster) AttachProbe(p *trace.Probe, every sim.Time) {
	if p == nil || every <= 0 {
		return
	}
	round := 0
	eng := c.Net.Engine()
	var tick func()
	tick = func() {
		if c.probeStopped {
			return
		}
		p.Observe(round, c.VirtualGraph())
		round++
		eng.After(every, tick)
	}
	eng.After(every, tick)
}

// Consistent reports whether the ring is globally consistent right now.
func (c *Cluster) Consistent() bool {
	if len(c.Nodes) < 2 {
		return true
	}
	all := make([]ids.ID, 0, len(c.Nodes))
	for v := range c.Nodes {
		all = append(all, v)
	}
	return c.SuccMap().GloballyConsistent(all)
}

// RunUntilConsistent drives the simulation until global consistency or the
// deadline. It returns the convergence time and whether it converged.
func (c *Cluster) RunUntilConsistent(deadline sim.Time) (sim.Time, bool) {
	eng := c.Net.Engine()
	const checkEvery = sim.Time(8)
	for next := eng.Now() + checkEvery; ; next += checkEvery {
		if next > deadline {
			next = deadline
		}
		eng.RunUntil(next, nil)
		if c.Consistent() {
			return eng.Now(), true
		}
		if next >= deadline || eng.Pending() == 0 {
			return eng.Now(), false
		}
	}
}

// Stop halts all nodes' periodic activity and any attached probes.
func (c *Cluster) Stop() {
	c.probeStopped = true
	for _, n := range c.Nodes {
		n.Stop()
	}
}
