package ids

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRingDist(t *testing.T) {
	cases := []struct {
		a, b ID
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, math.MaxUint64},
		{5, 10, 5},
		{10, 5, math.MaxUint64 - 4},
		{math.MaxUint64, 0, 1},
	}
	for _, c := range cases {
		if got := RingDist(c.a, c.b); got != c.want {
			t.Errorf("RingDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAbsRingDist(t *testing.T) {
	if got := AbsRingDist(0, 10); got != 10 {
		t.Errorf("AbsRingDist(0,10) = %d, want 10", got)
	}
	if got := AbsRingDist(10, 0); got != 10 {
		t.Errorf("AbsRingDist(10,0) = %d, want 10", got)
	}
	if got := AbsRingDist(math.MaxUint64, 1); got != 2 {
		t.Errorf("AbsRingDist(max,1) = %d, want 2", got)
	}
}

func TestLineDist(t *testing.T) {
	if got := LineDist(3, 10); got != 7 {
		t.Errorf("LineDist(3,10) = %d, want 7", got)
	}
	if got := LineDist(10, 3); got != 7 {
		t.Errorf("LineDist(10,3) = %d, want 7", got)
	}
	if got := LineDist(5, 5); got != 0 {
		t.Errorf("LineDist(5,5) = %d, want 0", got)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{11, 1, 10, false},
		// wrapped arc (10, 1): contains 11..max and 0.
		{11, 10, 1, true},
		{0, 10, 1, true},
		{5, 10, 1, false},
		// degenerate arc a==b spans everything but a.
		{5, 7, 7, true},
		{7, 7, 7, false},
	}
	for _, c := range cases {
		if got := Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBetweenIncl(t *testing.T) {
	if !BetweenIncl(10, 1, 10) {
		t.Error("BetweenIncl should include the right endpoint")
	}
	if BetweenIncl(1, 1, 10) {
		t.Error("BetweenIncl should exclude the left endpoint")
	}
}

func TestCloserOnRing(t *testing.T) {
	if !CloserOnRing(9, 5, 10) {
		t.Error("9 should be ring-closer to 10 than 5 is")
	}
	if CloserOnRing(11, 9, 10) {
		t.Error("11 is almost a full ring away from 10 clockwise")
	}
}

func TestDirOf(t *testing.T) {
	if DirOf(10, 5) != Left {
		t.Error("5 should be left of 10")
	}
	if DirOf(10, 15) != Right {
		t.Error("15 should be right of 10")
	}
	if Left.Opposite() != Right || Right.Opposite() != Left {
		t.Error("Opposite is broken")
	}
	if Left.String() != "left" || Right.String() != "right" {
		t.Error("Dir.String is broken")
	}
}

func TestIntervalIndex(t *testing.T) {
	cases := []struct {
		d    uint64
		want int
	}{
		{0, -1},
		{1, 0},
		{2, 1},
		{3, 1},
		{4, 2},
		{7, 2},
		{8, 3},
		{1 << 40, 40},
		{math.MaxUint64, 63},
	}
	for _, c := range cases {
		if got := IntervalIndex(c.d); got != c.want {
			t.Errorf("IntervalIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestIntervalIndexProperty(t *testing.T) {
	// Property: for d > 0, 2^k <= d < 2^(k+1) where k = IntervalIndex(d).
	f := func(d uint64) bool {
		if d == 0 {
			return IntervalIndex(d) == -1
		}
		k := IntervalIndex(d)
		if k < 0 || k >= NumIntervals {
			return false
		}
		lo := uint64(1) << uint(k)
		if d < lo {
			return false
		}
		if k < 63 {
			hi := uint64(1) << uint(k+1)
			if d >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetweenProperty(t *testing.T) {
	// Property: for distinct a,b, every x != a,b is in exactly one of the
	// arcs (a,b) and (b,a).
	f := func(x, a, b ID) bool {
		if a == b || x == a || x == b {
			return true
		}
		return Between(x, a, b) != Between(x, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingDistProperty(t *testing.T) {
	// Property: RingDist(a,b) + RingDist(b,a) == 0 (mod 2^64) for a != b,
	// and AbsRingDist is symmetric.
	f := func(a, b ID) bool {
		if AbsRingDist(a, b) != AbsRingDist(b, a) {
			return false
		}
		if a == b {
			return RingDist(a, b) == 0
		}
		return RingDist(a, b)+RingDist(b, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	if _, ok := Max(nil); ok {
		t.Error("Max of empty should not be ok")
	}
	if _, ok := Min(nil); ok {
		t.Error("Min of empty should not be ok")
	}
	s := []ID{5, 1, 9, 3}
	if m, _ := Max(s); m != 9 {
		t.Errorf("Max = %d, want 9", m)
	}
	if m, _ := Min(s); m != 1 {
		t.Errorf("Min = %d, want 1", m)
	}
}

func TestSortAscDesc(t *testing.T) {
	s := []ID{5, 1, 9, 3}
	SortAsc(s)
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("SortAsc produced %v", s)
		}
	}
	SortDesc(s)
	for i := 1; i < len(s); i++ {
		if s[i-1] < s[i] {
			t.Fatalf("SortDesc produced %v", s)
		}
	}
}

func TestSet(t *testing.T) {
	s := NewSet(3, 1, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Add(4) {
		t.Error("Add(4) should report newly added")
	}
	if s.Add(4) {
		t.Error("Add(4) twice should report already present")
	}
	if !s.Has(4) {
		t.Error("Has(4) should be true")
	}
	if !s.Remove(4) {
		t.Error("Remove(4) should report present")
	}
	if s.Remove(4) {
		t.Error("Remove(4) twice should report absent")
	}
	sorted := s.Sorted()
	want := []ID{1, 2, 3}
	if len(sorted) != len(want) {
		t.Fatalf("Sorted = %v, want %v", sorted, want)
	}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", sorted, want)
		}
	}
	c := s.Clone()
	c.Add(99)
	if s.Has(99) {
		t.Error("Clone should be independent of the original")
	}
}

func TestIDString(t *testing.T) {
	if ID(42).String() != "42" {
		t.Errorf("ID(42).String() = %q", ID(42).String())
	}
}

func TestCmp(t *testing.T) {
	if ID(1).Cmp(2) != -1 || ID(2).Cmp(1) != +1 || ID(1).Cmp(1) != 0 {
		t.Error("Cmp is broken")
	}
	if !ID(1).Less(2) || ID(2).Less(1) {
		t.Error("Less is broken")
	}
}
