// Package ids defines the node identifier space shared by SSR, VRR, ISPRP
// and the linearization algorithms.
//
// Identifiers are unsigned 64-bit integers. Two views of the identifier
// space matter in this reproduction:
//
//   - The *line* view: the natural total order on uint64. Linearization
//     (Kutzner/Fuhrmann §3) deliberately treats the address space as linear,
//     because the total order makes local consistency equivalent to global
//     consistency.
//   - The *ring* view: the circularly connected address space used by SSR and
//     VRR for greedy routing once the virtual ring has been closed.
//
// The package also provides the exponentially growing interval partitioning
// that "linearization with shortcut neighbors" (LSN) and SSR's route caches
// use to bound per-node state to O(log |space|) entries.
package ids

import (
	"fmt"
	"math/bits"
	"sort"
)

// ID is a globally unique node identifier. The zero value is a valid
// identifier; protocols in this module never reserve it.
type ID uint64

// String renders the identifier in decimal, matching the small example
// identifiers used in the paper's figures.
func (a ID) String() string { return fmt.Sprintf("%d", uint64(a)) }

// Less reports whether a precedes b in the line view.
func (a ID) Less(b ID) bool { return a < b }

// Cmp returns -1, 0, or +1 as a is less than, equal to, or greater than b in
// the line view.
func (a ID) Cmp(b ID) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return +1
	default:
		return 0
	}
}

// RingDist returns the clockwise distance from a to b on the virtual ring,
// i.e. the number of identifier steps needed to reach b from a moving in the
// direction of increasing identifiers with wrap-around.
func RingDist(a, b ID) uint64 { return uint64(b) - uint64(a) }

// AbsRingDist returns the length of the shorter arc between a and b on the
// virtual ring.
func AbsRingDist(a, b ID) uint64 {
	cw := RingDist(a, b)
	ccw := RingDist(b, a)
	if cw < ccw {
		return cw
	}
	return ccw
}

// LineDist returns |a-b| in the line view.
func LineDist(a, b ID) uint64 {
	if a < b {
		return uint64(b) - uint64(a)
	}
	return uint64(a) - uint64(b)
}

// Between reports whether x lies on the clockwise arc (a, b) exclusive of
// both endpoints. This is the classic Chord-style interval test that SSR's
// greedy routing and ISPRP's successor rewiring rely on. When a == b the arc
// spans the whole ring except a itself.
func Between(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// BetweenIncl reports whether x lies on the clockwise arc (a, b] (exclusive
// of a, inclusive of b).
func BetweenIncl(x, a, b ID) bool {
	return x == b || Between(x, a, b)
}

// CloserOnRing reports whether candidate x is strictly closer to target t
// than y is, measured as clockwise distance from the candidate to the
// target. SSR's greedy rule ("virtually closest to the final destination")
// uses this predicate to pick the next intermediate destination.
func CloserOnRing(x, y, t ID) bool {
	return RingDist(x, t) < RingDist(y, t)
}

// Dir is a direction on the line view of the identifier space.
type Dir int8

const (
	// Left is the direction of decreasing identifiers.
	Left Dir = -1
	// Right is the direction of increasing identifiers.
	Right Dir = +1
)

// String returns "left" or "right".
func (d Dir) String() string {
	if d == Left {
		return "left"
	}
	return "right"
}

// Opposite returns the other direction.
func (d Dir) Opposite() Dir { return -d }

// DirOf returns the direction of other relative to self in the line view.
// It must not be called with other == self.
func DirOf(self, other ID) Dir {
	if other < self {
		return Left
	}
	return Right
}

// IntervalIndex returns the index of the exponentially growing interval that
// a neighbor at line distance d falls into: interval k covers distances in
// [2^k, 2^(k+1)). Distance 0 is not a valid neighbor distance; the function
// returns -1 in that case. There are at most 64 intervals.
func IntervalIndex(d uint64) int {
	if d == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(d)
}

// NumIntervals is the number of exponential intervals per direction.
const NumIntervals = 64

// SortAsc sorts s ascending in the line view.
func SortAsc(s []ID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// SortDesc sorts s descending in the line view.
func SortDesc(s []ID) {
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
}

// Max returns the largest identifier in s, or ok=false if s is empty.
// ISPRP and VRR use the node with the numerically largest address as the
// representative that floods the network.
func Max(s []ID) (max ID, ok bool) {
	if len(s) == 0 {
		return 0, false
	}
	max = s[0]
	for _, x := range s[1:] {
		if x > max {
			max = x
		}
	}
	return max, true
}

// Min returns the smallest identifier in s, or ok=false if s is empty.
func Min(s []ID) (min ID, ok bool) {
	if len(s) == 0 {
		return 0, false
	}
	min = s[0]
	for _, x := range s[1:] {
		if x < min {
			min = x
		}
	}
	return min, true
}

// Set is a set of identifiers. The zero value is an empty usable set for
// reads; use NewSet or Add (which allocates lazily) for writes.
type Set map[ID]struct{}

// NewSet returns a set containing the given members.
func NewSet(members ...ID) Set {
	s := make(Set, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts x and reports whether it was newly added.
func (s Set) Add(x ID) bool {
	if _, ok := s[x]; ok {
		return false
	}
	s[x] = struct{}{}
	return true
}

// Remove deletes x and reports whether it was present.
func (s Set) Remove(x ID) bool {
	if _, ok := s[x]; !ok {
		return false
	}
	delete(s, x)
	return true
}

// Has reports membership.
func (s Set) Has(x ID) bool {
	_, ok := s[x]
	return ok
}

// Len returns the number of members.
func (s Set) Len() int { return len(s) }

// Sorted returns the members in ascending line order.
func (s Set) Sorted() []ID {
	out := make([]ID, 0, len(s))
	for x := range s {
		out = append(out, x)
	}
	SortAsc(out)
	return out
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for x := range s {
		c[x] = struct{}{}
	}
	return c
}
