// Package benchfmt defines the shared shape of the BENCH_*.json artifacts:
// a metadata header stamped into every bench result so tooling can tell
// what configuration produced a file, plus a structural differ that
// compares two results leaf by leaf — the engine behind `tracectl bench
// compare` and the CI perf gate.
//
// The header exists so comparisons can *refuse* to run across mismatched
// configurations: diffing an n=10k run against an n=100k run, or a lossy
// transport against a perfect one, produces numbers that look like
// regressions but are noise. CompatibleWith is strict by design; the CLI
// exposes a -force escape hatch.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"
)

// SchemaVersion is the current header schema. Bump on incompatible
// changes to the bench result shapes.
const SchemaVersion = 1

// Meta is the configuration header of one bench artifact. Zero-valued
// fields mean "not applicable to this bench" (e.g. a single-size bench
// has N set and Sizes empty; a sweep has the reverse) and only compare
// against the other file's same field.
type Meta struct {
	Schema    int    `json:"schema"`
	Bench     string `json:"bench"`
	Topology  string `json:"topology,omitempty"`
	Seed      int64  `json:"seed"`
	N         int    `json:"n,omitempty"`
	Sizes     []int  `json:"sizes,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Partition string `json:"partition,omitempty"`
	Transport string `json:"transport,omitempty"`
	Quick     bool   `json:"quick,omitempty"`
}

// NewMeta returns a header for the named bench at the current schema.
func NewMeta(bench string) Meta {
	return Meta{Schema: SchemaVersion, Bench: bench}
}

// CompatibleWith reports why two headers must not be compared, or nil.
// Every populated field has to match: same bench, same topology, same
// seed, same sizes, same executor shape, same transport.
func (m Meta) CompatibleWith(o Meta) error {
	var bad []string
	check := func(field string, a, b any) {
		if !equalField(a, b) {
			bad = append(bad, fmt.Sprintf("%s %v vs %v", field, a, b))
		}
	}
	check("schema", m.Schema, o.Schema)
	check("bench", m.Bench, o.Bench)
	check("topology", m.Topology, o.Topology)
	check("seed", m.Seed, o.Seed)
	check("n", m.N, o.N)
	check("sizes", m.Sizes, o.Sizes)
	check("workers", m.Workers, o.Workers)
	check("shards", m.Shards, o.Shards)
	check("partition", m.Partition, o.Partition)
	check("transport", m.Transport, o.Transport)
	check("quick", m.Quick, o.Quick)
	if len(bad) > 0 {
		return fmt.Errorf("incompatible bench configs: %s", strings.Join(bad, "; "))
	}
	return nil
}

func equalField(a, b any) bool {
	if as, ok := a.([]int); ok {
		bs := b.([]int)
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return true
	}
	return a == b
}

// File is one loaded bench artifact: its header plus the full decoded
// JSON document for structural comparison.
type File struct {
	Meta Meta
	Doc  map[string]any
}

// Load reads and decodes one BENCH_*.json. A file without a meta header
// (pre-schema artifacts) loads with a zero Meta; callers decide whether
// to refuse it.
func Load(path string) (File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	var hdr struct {
		Meta Meta `json:"meta"`
	}
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return File{}, fmt.Errorf("%s: meta header: %w", path, err)
	}
	return File{Meta: hdr.Meta, Doc: doc}, nil
}

// Delta is one numeric leaf present in both documents. Booleans compare
// as 0/1, so a converged->not-converged flip shows up as a full-scale
// delta.
type Delta struct {
	Path string  // dotted JSON path, e.g. "runs[2].speedup"
	Old  float64 // value in the baseline document
	New  float64 // value in the candidate document
	// Rel is |new-old| normalized by max(|old|, 1e-12), signed by the
	// direction of change (positive = increased).
	Rel float64
}

// Changed reports whether the leaf moved at all.
func (d Delta) Changed() bool { return d.Old != d.New }

// Diff compares two decoded documents leaf by leaf and returns every
// numeric/boolean leaf they share, sorted by path, plus the paths present
// in only one of them ("meta" subtrees are skipped — CompatibleWith
// already adjudicated them).
func Diff(old, new map[string]any) (deltas []Delta, onlyOld, onlyNew []string) {
	ol := map[string]float64{}
	nl := map[string]float64{}
	collect("", old, ol)
	collect("", new, nl)
	for path, ov := range ol {
		nv, ok := nl[path]
		if !ok {
			onlyOld = append(onlyOld, path)
			continue
		}
		d := Delta{Path: path, Old: ov, New: nv}
		diff := nv - ov
		denom := math.Abs(ov)
		if denom < 1e-12 {
			denom = 1e-12
		}
		if diff != 0 {
			d.Rel = diff / denom
		}
		deltas = append(deltas, d)
	}
	for path := range nl {
		if _, ok := ol[path]; !ok {
			onlyNew = append(onlyNew, path)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Path < deltas[j].Path })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// collect flattens numeric and boolean leaves into path -> value.
func collect(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			if prefix == "" && k == "meta" {
				continue
			}
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			collect(p, child, out)
		}
	case []any:
		for i, child := range x {
			collect(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case float64:
		out[prefix] = x
	case bool:
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

// DefaultGate matches the machine-independent result fields the CI perf
// gate judges: round counts, activation totals and the boundary share.
// Wall-clock fields (seconds, speedups) vary with the host and stay
// informational.
const DefaultGate = `(^|\.)(rounds|interior_activations|wave_activations|boundary_activations|activations|boundary_share|converged|equal_graphs|final_edges)$`

// Regressions filters deltas down to the ones the gate fails on: path
// matches the gate pattern and the relative change exceeds tol in
// magnitude. A nil gate matches every path.
func Regressions(deltas []Delta, gate *regexp.Regexp, tol float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if !d.Changed() {
			continue
		}
		if gate != nil && !gate.MatchString(d.Path) {
			continue
		}
		if math.Abs(d.Rel) > tol {
			out = append(out, d)
		}
	}
	return out
}
