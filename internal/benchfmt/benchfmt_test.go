package benchfmt

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestCompatibleWith(t *testing.T) {
	a := NewMeta("profile")
	a.Topology, a.Seed, a.N, a.Workers = "regular", 1, 10000, 2
	b := a
	if err := a.CompatibleWith(b); err != nil {
		t.Fatalf("identical metas incompatible: %v", err)
	}
	b.N = 100000
	b.Seed = 2
	err := a.CompatibleWith(b)
	if err == nil {
		t.Fatal("mismatched metas should be incompatible")
	}
	for _, want := range []string{"n 10000 vs 100000", "seed 1 vs 2"} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(err.Error()) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	c := a
	c.Sizes = []int{100, 1000}
	if err := a.CompatibleWith(c); err == nil {
		t.Fatal("differing sizes should be incompatible")
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadReadsMetaHeader(t *testing.T) {
	path := writeTemp(t, "a.json", `{"meta":{"schema":1,"bench":"profile","seed":7,"n":100},"rounds":12}`)
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Schema != 1 || f.Meta.Bench != "profile" || f.Meta.Seed != 7 || f.Meta.N != 100 {
		t.Fatalf("meta = %+v", f.Meta)
	}
	legacy, err := Load(writeTemp(t, "b.json", `{"rounds":12}`))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Meta.Schema != 0 || legacy.Meta.Bench != "" {
		t.Fatalf("legacy meta should be zero, got %+v", legacy.Meta)
	}
}

func TestDiffFindsNumericAndBooleanLeaves(t *testing.T) {
	old := map[string]any{
		"meta":      map[string]any{"seed": float64(1)},
		"rounds":    float64(10),
		"converged": true,
		"runs": []any{
			map[string]any{"speedup": float64(1.0), "variant": "lsn"},
			map[string]any{"speedup": float64(2.0)},
		},
		"gone": float64(5),
	}
	new := map[string]any{
		"meta":      map[string]any{"seed": float64(2)}, // skipped
		"rounds":    float64(12),
		"converged": false,
		"runs": []any{
			map[string]any{"speedup": float64(1.1), "variant": "lsn"},
			map[string]any{"speedup": float64(2.0)},
		},
		"fresh": float64(3),
	}
	deltas, onlyOld, onlyNew := Diff(old, new)
	byPath := map[string]Delta{}
	for _, d := range deltas {
		byPath[d.Path] = d
	}
	if d := byPath["rounds"]; d.Old != 10 || d.New != 12 || d.Rel <= 0.19 || d.Rel >= 0.21 {
		t.Fatalf("rounds delta = %+v", d)
	}
	if d := byPath["converged"]; d.Old != 1 || d.New != 0 {
		t.Fatalf("converged delta = %+v", d)
	}
	if d := byPath["runs[1].speedup"]; d.Changed() {
		t.Fatalf("unchanged leaf flagged: %+v", d)
	}
	if _, ok := byPath["meta.seed"]; ok {
		t.Fatal("meta subtree must be skipped")
	}
	if _, ok := byPath["runs[0].variant"]; ok {
		t.Fatal("string leaves must be ignored")
	}
	if len(onlyOld) != 1 || onlyOld[0] != "gone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "fresh" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestRegressionsGateAndTolerance(t *testing.T) {
	deltas := []Delta{
		{Path: "rounds", Old: 100, New: 120, Rel: 0.2},
		{Path: "runs[0].seq_seconds", Old: 1, New: 10, Rel: 9},
		{Path: "runs[0].boundary_activations", Old: 1000, New: 1010, Rel: 0.01},
		{Path: "runs[0].interior_activations", Old: 1000, New: 1000, Rel: 0},
	}
	gate := regexp.MustCompile(DefaultGate)
	got := Regressions(deltas, gate, 0.05)
	if len(got) != 1 || got[0].Path != "rounds" {
		t.Fatalf("regressions = %+v", got)
	}
	// Nil gate judges every changed path.
	if got := Regressions(deltas, nil, 0.05); len(got) != 2 {
		t.Fatalf("ungated regressions = %+v", got)
	}
	// Loose tolerance passes everything.
	if got := Regressions(deltas, gate, 0.5); len(got) != 0 {
		t.Fatalf("tolerant gate should pass, got %+v", got)
	}
}
