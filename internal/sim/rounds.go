package sim

import "math/rand"

// Scheduler selects the execution discipline for the round model.
type Scheduler int

const (
	// Synchronous activates every node each round; all actions computed
	// against the same snapshot and applied together. This is the model in
	// which Onus et al. state their convergence bounds.
	Synchronous Scheduler = iota
	// RandomSequential activates nodes one at a time in a fresh random
	// permutation per round (a fair randomized daemon). Self-stabilizing
	// algorithms must converge under this discipline too; the ablation
	// benches compare both.
	RandomSequential
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case Synchronous:
		return "synchronous"
	case RandomSequential:
		return "random-sequential"
	default:
		return "unknown"
	}
}

// RoundRunner drives a round-model protocol to a fixed point.
//
// Activate is called once per node activation and reports whether the node
// changed any state. Done is the global fixed-point/goal test evaluated
// between rounds. NodeCount and Node expose the node universe by dense
// index so the runner can permute activations without knowing identifiers.
type RoundRunner struct {
	Scheduler Scheduler
	MaxRounds int // safety bound; <=0 means 1<<20

	NodeCount func() int
	Activate  func(node int) bool
	// BeginRound, if set, is called before each round with the round number
	// (starting at 0); synchronous protocols snapshot state here.
	BeginRound func(round int)
	// EndRound, if set, is called after each round; synchronous protocols
	// apply their staged actions here.
	EndRound func(round int)
	Done     func() bool
}

// Result summarizes a round-model run.
type Result struct {
	Rounds      int  // rounds executed
	Converged   bool // Done() became true within MaxRounds
	Activations int  // node activations that changed state
}

// Run drives the protocol until Done or MaxRounds. rng orders activations
// for the RandomSequential scheduler.
func (rr *RoundRunner) Run(rng *rand.Rand) Result {
	max := rr.MaxRounds
	if max <= 0 {
		max = 1 << 20
	}
	var res Result
	if rr.Done() {
		res.Converged = true
		return res
	}
	for round := 0; round < max; round++ {
		if rr.BeginRound != nil {
			rr.BeginRound(round)
		}
		n := rr.NodeCount()
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		if rr.Scheduler == RandomSequential && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, idx := range order {
			if rr.Activate(idx) {
				res.Activations++
			}
		}
		if rr.EndRound != nil {
			rr.EndRound(round)
		}
		res.Rounds = round + 1
		if rr.Done() {
			res.Converged = true
			return res
		}
	}
	return res
}
