package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d, want 30", e.Now())
	}
	if e.EventsExecuted() != 3 {
		t.Errorf("EventsExecuted = %d, want 3", e.EventsExecuted())
	}
}

func TestEngineFIFOAmongSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // idempotent
	e.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineAfterAndPastClamp(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past: clamps to now
	})
	e.Run(0)
	if at != 100 {
		t.Errorf("past event should run at now=100, ran at %d", at)
	}

	e2 := NewEngine(1)
	var order []int
	e2.After(5, func() {
		order = append(order, 1)
		e2.After(-3, func() { order = append(order, 2) }) // negative delay clamps
	})
	e2.Run(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestEngineBudget(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(1, tick)
	}
	e.After(1, tick)
	if fired := e.Run(25); fired != 25 {
		t.Errorf("Run fired %d, want 25", fired)
	}
	if count != 25 {
		t.Errorf("count = %d, want 25", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(10, tick)
	}
	e.After(10, tick)
	e.RunUntil(55, nil)
	if count != 5 {
		t.Errorf("count = %d, want 5 (events at 10..50)", count)
	}
	if e.Now() != 50 {
		t.Errorf("Now = %d, want 50", e.Now())
	}
	// stop() halts immediately.
	e.RunUntil(1000, func() bool { return true })
	if count != 5 {
		t.Error("stop() should prevent further events")
	}
	// Cancelled head-of-queue events are skipped.
	e3 := NewEngine(1)
	ev := e3.At(5, func() { t.Error("cancelled event ran") })
	ev.Cancel()
	ran := false
	e3.At(6, func() { ran = true })
	e3.RunUntil(10, nil)
	if !ran {
		t.Error("live event after cancelled one did not run")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(e.Now()))
			if len(trace) < 50 {
				e.After(Time(1+e.Rand().Intn(10)), step)
			}
		}
		e.After(1, step)
		e.Run(0)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different trace lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("engine is not deterministic for a fixed seed")
		}
	}
}

func TestEventTimeMonotonicProperty(t *testing.T) {
	// Property: firing order is non-decreasing in time for arbitrary
	// schedules.
	f := func(delays []uint8) bool {
		e := NewEngine(3)
		var times []Time
		for _, d := range delays {
			e.At(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i-1] > times[i] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// toyCounter is a round-model "protocol": each node increments until it
// reaches its index.
type toyCounter struct {
	vals []int
}

func (c *toyCounter) done() bool {
	for i, v := range c.vals {
		if v < i {
			return false
		}
	}
	return true
}

func TestRoundRunnerSynchronous(t *testing.T) {
	c := &toyCounter{vals: make([]int, 5)}
	rr := &RoundRunner{
		Scheduler: Synchronous,
		NodeCount: func() int { return len(c.vals) },
		Activate: func(i int) bool {
			if c.vals[i] < i {
				c.vals[i]++
				return true
			}
			return false
		},
		Done: c.done,
	}
	res := rr.Run(rand.New(rand.NewSource(1)))
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Rounds != 4 {
		t.Errorf("Rounds = %d, want 4 (slowest node needs 4 increments)", res.Rounds)
	}
	if res.Activations != 0+1+2+3+4 {
		t.Errorf("Activations = %d, want 10", res.Activations)
	}
}

func TestRoundRunnerAlreadyDone(t *testing.T) {
	rr := &RoundRunner{
		NodeCount: func() int { return 0 },
		Activate:  func(int) bool { return false },
		Done:      func() bool { return true },
	}
	res := rr.Run(nil)
	if !res.Converged || res.Rounds != 0 {
		t.Errorf("already-done run: %+v", res)
	}
}

func TestRoundRunnerMaxRounds(t *testing.T) {
	rr := &RoundRunner{
		MaxRounds: 7,
		NodeCount: func() int { return 1 },
		Activate:  func(int) bool { return true },
		Done:      func() bool { return false },
	}
	res := rr.Run(rand.New(rand.NewSource(1)))
	if res.Converged {
		t.Error("should not converge")
	}
	if res.Rounds != 7 {
		t.Errorf("Rounds = %d, want 7", res.Rounds)
	}
}

func TestRoundRunnerHooksAndRandomSequential(t *testing.T) {
	var begins, ends []int
	order := make([]int, 0, 30)
	rr := &RoundRunner{
		Scheduler:  RandomSequential,
		MaxRounds:  3,
		NodeCount:  func() int { return 10 },
		BeginRound: func(r int) { begins = append(begins, r) },
		EndRound:   func(r int) { ends = append(ends, r) },
		Activate: func(i int) bool {
			order = append(order, i)
			return false
		},
		Done: func() bool { return false },
	}
	rr.Run(rand.New(rand.NewSource(5)))
	if len(begins) != 3 || len(ends) != 3 {
		t.Errorf("hooks: begins=%v ends=%v", begins, ends)
	}
	// Each round must be a permutation of 0..9.
	for r := 0; r < 3; r++ {
		seen := map[int]bool{}
		for _, i := range order[r*10 : (r+1)*10] {
			seen[i] = true
		}
		if len(seen) != 10 {
			t.Errorf("round %d activations are not a permutation: %v", r, order[r*10:(r+1)*10])
		}
	}
	// At least one round should deviate from identity order (overwhelmingly
	// likely with this seed).
	identity := true
	for i, v := range order[:10] {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Log("first round happened to be identity permutation (seed-dependent)")
	}
	if Synchronous.String() != "synchronous" || RandomSequential.String() != "random-sequential" || Scheduler(99).String() != "unknown" {
		t.Error("Scheduler.String broken")
	}
}
