package sim

// This file adds the sharded parallel round executor. RoundRunner (rounds.go)
// activates every node on one goroutine; ShardedRunner partitions the node
// universe into contiguous identifier-interval shards and drives each round
// as up to three phases over a worker pool:
//
//	Prepare  — parallel, read-only against the round-start snapshot.
//	           Jacobi-style protocols compute their proposals here; atomic
//	           protocols classify nodes as shard-interior or boundary.
//	Execute  — parallel, writes confined to the shard's identifier range.
//	           Atomic protocols run their interior independent sets here.
//	Finish   — sequential. Jacobi protocols apply the deterministic ordered
//	           merge; atomic protocols run the boundary fallback in global
//	           identifier order.
//
// The runner owns partitioning, the pool, the phase barriers and the round
// loop; the protocol owns the semantics. The determinism contract is split
// accordingly: the runner guarantees that each shard's hooks run on exactly
// one goroutine and that Finish is exclusive, while the protocol must make
// cross-shard Prepare/Execute work commute (for linearization this follows
// from the identifier-interval footprint argument — see DESIGN.md §9). Under
// that contract the outcome is a pure function of the shard partition and
// is identical for every Workers value, including the sequential Workers=1
// mode that the equivalence tests pin.

import (
	"sync"
	"sync/atomic"
	"time"
)

// ShardProfiler observes the phase structure of a sharded run. The runner
// calls every method from its sequential control goroutine: per-shard
// durations are recorded race-free during the parallel phases (one writer
// per shard slot) and reported via ShardTime in ascending shard order
// after the phase barrier, so even the observation order is deterministic.
// Implementations must only observe — feeding a measurement back into
// protocol state breaks the executor's determinism contract.
type ShardProfiler interface {
	// RoundStart opens a round, before BeginRound.
	RoundStart(round int)
	// PhaseTime reports one phase's wall time. Phases are "begin",
	// "prepare", "execute" (the parallel pair), "waves" (when the runner
	// has a Waves hook), "finish" and "end"; absent hooks report nothing.
	PhaseTime(round int, phase string, d time.Duration)
	// ShardTime reports one shard's busy time inside a parallel phase.
	ShardTime(round int, phase string, shard int, d time.Duration)
	// RoundEnd closes a round, after EndRound.
	RoundEnd(round int)
}

// Shard is one contiguous slice of the dense node-index space [Lo, Hi).
// Because protocols expose nodes in ascending identifier order, a shard is
// also a contiguous identifier interval.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Len returns the number of nodes in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// ParallelFor runs fn for every index in [0, tasks) over the runner's
// worker pool. fn invocations may run concurrently; the caller is
// responsible for making them race-free (e.g. conflict-free wave picks).
type ParallelFor func(tasks int, fn func(i int))

// makeParallelFor builds a ParallelFor over a work-stealing pool of the
// given width, mirroring runPhase's fan-out.
func makeParallelFor(workers int) ParallelFor {
	return func(tasks int, fn func(i int)) {
		if tasks <= 0 {
			return
		}
		w := workers
		if w > tasks {
			w = tasks
		}
		if w <= 1 {
			for i := 0; i < tasks; i++ {
				fn(i)
			}
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= tasks {
						return
					}
					fn(i)
				}
			}()
		}
		wg.Wait()
	}
}

// ShardedRunner drives a round-model protocol over an identifier-interval
// shard partition with a worker pool. Nil phase hooks are skipped. See the
// file comment for the phase semantics and the determinism contract.
type ShardedRunner struct {
	// Workers is the pool width; <= 0 means the GOMAXPROCS default. The
	// final state is independent of Workers; only wall-clock changes.
	Workers int
	// Shards is the partition size; <= 0 means DefaultShards(NodeCount()).
	// Unlike Workers, the shard partition is part of the schedule and
	// therefore of the (deterministic) result.
	Shards    int
	MaxRounds int // safety bound; <= 0 means 1<<20

	// Partitioner selects the shard-assignment policy; nil means the
	// contiguous baseline (Partition). The partition is computed at round 0
	// and cached; it is recomputed when the node count changes or the
	// policy's Refresh reports that the previous round's cross-shard
	// activation share warrants it.
	Partitioner Partitioner
	// Footprint supplies per-node footprints to the Partitioner; nil means
	// a self-only footprint of unit weight. Only consulted when the
	// partition is (re)computed.
	Footprint FootprintFn
	// OnPartition, when non-nil, runs sequentially each time a new shard
	// layout is installed — the protocol's chance to resize per-shard
	// state before the round's phases.
	OnPartition func(shards []Shard)

	NodeCount func() int
	Done      func() bool
	// BeginRound runs sequentially before the phases (snapshot hook).
	BeginRound func(round int)
	// Prepare runs once per shard per round, in parallel; it must only read
	// protocol state. It returns the shard's activation count.
	Prepare func(round int, s Shard) int
	// Execute runs once per shard per round, in parallel; writes must stay
	// within the shard's identifier interval. Returns activations.
	Execute func(round int, s Shard) int
	// Waves, when non-nil, runs between Execute and Finish on the control
	// goroutine and may use pf to fan conflict-free work over the pool
	// (the BoundaryWaves discipline). Returns activations, counted as
	// parallel work. The hook must keep its pick schedule independent of
	// the pool width.
	Waves func(round int, pf ParallelFor) int
	// Finish runs sequentially after the parallel phases (ordered merge /
	// boundary fallback). Returns activations.
	Finish func(round int) int
	// EndRound runs sequentially after Finish (observability hook).
	EndRound func(round int)
	// Prof, when non-nil, receives phase and per-shard timings. Purely
	// observational: it never changes the schedule or the result.
	Prof ShardProfiler
}

// ShardResult summarizes a sharded run.
type ShardResult struct {
	Rounds      int
	Converged   bool
	Activations int // total state-changing activations
	// ParallelActivations counts the activations performed inside the
	// parallel phases; Activations minus this is the sequential share
	// (Jacobi merges and atomic boundary fallbacks).
	ParallelActivations int
	// WaveActivations is the subset of ParallelActivations performed by
	// the Waves hook (cross-shard work executed in conflict-free waves).
	WaveActivations int
	Workers, Shards int
}

// effectiveWorkers resolves the pool width against the shard count.
func (rr *ShardedRunner) effectiveWorkers(shards int) int {
	w := rr.Workers
	if w <= 0 {
		w = NewEngine(0).Workers() // GOMAXPROCS default, one source of truth
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runPhase applies fn to every shard, fanning out over the pool when it is
// wider than one. counts[i] receives shard i's return value, so the
// aggregate is deterministic regardless of scheduling. A non-nil durs
// additionally receives each shard's busy time in durs[i] — one writer per
// slot, so the parallel fan-out stays race-free.
func runPhase(fn func(Shard) int, shards []Shard, workers int, counts []int, durs []time.Duration) {
	if fn == nil {
		return
	}
	if durs != nil {
		inner := fn
		fn = func(s Shard) int {
			t0 := time.Now()
			c := inner(s)
			durs[s.Index] = time.Since(t0)
			return c
		}
	}
	if workers <= 1 || len(shards) == 1 {
		for _, s := range shards {
			counts[s.Index] = fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(shards) {
					return
				}
				counts[k] = fn(shards[k])
			}
		}()
	}
	wg.Wait()
}

// Run drives the protocol until Done or MaxRounds.
func (rr *ShardedRunner) Run() ShardResult {
	maxRounds := rr.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}
	var res ShardResult
	if rr.Done() {
		res.Converged = true
		return res
	}
	counts := []int(nil)
	durs := []time.Duration(nil)
	prof := rr.Prof
	// wavePool fans the Waves hook's picks over the full pool width; unlike
	// runPhase it is not clamped to the shard count, because wave tasks are
	// individual nodes, not shards.
	var wavePool ParallelFor
	if rr.Waves != nil {
		w := rr.Workers
		if w <= 0 {
			w = NewEngine(0).Workers()
		}
		if w < 1 {
			w = 1
		}
		wavePool = makeParallelFor(w)
	}
	// timeSeq wraps one sequential hook with profiler timing; with no
	// profiler it costs one branch.
	timeSeq := func(round int, name string, fn func()) {
		if prof == nil {
			fn()
			return
		}
		t0 := time.Now()
		fn()
		prof.PhaseTime(round, name, time.Since(t0))
	}
	// The shard layout is cached across rounds; recomputing it is policy-
	// driven (Partitioner.Refresh on the previous round's cross-shard
	// activation share), not a per-round cost. crossShare is derived from
	// the runner's own deterministic counters, so refresh decisions — and
	// with them the schedule — stay identical for every worker count.
	var (
		shards     []Shard
		prevN      = -1
		crossShare float64
	)
	for round := 0; round < maxRounds; round++ {
		n := rr.NodeCount()
		shardCount := rr.Shards
		if shardCount <= 0 {
			shardCount = DefaultShards(n)
		}
		if shards == nil || n != prevN ||
			(rr.Partitioner != nil && rr.Partitioner.Refresh(round, crossShare)) {
			if rr.Partitioner != nil {
				fp := rr.Footprint
				if fp == nil {
					fp = func(i int) Footprint { return Footprint{Lo: i, Hi: i, Weight: 1} }
				}
				shards = rr.Partitioner.Assign(n, shardCount, fp)
				validatePartition(n, shards, rr.Partitioner.Name())
			} else {
				shards = Partition(n, shardCount)
			}
			prevN = n
			if rr.OnPartition != nil {
				rr.OnPartition(shards)
			}
		}
		workers := rr.effectiveWorkers(len(shards))
		res.Workers, res.Shards = workers, len(shards)
		if cap(counts) < len(shards) {
			counts = make([]int, len(shards))
		}
		counts = counts[:len(shards)]
		if prof != nil {
			if cap(durs) < len(shards) {
				durs = make([]time.Duration, len(shards))
			}
			durs = durs[:len(shards)]
			prof.RoundStart(round)
		}

		if rr.BeginRound != nil {
			timeSeq(round, "begin", func() { rr.BeginRound(round) })
		}
		roundPar, roundWave, roundSeq := 0, 0, 0
		for _, ph := range []struct {
			name string
			fn   func(int, Shard) int
		}{{"prepare", rr.Prepare}, {"execute", rr.Execute}} {
			if ph.fn == nil {
				continue
			}
			fn := ph.fn
			for i := range counts {
				counts[i] = 0
			}
			var t0 time.Time
			if prof != nil {
				t0 = time.Now()
			}
			runPhase(func(s Shard) int { return fn(round, s) }, shards, workers, counts, durs)
			if prof != nil {
				prof.PhaseTime(round, ph.name, time.Since(t0))
				for _, s := range shards {
					prof.ShardTime(round, ph.name, s.Index, durs[s.Index])
				}
			}
			for _, c := range counts {
				roundPar += c
			}
		}
		if rr.Waves != nil {
			timeSeq(round, "waves", func() { roundWave = rr.Waves(round, wavePool) })
		}
		if rr.Finish != nil {
			timeSeq(round, "finish", func() { roundSeq = rr.Finish(round) })
		}
		res.Activations += roundPar + roundWave + roundSeq
		res.ParallelActivations += roundPar + roundWave
		res.WaveActivations += roundWave
		if total := roundPar + roundWave + roundSeq; total > 0 {
			crossShare = float64(roundWave+roundSeq) / float64(total)
		} else {
			crossShare = 0
		}
		if rr.EndRound != nil {
			timeSeq(round, "end", func() { rr.EndRound(round) })
		}
		if prof != nil {
			prof.RoundEnd(round)
		}
		res.Rounds = round + 1
		if rr.Done() {
			res.Converged = true
			return res
		}
	}
	return res
}
