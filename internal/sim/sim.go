// Package sim is a deterministic discrete-event simulation engine.
//
// Protocol experiments in this reproduction run in one of two execution
// models, both provided here:
//
//   - The *event* model: a priority queue of timestamped events with a
//     seeded random source. SSR, VRR and ISPRP message exchanges run in this
//     model, including per-link latencies and losses.
//   - The *round* model: the synchronous rounds that the self-stabilization
//     literature (Onus et al.) analyzes — in each round every node observes
//     the current global state and all actions apply simultaneously. The
//     abstract linearization engine runs in this model. A random sequential
//     daemon is also provided, because a self-stabilizing algorithm must
//     converge under any fair scheduler.
//
// All randomness flows through the engine's seeded source, so every
// experiment is reproducible from its seed.
package sim

import (
	"container/heap"
	"math/rand"
	"runtime"

	"repro/internal/trace"
)

// Time is simulated time in abstract ticks.
type Time int64

// Event is a callback scheduled at a point in simulated time.
type Event struct {
	At Time
	Fn func()

	seq   int64   // tie-break: FIFO among same-time events, for determinism
	index int     // heap bookkeeping
	dead  bool    // cancelled
	eng   *Engine // owning engine, for cancel tracing
}

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event fired (then it is a no-op).
func (e *Event) Cancel() {
	if !e.dead && e.eng != nil && e.eng.tracer != nil {
		e.eng.tracer.Emit(trace.Event{T: int64(e.eng.now), Type: trace.EvSimCancel})
	}
	e.dead = true
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; node goroutine experiments wrap it behind a channel (see
// package phys).
type Engine struct {
	now     Time
	queue   eventQueue
	seq     int64
	rng     *rand.Rand
	events  int64 // total events executed
	tracer  trace.Tracer
	workers int
}

// Option configures an Engine at construction time. The functional-option
// form is the supported way to wire cross-cutting concerns (tracing,
// parallelism defaults) — post-hoc mutators are deprecated shims.
type Option func(*Engine)

// WithTracer installs the engine's tracer. Firings emit EvSimFire with the
// remaining queue depth as a gauge value; cancellations emit EvSimCancel.
// Without this option the engine keeps the zero-cost nil-tracer fast path.
func WithTracer(t trace.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithWorkers sets the default worker-pool width for sharded round
// executors derived from this simulation (see ShardedRunner). k <= 0
// restores the default, GOMAXPROCS.
func WithWorkers(k int) Option {
	return func(e *Engine) { e.workers = k }
}

// NewEngine returns an engine whose randomness is derived from seed,
// configured by the given options.
func NewEngine(seed int64, opts ...Option) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsExecuted returns how many events have fired so far.
func (e *Engine) EventsExecuted() int64 { return e.events }

// Workers returns the configured worker-pool width for sharded executors
// attached to this simulation: the WithWorkers value, or GOMAXPROCS when
// unset.
func (e *Engine) Workers() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() trace.Tracer { return e.tracer }

// Pending returns the number of queued (not yet fired or cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute time t (clamped to now if in the past) and
// returns a cancellable handle.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn d ticks from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step fires the next event and reports whether one existed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.At
		e.events++
		if e.tracer != nil {
			e.tracer.Emit(trace.Event{T: int64(e.now), Type: trace.EvSimFire, Value: float64(len(e.queue))})
		}
		ev.Fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or the event budget is
// exhausted. A budget <= 0 means unlimited. It returns the number of events
// fired by this call.
func (e *Engine) Run(budget int64) int64 {
	var fired int64
	for budget <= 0 || fired < budget {
		if !e.Step() {
			break
		}
		fired++
	}
	return fired
}

// RunUntil fires events until simulated time exceeds deadline, the queue
// drains, or stop() returns true (checked between events). It returns the
// number of events fired.
func (e *Engine) RunUntil(deadline Time, stop func() bool) int64 {
	var fired int64
	for len(e.queue) > 0 {
		if stop != nil && stop() {
			break
		}
		// Peek: don't cross the deadline.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.At > deadline {
			break
		}
		e.Step()
		fired++
	}
	return fired
}
