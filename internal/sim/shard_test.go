package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// recordingTracer is a minimal sink for option-wiring tests.
type recordingTracer struct{ events []trace.Event }

func (r *recordingTracer) Emit(e trace.Event) { r.events = append(r.events, e) }

func TestPartitionCoversContiguously(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 7}, {100, 1}, {5, 5}, {3, 8}, {1000, 256},
	} {
		shards := Partition(tc.n, tc.k)
		at := 0
		for i, s := range shards {
			if s.Index != i {
				t.Fatalf("n=%d k=%d: shard %d has Index %d", tc.n, tc.k, i, s.Index)
			}
			if s.Lo != at {
				t.Fatalf("n=%d k=%d: shard %d starts at %d, want %d", tc.n, tc.k, i, s.Lo, at)
			}
			if s.Hi < s.Lo {
				t.Fatalf("n=%d k=%d: shard %d inverted", tc.n, tc.k, i)
			}
			at = s.Hi
		}
		if at != tc.n {
			t.Fatalf("n=%d k=%d: coverage ends at %d", tc.n, tc.k, at)
		}
		// Balance: sizes differ by at most one.
		minSz, maxSz := tc.n+1, -1
		for _, s := range shards {
			if s.Len() < minSz {
				minSz = s.Len()
			}
			if s.Len() > maxSz {
				maxSz = s.Len()
			}
		}
		if len(shards) > 0 && maxSz-minSz > 1 {
			t.Fatalf("n=%d k=%d: unbalanced shards (%d..%d)", tc.n, tc.k, minSz, maxSz)
		}
	}
}

func TestDefaultShardsScales(t *testing.T) {
	if DefaultShards(10) != 1 {
		t.Fatalf("small n must collapse to one shard, got %d", DefaultShards(10))
	}
	if s := DefaultShards(10_000); s < 2 {
		t.Fatalf("10k nodes should shard, got %d", s)
	}
	if s := DefaultShards(10_000_000); s != 256 {
		t.Fatalf("shard count must cap at 256, got %d", s)
	}
}

// TestShardedRunnerPhases checks phase ordering, activation accounting and
// worker-count independence on a commuting toy protocol: every node
// increments its own cell until all cells hit a target.
func TestShardedRunnerPhases(t *testing.T) {
	const n, target = 100, 3
	for _, workers := range []int{1, 4} {
		cells := make([]int, n)
		var mu sync.Mutex
		finishCalls := 0
		rr := &ShardedRunner{
			Workers:   workers,
			Shards:    8,
			NodeCount: func() int { return n },
			Done: func() bool {
				for _, c := range cells {
					if c < target {
						return false
					}
				}
				return true
			},
			Execute: func(_ int, s Shard) int {
				changed := 0
				for i := s.Lo; i < s.Hi; i++ {
					if cells[i] < target {
						cells[i]++
						changed++
					}
				}
				return changed
			},
			Finish: func(int) int {
				mu.Lock()
				finishCalls++
				mu.Unlock()
				return 0
			},
		}
		res := rr.Run()
		if !res.Converged {
			t.Fatalf("workers=%d: did not converge", workers)
		}
		if res.Rounds != target {
			t.Fatalf("workers=%d: rounds=%d want %d", workers, res.Rounds, target)
		}
		if res.Activations != n*target {
			t.Fatalf("workers=%d: activations=%d want %d", workers, res.Activations, n*target)
		}
		if res.ParallelActivations != res.Activations {
			t.Fatalf("workers=%d: all work was parallel, got %d/%d",
				workers, res.ParallelActivations, res.Activations)
		}
		if finishCalls != target {
			t.Fatalf("workers=%d: Finish ran %d times, want %d", workers, finishCalls, target)
		}
		if res.Shards != 8 {
			t.Fatalf("workers=%d: shards=%d want 8", workers, res.Shards)
		}
	}
}

func TestShardedRunnerDoneBeforeStart(t *testing.T) {
	rr := &ShardedRunner{
		NodeCount: func() int { return 10 },
		Done:      func() bool { return true },
		Execute:   func(int, Shard) int { t.Fatal("must not execute"); return 0 },
	}
	res := rr.Run()
	if !res.Converged || res.Rounds != 0 {
		t.Fatalf("pre-converged run: %+v", res)
	}
}

func TestShardedRunnerMaxRounds(t *testing.T) {
	rounds := 0
	rr := &ShardedRunner{
		MaxRounds: 5,
		NodeCount: func() int { return 4 },
		Done:      func() bool { return false },
		Finish:    func(int) int { rounds++; return 1 },
	}
	res := rr.Run()
	if res.Converged || res.Rounds != 5 || rounds != 5 {
		t.Fatalf("bound ignored: %+v (finish ran %d)", res, rounds)
	}
	if res.Activations != 5 || res.ParallelActivations != 0 {
		t.Fatalf("sequential accounting wrong: %+v", res)
	}
}

func TestEngineOptions(t *testing.T) {
	e := NewEngine(1)
	if e.Workers() < 1 {
		t.Fatal("default Workers must be >= 1")
	}
	e = NewEngine(1, WithWorkers(7))
	if e.Workers() != 7 {
		t.Fatalf("WithWorkers: got %d", e.Workers())
	}
	rec := recordingTracer{}
	e = NewEngine(1, WithTracer(&rec), WithWorkers(2))
	if e.Tracer() != &rec {
		t.Fatal("WithTracer did not install the tracer")
	}
	e = NewEngine(1, WithTracer(nil))
	if e.Tracer() != nil {
		t.Fatal("WithTracer(nil) must leave no tracer")
	}
}

// recordingProfiler captures the profiler call sequence for ordering checks.
type recordingProfiler struct {
	calls []string
}

func (r *recordingProfiler) RoundStart(round int) {
	r.calls = append(r.calls, fmt.Sprintf("start:%d", round))
}
func (r *recordingProfiler) PhaseTime(round int, phase string, d time.Duration) {
	r.calls = append(r.calls, "phase:"+phase)
}
func (r *recordingProfiler) ShardTime(round int, phase string, shard int, d time.Duration) {
	r.calls = append(r.calls, fmt.Sprintf("shard:%s:%d", phase, shard))
}
func (r *recordingProfiler) RoundEnd(round int) {
	r.calls = append(r.calls, fmt.Sprintf("end:%d", round))
}

// TestShardedRunnerProfilerSequence pins the deterministic observation
// order: RoundStart, timed begin, each parallel phase followed by its
// per-shard times in ascending shard order, finish, end, RoundEnd — and
// that attaching a profiler changes neither rounds nor activations.
func TestShardedRunnerProfilerSequence(t *testing.T) {
	const n = 8
	for _, workers := range []int{1, 4} {
		run := func(prof ShardProfiler) ShardResult {
			cells := make([]int, n)
			rr := &ShardedRunner{
				Workers:   workers,
				Shards:    2,
				NodeCount: func() int { return n },
				Prof:      prof,
				Done: func() bool {
					for _, c := range cells {
						if c < 1 {
							return false
						}
					}
					return true
				},
				BeginRound: func(int) {},
				Prepare:    func(int, Shard) int { return 0 },
				Execute: func(_ int, s Shard) int {
					changed := 0
					for i := s.Lo; i < s.Hi; i++ {
						if cells[i] < 1 {
							cells[i]++
							changed++
						}
					}
					return changed
				},
				Finish:   func(int) int { return 0 },
				EndRound: func(int) {},
			}
			return rr.Run()
		}
		plain := run(nil)
		rec := &recordingProfiler{}
		profiled := run(rec)
		if plain != profiled {
			t.Fatalf("workers=%d: profiler changed the result: %+v vs %+v", workers, plain, profiled)
		}
		want := []string{
			"start:0", "phase:begin",
			"phase:prepare", "shard:prepare:0", "shard:prepare:1",
			"phase:execute", "shard:execute:0", "shard:execute:1",
			"phase:finish", "phase:end", "end:0",
		}
		if len(rec.calls) != len(want) {
			t.Fatalf("workers=%d: %d profiler calls, want %d: %v", workers, len(rec.calls), len(want), rec.calls)
		}
		for i := range want {
			if rec.calls[i] != want[i] {
				t.Fatalf("workers=%d: call %d = %q, want %q (full: %v)", workers, i, rec.calls[i], want[i], rec.calls)
			}
		}
	}
}
