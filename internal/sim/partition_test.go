package sim

import (
	"reflect"
	"testing"
)

// selfFootprint is the executor's default footprint: each node touches only
// its own index with unit weight.
func selfFootprint(i int) Footprint { return Footprint{Lo: i, Hi: i, Weight: 1} }

// spanFootprint gives node i a footprint reaching r indices to each side and
// weight proportional to its index — enough structure to exercise the
// weight-balancing and crossing-minimizing policies.
func spanFootprint(r int) FootprintFn {
	return func(i int) Footprint {
		return Footprint{Lo: i - r, Hi: i + r, Weight: float64(1 + i%7)}
	}
}

// TestClampShards pins the single clamp authority on the edge cases that
// used to be settled inconsistently across call sites.
func TestClampShards(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{0, 0, 1}, {0, 4, 1}, {0, -3, 1},
		{1, 0, 1}, {1, 1, 1}, {1, 8, 1},
		{2, 3, 2}, {2, 2, 2},
		{511, 256, 256}, {511, 600, 511},
		{512, 1, 1}, {512, 512, 512}, {512, 513, 512},
		{513, 513, 513}, {513, 1000, 513},
	}
	for _, c := range cases {
		if got := ClampShards(c.n, c.k); got != c.want {
			t.Errorf("ClampShards(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	for _, n := range []int{0, 1, 2, 511, 512, 513} {
		if got := DefaultShards(n); got != ClampShards(n, got) {
			t.Errorf("DefaultShards(%d) = %d violates its own clamp", n, got)
		}
	}
}

func TestPartitionerRegistry(t *testing.T) {
	want := []string{"contiguous", "degree-balanced", "locality"}
	if got := PartitionPolicies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PartitionPolicies() = %v, want %v", got, want)
	}
	if _, err := NewPartitioner("no-such-policy"); err == nil {
		t.Fatal("unknown policy must error")
	}
	p, err := NewPartitioner("")
	if err != nil || p.Name() != "contiguous" {
		t.Fatalf("empty name must resolve to contiguous, got %v, %v", p, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterPartitioner("contiguous", func() Partitioner { return contiguousPartitioner{} })
}

// TestPoliciesProduceValidLayouts: every registered policy must return
// contiguous ordered shards exactly covering [0, n) for awkward shapes,
// including the clamp edge cases.
func TestPoliciesProduceValidLayouts(t *testing.T) {
	for _, name := range PartitionPolicies() {
		p, err := NewPartitioner(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 2, 7, 511, 512, 513, 4000} {
			for _, k := range []int{1, 2, 3, 8, 64, 600} {
				shards := p.Assign(n, ClampShards(n, k), spanFootprint(2))
				validatePartition(n, shards, name)
				if len(shards) > ClampShards(n, k) {
					t.Errorf("%s n=%d k=%d: %d shards exceeds clamp", name, n, k, len(shards))
				}
			}
		}
	}
}

// TestContiguousMatchesPartition: the contiguous policy is the determinism
// baseline — byte-for-byte the historical Partition layout.
func TestContiguousMatchesPartition(t *testing.T) {
	p, _ := NewPartitioner("contiguous")
	for _, n := range []int{0, 1, 10, 513, 4000} {
		for _, k := range []int{1, 4, 64} {
			got := p.Assign(n, k, selfFootprint)
			if want := Partition(n, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("contiguous(%d, %d) = %v, want %v", n, k, got, want)
			}
		}
	}
	if p.Refresh(5, 0.99) {
		t.Fatal("contiguous must never refresh")
	}
	if p.Boundary() != BoundarySequential {
		t.Fatal("contiguous must use the sequential boundary")
	}
}

// TestDegreeBalancedEqualizesWeight: with weights heavily skewed to one end,
// the degree-balanced cuts shift so per-shard weight is far more even than
// per-shard node count.
func TestDegreeBalancedEqualizesWeight(t *testing.T) {
	const n, k = 1000, 4
	// Last 100 nodes carry 100x the weight of the rest.
	fp := func(i int) Footprint {
		w := 1.0
		if i >= n-100 {
			w = 100
		}
		return Footprint{Lo: i, Hi: i, Weight: w}
	}
	p, _ := NewPartitioner("degree-balanced")
	shards := p.Assign(n, k, fp)
	validatePartition(n, shards, "degree-balanced")
	weight := func(s Shard) (w float64) {
		for i := s.Lo; i < s.Hi; i++ {
			w += fp(i).Weight
		}
		return w
	}
	total := weight(Shard{Lo: 0, Hi: n})
	for _, s := range shards {
		if share := weight(s) / total; share > 0.45 {
			t.Fatalf("shard %d carries %.0f%% of the weight: %+v", s.Index, 100*share, shards)
		}
	}
	if !p.Refresh(0, 0) || !p.Refresh(8, 0) || p.Refresh(3, 0.9) {
		t.Fatal("degree-balanced must refresh on its round cadence only")
	}
}

// TestLocalityAvoidsCrossings: footprints are local except around one hot
// span; the locality policy must place its cuts outside that span while the
// weight-balanced ideal cut would land inside it.
func TestLocalityAvoidsCrossings(t *testing.T) {
	const n, k = 1024, 2
	// Every node in [500, 524) spans that whole block, so any cut inside it
	// crosses ~24 footprints; cuts elsewhere cross at most 1.
	fp := func(i int) Footprint {
		if i >= 500 && i < 524 {
			return Footprint{Lo: 500, Hi: 523, Weight: 1}
		}
		return Footprint{Lo: i, Hi: i, Weight: 1}
	}
	p, _ := NewPartitioner("locality")
	shards := p.Assign(n, k, fp)
	validatePartition(n, shards, "locality")
	cut := shards[0].Hi
	if cut > 500 && cut < 524 {
		t.Fatalf("locality cut %d lands inside the hot span [500,524)", cut)
	}
	if p.Boundary() != BoundaryWaves {
		t.Fatal("locality must use the wave boundary discipline")
	}
	if p.Refresh(3, 0.1) || !p.Refresh(3, 0.3) {
		t.Fatal("locality must refresh exactly when crossShare > 0.25")
	}
}

// TestPoliciesDeterministic: Assign is a pure function — same inputs, same
// layout, across fresh policy instances.
func TestPoliciesDeterministic(t *testing.T) {
	for _, name := range PartitionPolicies() {
		a, _ := NewPartitioner(name)
		b, _ := NewPartitioner(name)
		fp := spanFootprint(3)
		if !reflect.DeepEqual(a.Assign(2000, 8, fp), b.Assign(2000, 8, fp)) {
			t.Fatalf("%s: Assign is not deterministic", name)
		}
	}
}
