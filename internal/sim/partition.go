package sim

// This file is the partition-policy seam of the sharded executor. PR 6
// measured why the executor was stuck at ~1x: with hard-coded contiguous
// interval shards, LSN's shortcut edges span intervals and push almost
// every activation onto the sequential boundary path (153,741 boundary vs
// 5,159 interior at n=10k). Shard assignment is therefore a first-class
// policy now: a Partitioner turns per-node footprints into a shard layout,
// and declares how the executor must treat the nodes whose footprints
// still cross shards.
//
// Determinism contract for every policy: Assign must be a pure function
// of (n, shards, footprint) — no wall-clock, no randomness, no feedback
// from measured times — and must return contiguous ordered shards covering
// [0, n) exactly. Under that contract the executor's result remains a pure
// function of the schedule and identical for every worker count.

import (
	"fmt"
	"sort"
)

// ExecutorConfig bundles the sharded round executor's knobs — the one
// struct new executor options are added to, so threading a knob through
// linearize.Config, exp.SetExecutor and the CLIs stays a one-field change.
type ExecutorConfig struct {
	// Workers is the pool width: 0 keeps the single-threaded legacy
	// executor (where the consumer supports one), k >= 1 runs the sharded
	// executor with k goroutines. Never part of the schedule.
	Workers int
	// Shards is the target partition size (<= 0: DefaultShards). Part of
	// the schedule, like Partition.
	Shards int
	// Partition names the shard-assignment policy ("" = contiguous). See
	// RegisterPartitioner / PartitionPolicies.
	Partition string
}

// Footprint describes one node to the partitioner: the dense-index span
// its operation can touch (its neighborhood plus itself) and an estimated
// activation cost.
type Footprint struct {
	Lo, Hi int     // inclusive dense-index span of N(v) ∪ {v}
	Weight float64 // estimated per-activation work (e.g. degree+1)
}

// FootprintFn supplies the footprint of the node at dense index i. It is
// only consulted while a partition is (re)computed, never on the per-round
// hot path.
type FootprintFn func(i int) Footprint

// BoundaryDiscipline selects how the executor runs the nodes whose
// footprints cross shard boundaries.
type BoundaryDiscipline int

const (
	// BoundarySequential runs cross-shard nodes in the sequential Finish
	// phase, in global identifier order — the conservative baseline.
	BoundarySequential BoundaryDiscipline = iota
	// BoundaryWaves runs cross-shard nodes in deterministic conflict-free
	// waves on the worker pool: each wave greedily picks, in identifier
	// order, nodes whose touch sets (N(v) ∪ {v}) are pairwise disjoint,
	// executes the picks in parallel, and repeats until none remain. The
	// pick schedule is independent of the worker count, so determinism is
	// preserved while the boundary work moves off the sequential path.
	BoundaryWaves
)

// Partitioner is a shard-assignment policy. Implementations must be
// stateless between Assign calls or derive any state deterministically
// from their inputs.
type Partitioner interface {
	// Name returns the registry name of the policy.
	Name() string
	// Assign splits n dense node indices into at most shards contiguous,
	// ordered, exactly-covering shards. footprint may be consulted per
	// node; it is never nil.
	Assign(n, shards int, footprint FootprintFn) []Shard
	// Boundary declares the executor's treatment of cross-shard nodes.
	Boundary() BoundaryDiscipline
	// Refresh reports whether the partition should be recomputed before
	// the given round. crossShare is the previous round's fraction of
	// state-changing activations that fell outside the shard-interior
	// fast path (waves plus sequential fallback); it is deterministic, so
	// refresh decisions are too. Round 0 always assigns regardless.
	Refresh(round int, crossShare float64) bool
}

// ClampShards is the single authority for bounding a shard count against a
// node count: at least one shard, and never more shards than nodes (for
// n = 0 a single empty shard). sim.Partition and DefaultShards both
// delegate here, so callers can no longer disagree about tiny n.
func ClampShards(n, k int) int {
	if k < 1 || n == 0 {
		return 1
	}
	if k > n {
		k = n
	}
	return k
}

// DefaultShards returns the shard count used when ExecutorConfig.Shards is
// unset: enough shards to keep every plausible worker pool busy, few enough
// that per-shard bookkeeping stays negligible, and — deliberately — a
// function of the node count only, never of the machine, so a seed's result
// is reproducible everywhere.
func DefaultShards(n int) int {
	s := n / 512
	if s > 256 {
		s = 256
	}
	return ClampShards(n, s)
}

// Partition splits n dense node indices into shardCount contiguous,
// near-equal shards (deterministically; shard i covers [i*n/k, (i+1)*n/k)).
// This is the contiguous policy's layout and the determinism baseline.
func Partition(n, shardCount int) []Shard {
	shardCount = ClampShards(n, shardCount)
	out := make([]Shard, 0, shardCount)
	for i := 0; i < shardCount; i++ {
		out = append(out, Shard{Index: i, Lo: i * n / shardCount, Hi: (i + 1) * n / shardCount})
	}
	return out
}

// partitioners is the policy registry, keyed by name.
var partitioners = map[string]func() Partitioner{}

// RegisterPartitioner adds a policy factory under name. Registering a
// duplicate name panics — policies are wired at init time.
func RegisterPartitioner(name string, factory func() Partitioner) {
	if _, dup := partitioners[name]; dup {
		panic("sim: duplicate partitioner " + name)
	}
	partitioners[name] = factory
}

// NewPartitioner returns a fresh instance of the named policy. The empty
// name resolves to the contiguous baseline.
func NewPartitioner(name string) (Partitioner, error) {
	if name == "" {
		name = "contiguous"
	}
	f, ok := partitioners[name]
	if !ok {
		return nil, fmt.Errorf("unknown partition policy %q (have %v)", name, PartitionPolicies())
	}
	return f(), nil
}

// PartitionPolicies lists the registered policy names, sorted.
func PartitionPolicies() []string {
	out := make([]string, 0, len(partitioners))
	for name := range partitioners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterPartitioner("contiguous", func() Partitioner { return contiguousPartitioner{} })
	RegisterPartitioner("degree-balanced", func() Partitioner { return degreeBalancedPartitioner{} })
	RegisterPartitioner("locality", func() Partitioner { return localityPartitioner{} })
}

// contiguousPartitioner reproduces the pre-policy behavior exactly:
// near-equal index intervals, never recomputed, sequential boundary
// fallback. It is the determinism baseline the equivalence tests pin.
type contiguousPartitioner struct{}

func (contiguousPartitioner) Name() string { return "contiguous" }
func (contiguousPartitioner) Assign(n, shards int, _ FootprintFn) []Shard {
	return Partition(n, shards)
}
func (contiguousPartitioner) Boundary() BoundaryDiscipline { return BoundarySequential }
func (contiguousPartitioner) Refresh(int, float64) bool    { return false }

// degreeBalancedPartitioner keeps the identity order but places the
// interval boundaries so estimated per-shard work (the footprint weights —
// the deterministic stand-in for the per-shard busy times the profiler
// records) is equalized instead of node counts. Weights drift as the graph
// grows, so the layout refreshes on a fixed round cadence; measured times
// are never fed back — that would break the determinism contract.
type degreeBalancedPartitioner struct{}

func (degreeBalancedPartitioner) Name() string { return "degree-balanced" }

func (degreeBalancedPartitioner) Assign(n, shards int, footprint FootprintFn) []Shard {
	k := ClampShards(n, shards)
	w := make([]float64, n+1) // prefix weights: w[i] = sum of weights < i
	for i := 0; i < n; i++ {
		wt := footprint(i).Weight
		if wt < 1 {
			wt = 1
		}
		w[i+1] = w[i] + wt
	}
	return cutByTargets(n, k, func(s int) int {
		// Smallest cut whose cumulative weight reaches shard s's target.
		target := w[n] * float64(s) / float64(k)
		return sort.Search(n, func(c int) bool { return w[c] >= target })
	})
}

func (degreeBalancedPartitioner) Boundary() BoundaryDiscipline { return BoundarySequential }
func (degreeBalancedPartitioner) Refresh(round int, _ float64) bool {
	return round%8 == 0
}

// localityPartitioner grows weight-balanced intervals whose cut points
// cross as few node footprints as possible, and opts into the wave
// discipline for the nodes that still cross — the combination that breaks
// the boundary-work ceiling for LSN, whose shortcut edges make any
// balanced cut cross many footprints. The layout is recomputed whenever
// the cross-shard activation share of the previous round drifts above a
// threshold, tracking the graph as linearization reshapes it.
type localityPartitioner struct{}

func (localityPartitioner) Name() string { return "locality" }

func (localityPartitioner) Assign(n, shards int, footprint FootprintFn) []Shard {
	k := ClampShards(n, shards)
	if k == 1 {
		return Partition(n, 1)
	}
	// crossings[c] counts footprints spanning the cut between index c-1 and
	// c; built as a difference array (+1 over (lo, hi]) and prefix-summed.
	crossings := make([]int32, n+2)
	w := make([]float64, n+1)
	for i := 0; i < n; i++ {
		fp := footprint(i)
		wt := fp.Weight
		if wt < 1 {
			wt = 1
		}
		w[i+1] = w[i] + wt
		lo, hi := fp.Lo, fp.Hi
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		if lo < hi {
			crossings[lo+1]++
			crossings[hi+1]--
		}
	}
	for c := 1; c <= n; c++ {
		crossings[c] += crossings[c-1]
	}
	// Greedy interval growing: each shard's cut starts at the weight-
	// balanced position, then slides within a window to the cheapest cut.
	window := n / (8 * k)
	if window < 16 {
		window = 16
	}
	return cutByTargets(n, k, func(s int) int {
		target := w[n] * float64(s) / float64(k)
		ideal := sort.Search(n, func(c int) bool { return w[c] >= target })
		lo, hi := ideal-window, ideal+window
		if lo < 1 {
			lo = 1
		}
		if hi > n-1 {
			hi = n - 1
		}
		best := ideal
		if best < lo {
			best = lo
		}
		if best > hi {
			best = hi
		}
		for c := lo; c <= hi; c++ {
			if crossings[c] < crossings[best] {
				best = c
			} else if crossings[c] == crossings[best] && abs(c-ideal) < abs(best-ideal) {
				best = c
			}
		}
		return best
	})
}

func (localityPartitioner) Boundary() BoundaryDiscipline { return BoundaryWaves }
func (localityPartitioner) Refresh(_ int, crossShare float64) bool {
	return crossShare > 0.25
}

// cutByTargets builds k ordered shards over [0, n) from a per-shard cut
// proposal, enforcing monotonicity and leaving room so every shard keeps at
// least one node (when n allows).
func cutByTargets(n, k int, cutFor func(s int) int) []Shard {
	out := make([]Shard, 0, k)
	lo := 0
	for s := 0; s < k; s++ {
		hi := n
		if s < k-1 {
			hi = cutFor(s + 1)
			if min := lo + 1; hi < min {
				hi = min
			}
			if max := n - (k - 1 - s); hi > max {
				hi = max
			}
		}
		out = append(out, Shard{Index: s, Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// validatePartition panics when a policy returns a malformed layout —
// policy bugs must fail loudly, not silently corrupt the schedule.
func validatePartition(n int, shards []Shard, policy string) {
	if len(shards) == 0 {
		panic(fmt.Sprintf("sim: policy %q returned no shards for n=%d", policy, n))
	}
	at := 0
	for i, s := range shards {
		if s.Index != i || s.Lo != at || s.Hi < s.Lo {
			panic(fmt.Sprintf("sim: policy %q returned malformed shard %d (%+v) for n=%d", policy, i, s, n))
		}
		at = s.Hi
	}
	if at != n {
		panic(fmt.Sprintf("sim: policy %q covers [0,%d) of n=%d", policy, at, n))
	}
}
