package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/sroute"
)

func route(t *testing.T, nodes ...ids.ID) sroute.Route {
	t.Helper()
	r, err := sroute.New(nodes...)
	if err != nil {
		t.Fatalf("route %v: %v", nodes, err)
	}
	return r
}

func TestInsertBasics(t *testing.T) {
	c := New(100, Unbounded)
	if c.Owner() != 100 || c.Mode() != Unbounded {
		t.Error("Owner/Mode broken")
	}
	if c.Insert(route(t, 50, 60)) {
		t.Error("route not starting at owner must be rejected")
	}
	if !c.Insert(route(t, 100, 50)) {
		t.Error("valid route rejected")
	}
	if c.Insert(route(t, 100, 7, 50)) {
		t.Error("longer route to cached dst must not replace")
	}
	if !c.Insert(route(t, 100, 7, 150, 200)) {
		t.Error("new dst rejected")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	// Shorter route replaces.
	if !c.Insert(route(t, 100, 200)) {
		t.Error("shorter route must replace")
	}
	if got := c.Route(200); got.Hops() != 1 {
		t.Errorf("route to 200 has %d hops, want 1", got.Hops())
	}
	if c.Route(999) != nil {
		t.Error("absent dst should give nil")
	}
	if c.TotalRouteNodes() != 2+2 {
		t.Errorf("TotalRouteNodes = %d, want 4", c.TotalRouteNodes())
	}
}

func TestInsertRejectsDegenerate(t *testing.T) {
	c := New(100, Bounded)
	if c.Insert(sroute.Route{100}) {
		t.Error("1-node route must be rejected")
	}
	if c.Insert(sroute.Route{100, 5, 100}) {
		t.Error("route back to owner must be rejected")
	}
}

func TestBoundedOneSlotPerInterval(t *testing.T) {
	c := New(1000, Bounded)
	// 1040 and 1050 are both in interval [32,64) to the right.
	if !c.Insert(route(t, 1000, 1050)) {
		t.Error("first occupant rejected")
	}
	// 1040 is closer to owner: must evict 1050.
	if !c.Insert(route(t, 1000, 1040)) {
		t.Error("closer dst must win the slot")
	}
	if c.Route(1050) != nil {
		t.Error("evicted dst still cached")
	}
	// 1045: same interval, farther than 1040: rejected.
	if c.Insert(route(t, 1000, 1045)) {
		t.Error("farther dst must lose the contested slot")
	}
	// Same distance, fewer hops wins: dst 960 at distance 40 left.
	if !c.Insert(route(t, 1000, 7, 960)) {
		t.Error("left interval occupant rejected")
	}
	if c.Insert(route(t, 1000, 8, 9, 960)) {
		t.Error("same dst, more hops must not replace")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (one per side)", c.Len())
	}
	left, right := c.IntervalOccupancy()
	if left != 1 || right != 1 {
		t.Errorf("occupancy = %d,%d, want 1,1", left, right)
	}
}

func TestBoundedStateIsLogarithmic(t *testing.T) {
	owner := ids.ID(1 << 32)
	c := New(owner, Bounded)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		dst := ids.ID(r.Uint64())
		if dst == owner {
			continue
		}
		rt, err := sroute.New(owner, dst)
		if err != nil {
			continue
		}
		c.Insert(rt)
	}
	if c.Len() > 2*ids.NumIntervals {
		t.Errorf("bounded cache grew to %d entries (> %d)", c.Len(), 2*ids.NumIntervals)
	}
	if c.Len() < 10 {
		t.Errorf("bounded cache suspiciously small: %d", c.Len())
	}
}

func TestRemove(t *testing.T) {
	c := New(100, Bounded)
	c.Insert(route(t, 100, 140))
	if !c.Remove(140) {
		t.Error("Remove should report present")
	}
	if c.Remove(140) {
		t.Error("Remove twice should report absent")
	}
	// Slot must be freed: a farther dst in the same interval now fits.
	if !c.Insert(route(t, 100, 150)) {
		t.Error("slot not freed after Remove")
	}
}

func TestNeighborsDirAndNearest(t *testing.T) {
	c := New(100, Unbounded)
	for _, dst := range []ids.ID{40, 90, 110, 200} {
		c.Insert(route(t, 100, dst))
	}
	left := c.NeighborsDir(ids.Left)
	if len(left) != 2 || left[0] != 40 || left[1] != 90 {
		t.Errorf("left = %v", left)
	}
	right := c.NeighborsDir(ids.Right)
	if len(right) != 2 || right[0] != 110 || right[1] != 200 {
		t.Errorf("right = %v", right)
	}
	if n, ok := c.Nearest(ids.Left); !ok || n != 90 {
		t.Errorf("Nearest left = %v,%v", n, ok)
	}
	if n, ok := c.Nearest(ids.Right); !ok || n != 110 {
		t.Errorf("Nearest right = %v,%v", n, ok)
	}
	empty := New(5, Bounded)
	if _, ok := empty.Nearest(ids.Left); ok {
		t.Error("empty cache should have no nearest")
	}
	dsts := c.Destinations()
	if len(dsts) != 4 || dsts[0] != 40 || dsts[3] != 200 {
		t.Errorf("Destinations = %v", dsts)
	}
}

func TestBestTowardPicksVirtuallyClosest(t *testing.T) {
	c := New(100, Unbounded)
	c.Insert(route(t, 100, 120))
	c.Insert(route(t, 100, 5, 180))
	c.Insert(route(t, 100, 300))
	// Target 190: ring distances: 120→70, 180→10, 300→huge wrap. 180 wins.
	cand, ok := c.BestToward(190)
	if !ok || cand.Node != 180 {
		t.Fatalf("BestToward(190) = %+v, %v", cand, ok)
	}
	if !cand.Via.Equal(sroute.Route{100, 5, 180}) {
		t.Errorf("Via = %v", cand.Via)
	}
}

func TestBestTowardUsesIntermediateNodes(t *testing.T) {
	c := New(100, Unbounded)
	// 170 only appears as an intermediate node.
	c.Insert(route(t, 100, 170, 400))
	cand, ok := c.BestToward(175)
	if !ok || cand.Node != 170 {
		t.Fatalf("BestToward(175) = %+v, %v", cand, ok)
	}
	if !cand.Via.Equal(sroute.Route{100, 170}) {
		t.Errorf("Via should be the prefix, got %v", cand.Via)
	}
}

func TestBestTowardTieBreaksByHops(t *testing.T) {
	c := New(100, Unbounded)
	c.Insert(route(t, 100, 5, 6, 180)) // 3 hops to 180
	c.Insert(route(t, 100, 180))       // 1 hop to 180
	cand, ok := c.BestToward(180)
	if !ok || cand.Node != 180 || cand.Via.Hops() != 1 {
		t.Fatalf("BestToward tie-break = %+v (hops=%d)", cand, cand.Via.Hops())
	}
}

func TestBestTowardRequiresProgress(t *testing.T) {
	c := New(100, Unbounded)
	// Target 101; candidate 102 is *past* the target clockwise (huge ring
	// distance), candidate 99 is behind owner. Neither improves on owner's
	// own distance of 1.
	c.Insert(route(t, 100, 102))
	c.Insert(route(t, 100, 99))
	if cand, ok := c.BestToward(101); ok {
		t.Errorf("no progress possible, got %+v", cand)
	}
	// Exact-match target is progress.
	c.Insert(route(t, 100, 101))
	if cand, ok := c.BestToward(101); !ok || cand.Node != 101 {
		t.Errorf("exact target: %+v, %v", cand, ok)
	}
}

func TestBestTowardEmpty(t *testing.T) {
	c := New(100, Bounded)
	if _, ok := c.BestToward(5); ok {
		t.Error("empty cache should find nothing")
	}
}

func TestClone(t *testing.T) {
	c := New(100, Bounded)
	c.Insert(route(t, 100, 140))
	cl := c.Clone()
	cl.Remove(140)
	if c.Route(140) == nil {
		t.Error("Clone must be independent")
	}
	if cl.Mode() != Bounded || cl.Owner() != 100 {
		t.Error("Clone lost metadata")
	}
}

func TestModeString(t *testing.T) {
	if Bounded.String() != "bounded" || Unbounded.String() != "unbounded" {
		t.Error("Mode.String broken")
	}
}

func TestBoundedNeverExceedsBoundProperty(t *testing.T) {
	// Property: a bounded cache never holds more than one destination per
	// (direction, interval) pair, for arbitrary insert sequences.
	f := func(dsts []uint16) bool {
		owner := ids.ID(1 << 15)
		c := New(owner, Bounded)
		for _, d := range dsts {
			dst := ids.ID(d)
			if dst == owner {
				continue
			}
			rt, err := sroute.New(owner, dst)
			if err != nil {
				continue
			}
			c.Insert(rt)
		}
		seen := map[[2]int]int{}
		for _, dst := range c.Destinations() {
			key := [2]int{dirIndex(ids.DirOf(owner, dst)), ids.IntervalIndex(ids.LineDist(owner, dst))}
			seen[key]++
			if seen[key] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBestTowardAlwaysImprovesProperty(t *testing.T) {
	// Property: any candidate returned is strictly ring-closer to the
	// target than the owner, and Via starts at owner and ends at the node.
	r := rand.New(rand.NewSource(9))
	owner := ids.ID(1 << 40)
	c := New(owner, Unbounded)
	for i := 0; i < 50; i++ {
		dst := ids.ID(r.Uint64())
		if dst == owner {
			continue
		}
		mid := ids.ID(r.Uint64())
		var rt sroute.Route
		var err error
		if mid != owner && mid != dst && i%2 == 0 {
			rt, err = sroute.New(owner, mid, dst)
		} else {
			rt, err = sroute.New(owner, dst)
		}
		if err != nil {
			continue
		}
		c.Insert(rt)
	}
	f := func(target ids.ID) bool {
		cand, ok := c.BestToward(target)
		if !ok {
			return true
		}
		if ids.RingDist(cand.Node, target) >= ids.RingDist(owner, target) {
			return false
		}
		return cand.Via.Src() == owner && cand.Via.Dst() == cand.Node
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
