// Package cache implements SSR's route cache and the bounded-memory
// shortcut-neighbor structure of "linearization with shortcut neighbors"
// (LSN, Onus et al., quoted in §2 of the paper):
//
//	"Every node divides its local view of the identifier space into
//	 exponentially growing intervals. For every interval at most one edge
//	 is remembered."
//
// The cache stores source routes keyed by their destination. In Bounded
// mode it keeps at most one route per exponential distance interval per
// direction (left/right on the identifier line) — O(log |space|) entries.
// In Unbounded mode it keeps every route, which is exactly "linearization
// with memory". §4 notes SSR gets the shortcut set for free: "a node
// typically caches at least one node for each of the exponentially growing
// intervals".
//
// Lookups implement SSR's greedy rule (§1): among all cached nodes —
// including the intermediate nodes of every cached route — pick the one
// virtually closest to the packet's final destination, tie-broken by
// physical proximity (fewest source-route hops).
package cache

import (
	"repro/internal/ids"
	"repro/internal/sroute"
)

// Mode selects the retention policy.
type Mode int

const (
	// Bounded keeps at most one route per exponential interval per
	// direction (the LSN policy).
	Bounded Mode = iota
	// Unbounded keeps every inserted route (linearization with memory).
	Unbounded
)

// String names the mode.
func (m Mode) String() string {
	if m == Bounded {
		return "bounded"
	}
	return "unbounded"
}

// Cache is one node's route cache. Not safe for concurrent use; in the
// simulator each node's state is touched only from the event loop.
type Cache struct {
	owner  ids.ID
	mode   Mode
	routes map[ids.ID]sroute.Route // by destination
	// slot[dir][k] is the destination currently occupying interval k in
	// direction dir (0=left, 1=right); 0 with absent map entry means empty.
	slot [2][ids.NumIntervals]ids.ID
	has  [2][ids.NumIntervals]bool
}

// New returns an empty cache for the given node.
func New(owner ids.ID, mode Mode) *Cache {
	return &Cache{owner: owner, mode: mode, routes: make(map[ids.ID]sroute.Route)}
}

// Owner returns the node this cache belongs to.
func (c *Cache) Owner() ids.ID { return c.owner }

// Mode returns the retention policy.
func (c *Cache) Mode() Mode { return c.mode }

// Len returns the number of cached routes.
func (c *Cache) Len() int { return len(c.routes) }

// TotalRouteNodes returns the summed length of all cached routes — the
// router-state metric for experiment E8.
func (c *Cache) TotalRouteNodes() int {
	total := 0
	for _, r := range c.routes {
		total += len(r)
	}
	return total
}

func dirIndex(d ids.Dir) int {
	if d == ids.Left {
		return 0
	}
	return 1
}

// Insert offers a route to the cache. The route must start at the owner.
// In Bounded mode the route is kept only if its interval slot is empty or
// it beats the incumbent (closer destination identifier wins — tightening
// toward the eventual ring neighbors — then fewer hops). Insert reports
// whether the cache retained the route. A shorter route to an
// already-cached destination always replaces the longer one.
func (c *Cache) Insert(r sroute.Route) bool {
	if len(r) < 2 || r.Src() != c.owner || r.Dst() == c.owner {
		return false
	}
	dst := r.Dst()
	if old, ok := c.routes[dst]; ok {
		if r.Hops() < old.Hops() {
			c.routes[dst] = r.Clone()
			return true
		}
		return false
	}
	if c.mode == Unbounded {
		c.routes[dst] = r.Clone()
		return true
	}
	d := dirIndex(ids.DirOf(c.owner, dst))
	k := ids.IntervalIndex(ids.LineDist(c.owner, dst))
	if k < 0 {
		return false
	}
	if c.has[d][k] {
		inc := c.slot[d][k]
		incRoute := c.routes[inc]
		if !c.beats(dst, r, inc, incRoute) {
			return false
		}
		delete(c.routes, inc)
	}
	c.slot[d][k] = dst
	c.has[d][k] = true
	c.routes[dst] = r.Clone()
	return true
}

// beats decides whether the challenger (dst,r) replaces the incumbent in a
// contested interval slot: closer identifier first, then fewer hops.
func (c *Cache) beats(dst ids.ID, r sroute.Route, inc ids.ID, incRoute sroute.Route) bool {
	dNew, dOld := ids.LineDist(c.owner, dst), ids.LineDist(c.owner, inc)
	if dNew != dOld {
		return dNew < dOld
	}
	return r.Hops() < incRoute.Hops()
}

// Remove deletes the route to dst and reports whether it was present.
func (c *Cache) Remove(dst ids.ID) bool {
	if _, ok := c.routes[dst]; !ok {
		return false
	}
	delete(c.routes, dst)
	if c.mode == Bounded {
		d := dirIndex(ids.DirOf(c.owner, dst))
		k := ids.IntervalIndex(ids.LineDist(c.owner, dst))
		if k >= 0 && c.has[d][k] && c.slot[d][k] == dst {
			c.has[d][k] = false
		}
	}
	return true
}

// Route returns the cached route to dst, or nil.
func (c *Cache) Route(dst ids.ID) sroute.Route { return c.routes[dst] }

// Destinations returns all cached destinations in ascending order.
func (c *Cache) Destinations() []ids.ID {
	out := make([]ids.ID, 0, len(c.routes))
	for dst := range c.routes {
		out = append(out, dst)
	}
	ids.SortAsc(out)
	return out
}

// NeighborsDir returns cached destinations on the given side of the owner,
// ascending. These are the left/right virtual neighbor sets N_L, N_R of §4.
func (c *Cache) NeighborsDir(d ids.Dir) []ids.ID {
	var out []ids.ID
	for dst := range c.routes {
		if ids.DirOf(c.owner, dst) == d {
			out = append(out, dst)
		}
	}
	ids.SortAsc(out)
	return out
}

// Nearest returns the cached destination closest to the owner on the given
// side, or ok=false if that side is empty. After linearization converges,
// Nearest(Left) and Nearest(Right) are the ring predecessor and successor.
func (c *Cache) Nearest(d ids.Dir) (ids.ID, bool) {
	var best ids.ID
	found := false
	for dst := range c.routes {
		if ids.DirOf(c.owner, dst) != d {
			continue
		}
		if !found || ids.LineDist(c.owner, dst) < ids.LineDist(c.owner, best) {
			best = dst
			found = true
		}
	}
	return best, found
}

// Candidate is a potential intermediate destination produced by a lookup:
// a node somewhere on a cached route, with the route prefix that reaches it.
type Candidate struct {
	Node ids.ID
	Via  sroute.Route // prefix of a cached route, from owner to Node
}

// BestToward implements SSR's greedy next-intermediate-destination rule for
// a packet addressed to target: scan every node on every cached route
// (intermediate nodes included) and return the candidate that minimizes the
// clockwise ring distance to target, tie-broken by fewest hops from the
// owner ("physically closest to itself and virtually closest to the final
// destination", §1). The owner itself is never returned; ok=false means the
// cache is empty. If target itself is on some cached route, the exact route
// is returned.
func (c *Cache) BestToward(target ids.ID) (Candidate, bool) {
	var best Candidate
	bestDist := ids.RingDist(c.owner, target) // must improve on owner
	bestHops := 0
	found := false
	for _, r := range c.routes {
		for i := 1; i < len(r); i++ {
			node := r[i]
			if node == c.owner {
				continue
			}
			dist := ids.RingDist(node, target)
			if !found && dist >= bestDist {
				// Not an improvement over just holding the packet; SSR's
				// ring consistency guarantees the successor always improves,
				// so skip non-improving candidates.
				continue
			}
			if found && (dist > bestDist || (dist == bestDist && i >= bestHops)) {
				continue
			}
			best = Candidate{Node: node, Via: r[:i+1].Clone()}
			bestDist = dist
			bestHops = i
			found = true
		}
	}
	return best, found
}

// Clone returns a deep copy of the cache (routes included).
func (c *Cache) Clone() *Cache {
	n := New(c.owner, c.mode)
	n.slot = c.slot
	n.has = c.has
	for dst, r := range c.routes {
		n.routes[dst] = r.Clone()
	}
	return n
}

// IntervalOccupancy returns, per direction, how many interval slots are
// filled (Bounded mode) or how many distinct intervals have at least one
// destination (Unbounded mode). Used by the E8 state-size experiment and by
// the §4 claim that SSR caches populate the LSN shortcut set.
func (c *Cache) IntervalOccupancy() (left, right int) {
	var seen [2][ids.NumIntervals]bool
	for dst := range c.routes {
		d := dirIndex(ids.DirOf(c.owner, dst))
		k := ids.IntervalIndex(ids.LineDist(c.owner, dst))
		if k >= 0 {
			seen[d][k] = true
		}
	}
	for k := 0; k < ids.NumIntervals; k++ {
		if seen[0][k] {
			left++
		}
		if seen[1][k] {
			right++
		}
	}
	return left, right
}
