package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %f, want 3", s.P50)
	}
	if s.P99 != 5 {
		t.Errorf("P99 = %f, want 5", s.P99)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("Stddev = %f, want sqrt(2)", s.Stddev)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.P50 != 7 || s.Stddev != 0 {
		t.Errorf("single Summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize must not sort the caller's slice")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var clean []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntsAndInt64s(t *testing.T) {
	if got := Ints([]int{1, 2}); got[0] != 1 || got[1] != 2 {
		t.Errorf("Ints = %v", got)
	}
	if got := Int64s([]int64{3, 4}); got[0] != 3 || got[1] != 4 {
		t.Errorf("Int64s = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("proto", "msgs", "rounds")
	tab.AddRow("isprp", 1234, 7)
	tab.AddRow("linearization", 99, 12.3456)
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "proto") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "12.35") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns align: "msgs" position identical in all rows.
	col := strings.Index(lines[0], "msgs")
	if !strings.Contains(lines[2][col:], "1234") {
		t.Errorf("column misaligned: %q", out)
	}
}

func TestSeriesGrowthExponent(t *testing.T) {
	// y = 2x³ → exponent 3.
	var s Series
	for _, x := range []float64{1, 2, 4, 8, 16} {
		s.Add(x, 2*x*x*x)
	}
	b, ok := s.GrowthExponent()
	if !ok || math.Abs(b-3) > 1e-9 {
		t.Errorf("exponent = %f ok=%v, want 3", b, ok)
	}
	// Constant series → exponent 0.
	var c Series
	c.Add(1, 5)
	c.Add(10, 5)
	c.Add(100, 5)
	b, ok = c.GrowthExponent()
	if !ok || math.Abs(b) > 1e-9 {
		t.Errorf("constant exponent = %f", b)
	}
	// Too few points.
	var short Series
	short.Add(1, 1)
	if _, ok := short.GrowthExponent(); ok {
		t.Error("single point must not fit")
	}
	// Non-positive points are skipped.
	var neg Series
	neg.Add(-1, 5)
	neg.Add(0, 5)
	if _, ok := neg.GrowthExponent(); ok {
		t.Error("no valid points must not fit")
	}
	if neg.Name != "" {
		t.Error("zero value name should be empty")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("plain", 1)
	tab.AddRow("needs,quote", `has"quote`)
	csv := tab.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), csv)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "plain,1" {
		t.Errorf("row1 = %q", lines[1])
	}
	if lines[2] != `"needs,quote","has""quote"` {
		t.Errorf("row2 = %q", lines[2])
	}
}

func TestSummarizeDropsNaNKeepsInf(t *testing.T) {
	s := Summarize([]float64{math.NaN(), 1, 2, math.NaN(), 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("NaN samples not dropped: %+v", s)
	}
	s = Summarize([]float64{math.NaN(), math.NaN()})
	if s.N != 0 {
		t.Errorf("all-NaN input: %+v", s)
	}
	s = Summarize([]float64{1, math.Inf(1)})
	if s.Max != math.Inf(1) || s.Min != 1 {
		t.Errorf("Inf sample mishandled: %+v", s)
	}
	if math.IsNaN(s.Stddev) {
		t.Errorf("Inf sample produced NaN stddev: %+v", s)
	}
}

func TestSummarizeVarianceCancellation(t *testing.T) {
	// Huge offset + tiny spread: the one-pass E[x²]−E[x]² formula loses
	// all significant digits here and can go negative, making Sqrt NaN.
	base := 1e9
	samples := []float64{base, base + 1e-3, base - 1e-3}
	s := Summarize(samples)
	if math.IsNaN(s.Stddev) || s.Stddev < 0 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if s.Stddev > 1e-2 {
		t.Errorf("stddev = %v, want tiny (< 1e-2)", s.Stddev)
	}
	// Exactly constant samples must report exactly zero.
	if s := Summarize([]float64{base, base, base}); s.Stddev != 0 {
		t.Errorf("constant samples: stddev = %v", s.Stddev)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	one := []float64{42}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := percentile(one, p); got != 42 {
			t.Errorf("percentile(single, %v) = %v", p, got)
		}
	}
	two := []float64{1, 9}
	if got := percentile(two, 0.5); got != 1 {
		t.Errorf("p50 of pair = %v, want lower nearest-rank 1", got)
	}
	if got := percentile(two, 0.51); got != 9 {
		t.Errorf("p51 of pair = %v, want 9", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestTableStringNoTrailingPadding(t *testing.T) {
	tab := NewTable("name", "n")
	tab.AddRow("a", 1)
	tab.AddRow("much-longer-name", 123456)
	// A row wider than the header must not panic and must render all cells.
	tab.AddRow("x", 2, "extra")
	out := tab.String()
	for i, line := range strings.Split(out, "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("line %d has trailing spaces: %q", i, line)
		}
	}
	if !strings.Contains(out, "extra") {
		t.Errorf("overflow cell dropped:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n")[2:] {
		if !strings.Contains(out, line) {
			t.Errorf("missing row %q", line)
		}
	}
}
