package metrics

// This file adds the live-telemetry half of the package: a concurrent
// Registry of named counters, gauges and fixed-bucket histograms with a
// snapshot API and OpenMetrics/Prometheus text exposition. The experiment
// harnesses fold trace events into a Registry and internal/telemetry serves
// it at /metrics, so a long-running churn bootstrap can be scraped mid-run.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind distinguishes the three series shapes a Registry holds.
type MetricKind uint8

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String names the kind the way the exposition's # TYPE line spells it.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Label is one name="value" pair qualifying a series.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing value. Handles are cheap to cache;
// Add is a lock-free atomic update.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by d (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (cumulative
// on exposition, per-bucket internally) plus a +Inf overflow, tracking sum
// and count for mean reconstruction.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1, non-cumulative
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, +Inf implicit as the final bucket
	Counts []uint64  // len(Bounds)+1, non-cumulative
	Sum    float64
	Count  uint64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// ExponentialBuckets returns n upper bounds start, start·factor, … — the
// usual shape for churn and latency histograms.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   MetricKind
	bounds []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series // canonical label signature -> series
}

// Registry is a concurrent collection of metric families. The zero value
// is not usable; create with NewRegistry. All methods are safe for
// concurrent use; the returned Counter/Gauge/Histogram handles are safe to
// cache and update from multiple goroutines.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Describe attaches help text to a metric name, shown as the exposition's
// # HELP line. Describing before or after first use are both fine.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		// Retain the help until the family is created with a concrete kind.
		r.families[name] = &family{name: name, help: help, kind: KindCounter, series: nil}
		return
	}
	f.help = help
}

// familyFor returns the family, creating it with the given kind on first
// use. A name reused with a different kind panics: that is a programming
// error, not a runtime condition.
func (r *Registry) familyFor(name string, kind MetricKind, bounds []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok && f.series != nil {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, used as %s", name, f.kind, kind))
		}
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.families[name]; ok && f.series != nil {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, used as %s", name, f.kind, kind))
		}
		return f
	}
	help := ""
	if f != nil {
		help = f.help // Describe arrived before first use
	}
	f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// signature canonicalizes a label set (sorted by name) into a map key.
func signature(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func sortedLabels(pairs []string) []Label {
	if len(pairs)%2 != 0 {
		panic("metrics: labels must be name/value pairs")
	}
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (f *family) seriesFor(labels []Label) *series {
	sig := signature(labels)
	f.mu.RLock()
	s, ok := f.series[sig]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[sig]; ok {
		return s
	}
	s = &series{labels: labels}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	f.series[sig] = s
	return s
}

// Counter returns the counter series for name and the given label pairs
// ("name", "value", …), creating it on first use.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	return r.familyFor(name, KindCounter, nil).seriesFor(sortedLabels(labelPairs)).c
}

// Gauge returns the gauge series for name and label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	return r.familyFor(name, KindGauge, nil).seriesFor(sortedLabels(labelPairs)).g
}

// Histogram returns the histogram series for name and label pairs. The
// bucket bounds are fixed at family creation; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	return r.familyFor(name, KindHistogram, bounds).seriesFor(sortedLabels(labelPairs)).h
}

// Point is one series in a Snapshot: a counter or gauge value, or a
// histogram state.
type Point struct {
	Name   string
	Kind   MetricKind
	Labels []Label
	Value  float64            // counters and gauges
	Hist   *HistogramSnapshot // histograms only
}

// Snapshot returns every series, sorted by metric name then label
// signature — the programmatic view of what WriteOpenMetrics renders.
func (r *Registry) Snapshot() []Point {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		if f.series != nil {
			fams = append(fams, f)
		}
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var out []Point
	for _, f := range fams {
		f.mu.RLock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			p := Point{Name: f.name, Kind: f.kind, Labels: s.labels}
			switch f.kind {
			case KindCounter:
				p.Value = s.c.Value()
			case KindGauge:
				p.Value = s.g.Value()
			case KindHistogram:
				h := s.h.snapshot()
				p.Hist = &h
			}
			out = append(out, p)
		}
		f.mu.RUnlock()
	}
	return out
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func labelBlock(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtValue renders a sample value the way Prometheus expects (no
// exponent-mangling of integral values, +Inf spelled out).
func fmtValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WriteOpenMetrics renders the registry in the OpenMetrics /
// Prometheus text exposition format, families sorted by name, ending with
// the required # EOF marker. Counter families get the conventional _total
// sample suffix; histograms expand into cumulative _bucket series plus
// _sum and _count.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	points := r.Snapshot()
	var b strings.Builder
	var lastFamily string
	r.mu.RLock()
	helps := make(map[string]string, len(r.families))
	for name, f := range r.families {
		if f.help != "" {
			helps[name] = f.help
		}
	}
	r.mu.RUnlock()
	for _, p := range points {
		if p.Name != lastFamily {
			lastFamily = p.Name
			if h := helps[p.Name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, p.Kind)
		}
		switch p.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s_total%s %s\n", p.Name, labelBlock(p.Labels), fmtValue(p.Value))
		case KindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", p.Name, labelBlock(p.Labels), fmtValue(p.Value))
		case KindHistogram:
			var cum uint64
			for i, c := range p.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(p.Hist.Bounds) {
					le = fmtValue(p.Hist.Bounds[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", p.Name, labelBlock(p.Labels, Label{"le", le}), cum)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", p.Name, labelBlock(p.Labels), fmtValue(p.Hist.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", p.Name, labelBlock(p.Labels), p.Hist.Count)
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}
