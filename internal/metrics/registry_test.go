package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_sent", "kind", "notify")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if again := r.Counter("msgs_sent", "kind", "notify"); again != c {
		t.Error("same name+labels must return the same handle")
	}
	if other := r.Counter("msgs_sent", "kind", "ack"); other == c {
		t.Error("different labels must return a different series")
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "x", "1", "y", "2")
	b := r.Counter("m", "y", "2", "x", "1")
	if a != b {
		t.Error("label order must not distinguish series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("churn", []float64{1, 4, 16})
	for _, v := range []float64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// le=1: {0,1}; le=4: {2}; le=16: {5}; +Inf: {100}
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	if snap.Count != 5 || snap.Sum != 108 {
		t.Errorf("count=%d sum=%v", snap.Count, snap.Sum)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge must panic")
		}
	}()
	r.Gauge("m")
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha", "node", "9").Inc()
	r.Counter("alpha", "node", "3").Inc()
	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	if pts[0].Name != "alpha" || pts[2].Name != "zeta" {
		t.Errorf("families not sorted: %v, %v", pts[0].Name, pts[2].Name)
	}
	if pts[0].Labels[0].Value != "3" || pts[1].Labels[0].Value != "9" {
		t.Errorf("series not sorted within family: %+v", pts[:2])
	}
}

// TestOpenMetricsGolden pins the exposition format byte-for-byte. Run with
// -update to regenerate testdata/openmetrics.golden after an intentional
// format change.
func TestOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Describe("ssr_messages_sent", "physical frames put on the air")
	r.Counter("ssr_messages_sent", "kind", "ssr:notify").Add(42)
	r.Counter("ssr_messages_sent", "kind", "ssr:ack").Add(7)
	r.Gauge("ssr_probe_distance").Set(13)
	r.Gauge("ssr_node_up", "node", `weird"label\n`).Set(1)
	h := r.Histogram("ssr_round_edge_churn", []float64{1, 4, 16})
	for _, v := range []float64{0, 3, 3, 20} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "openmetrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestOpenMetricsEndsWithEOF(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "# EOF\n" {
		t.Errorf("empty registry exposition = %q", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — the
// message-model cluster emits from multiple nodes — and is meaningful
// under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				r.Counter("c_total_events").Inc()
				r.Counter("c_by_node", "node", node).Inc()
				r.Gauge("g_last", "node", node).Set(float64(i))
				r.Histogram("h_vals", []float64{10, 100}, "node", node).Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total_events").Value(); got != workers*perWorker {
		t.Errorf("total = %v, want %d", got, workers*perWorker)
	}
	var histCount uint64
	for _, p := range r.Snapshot() {
		if p.Name == "h_vals" {
			histCount += p.Hist.Count
		}
	}
	if histCount != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", histCount, workers*perWorker)
	}
}
