// Package metrics provides the small statistics toolkit used by the
// experiment harnesses: distribution summaries (mean, percentiles, max),
// convergence series, and table rendering helpers shared by the cmd/ tools
// and the benchmark suite.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample distribution.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Stddev         float64
}

// Summarize computes a Summary of the samples. An empty input yields a
// zero Summary. NaN samples are dropped (N counts only the retained
// values); infinities propagate into min/max/mean but leave Stddev zero
// rather than NaN.
func Summarize(samples []float64) Summary {
	var s Summary
	sorted := make([]float64, 0, len(samples))
	for _, x := range samples {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	s.N = len(sorted)
	if s.N == 0 {
		return s
	}
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	// Two-pass variance: summing squared deviations instead of
	// E[x²]−E[x]² avoids the catastrophic cancellation that turned the
	// variance of near-constant samples negative (or garbage).
	var devSq float64
	for _, x := range sorted {
		d := x - s.Mean
		devSq += d * d
	}
	if variance := devSq / float64(s.N); variance > 0 && !math.IsInf(variance, 0) && !math.IsNaN(variance) {
		s.Stddev = math.Sqrt(variance)
	}
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile reads the p-quantile from an ascending-sorted sample using the
// nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders "n=… mean=… p50=… p90=… p99=… max=…".
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f sd=%.2f",
		s.N, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max, s.Stddev)
}

// Ints converts integer samples for Summarize.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Int64s converts int64 samples for Summarize.
func Int64s(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Table accumulates rows and renders them with aligned columns — the
// output format of every experiment harness, mirroring the rows/series a
// paper table would report.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with padded columns. Column widths are sized
// over every row, including rows wider than the header, so trailing
// columns stay aligned; only each row's final cell is left unpadded (no
// trailing whitespace).
func (t *Table) String() string {
	cols := len(t.header)
	for _, row := range t.rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted), for piping experiment output into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString("\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\"")
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) sequence — one line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// GrowthExponent estimates b in y ≈ a·x^b by least squares on log-log
// points — the tool the experiments use to distinguish linear from
// polylogarithmic convergence shapes. It returns ok=false with fewer than
// two valid (positive) points.
func (s *Series) GrowthExponent() (b float64, ok bool) {
	var xs, ys []float64
	for i := range s.X {
		if s.X[i] > 0 && s.Y[i] > 0 {
			xs = append(xs, math.Log(s.X[i]))
			ys = append(ys, math.Log(s.Y[i]))
		}
	}
	if len(xs) < 2 {
		return 0, false
	}
	n := float64(len(xs))
	var sx, sy, sxy, sxx float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}
