package floodboot

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/phys"
	"repro/internal/sim"
)

func TestFullKnowledgeAndConsistency(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 24, graph.RandomIDs, 3)
	net := phys.NewNetwork(sim.NewEngine(3), topo)
	c := NewCluster(net)
	at, ok := c.RunUntilConsistent(40000)
	if !ok {
		t.Fatalf("flood bootstrap failed by t=%d", at)
	}
	n := len(c.Nodes)
	for v, node := range c.Nodes {
		if got := len(node.Known()); got != n {
			t.Errorf("node %s knows %d of %d", v, got, n)
		}
		if node.StateSize() < n {
			t.Errorf("node %s state %d < n", v, node.StateSize())
		}
	}
}

func TestRoutesLearnedAreValid(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoRegular, 16, graph.RandomIDs, 5)
	net := phys.NewNetwork(sim.NewEngine(5), topo)
	c := NewCluster(net)
	if _, ok := c.RunUntilConsistent(40000); !ok {
		t.Fatal("no convergence")
	}
	for v, node := range c.Nodes {
		for _, u := range node.Known() {
			if u == v {
				continue
			}
			r := node.RouteTo(u)
			if r == nil {
				t.Fatalf("node %s lacks a route to known %s", v, u)
			}
			if err := r.ValidOn(topo); err != nil {
				t.Fatalf("invalid learned route %s: %v", r, err)
			}
			if r.Src() != v || r.Dst() != u {
				t.Fatalf("route endpoints wrong: %s", r)
			}
		}
	}
}

func TestMessageCostIsQuadraticIsh(t *testing.T) {
	// Total flood frames scale like n·E — the baseline's defining expense.
	cost := func(n int) int64 {
		topo, _ := graph.Generate(graph.TopoRegular, n, graph.RandomIDs, int64(n))
		net := phys.NewNetwork(sim.NewEngine(int64(n)), topo)
		c := NewCluster(net)
		if _, ok := c.RunUntilConsistent(80000); !ok {
			t.Fatalf("n=%d did not converge", n)
		}
		return net.Counters().Get(KindAnnounce)
	}
	c16, c64 := cost(16), cost(64)
	// n and E both grew 4×: expect ≳8× total frames (constant-degree E ~ n).
	if c64 < 8*c16 {
		t.Errorf("flood cost grew too slowly: %d -> %d", c16, c64)
	}
	t.Logf("flood frames: n=16: %d, n=64: %d", c16, c64)
}

func TestSingleNode(t *testing.T) {
	topo := graph.NewWithNodes(9)
	net := phys.NewNetwork(sim.NewEngine(1), topo)
	c := NewCluster(net)
	if _, ok := c.RunUntilConsistent(1000); !ok {
		t.Error("single node is trivially consistent")
	}
	if _, ok := c.Nodes[9].Successor(); ok {
		t.Error("lone node has no successor")
	}
}
