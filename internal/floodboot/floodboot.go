// Package floodboot is the brute-force bootstrap baseline: every node
// floods its identifier once over the physical network, so eventually every
// node knows every identifier and can compute its ring neighbors locally by
// sorting. It trivially achieves global consistency — at O(n·E) message
// cost and Θ(n) state per node, which is exactly the expense ISPRP's single
// representative flood reduces and linearization eliminates. The E6x
// experiment uses it as the upper anchor of the message-cost comparison.
package floodboot

import (
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/sroute"
	"repro/internal/trace"
	"repro/internal/vring"
)

// KindAnnounce is the counter kind for flood frames.
const KindAnnounce = "floodboot:announce"

// announce is the flooded payload: the origin and the physical path the
// frame traveled (so receivers also learn a source route back).
type announce struct {
	Origin ids.ID
	Path   []ids.ID
}

// Node is one participant.
type Node struct {
	id    ids.ID
	net   phys.Transport
	known ids.Set
	// routes keeps one source route per learned identifier (shortest seen).
	routes map[ids.ID]sroute.Route
}

// NewNode creates and registers a flood-bootstrap node.
func NewNode(net phys.Transport, id ids.ID) *Node {
	n := &Node{id: id, net: net, known: ids.NewSet(id), routes: make(map[ids.ID]sroute.Route)}
	net.Register(id, phys.HandlerFunc(n.handle))
	if fd, ok := net.(phys.FailureDetector); ok {
		fd.SubscribeLeases(id, n.onLease)
	}
	return n
}

// onLease consumes a failure-detector verdict about physical neighbor peer.
// Down: drop the learned routes crossing the dead link (the identifiers
// stay known — floodboot's consistency is knowledge, not liveness). Up:
// re-announce our identifier so knowledge crosses the healed link; receivers
// that already know us suppress the re-flood, so the cost is one frame per
// link on the healed side.
func (n *Node) onLease(peer ids.ID, up bool) {
	if up {
		n.net.Broadcast(n.id, KindAnnounce, announce{Origin: n.id, Path: []ids.ID{n.id}})
		return
	}
	for v, r := range n.routes {
		if len(r) >= 2 && r[1] == peer {
			delete(n.routes, v)
		}
	}
}

// ID returns the node identifier.
func (n *Node) ID() ids.ID { return n.id }

// Known returns every identifier this node has learned (itself included).
func (n *Node) Known() []ids.ID { return n.known.Sorted() }

// RouteTo returns the learned source route to v, or nil.
func (n *Node) RouteTo(v ids.ID) sroute.Route { return n.routes[v] }

// Successor computes the ring successor from local knowledge.
func (n *Node) Successor() (ids.ID, bool) {
	best := n.id
	found := false
	for v := range n.known {
		if v == n.id {
			continue
		}
		if !found || ids.RingDist(n.id, v) < ids.RingDist(n.id, best) {
			best = v
			found = true
		}
	}
	return best, found
}

// Start floods this node's identifier.
func (n *Node) Start() {
	n.net.Broadcast(n.id, KindAnnounce, announce{Origin: n.id, Path: []ids.ID{n.id}})
}

func (n *Node) handle(m phys.Message) {
	a, ok := m.Payload.(announce)
	if !ok {
		return
	}
	full := append(append([]ids.ID(nil), a.Path...), n.id)
	if back := sroute.Route(full).Reverse().ElideLoops(); len(back) >= 2 {
		if old, exists := n.routes[a.Origin]; !exists || back.Hops() < old.Hops() {
			n.routes[a.Origin] = back
		}
	}
	if !n.known.Add(a.Origin) {
		return // duplicate: suppress the re-flood
	}
	n.net.Broadcast(n.id, KindAnnounce, announce{Origin: a.Origin, Path: full})
}

// StateSize returns the per-node state in identifiers plus route entries —
// Θ(n), the cost of full knowledge.
func (n *Node) StateSize() int { return n.known.Len() + len(n.routes) }

// Cluster drives floodboot over a network.
type Cluster struct {
	Net          phys.Transport
	Nodes        map[ids.ID]*Node
	probeStopped bool
}

// NewCluster creates and starts one node per topology member. Nodes start
// in ascending identifier order — map-order iteration here would reshuffle
// the initial flood's event sequence (and with it every engine RNG draw)
// between runs of the same seed.
func NewCluster(net phys.Transport) *Cluster {
	c := &Cluster{Net: net, Nodes: make(map[ids.ID]*Node)}
	order := net.Topology().Nodes()
	for _, v := range order {
		c.Nodes[v] = NewNode(net, v)
	}
	for _, v := range order {
		c.Nodes[v].Start()
	}
	return c
}

// SuccMap snapshots the locally computed successor pointers.
func (c *Cluster) SuccMap() vring.SuccMap {
	s := make(vring.SuccMap, len(c.Nodes))
	for v, n := range c.Nodes {
		if succ, ok := n.Successor(); ok {
			s[v] = succ
		}
	}
	return s
}

// VirtualGraph returns the successor structure as an undirected graph —
// the view the convergence probes measure, matching the contract of the
// other bootstrap protocols' VirtualGraph.
func (c *Cluster) VirtualGraph() *graph.Graph {
	g := graph.New()
	for v, n := range c.Nodes {
		g.AddNode(v)
		if succ, ok := n.Successor(); ok {
			g.AddEdge(v, succ)
		}
	}
	return g
}

// AttachProbe samples the cluster's successor structure into the
// convergence probe every `every` ticks, starting one interval from now,
// until Stop — the same observation contract as ssr.Cluster.AttachProbe.
func (c *Cluster) AttachProbe(p *trace.Probe, every sim.Time) {
	if p == nil || every <= 0 {
		return
	}
	round := 0
	eng := c.Net.Engine()
	var tick func()
	tick = func() {
		if c.probeStopped {
			return
		}
		p.Observe(round, c.VirtualGraph())
		round++
		eng.After(every, tick)
	}
	eng.After(every, tick)
}

// Stop halts any attached probes. Flood nodes have no periodic activity of
// their own; the flood quiesces once every announcement has propagated.
func (c *Cluster) Stop() { c.probeStopped = true }

// Consistent reports whether every node's local knowledge yields the
// globally consistent ring.
func (c *Cluster) Consistent() bool {
	if len(c.Nodes) < 2 {
		return true
	}
	all := make([]ids.ID, 0, len(c.Nodes))
	for v := range c.Nodes {
		all = append(all, v)
	}
	return c.SuccMap().GloballyConsistent(all)
}

// RunUntilConsistent drives the engine until consistency or the deadline.
func (c *Cluster) RunUntilConsistent(deadline sim.Time) (sim.Time, bool) {
	eng := c.Net.Engine()
	const checkEvery = sim.Time(8)
	for next := eng.Now() + checkEvery; ; next += checkEvery {
		if next > deadline {
			next = deadline
		}
		eng.RunUntil(next, nil)
		if c.Consistent() {
			return eng.Now(), true
		}
		if next >= deadline || eng.Pending() == 0 {
			return eng.Now(), c.Consistent()
		}
	}
}
