// Package vrr implements a Virtual Ring Routing analog with the paper's
// linearized bootstrap.
//
// VRR (Caesar et al., SIGCOMM'06) is SSR's sibling: it also organizes all
// nodes into a virtual ring ordered by identifier, but instead of source
// routes it installs *routing state along physical paths* — every node on
// the path between two virtual neighbors keeps a next-hop entry for that
// path (footnote 1 of §4: "There the virtual edges are the paths as
// represented by the routing table entries").
//
// Baseline VRR piggybacks the address of a representative (the numerically
// largest node) on its hello beacons to detect global inconsistency — the
// VRR analog of ISPRP's flood. The linearized variant reproduced here
// needs none of that: per §4, the neighbor notification messages *are* the
// path-setup messages ("For VRR the notification messages set up state
// along their forwarding path"). A node v1 that wants to introduce its
// virtual neighbors v2 and v3 to each other sends a setup for the new path
// (v2,v3) along its existing paths to v2 and to v3; every hop installs
// forwarding state for the new path (toward the far endpoint via v1), and
// the arrival of the setup at an endpoint doubles as the neighbor
// notification. Local consistency of the resulting line then implies
// global consistency, with no representative and no flooding.
//
// Data packets are routed greedily: each node forwards along the path
// whose far endpoint is virtually closest to the destination — the same
// rule as SSR, with path tables in place of route caches.
package vrr

import (
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Message kinds for counter accounting.
const (
	KindSetup       = "vrr:setup"
	KindData        = "vrr:data"
	KindDiscover    = "vrr:discover"
	KindDiscoverAck = "vrr:discoverack"
	KindSetupAck    = "vrr:setupack"
)

// Config tunes a VRR node.
type Config struct {
	// TickInterval is the linearization maintenance period (default 16).
	TickInterval sim.Time
	// HelloInterval is the beacon period for neighbor discovery (default 8).
	HelloInterval sim.Time
	// Representative enables the baseline hello piggyback of the largest
	// known address (measured, not needed, in the linearized variant).
	Representative bool
	// CloseRing enables the §4 discovery messages that establish the wrap
	// path between the extremal nodes, turning the line into the ring.
	CloseRing bool
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 16
	}
	if c.HelloInterval <= 0 {
		c.HelloInterval = 8
	}
	return c
}

// PathID names a virtual edge: the two endpoints (A < B) and a sequence
// number so re-established paths between the same endpoints stay distinct.
type PathID struct {
	A, B ids.ID
	Seq  uint32
}

// Other returns the endpoint that is not v (v must be A or B).
func (p PathID) Other(v ids.ID) ids.ID {
	if v == p.A {
		return p.B
	}
	return p.A
}

// pathLess is a deterministic total order on path ids for tie-breaking.
func pathLess(a, b PathID) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.Seq < b.Seq
}

// pathEntry is one node's forwarding state for a path: the physical next
// hop toward each endpoint (absent for the endpoint itself).
type pathEntry struct {
	toA, toB       ids.ID
	hasToA, hasToB bool
	// confirmed marks paths this node may rely on as an endpoint: physical
	// links, and paths whose setup actually arrived here. A pivot's own
	// freshly-created path is unconfirmed — one of its halves may have died
	// in flight — so it is never used as a carrier for further setups or as
	// a greedy routing commitment; re-introduction repairs dead halves.
	confirmed bool
}

func (e *pathEntry) next(p PathID, toward ids.ID) (ids.ID, bool) {
	if toward == p.A {
		return e.toA, e.hasToA
	}
	return e.toB, e.hasToB
}

// setupPayload installs path state hop by hop. The message travels from the
// pivot (the introducing node) toward Target along the pivot's existing
// path ViaPath; each hop sets next-hop state for NewPath: toward Target in
// the travel direction, toward the far endpoint in the reverse direction.
type setupPayload struct {
	NewPath PathID
	Target  ids.ID // the endpoint this setup half travels to
	ViaPath PathID // the existing path it rides along
	PrevHop ids.ID // physical sender of this frame
}

// setupAckPayload confirms a freshly set-up path end to end: each endpoint
// sends one across the full path on setup arrival, and an endpoint marks
// the path confirmed only when the OTHER side's ack arrives — which proves
// both halves' transit state is fully installed. A setup arrival alone
// proves only the half the setup traveled.
type setupAckPayload struct {
	Path    PathID
	Toward  ids.ID // the endpoint this ack travels to
	PrevHop ids.ID
	Hops    int
}

// dataPayload is an application packet.
type dataPayload struct {
	Origin, Dst ids.ID
	Hops        int
	Body        any
	// Path and Toward are the current forwarding commitment; re-chosen at
	// every path endpoint.
	Path   PathID
	Toward ids.ID
}

// Delivery records a data packet that reached its destination.
type Delivery struct {
	Origin, Dst ids.ID
	Hops        int
	Body        any
}

type pairKey struct{ Low, High ids.ID }

// provKey names an in-flight discovery whose endpoint is not yet known;
// hops store the reverse (toward-origin) next hop under this key until the
// acknowledgment converts it into real path state.
type provKey struct {
	Origin ids.ID
	Seq    uint32
}

// discoverPayload travels greedily toward the extremal node on the given
// side of the origin, leaving provisional reverse state at every hop. Like
// data packets it commits to one path at a time (Path/Toward) and re-decides
// only at the committed endpoint — per-hop re-decision has no monotone
// invariant and can loop forever. Hops is a safety TTL.
type discoverPayload struct {
	Origin  ids.ID
	Dir     ids.Dir // Left: clockwise, seeking the origin's ring predecessor
	Seq     uint32
	PrevHop ids.ID
	Path    PathID
	Toward  ids.ID
	Hops    int
}

// discoverTTL bounds a discovery's physical lifetime.
const discoverTTL = 4096

// discoverAckPayload walks the provisional state back to the origin,
// converting it into real path state for the wrap path.
type discoverAckPayload struct {
	Path    PathID // endpoints: origin and the discovered extremal node
	Key     provKey
	Dir     ids.Dir
	PrevHop ids.ID
}

// Node is one VRR participant.
type Node struct {
	id  ids.ID
	net phys.Transport
	cfg Config

	beacon *phys.Beaconer
	paths  map[PathID]*pathEntry
	// vset is the set of virtual neighbors: endpoints of paths where we are
	// the other endpoint.
	vset ids.Set

	introduced map[pairKey]sim.Time
	attempts   map[pairKey]uint
	seq        uint32
	ticks      int64
	prov       map[provKey]ids.ID // toward-origin hop for in-flight discoveries

	// Ring-closure state: wrap partners are ring neighbors, exempt from
	// linearization of the vset (they are not line neighbors).
	wrapLeft, wrapRight       ids.ID
	hasWrapLeft, hasWrapRight bool

	// OnDeliver, if set, observes data packets addressed to this node.
	OnDeliver func(d Delivery)
	// Failed counts packets dropped for lack of a virtually closer path.
	Failed int

	stopped bool
}

// NewNode creates and registers a VRR node. Call Start to begin activity.
func NewNode(net phys.Transport, id ids.ID, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		id:         id,
		net:        net,
		cfg:        cfg,
		paths:      make(map[PathID]*pathEntry),
		vset:       ids.NewSet(),
		introduced: make(map[pairKey]sim.Time),
		attempts:   make(map[pairKey]uint),
		prov:       make(map[provKey]ids.ID),
	}
	n.beacon = phys.NewBeaconer(net, id, cfg.HelloInterval)
	n.beacon.OnNewNeighbor = n.addPhysicalNeighbor
	net.Register(id, phys.HandlerFunc(n.handle))
	if fd, ok := net.(phys.FailureDetector); ok {
		// The reliable transport's lease detector beats the beacon MissLimit
		// expiry to the verdict and, unlike it, also names the broken
		// *transit* paths through the dead neighbor.
		fd.SubscribeLeases(id, n.onLease)
	}
	return n
}

// onLease consumes a failure-detector verdict about physical neighbor peer.
// Down: every path whose physical next hop is the dead neighbor is broken —
// drop its forwarding state now and shrink the vset to endpoints still
// reachable, so linearization stops introducing pairs through the dead
// link; periodic re-introduction rebuilds survivors over live links.
// Up: reinstall the trivial 1-hop path (E_v := E_p for the healed link).
func (n *Node) onLease(peer ids.ID, up bool) {
	if n.stopped {
		return
	}
	if up {
		n.addPhysicalNeighbor(peer)
		return
	}
	for p, e := range n.paths {
		if (e.hasToA && e.toA == peer) || (e.hasToB && e.toB == peer) {
			delete(n.paths, p)
		}
	}
	for _, u := range n.vset.Sorted() {
		if u == n.id {
			continue
		}
		reachable := false
		for p := range n.paths {
			if (p.A == n.id && p.B == u) || (p.B == n.id && p.A == u) {
				reachable = true
				break
			}
		}
		if reachable {
			continue
		}
		n.vset.Remove(u)
		if n.hasWrapLeft && n.wrapLeft == u {
			n.hasWrapLeft = false
		}
		if n.hasWrapRight && n.wrapRight == u {
			n.hasWrapRight = false
		}
	}
}

// ID returns the node identifier.
func (n *Node) ID() ids.ID { return n.id }

// VirtualNeighbors returns the current virtual neighbor set, ascending.
func (n *Node) VirtualNeighbors() []ids.ID { return n.vset.Sorted() }

// PathCount returns the number of path-table entries at this node — VRR's
// router-state metric.
func (n *Node) PathCount() int { return len(n.paths) }

// Representative returns the largest address heard via hello piggyback.
func (n *Node) Representative() ids.ID { return n.beacon.Representative() }

// Start begins beaconing and the linearization tick.
func (n *Node) Start(jitter sim.Time) {
	n.beacon.Start()
	n.net.Engine().After(n.cfg.TickInterval+jitter, n.tick)
}

// Stop halts periodic activity.
func (n *Node) Stop() {
	n.stopped = true
	n.beacon.Stop()
}

// addPhysicalNeighbor installs the trivial 1-hop path to a discovered
// physical neighbor (E_v := E_p).
func (n *Node) addPhysicalNeighbor(u ids.ID) {
	p := PathID{A: n.id, B: u}
	if p.A > p.B {
		p.A, p.B = p.B, p.A
	}
	if _, ok := n.paths[p]; ok {
		return
	}
	e := &pathEntry{confirmed: true}
	if p.A == n.id {
		e.toB, e.hasToB = u, true
	} else {
		e.toA, e.hasToA = u, true
	}
	n.paths[p] = e
	n.vset.Add(u)
}

func (n *Node) tick() {
	if n.stopped {
		return
	}
	if !n.net.Up(n.id) {
		// Keep the chain scheduled while down so RecoverNode resumes
		// maintenance (crash/recover churn in the chaos harness).
		n.net.Engine().After(n.cfg.TickInterval, n.tick)
		return
	}
	n.ticks++
	n.linearizeSide(ids.Left)
	n.linearizeSide(ids.Right)
	if n.cfg.CloseRing {
		n.maybeDiscover()
	}
	n.net.Engine().After(n.cfg.TickInterval, n.tick)
}

// pathTo returns a confirmed path where we are one endpoint and v the
// other, preferring the deterministically smallest id.
func (n *Node) pathTo(v ids.ID) (PathID, bool) {
	var best PathID
	found := false
	for p, e := range n.paths {
		if !e.confirmed {
			continue
		}
		if (p.A == n.id && p.B == v) || (p.B == n.id && p.A == v) {
			if !found || pathLess(p, best) {
				best, found = p, true
			}
		}
	}
	return best, found
}

// linearizeSide introduces every consecutive pair of virtual neighbors on
// one side — Algorithm 1's chain, realized as VRR path setups.
func (n *Node) linearizeSide(d ids.Dir) {
	var side []ids.ID
	for _, u := range n.vset.Sorted() {
		if (n.hasWrapLeft && u == n.wrapLeft) || (n.hasWrapRight && u == n.wrapRight) {
			continue
		}
		if ids.DirOf(n.id, u) == d {
			side = append(side, u)
		}
	}
	for i := 0; i+1 < len(side); i++ {
		n.introduce(side[i], side[i+1])
	}
}

// introduce sets up the new path (a,b) through us: one setup half travels
// to a along our path to a, the other to b along our path to b. Each hop
// of each half installs forwarding state; arrival notifies the endpoint of
// its new virtual neighbor.
func (n *Node) introduce(a, b ids.ID) {
	key := pairKey{Low: a, High: b}
	now := n.net.Engine().Now()
	// Exponential backoff per pair: a stable pair is re-set-up with
	// geometrically growing periods, so long runs accumulate only
	// logarithmically many repair paths instead of one per fixed interval.
	backoff := sim.Time(32<<min(n.attempts[key], 8)) * n.cfg.TickInterval
	if last, seen := n.introduced[key]; seen && now-last < backoff {
		return
	}
	n.attempts[key]++
	pa, okA := n.pathTo(a)
	pb, okB := n.pathTo(b)
	if !okA || !okB {
		return
	}
	// Every introduction gets a fresh sequence number: a setup must never
	// overwrite hop state of an earlier setup that traveled a different
	// carrier path, or forwarding state becomes an inconsistent mix of two
	// routes. Dead setup halves are repaired by the periodic
	// re-introduction (every 32 ticks), which simply builds a fresh path.
	n.seq++
	newPath := PathID{A: a, B: b, Seq: n.seq}
	if newPath.A > newPath.B {
		newPath.A, newPath.B = newPath.B, newPath.A
	}
	n.introduced[key] = now
	// Install our own pivot state: toward a via pa, toward b via pb.
	entry := &pathEntry{}
	if nextA, ok := n.paths[pa].next(pa, a); ok {
		if newPath.A == a {
			entry.toA, entry.hasToA = nextA, true
		} else {
			entry.toB, entry.hasToB = nextA, true
		}
	}
	if nextB, ok := n.paths[pb].next(pb, b); ok {
		if newPath.A == b {
			entry.toA, entry.hasToA = nextB, true
		} else {
			entry.toB, entry.hasToB = nextB, true
		}
	}
	n.paths[newPath] = entry
	n.sendSetupHalf(newPath, a, pa)
	n.sendSetupHalf(newPath, b, pb)
}

// sendSetupHalf launches one setup half toward target along via.
func (n *Node) sendSetupHalf(newPath PathID, target ids.ID, via PathID) {
	next, ok := n.paths[via].next(via, target)
	if !ok {
		return
	}
	n.net.Send(phys.Message{From: n.id, To: next, Kind: KindSetup, Payload: setupPayload{
		NewPath: newPath, Target: target, ViaPath: via, PrevHop: n.id,
	}})
}

// handle is the raw frame dispatcher.
func (n *Node) handle(m phys.Message) {
	switch m.Kind {
	case phys.BeaconKind:
		n.beacon.HandleHello(m)
	case KindSetup:
		n.handleSetup(m)
	case KindData:
		n.handleData(m)
	case KindDiscover:
		n.handleDiscover(m)
	case KindDiscoverAck:
		n.handleDiscoverAck(m)
	case KindSetupAck:
		n.handleSetupAck(m)
	}
}

// handleSetupAck forwards a setup acknowledgment along the committed path;
// at the destination endpoint it marks the path confirmed (the ack crossed
// every hop, so both halves are fully installed).
func (n *Node) handleSetupAck(m phys.Message) {
	ap, ok := m.Payload.(setupAckPayload)
	if !ok {
		return
	}
	ap.Hops++
	if ap.Hops > discoverTTL {
		return
	}
	e, exists := n.paths[ap.Path]
	if !exists {
		return
	}
	if ap.Toward == n.id {
		e.confirmed = true
		n.vset.Add(ap.Path.Other(n.id))
		return
	}
	next, okN := e.next(ap.Path, ap.Toward)
	if !okN {
		return
	}
	n.net.Send(phys.Message{From: n.id, To: next, Kind: KindSetupAck, Payload: setupAckPayload{
		Path: ap.Path, Toward: ap.Toward, PrevHop: n.id, Hops: ap.Hops,
	}})
}

// --- Ring closure (§4 discovery, VRR flavor) -------------------------------

// sideEmpty reports whether the vset (wrap partners excluded) has no member
// on the given side.
func (n *Node) sideEmpty(d ids.Dir) bool {
	for u := range n.vset {
		if (n.hasWrapLeft && u == n.wrapLeft) || (n.hasWrapRight && u == n.wrapRight) {
			continue
		}
		if ids.DirOf(n.id, u) == d {
			return false
		}
	}
	return true
}

// wrapMetric ranks candidates for the wrap partner on the given ring side
// of origin: Left wants the ring predecessor, Right the ring successor.
func wrapMetric(origin ids.ID, side ids.Dir) func(ids.ID) uint64 {
	if side == ids.Left {
		return func(x ids.ID) uint64 { return ids.RingDist(x, origin) }
	}
	return func(x ids.ID) uint64 { return ids.RingDist(origin, x) }
}

// maybeDiscover launches discovery from the extremal sides and re-validates
// stale wrap partners against newer knowledge.
func (n *Node) maybeDiscover() {
	// Wrap state is only legitimate while the side is actually empty: a
	// non-extremal node that adopted a wrap partner during a transient
	// empty-side phase would otherwise exempt its true line neighbor from
	// linearization forever.
	if n.hasWrapLeft && !n.sideEmpty(ids.Left) {
		n.hasWrapLeft = false
	}
	if n.hasWrapRight && !n.sideEmpty(ids.Right) {
		n.hasWrapRight = false
	}
	if n.hasWrapLeft && !n.wrapStillBest(ids.Left) {
		n.hasWrapLeft = false
	}
	if n.hasWrapRight && !n.wrapStillBest(ids.Right) {
		n.hasWrapRight = false
	}
	// Established wraps are re-probed periodically: a wrap acknowledged by
	// a transient dead end would otherwise freeze (same rationale as in
	// package ssr), and the extremal nodes may never meet through the path
	// tables alone.
	refresh := n.ticks%8 == 0
	if n.sideEmpty(ids.Left) && (!n.hasWrapLeft || refresh) {
		n.sendDiscover(ids.Left)
	}
	if n.sideEmpty(ids.Right) && (!n.hasWrapRight || refresh) {
		n.sendDiscover(ids.Right)
	}
}

func (n *Node) wrapStillBest(side ids.Dir) bool {
	metric := wrapMetric(n.id, side)
	partner := n.wrapLeft
	if side == ids.Right {
		partner = n.wrapRight
	}
	best := metric(partner)
	for p := range n.paths {
		for _, ep := range [2]ids.ID{p.A, p.B} {
			if ep != n.id && metric(ep) < best {
				return false
			}
		}
	}
	return true
}

// bestEndpoint returns the confirmed own-endpoint path whose far endpoint
// minimizes the metric, excluding the given origin. Only confirmed paths
// where this node is an endpoint qualify: their transit is known-installed,
// so a commitment to them cannot strand the message.
func (n *Node) bestEndpoint(exclude ids.ID, metric func(ids.ID) uint64) (PathID, ids.ID, bool) {
	var bestPath PathID
	var bestEP ids.ID
	found := false
	for p, e := range n.paths {
		if !e.confirmed || (p.A != n.id && p.B != n.id) {
			continue
		}
		ep := p.Other(n.id)
		if ep == n.id || ep == exclude {
			continue
		}
		if _, okN := e.next(p, ep); !okN {
			continue
		}
		if !found || metric(ep) < metric(bestEP) ||
			(metric(ep) == metric(bestEP) && pathLess(p, bestPath)) {
			bestPath, bestEP, found = p, ep, true
		}
	}
	return bestPath, bestEP, found
}

func (n *Node) sendDiscover(side ids.Dir) {
	metric := wrapMetric(n.id, side)
	via, ep, ok := n.bestEndpoint(n.id, metric)
	if !ok {
		return
	}
	n.seq++
	key := provKey{Origin: n.id, Seq: n.seq}
	n.prov[key] = n.id // sentinel: we are the origin
	next, okN := n.paths[via].next(via, ep)
	if !okN {
		return
	}
	n.net.Send(phys.Message{From: n.id, To: next, Kind: KindDiscover, Payload: discoverPayload{
		Origin: n.id, Dir: side, Seq: key.Seq, PrevHop: n.id,
		Path: via, Toward: ep, Hops: 1,
	}})
}

func (n *Node) handleDiscover(m phys.Message) {
	dp, ok := m.Payload.(discoverPayload)
	if !ok || dp.Origin == n.id {
		return
	}
	dp.Hops++
	if dp.Hops > discoverTTL {
		return
	}
	key := provKey{Origin: dp.Origin, Seq: dp.Seq}
	n.prov[key] = dp.PrevHop
	// Mid-transit: keep following the committed path.
	if dp.Toward != n.id {
		if e, exists := n.paths[dp.Path]; exists {
			if next, okN := e.next(dp.Path, dp.Toward); okN {
				n.net.Send(phys.Message{From: n.id, To: next, Kind: KindDiscover, Payload: discoverPayload{
					Origin: dp.Origin, Dir: dp.Dir, Seq: dp.Seq, PrevHop: n.id,
					Path: dp.Path, Toward: dp.Toward, Hops: dp.Hops,
				}})
				return
			}
		}
		// Committed path broken here: the discovery dies; the origin will
		// re-probe on its next refresh.
		return
	}
	// At a committed endpoint: re-decide with strict metric improvement so
	// the endpoint sequence is monotone and the walk terminates.
	metric := wrapMetric(dp.Origin, dp.Dir)
	if via, ep, found := n.bestEndpoint(dp.Origin, metric); found && metric(ep) < metric(n.id) {
		if next, okN := n.paths[via].next(via, ep); okN {
			n.net.Send(phys.Message{From: n.id, To: next, Kind: KindDiscover, Payload: discoverPayload{
				Origin: dp.Origin, Dir: dp.Dir, Seq: dp.Seq, PrevHop: n.id,
				Path: via, Toward: ep, Hops: dp.Hops,
			}})
			return
		}
	}
	// We are the sought extremal node: adopt the origin as wrap partner and
	// acknowledge along the provisional reverse state, converting it into
	// the real wrap path.
	wrap := PathID{A: dp.Origin, B: n.id, Seq: dp.Seq}
	if wrap.A > wrap.B {
		wrap.A, wrap.B = wrap.B, wrap.A
	}
	e := &pathEntry{confirmed: true}
	if dp.Origin == wrap.A {
		e.toA, e.hasToA = dp.PrevHop, true
	} else {
		e.toB, e.hasToB = dp.PrevHop, true
	}
	n.paths[wrap] = e
	if dp.Dir == ids.Left {
		// The origin is our ring successor.
		if !n.hasWrapRight || wrapMetric(n.id, ids.Right)(dp.Origin) < wrapMetric(n.id, ids.Right)(n.wrapRight) {
			n.wrapRight, n.hasWrapRight = dp.Origin, true
		}
	} else {
		if !n.hasWrapLeft || wrapMetric(n.id, ids.Left)(dp.Origin) < wrapMetric(n.id, ids.Left)(n.wrapLeft) {
			n.wrapLeft, n.hasWrapLeft = dp.Origin, true
		}
	}
	n.vset.Add(dp.Origin)
	n.net.Send(phys.Message{From: n.id, To: dp.PrevHop, Kind: KindDiscoverAck, Payload: discoverAckPayload{
		Path: wrap, Key: key, Dir: dp.Dir, PrevHop: n.id,
	}})
}

func (n *Node) handleDiscoverAck(m phys.Message) {
	da, ok := m.Payload.(discoverAckPayload)
	if !ok {
		return
	}
	toward, known := n.prov[da.Key]
	if !known {
		return
	}
	endpoint := da.Path.Other(da.Key.Origin)
	e := n.paths[da.Path]
	if e == nil {
		e = &pathEntry{}
		n.paths[da.Path] = e
	}
	// Toward the discovered endpoint: the hop the ack came from.
	if endpoint == da.Path.A {
		e.toA, e.hasToA = da.PrevHop, true
	} else {
		e.toB, e.hasToB = da.PrevHop, true
	}
	if da.Key.Origin == n.id {
		e.confirmed = true
		// Discovery complete: adopt the endpoint as wrap partner.
		side := da.Dir
		metric := wrapMetric(n.id, side)
		if side == ids.Left {
			if !n.hasWrapLeft || metric(endpoint) < metric(n.wrapLeft) {
				n.wrapLeft, n.hasWrapLeft = endpoint, true
			}
		} else {
			if !n.hasWrapRight || metric(endpoint) < metric(n.wrapRight) {
				n.wrapRight, n.hasWrapRight = endpoint, true
			}
		}
		n.vset.Add(endpoint)
		return
	}
	// Toward the origin: the provisional hop; forward the ack along it.
	if da.Key.Origin == da.Path.A {
		e.toA, e.hasToA = toward, true
	} else {
		e.toB, e.hasToB = toward, true
	}
	n.net.Send(phys.Message{From: n.id, To: toward, Kind: KindDiscoverAck, Payload: discoverAckPayload{
		Path: da.Path, Key: da.Key, Dir: da.Dir, PrevHop: n.id,
	}})
}

func (n *Node) handleSetup(m phys.Message) {
	sp, ok := m.Payload.(setupPayload)
	if !ok {
		return
	}
	far := sp.NewPath.Other(sp.Target)
	// Install state for the new path at this hop: toward the far endpoint
	// through the physical node this frame came from.
	e := n.paths[sp.NewPath]
	if e == nil {
		e = &pathEntry{}
		n.paths[sp.NewPath] = e
	}
	if far == sp.NewPath.A {
		e.toA, e.hasToA = sp.PrevHop, true
	} else {
		e.toB, e.hasToB = sp.PrevHop, true
	}
	if sp.Target == n.id {
		// Arrival doubles as the neighbor notification (§4). It proves only
		// the half the setup traveled, so the path is NOT yet confirmed;
		// instead acknowledge end to end — the far endpoint's ack crossing
		// the whole path is what confirms it for us (and ours for them).
		n.vset.Add(far)
		if next, okN := e.next(sp.NewPath, far); okN {
			n.net.Send(phys.Message{From: n.id, To: next, Kind: KindSetupAck, Payload: setupAckPayload{
				Path: sp.NewPath, Toward: far, PrevHop: n.id, Hops: 1,
			}})
		}
		return
	}
	// Forward along the carrier path and record the forward direction too.
	viaEntry, exists := n.paths[sp.ViaPath]
	if !exists {
		return // carrier path unknown here; setup half dies
	}
	next, okNext := viaEntry.next(sp.ViaPath, sp.Target)
	if !okNext {
		return
	}
	if sp.Target == sp.NewPath.A {
		e.toA, e.hasToA = next, true
	} else {
		e.toB, e.hasToB = next, true
	}
	n.net.Send(phys.Message{From: n.id, To: next, Kind: KindSetup, Payload: setupPayload{
		NewPath: sp.NewPath, Target: sp.Target, ViaPath: sp.ViaPath, PrevHop: n.id,
	}})
}

// SendData launches a packet toward dst via greedy endpoint selection.
func (n *Node) SendData(dst ids.ID, body any) bool {
	if dst == n.id {
		if n.OnDeliver != nil {
			n.OnDeliver(Delivery{Origin: n.id, Dst: dst, Body: body})
		}
		return true
	}
	return n.forwardData(dataPayload{Origin: n.id, Dst: dst, Body: body})
}

func (n *Node) handleData(m phys.Message) {
	dp, ok := m.Payload.(dataPayload)
	if !ok {
		return
	}
	dp.Hops++
	if dp.Hops > discoverTTL {
		n.Failed++
		return
	}
	if dp.Dst == n.id {
		if n.OnDeliver != nil {
			n.OnDeliver(Delivery{Origin: dp.Origin, Dst: dp.Dst, Hops: dp.Hops, Body: dp.Body})
		}
		return
	}
	// If we are the committed endpoint (or the committed path is unknown
	// here), re-choose greedily; otherwise continue along the committed
	// path.
	if dp.Toward != n.id {
		if e, exists := n.paths[dp.Path]; exists {
			if next, okN := e.next(dp.Path, dp.Toward); okN {
				n.net.Send(phys.Message{From: n.id, To: next, Kind: KindData, Payload: dp})
				return
			}
		}
	}
	if !n.forwardData(dp) {
		n.Failed++
	}
}

// forwardData picks the path whose far endpoint is virtually closest to the
// destination — VRR's greedy rule — and commits the packet to it.
func (n *Node) forwardData(dp dataPayload) bool {
	bestDist := ids.RingDist(n.id, dp.Dst)
	var bestPath PathID
	var bestToward ids.ID
	found := false
	for p, e := range n.paths {
		if !e.confirmed || (p.A != n.id && p.B != n.id) {
			continue
		}
		ep := p.Other(n.id)
		if ep == n.id {
			continue
		}
		if _, okN := e.next(p, ep); !okN {
			continue
		}
		d := ids.RingDist(ep, dp.Dst)
		if d < bestDist || (found && d == bestDist && pathLess(p, bestPath)) {
			bestDist, bestPath, bestToward, found = d, p, ep, true
		}
	}
	if !found {
		return false
	}
	dp.Path, dp.Toward = bestPath, bestToward
	next, _ := n.paths[bestPath].next(bestPath, bestToward)
	return n.net.Send(phys.Message{From: n.id, To: next, Kind: KindData, Payload: dp})
}

// --- Cluster driver --------------------------------------------------------

// Cluster runs VRR over a network with a convergence oracle.
type Cluster struct {
	Net   phys.Transport
	Nodes map[ids.ID]*Node
	cfg   Config

	minID, maxID ids.ID
	probeStopped bool
}

// NewCluster creates one VRR node per topology node and starts them.
func NewCluster(net phys.Transport, cfg Config) *Cluster {
	c := &Cluster{Net: net, Nodes: make(map[ids.ID]*Node), cfg: cfg}
	nodes := net.Topology().Nodes()
	for _, v := range nodes {
		c.Nodes[v] = NewNode(net, v, cfg)
	}
	if len(nodes) > 0 {
		c.minID = nodes[0]
		c.maxID = nodes[len(nodes)-1]
	}
	for _, v := range nodes {
		c.Nodes[v].Start(sim.Time(net.Engine().Rand().Int63n(8)))
	}
	return c
}

// VirtualGraph returns E_v: an edge for every virtual neighbor relation.
func (c *Cluster) VirtualGraph() *graph.Graph {
	g := graph.New()
	for v, n := range c.Nodes {
		g.AddNode(v)
		for _, u := range n.VirtualNeighbors() {
			g.AddEdge(v, u)
		}
	}
	return g
}

// Consistent reports whether the virtual graph embeds the sorted line and,
// when ring closure is enabled, the extremal nodes have adopted each other
// as wrap partners.
func (c *Cluster) Consistent() bool {
	if len(c.Nodes) < 2 {
		return true
	}
	if !c.VirtualGraph().SupersetOfLine() {
		return false
	}
	// VRR has no reverse-neighbor mechanism, so routing correctness needs
	// every node to know its own line neighbors (two-sided edges), not just
	// one endpoint of each edge.
	nodes := c.Net.Topology().Nodes()
	for i, v := range nodes {
		if i > 0 && !c.Nodes[v].vset.Has(nodes[i-1]) {
			return false
		}
		if i < len(nodes)-1 && !c.Nodes[v].vset.Has(nodes[i+1]) {
			return false
		}
	}
	if !c.cfg.CloseRing || len(c.Nodes) < 3 {
		return true
	}
	min, max := c.Nodes[c.minID], c.Nodes[c.maxID]
	return min.hasWrapLeft && min.wrapLeft == c.maxID &&
		max.hasWrapRight && max.wrapRight == c.minID
}

// RunUntilConsistent drives the simulation until consistency or deadline.
func (c *Cluster) RunUntilConsistent(deadline sim.Time) (sim.Time, bool) {
	eng := c.Net.Engine()
	const checkEvery = sim.Time(8)
	for next := eng.Now() + checkEvery; ; next += checkEvery {
		if next > deadline {
			next = deadline
		}
		eng.RunUntil(next, nil)
		if c.Consistent() {
			return eng.Now(), true
		}
		if next >= deadline || eng.Pending() == 0 {
			return eng.Now(), false
		}
	}
}

// Stop halts all nodes and any attached probes.
func (c *Cluster) Stop() {
	c.probeStopped = true
	for _, n := range c.Nodes {
		n.Stop()
	}
}

// AttachProbe samples the cluster's virtual graph into the convergence
// probe every `every` ticks, starting one interval from now, until Stop —
// the same observation contract as ssr.Cluster.AttachProbe, so VRR
// bootstraps produce comparable trace series.
func (c *Cluster) AttachProbe(p *trace.Probe, every sim.Time) {
	if p == nil || every <= 0 {
		return
	}
	round := 0
	eng := c.Net.Engine()
	var tick func()
	tick = func() {
		if c.probeStopped {
			return
		}
		p.Observe(round, c.VirtualGraph())
		round++
		eng.After(every, tick)
	}
	eng.After(every, tick)
}

// StateSummary returns the per-node path-table sizes — the router-state
// metric the paper's future work calls out for VRR.
func (c *Cluster) StateSummary() []int {
	out := make([]int, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		out = append(out, n.PathCount())
	}
	return out
}

// HasConfirmedPathTo reports whether this node holds a confirmed path to v
// (diagnostic accessor for experiments and tests).
func (n *Node) HasConfirmedPathTo(v ids.ID) bool {
	_, ok := n.pathTo(v)
	return ok
}

// PathsBetween counts path entries at this node whose endpoints are exactly
// {x, y} (diagnostic accessor).
func (n *Node) PathsBetween(x, y ids.ID) (total, confirmed int) {
	for p, e := range n.paths {
		if (p.A == x && p.B == y) || (p.A == y && p.B == x) {
			total++
			if e.confirmed {
				confirmed++
			}
		}
	}
	return total, confirmed
}
