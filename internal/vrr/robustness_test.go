package vrr

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
)

func TestPathLessTotalOrder(t *testing.T) {
	a := PathID{A: 1, B: 5, Seq: 1}
	b := PathID{A: 1, B: 5, Seq: 2}
	c := PathID{A: 1, B: 7, Seq: 0}
	d := PathID{A: 2, B: 3, Seq: 0}
	cases := []struct {
		x, y PathID
		want bool
	}{
		{a, b, true}, {b, a, false},
		{a, c, true}, {c, a, false},
		{c, d, true}, {d, c, false},
		{a, a, false},
	}
	for _, tc := range cases {
		if got := pathLess(tc.x, tc.y); got != tc.want {
			t.Errorf("pathLess(%v,%v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestPathEntryNext(t *testing.T) {
	p := PathID{A: 1, B: 9}
	e := &pathEntry{toA: 3, hasToA: true}
	if next, ok := e.next(p, 1); !ok || next != 3 {
		t.Errorf("next toward A = %v,%v", next, ok)
	}
	if _, ok := e.next(p, 9); ok {
		t.Error("missing direction must report !ok")
	}
}

func TestMalformedFramesIgnored(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	net.Engine().RunUntil(64, nil)
	for _, kind := range []string{KindSetup, KindData, KindDiscover, KindDiscoverAck} {
		net.Send(phys.Message{From: 1, To: 2, Kind: kind, Payload: "garbage"})
	}
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	if c.Nodes[2].Failed != 0 {
		t.Error("garbage frames must not count as routing failures")
	}
	if !c.Nodes[2].vset.Has(1) {
		t.Error("node state corrupted by garbage frames")
	}
}

func TestDataTTLDropsLoopingPacket(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	net.Engine().RunUntil(64, nil)
	// Hand-craft a packet that has already exceeded the TTL.
	dp := dataPayload{Origin: 1, Dst: 9999, Hops: discoverTTL + 1}
	net.Send(phys.Message{From: 1, To: 2, Kind: KindData, Payload: dp})
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	if c.Nodes[2].Failed != 1 {
		t.Errorf("TTL-expired packet should be dropped and counted, Failed=%d", c.Nodes[2].Failed)
	}
}

func TestSetupOnUnknownCarrierDies(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2, 3})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	net.Engine().RunUntil(64, nil)
	// A setup whose carrier path is unknown at node 2 must die there
	// without installing forward state beyond the reverse pointer.
	bogusCarrier := PathID{A: 1, B: 3, Seq: 999}
	newPath := PathID{A: 1, B: 3, Seq: 1000}
	net.Send(phys.Message{From: 1, To: 2, Kind: KindSetup, Payload: setupPayload{
		NewPath: newPath, Target: 3, ViaPath: bogusCarrier, PrevHop: 1,
	}})
	net.Engine().RunUntil(net.Engine().Now()+64, nil)
	e := c.Nodes[2].paths[newPath]
	if e == nil {
		t.Fatal("reverse state should have been installed at the dying hop")
	}
	if _, ok := e.next(newPath, 3); ok {
		t.Error("forward state must not exist past the dead carrier")
	}
	if c.Nodes[3].paths[newPath] != nil {
		t.Error("setup must not travel past the dead carrier")
	}
}

func TestSideEmptyExcludesWrapPartner(t *testing.T) {
	topo := graph.Line([]ids.ID{10, 20, 30})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{CloseRing: true})
	if _, ok := c.RunUntilConsistent(200000); !ok {
		t.Fatal("no convergence")
	}
	min := c.Nodes[10]
	if !min.hasWrapLeft {
		t.Fatal("min should hold a wrap partner")
	}
	if !min.sideEmpty(ids.Left) {
		t.Error("the wrap partner must not count as a line-left neighbor")
	}
	if min.sideEmpty(ids.Right) {
		t.Error("min has a real right neighbor")
	}
}

func TestBackoffLimitsReintroductions(t *testing.T) {
	topo := graph.New()
	topo.AddEdge(1, 3)
	topo.AddEdge(2, 3)
	net := newNet(t, topo, 5)
	c := NewCluster(net, Config{})
	// Long run: node 3 keeps re-introducing (1,2); with exponential backoff
	// the number of distinct setup paths for the pair stays logarithmic in
	// elapsed time rather than linear.
	net.Engine().RunUntil(120000, nil)
	pairPaths := 0
	for p := range c.Nodes[3].paths {
		if p.A == 1 && p.B == 2 {
			pairPaths++
		}
	}
	// 120000 ticks / (32·16) = ~230 fixed-interval reintroductions; with
	// backoff the count must stay in single digits.
	if pairPaths > 10 {
		t.Errorf("backoff failed: %d paths created for one pair", pairPaths)
	}
	if pairPaths == 0 {
		t.Error("the pair was never introduced at all")
	}
}

func TestStopHaltsBeaconsAndTicks(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	net.Engine().RunUntil(200, nil)
	c.Stop()
	before := net.Counters().Total()
	net.Engine().RunUntil(net.Engine().Now()+2000, nil)
	after := net.Counters().Total()
	if after > before+4 { // allow in-flight stragglers
		t.Errorf("traffic continued after Stop: %d -> %d", before, after)
	}
}

func TestDuplicateSetupAckTolerated(t *testing.T) {
	// A jitter-duplicated SetupAck must be idempotent: the path stays
	// confirmed and the vset gains the endpoint exactly once.
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	net.Engine().RunUntil(64, nil)
	n2 := c.Nodes[2]
	var path PathID
	found := false
	for p, e := range n2.paths {
		if e.confirmed {
			path, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no confirmed path to replay an ack against")
	}
	before := n2.vset.Len()
	for i := 0; i < 2; i++ {
		net.Send(phys.Message{From: 1, To: 2, Kind: KindSetupAck, Payload: setupAckPayload{
			Path: path, Toward: 2, PrevHop: 1,
		}})
		net.Engine().RunUntil(net.Engine().Now()+8, nil)
	}
	if !n2.paths[path].confirmed {
		t.Error("duplicate ack un-confirmed the path")
	}
	if n2.vset.Len() != before {
		t.Errorf("vset grew from %d to %d on duplicate acks", before, n2.vset.Len())
	}
}

func TestJitterReorderingConverges(t *testing.T) {
	// With per-frame jitter larger than the hop latency, setup halves and
	// their acks arrive out of order; VRR must still converge and must not
	// leave unconfirmed path state growing without bound.
	topo := graph.Line([]ids.ID{10, 20, 30, 40, 50})
	net := phys.NewNetwork(sim.NewEngine(9), topo, phys.WithJitter(8))
	c := NewCluster(net, Config{})
	if at, ok := c.RunUntilConsistent(200000); !ok {
		t.Fatalf("VRR did not converge under jitter by t=%d", at)
	}
	for v, n := range c.Nodes {
		unconfirmed := 0
		for _, e := range n.paths {
			if !e.confirmed {
				unconfirmed++
			}
		}
		if unconfirmed > 64 {
			t.Errorf("node %v holds %d unconfirmed paths", v, unconfirmed)
		}
	}
	c.Stop()
}
