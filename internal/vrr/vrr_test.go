package vrr

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/vring"
)

func newNet(t *testing.T, topo *graph.Graph, seed int64) *phys.Network {
	t.Helper()
	return phys.NewNetwork(sim.NewEngine(seed), topo)
}

func TestBootstrapOnLine(t *testing.T) {
	topo := graph.Line([]ids.ID{10, 20, 30, 40})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	if at, ok := c.RunUntilConsistent(60000); !ok {
		t.Fatalf("VRR did not converge by t=%d", at)
	}
}

func TestBootstrapOnRandomTopologies(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		topo, err := graph.Generate(graph.TopoER, 22, graph.RandomIDs, seed)
		if err != nil {
			t.Fatal(err)
		}
		net := newNet(t, topo, seed)
		c := NewCluster(net, Config{})
		if _, ok := c.RunUntilConsistent(200000); !ok {
			t.Errorf("seed %d: VRR not consistent", seed)
		}
		c.Stop()
	}
}

func TestNoFloodNoRepresentativeNeeded(t *testing.T) {
	// E11: linearized VRR converges with Representative disabled; the only
	// message kinds are hellos, setups and data.
	topo, _ := graph.Generate(graph.TopoRegular, 20, graph.RandomIDs, 5)
	net := newNet(t, topo, 5)
	c := NewCluster(net, Config{Representative: false})
	if _, ok := c.RunUntilConsistent(200000); !ok {
		t.Fatal("VRR did not converge without a representative")
	}
	for _, kc := range net.Counters().Snapshot() {
		switch kc.Kind {
		case phys.BeaconKind, KindSetup, KindSetupAck, KindData:
		default:
			if kc.Count > 0 && kc.Kind[:5] != "drop:" {
				t.Errorf("unexpected message kind %s", kc.Kind)
			}
		}
	}
}

func TestSetupInstallsPathState(t *testing.T) {
	// Physical star 1-3, 2-3: node 3's virtual neighbors 1 and 2 are both
	// on its left, so Algorithm 1 makes 3 introduce them. The setup must
	// leave (1,2) forwarding state at all three nodes with 3 as pivot.
	topo := graph.New()
	topo.AddEdge(1, 3)
	topo.AddEdge(2, 3)
	net := newNet(t, topo, 2)
	c := NewCluster(net, Config{})
	if _, ok := c.RunUntilConsistent(60000); !ok {
		t.Fatal("no convergence")
	}
	if !c.Nodes[1].vset.Has(2) || !c.Nodes[2].vset.Has(1) {
		t.Error("endpoints did not learn each other")
	}
	foundPivot := false
	for p := range c.Nodes[3].paths {
		if p.A == 1 && p.B == 2 {
			e := c.Nodes[3].paths[p]
			if e.hasToA && e.hasToB {
				foundPivot = true
			}
		}
	}
	if !foundPivot {
		t.Error("pivot node lacks two-sided (1,2) path state")
	}
}

func TestDataRoutingAfterConvergence(t *testing.T) {
	topo, _ := graph.Generate(graph.TopoER, 18, graph.RandomIDs, 7)
	net := newNet(t, topo, 7)
	c := NewCluster(net, Config{CloseRing: true})
	if _, ok := c.RunUntilConsistent(400000); !ok {
		t.Fatal("no convergence")
	}
	c.Stop()
	nodes := topo.Nodes()
	delivered := 0
	attempts := 0
	for i := 0; i < len(nodes); i++ {
		src, dst := nodes[i], nodes[(i+len(nodes)/2)%len(nodes)]
		if src == dst {
			continue
		}
		attempts++
		got := false
		c.Nodes[dst].OnDeliver = func(d Delivery) {
			if d.Origin == src {
				got = true
			}
		}
		if !c.Nodes[src].SendData(dst, nil) {
			continue
		}
		net.Engine().RunUntil(net.Engine().Now()+5000, func() bool { return got })
		if got {
			delivered++
		}
	}
	if delivered != attempts {
		t.Errorf("delivered %d of %d", delivered, attempts)
	}
}

func TestSelfDelivery(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	got := false
	c.Nodes[1].OnDeliver = func(d Delivery) { got = d.Dst == 1 }
	if !c.Nodes[1].SendData(1, nil) || !got {
		t.Error("self delivery must be immediate")
	}
}

func TestRepresentativePropagates(t *testing.T) {
	// Baseline machinery: hello piggyback spreads the largest address.
	topo := graph.Line([]ids.ID{1, 2, 3, 4, 5})
	net := newNet(t, topo, 3)
	c := NewCluster(net, Config{Representative: true})
	net.Engine().RunUntil(2000, nil)
	if got := c.Nodes[1].Representative(); got != 5 {
		t.Errorf("node 1 representative = %v, want 5", got)
	}
}

// TestLoopyVsetResolvedByLinearization injects the Fig. 1 loopy state as
// VRR virtual neighbor sets and verifies the linearized bootstrap
// straightens it without any representative mechanism (E11 + E1).
func TestLoopyVsetResolvedByLinearization(t *testing.T) {
	loopy := vring.LoopyExample()
	topo := loopy.ToGraph()
	net := newNet(t, topo, 9)
	c := NewCluster(net, Config{Representative: false})
	// The physical neighbors equal the loopy virtual edges, so the injected
	// state IS the initial vset after discovery.
	if _, ok := c.RunUntilConsistent(200000); !ok {
		t.Fatalf("loopy vsets not linearized: %v", vring.AnalyzeLine(c.VirtualGraph()))
	}
}

func TestStateSummaryAndAccessors(t *testing.T) {
	topo := graph.Line([]ids.ID{1, 2, 3})
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	c.RunUntilConsistent(60000)
	sizes := c.StateSummary()
	if len(sizes) != 3 {
		t.Fatalf("StateSummary = %v", sizes)
	}
	for _, s := range sizes {
		if s == 0 {
			t.Error("every node should hold some path state")
		}
	}
	if c.Nodes[1].ID() != 1 {
		t.Error("ID broken")
	}
	if c.Nodes[2].PathCount() == 0 {
		t.Error("PathCount broken")
	}
	vn := c.Nodes[2].VirtualNeighbors()
	if len(vn) < 2 {
		t.Errorf("node 2 virtual neighbors = %v", vn)
	}
}

func TestConsistentDegenerate(t *testing.T) {
	topo := graph.NewWithNodes(9)
	net := newNet(t, topo, 1)
	c := NewCluster(net, Config{})
	if !c.Consistent() {
		t.Error("single node trivially consistent")
	}
}

func TestPathIDOther(t *testing.T) {
	p := PathID{A: 1, B: 5}
	if p.Other(1) != 5 || p.Other(5) != 1 {
		t.Error("Other broken")
	}
}
