package perf

import (
	"testing"
	"time"

	"repro/internal/trace"
)

type capture struct{ events []trace.Event }

func (c *capture) Emit(e trace.Event) { c.events = append(c.events, e) }

// TestNilProfilerIsSafe pins the "nil means off" idiom: every method on a
// nil profiler is a no-op, and New(nil) collapses to nil.
func TestNilProfilerIsSafe(t *testing.T) {
	if New(nil) != nil {
		t.Fatal("New(nil) should return nil")
	}
	var p *Profiler
	p.RoundStart(0)
	p.PhaseTime(0, "prepare", time.Millisecond)
	p.ShardTime(0, "execute", 3, time.Millisecond)
	p.RoundEnd(0)
	p.End(0, "snapshot/rebuild", "memory", p.Start())
}

func find(evs []trace.Event, kind string) (trace.Event, bool) {
	for _, e := range evs {
		if e.Type == trace.EvSpan && e.Kind == kind {
			return e, true
		}
	}
	return trace.Event{}, false
}

// TestProfilerEmitsSpans drives one synthetic round and checks every span
// family comes out with the right kind, aux and value.
func TestProfilerEmitsSpans(t *testing.T) {
	c := &capture{}
	p := New(c)
	p.RoundStart(7)
	p.PhaseTime(7, "prepare", 5*time.Millisecond)
	p.ShardTime(7, "prepare", 0, 3*time.Millisecond)
	p.ShardTime(7, "prepare", 1, time.Millisecond)
	p.End(7, "snapshot/rebuild", "memory", p.Start())
	p.RoundEnd(7)

	for _, e := range c.events {
		if e.Type != trace.EvSpan {
			t.Fatalf("non-span event emitted: %s", e)
		}
		if e.T != 7 {
			t.Fatalf("span timestamp %d, want round 7: %s", e.T, e)
		}
	}
	ph, ok := find(c.events, "phase/prepare")
	if !ok || ph.Value != float64(5*time.Millisecond) {
		t.Fatalf("phase/prepare span wrong: %v %v", ph, ok)
	}
	sh, ok := find(c.events, "shard/prepare")
	if !ok || sh.Aux != "0" || sh.Value != float64(3*time.Millisecond) {
		t.Fatalf("shard/prepare span wrong: %v %v", sh, ok)
	}
	if sr, ok := find(c.events, "snapshot/rebuild"); !ok || sr.Aux != "memory" {
		t.Fatalf("snapshot/rebuild span wrong: %v %v", sr, ok)
	}
	// Imbalance: busy 3ms and 1ms -> mean 2ms, max 3ms, ratio 1.5.
	imb, ok := find(c.events, "imbalance")
	if !ok || imb.Value != 1.5 {
		t.Fatalf("imbalance span wrong: %v %v", imb, ok)
	}
	for _, kind := range []string{"allocs", "mallocs", "gc"} {
		if e, ok := find(c.events, kind); !ok || e.Value < 0 {
			t.Fatalf("%s span missing or negative: %v %v", kind, e, ok)
		}
	}
}

// TestProfilerResetsPerRound pins that the imbalance accumulator is
// per-round: a second round's ratio reflects only its own shard times.
func TestProfilerResetsPerRound(t *testing.T) {
	c := &capture{}
	p := New(c)
	p.RoundStart(0)
	p.ShardTime(0, "execute", 0, 10*time.Millisecond)
	p.ShardTime(0, "execute", 1, 0)
	p.RoundEnd(0)

	c.events = nil
	p.RoundStart(1)
	p.ShardTime(1, "execute", 0, 2*time.Millisecond)
	p.ShardTime(1, "execute", 1, 2*time.Millisecond)
	p.RoundEnd(1)
	imb, ok := find(c.events, "imbalance")
	if !ok || imb.Value != 1.0 {
		t.Fatalf("round 2 imbalance = %v (ok=%v), want 1.0", imb.Value, ok)
	}
}
