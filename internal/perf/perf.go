// Package perf is the deterministic-safe performance profiler: a pure
// span emitter that measures wall time, per-shard busy time, load
// imbalance and allocation deltas around the sharded executor's phases
// and writes them as trace.EvSpan events.
//
// The determinism contract: a Profiler only *observes*. It never feeds a
// measurement back into protocol state, so a profiled run and an
// unprofiled run of the same seed produce byte-identical graphs, stats
// and — after stripping EvSpan events — byte-identical trace streams.
// Span *values* are wall-clock and vary run to run; span *ordering* is
// deterministic because every method is called from the executor's
// sequential control goroutine (per-shard durations are recorded
// race-free during the parallel phases and reported in shard order after
// the phase barrier).
//
// The profiler keeps no aggregates: trace.Analysis.Perf() is the single
// source of truth for totals, so live runs and replayed JSONL traces
// yield the same report.
package perf

import (
	"runtime"
	"strconv"
	"time"

	"repro/internal/trace"
)

// Profiler emits EvSpan events into a tracer. The nil Profiler is the
// disabled state: every method is nil-receiver-safe, so call sites need
// no guards and a nil Profiler costs one predictable branch.
//
// A Profiler is single-goroutine: the sharded runner calls its methods
// only from the sequential control path (see sim.ShardProfiler).
type Profiler struct {
	tr trace.Tracer

	shardBusy []float64 // per-round parallel busy ns, indexed by shard
	m0        runtime.MemStats
}

// New returns a profiler emitting into tr, or nil (disabled) when tr is
// nil — preserving the trace package's "nil means off" idiom.
func New(tr trace.Tracer) *Profiler {
	if tr == nil {
		return nil
	}
	return &Profiler{tr: tr}
}

func (p *Profiler) emit(round int64, kind, aux string, val float64) {
	p.tr.Emit(trace.Event{T: round, Type: trace.EvSpan, Kind: kind, Aux: aux, Value: val})
}

// RoundStart opens a round: resets the per-shard busy accumulators and
// latches the allocator counters for the end-of-round delta.
func (p *Profiler) RoundStart(round int) {
	if p == nil {
		return
	}
	for i := range p.shardBusy {
		p.shardBusy[i] = 0
	}
	runtime.ReadMemStats(&p.m0)
}

// PhaseTime records one phase's wall time as a "phase/<name>" span.
// The runner's phase names are begin, prepare, execute, waves, finish,
// end; prepare, execute and waves are the parallel share (see
// PerfReport.SeqShare).
func (p *Profiler) PhaseTime(round int, phase string, d time.Duration) {
	if p == nil {
		return
	}
	p.emit(int64(round), "phase/"+phase, "", float64(d.Nanoseconds()))
}

// ShardTime records one shard's busy time inside a parallel phase as a
// "shard/<phase>" span (Aux: the shard index), and feeds the round's
// imbalance accumulator. Called after the phase barrier, in shard order.
func (p *Profiler) ShardTime(round int, phase string, shard int, d time.Duration) {
	if p == nil {
		return
	}
	for shard >= len(p.shardBusy) {
		p.shardBusy = append(p.shardBusy, 0)
	}
	ns := float64(d.Nanoseconds())
	p.shardBusy[shard] += ns
	p.emit(int64(round), "shard/"+phase, strconv.Itoa(shard), ns)
}

// RoundEnd closes a round: emits the load-imbalance ratio (max/mean of
// per-shard parallel busy time — 1.0 is perfectly balanced) and the
// allocator deltas since RoundStart ("allocs" bytes, "mallocs" objects,
// "gc" completed cycles).
func (p *Profiler) RoundEnd(round int) {
	if p == nil {
		return
	}
	if len(p.shardBusy) > 0 {
		var sum, max float64
		for _, b := range p.shardBusy {
			sum += b
			if b > max {
				max = b
			}
		}
		if mean := sum / float64(len(p.shardBusy)); mean > 0 {
			p.emit(int64(round), "imbalance", "", max/mean)
		}
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	p.emit(int64(round), "allocs", "", float64(m1.TotalAlloc-p.m0.TotalAlloc))
	p.emit(int64(round), "mallocs", "", float64(m1.Mallocs-p.m0.Mallocs))
	p.emit(int64(round), "gc", "", float64(m1.NumGC-p.m0.NumGC))
}

// Start opens an ad-hoc span; pair with End. On a nil profiler it
// returns the zero time and End ignores it.
func (p *Profiler) Start() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes an ad-hoc span opened by Start, e.g. the per-round CSR
// snapshot rebuild ("snapshot/rebuild", Aux: the variant).
func (p *Profiler) End(round int, kind, aux string, start time.Time) {
	if p == nil {
		return
	}
	p.emit(int64(round), kind, aux, float64(time.Since(start).Nanoseconds()))
}
