// Package sroute implements source routes, the virtual links of SSR.
//
// A source route is an ordered list of node identifiers starting at the
// route's owner and ending at the destination; each consecutive pair must be
// a physical link. SSR nodes exchange messages containing source routes,
// store them in their caches, and "may append (parts of) them to each other
// to create new source routes" (§1). Appending two routes and eliding loops
// is exactly how an update "A→C" received by B becomes B's route "B→C" in
// the ISPRP example of §3, and how linearization's neighbor-notification
// pointers are materialized for SSR in §4.
package sroute

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/ids"
)

// Route is a source route: a path of node identifiers from source to
// destination, inclusive. A valid route has at least one hop and no
// repeated nodes.
type Route []ids.ID

// Errors returned by route constructors.
var (
	ErrTooShort   = errors.New("sroute: route needs at least two nodes")
	ErrNoJoin     = errors.New("sroute: routes do not share the join node")
	ErrHasCycle   = errors.New("sroute: route revisits a node")
	ErrNotAPath   = errors.New("sroute: consecutive nodes are not physically linked")
	ErrWrongStart = errors.New("sroute: route does not start at the expected node")
)

// New validates and returns a route over the given nodes.
func New(nodes ...ids.ID) (Route, error) {
	if len(nodes) < 2 {
		return nil, ErrTooShort
	}
	seen := ids.NewSet()
	for _, v := range nodes {
		if !seen.Add(v) {
			return nil, ErrHasCycle
		}
	}
	return Route(nodes), nil
}

// Src returns the first node of the route.
func (r Route) Src() ids.ID { return r[0] }

// Dst returns the last node of the route.
func (r Route) Dst() ids.ID { return r[len(r)-1] }

// Hops returns the number of physical transmissions the route costs.
func (r Route) Hops() int {
	if len(r) == 0 {
		return 0
	}
	return len(r) - 1
}

// Contains reports whether v appears on the route. Every such v is a
// potential intermediate destination for SSR's greedy routing (§1: "all
// nodes that are part of a source route in the cache can be viewed as
// potential destinations, too").
func (r Route) Contains(v ids.ID) bool {
	for _, x := range r {
		if x == v {
			return true
		}
	}
	return false
}

// IndexOf returns the position of v on the route, or -1.
func (r Route) IndexOf(v ids.ID) int {
	for i, x := range r {
		if x == v {
			return i
		}
	}
	return -1
}

// Prefix returns the sub-route from the source up to and including v.
// It returns nil if v is not on the route or is the source itself.
func (r Route) Prefix(v ids.ID) Route {
	i := r.IndexOf(v)
	if i < 1 {
		return nil
	}
	return append(Route(nil), r[:i+1]...)
}

// Suffix returns the sub-route from v (inclusive) to the destination, i.e.
// the route an intermediate node extracts for onward forwarding. It returns
// nil if v is not on the route or is the destination itself.
func (r Route) Suffix(v ids.ID) Route {
	i := r.IndexOf(v)
	if i < 0 || i == len(r)-1 {
		return nil
	}
	return append(Route(nil), r[i:]...)
}

// Reverse returns the route from destination back to source. Physical links
// are bidirectional, so the reverse of a valid route is valid; SSR uses
// reversed routes to acknowledge messages.
func (r Route) Reverse() Route {
	out := make(Route, len(r))
	for i, v := range r {
		out[len(r)-1-i] = v
	}
	return out
}

// Append concatenates r (ending at the join node) with next (starting at
// the join node), then elides any loops, producing a simple route from
// r.Src() to next.Dst(). This is the route-composition primitive of §1.
func (r Route) Append(next Route) (Route, error) {
	if len(r) < 2 || len(next) < 2 {
		return nil, ErrTooShort
	}
	if r.Dst() != next.Src() {
		return nil, ErrNoJoin
	}
	combined := make(Route, 0, len(r)+len(next)-1)
	combined = append(combined, r...)
	combined = append(combined, next[1:]...)
	return combined.ElideLoops(), nil
}

// ElideLoops removes cycles: whenever a node reappears, the segment between
// its occurrences is cut. The result is a simple route over the same
// physical links, never longer than the input.
func (r Route) ElideLoops() Route {
	pos := make(map[ids.ID]int, len(r))
	out := make(Route, 0, len(r))
	for _, v := range r {
		if i, ok := pos[v]; ok {
			// Cut back to the first occurrence of v.
			for _, cut := range out[i+1:] {
				delete(pos, cut)
			}
			out = out[:i+1]
			continue
		}
		pos[v] = len(out)
		out = append(out, v)
	}
	return out
}

// ValidOn checks that the route is simple and every consecutive pair is an
// edge of the physical graph g.
func (r Route) ValidOn(g *graph.Graph) error {
	if len(r) < 2 {
		return ErrTooShort
	}
	seen := ids.NewSet()
	for _, v := range r {
		if !seen.Add(v) {
			return ErrHasCycle
		}
	}
	for i := 0; i+1 < len(r); i++ {
		if !g.HasEdge(r[i], r[i+1]) {
			return fmt.Errorf("%w: %s-%s", ErrNotAPath, r[i], r[i+1])
		}
	}
	return nil
}

// Clone returns an independent copy.
func (r Route) Clone() Route { return append(Route(nil), r...) }

// Equal reports element-wise equality.
func (r Route) Equal(o Route) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders "a>b>c".
func (r Route) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, ">")
}

// FromPath converts a graph path (as returned by graph.ShortestPath) into a
// route, validating it starts at src.
func FromPath(src ids.ID, path []ids.ID) (Route, error) {
	if len(path) < 2 {
		return nil, ErrTooShort
	}
	if path[0] != src {
		return nil, ErrWrongStart
	}
	return New(path...)
}
