package sroute

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ids"
)

func mustRoute(t *testing.T, nodes ...ids.ID) Route {
	t.Helper()
	r, err := New(nodes...)
	if err != nil {
		t.Fatalf("New(%v): %v", nodes, err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); !errors.Is(err, ErrTooShort) {
		t.Errorf("single node: err = %v, want ErrTooShort", err)
	}
	if _, err := New(); !errors.Is(err, ErrTooShort) {
		t.Errorf("empty: err = %v, want ErrTooShort", err)
	}
	if _, err := New(1, 2, 1); !errors.Is(err, ErrHasCycle) {
		t.Errorf("cycle: err = %v, want ErrHasCycle", err)
	}
	r := mustRoute(t, 1, 2, 3)
	if r.Src() != 1 || r.Dst() != 3 || r.Hops() != 2 {
		t.Errorf("Src/Dst/Hops wrong: %v", r)
	}
	if Route(nil).Hops() != 0 {
		t.Error("nil route has 0 hops")
	}
}

func TestContainsIndexPrefixSuffix(t *testing.T) {
	r := mustRoute(t, 1, 2, 3, 4)
	if !r.Contains(3) || r.Contains(9) {
		t.Error("Contains broken")
	}
	if r.IndexOf(3) != 2 || r.IndexOf(9) != -1 {
		t.Error("IndexOf broken")
	}
	if p := r.Prefix(3); !p.Equal(Route{1, 2, 3}) {
		t.Errorf("Prefix(3) = %v", p)
	}
	if r.Prefix(1) != nil || r.Prefix(9) != nil {
		t.Error("Prefix of src/absent should be nil")
	}
	if s := r.Suffix(2); !s.Equal(Route{2, 3, 4}) {
		t.Errorf("Suffix(2) = %v", s)
	}
	if r.Suffix(4) != nil || r.Suffix(9) != nil {
		t.Error("Suffix of dst/absent should be nil")
	}
	// Prefix/Suffix must be copies.
	p := r.Prefix(3)
	p[0] = 99
	if r[0] == 99 {
		t.Error("Prefix aliases the route")
	}
}

func TestReverse(t *testing.T) {
	r := mustRoute(t, 1, 2, 3)
	rev := r.Reverse()
	if !rev.Equal(Route{3, 2, 1}) {
		t.Errorf("Reverse = %v", rev)
	}
	if !r.Equal(Route{1, 2, 3}) {
		t.Error("Reverse must not mutate the original")
	}
}

func TestAppend(t *testing.T) {
	// The paper's §3 example: B has B>A, learns A>C, derives B>C.
	ba := mustRoute(t, 20, 10) // B=20, A=10
	ac := mustRoute(t, 10, 30) // C=30
	bc, err := ba.Append(ac)
	if err != nil {
		t.Fatal(err)
	}
	if !bc.Equal(Route{20, 10, 30}) {
		t.Errorf("B>C = %v", bc)
	}
	if _, err := ba.Append(mustRoute(t, 99, 30)); !errors.Is(err, ErrNoJoin) {
		t.Errorf("mismatched join: err = %v", err)
	}
	if _, err := (Route{1}).Append(ac); !errors.Is(err, ErrTooShort) {
		t.Errorf("short base: err = %v", err)
	}
}

func TestAppendElidesLoops(t *testing.T) {
	// 1>2>3 + 3>2>4 should elide the 2..3..2 loop to 1>2>4.
	a := mustRoute(t, 1, 2, 3)
	b := mustRoute(t, 3, 2, 4)
	c, err := a.Append(b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(Route{1, 2, 4}) {
		t.Errorf("loop-elided append = %v", c)
	}
	// Full backtrack: 1>2 + 2>1... not constructible (2>1 then dst==src is
	// fine as a route); appending gives a degenerate single-node route.
	d, err := mustRoute(t, 1, 2).Append(mustRoute(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || d[0] != 1 {
		t.Errorf("full backtrack = %v, want [1]", d)
	}
}

func TestElideLoopsNested(t *testing.T) {
	r := Route{1, 2, 3, 4, 2, 5, 1, 6}
	out := r.ElideLoops()
	if !out.Equal(Route{1, 6}) {
		t.Errorf("ElideLoops = %v, want 1>6", out)
	}
	// Elision re-allows nodes cut out of the kept segment.
	r2 := Route{1, 2, 3, 2, 3, 4}
	out2 := r2.ElideLoops()
	if !out2.Equal(Route{1, 2, 3, 4}) {
		t.Errorf("ElideLoops = %v, want 1>2>3>4", out2)
	}
}

func TestValidOn(t *testing.T) {
	g := graph.Line([]ids.ID{1, 2, 3, 4})
	if err := mustRoute(t, 1, 2, 3).ValidOn(g); err != nil {
		t.Errorf("valid route rejected: %v", err)
	}
	if err := mustRoute(t, 1, 3).ValidOn(g); !errors.Is(err, ErrNotAPath) {
		t.Errorf("non-path accepted: %v", err)
	}
	if err := (Route{1}).ValidOn(g); !errors.Is(err, ErrTooShort) {
		t.Errorf("short route: %v", err)
	}
	if err := (Route{1, 2, 1}).ValidOn(g); !errors.Is(err, ErrHasCycle) {
		t.Errorf("cyclic route: %v", err)
	}
}

func TestFromPath(t *testing.T) {
	g := graph.Line([]ids.ID{1, 2, 3})
	p := g.ShortestPath(1, 3)
	r, err := FromPath(1, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Src() != 1 || r.Dst() != 3 {
		t.Errorf("FromPath = %v", r)
	}
	if _, err := FromPath(2, p); !errors.Is(err, ErrWrongStart) {
		t.Errorf("wrong start: %v", err)
	}
	if _, err := FromPath(1, []ids.ID{1}); !errors.Is(err, ErrTooShort) {
		t.Errorf("short path: %v", err)
	}
}

func TestStringCloneEqual(t *testing.T) {
	r := mustRoute(t, 1, 2, 3)
	if r.String() != "1>2>3" {
		t.Errorf("String = %q", r.String())
	}
	c := r.Clone()
	c[0] = 9
	if r[0] == 9 {
		t.Error("Clone aliases")
	}
	if r.Equal(Route{1, 2}) || r.Equal(Route{1, 2, 4}) {
		t.Error("Equal broken")
	}
}

func TestAppendProperty(t *testing.T) {
	// Property: appending two valid routes on a connected graph yields a
	// simple route from a.Src() to b.Dst() that is valid on the graph.
	r := rand.New(rand.NewSource(11))
	nodes := graph.MakeIDs(30, graph.RandomIDs, r)
	g := graph.ErdosRenyi(nodes, 0.2, r)
	f := func(ai, bi, ci uint8) bool {
		a := nodes[int(ai)%len(nodes)]
		b := nodes[int(bi)%len(nodes)]
		c := nodes[int(ci)%len(nodes)]
		if a == b || b == c {
			return true
		}
		p1, _ := FromPath(a, g.ShortestPath(a, b))
		p2, _ := FromPath(b, g.ShortestPath(b, c))
		if p1 == nil || p2 == nil {
			return true
		}
		joined, err := p1.Append(p2)
		if err != nil {
			return false
		}
		if joined.Src() != a {
			return false
		}
		if len(joined) >= 2 {
			if joined.Dst() != c {
				return false
			}
			return joined.ValidOn(g) == nil
		}
		return a == c // fully elided: only legal when endpoints coincide
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestElideLoopsProperty(t *testing.T) {
	// Property: ElideLoops output is simple, no longer than input, and
	// preserves the endpoints.
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		r := make(Route, len(raw))
		for i, x := range raw {
			r[i] = ids.ID(x % 16)
		}
		out := r.ElideLoops()
		if len(out) > len(r) || out[0] != r[0] {
			return false
		}
		if out[len(out)-1] != r[len(r)-1] && r[0] != r[len(r)-1] {
			// Endpoint preserved unless the whole route collapsed to src.
			if !(len(out) == 1 && out[0] == r[0]) {
				return false
			}
		}
		seen := ids.NewSet()
		for _, v := range out {
			if !seen.Add(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
