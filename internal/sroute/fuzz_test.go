package sroute

import (
	"testing"

	"repro/internal/ids"
)

func routeFrom(data []byte) Route {
	r := make(Route, 0, len(data))
	for _, b := range data {
		r = append(r, ids.ID(b%16)) // small pool forces collisions and loops
	}
	return r
}

func assertSimple(t *testing.T, r Route, op string) {
	t.Helper()
	seen := ids.NewSet()
	for _, v := range r {
		if !seen.Add(v) {
			t.Fatalf("%s produced a looped route %v", op, r)
		}
	}
}

// FuzzRouteOps drives the route-composition primitives (the linearize-step
// inputs: New, Append, ElideLoops, Reverse) with arbitrary hop sequences
// and checks the algebraic contracts: results are always simple routes,
// loop elision preserves the endpoints, composition joins source to
// destination.
func FuzzRouteOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4})
	f.Add([]byte{1, 2, 1, 3}, []byte{3, 2, 3})
	f.Add([]byte{}, []byte{5, 5, 5})
	f.Add([]byte{9, 8, 7, 9}, []byte{9, 1})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ra, rb := routeFrom(a), routeFrom(b)

		if r, err := New(ra.Clone()...); err == nil {
			assertSimple(t, r, "New")
			if len(r) < 2 {
				t.Fatalf("New accepted a too-short route %v", r)
			}
		}

		el := ra.ElideLoops()
		if len(ra) > 0 {
			if len(el) == 0 {
				t.Fatalf("ElideLoops emptied a non-empty route %v", ra)
			}
			assertSimple(t, el, "ElideLoops")
			if el.Src() != ra.Src() || el.Dst() != ra.Dst() {
				t.Fatalf("ElideLoops moved endpoints: %v -> %v", ra, el)
			}
			if len(el) > len(ra) {
				t.Fatalf("ElideLoops grew the route: %v -> %v", ra, el)
			}
		}

		if j, err := ra.Append(rb); err == nil {
			assertSimple(t, j, "Append")
			if j.Src() != ra.Src() || j.Dst() != rb.Dst() {
				t.Fatalf("Append endpoints wrong: %v + %v -> %v", ra, rb, j)
			}
		}

		rev := ra.Reverse()
		if len(rev) != len(ra) {
			t.Fatalf("Reverse changed length: %v -> %v", ra, rev)
		}
		rev2 := rev.Reverse()
		if !rev2.Equal(ra) {
			t.Fatalf("double Reverse is not identity: %v -> %v", ra, rev2)
		}
	})
}
