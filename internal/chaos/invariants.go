package chaos

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Protocol is the slice of the bootstrap-protocol contract the harness
// needs. It is declared structurally here (rather than importing the exp
// registry) so exp can depend on chaos without a cycle; exp.Protocol
// satisfies it as-is.
type Protocol interface {
	VirtualGraph() *graph.Graph
	AttachProbe(p *trace.Probe, every sim.Time)
	RunUntilConsistent(deadline sim.Time) (sim.Time, bool)
	Stop()
}

// PendingAuditor is an optional protocol capability: the total count of
// in-flight introduction operations. Implemented by ssr.Cluster; protocols
// without it simply skip the pending-bound invariant.
type PendingAuditor interface {
	PendingOps() int
}

// RouteAuditor is an optional protocol capability: a scan of every cached
// source route counting those with repeated hops. Implemented by
// ssr.Cluster.
type RouteAuditor interface {
	AuditRoutes() (total, looped int)
}

// Invariant names. They match the Kind field of trace.EvInvariant events.
const (
	InvConnectivity = "connectivity"  // virtual graph spans the up-subgraph
	InvPendingBound = "pending-bound" // pending introductions stay bounded
	InvRouteLoops   = "route-loops"   // no cached source route repeats a hop
	InvReconverge   = "reconverge"    // consistency regained after the last fault
)

// Violation is one failed invariant check.
type Violation struct {
	T         sim.Time `json:"t"`
	Invariant string   `json:"invariant"`
	Detail    string   `json:"detail"`
}

// Checker runs the online invariants on a fixed cadence while a schedule
// plays out. Connectivity is only checked in quiet windows — no fault
// window active, no node down, and a grace period elapsed since the last
// disturbance — because during a partition or crash the virtual graph
// legitimately mirrors the broken physical graph; the invariant is that
// the protocol's view never breaks when the network itself is whole.
// Pending-bound and route-loop checks run unconditionally: those must
// hold even mid-fault.
type Checker struct {
	net   *phys.Network
	proto Protocol
	every sim.Time
	grace sim.Time
	bound int // pending-ops ceiling

	down    ids.Set
	active  int // fault windows currently open
	quietAt sim.Time

	checks     map[string]int64
	violations []Violation
	stopped    bool
}

// NewChecker builds a checker over a live network and protocol. every is
// the check cadence, grace the post-disturbance settling time before
// connectivity checks resume, bound the pending-ops ceiling (<= 0 derives
// 16 ops per node — pending introductions self-expire within 8 ticks, so
// mid-fault peaks of a few per node are legitimate; the invariant exists
// to catch unbounded growth, not transient retry pressure).
func NewChecker(net *phys.Network, proto Protocol, every, grace sim.Time, bound int) *Checker {
	if every <= 0 {
		every = 64
	}
	if grace <= 0 {
		grace = 512
	}
	if bound <= 0 {
		bound = 16 * len(net.Nodes())
	}
	return &Checker{
		net: net, proto: proto, every: every, grace: grace, bound: bound,
		down: ids.NewSet(), checks: make(map[string]int64),
	}
}

// Start begins the periodic check chain (first check one cadence from
// now). The chain survives until Stop.
func (c *Checker) Start() {
	c.net.Engine().After(c.every, c.tick)
}

// Stop halts the check chain after the current tick.
func (c *Checker) Stop() { c.stopped = true }

// FaultBegin tells the checker a fault window opened.
func (c *Checker) FaultBegin() { c.active++ }

// FaultEnd tells the checker a fault window closed; connectivity checks
// resume after the grace period (if no other window remains open).
func (c *Checker) FaultEnd() {
	c.active--
	if at := c.net.Engine().Now() + c.grace; at > c.quietAt {
		c.quietAt = at
	}
}

// NoteDown / NoteUp track crashed nodes so connectivity is judged on the
// up-subgraph only.
func (c *Checker) NoteDown(v ids.ID) { c.down.Add(v) }

// NoteUp marks a recovered node.
func (c *Checker) NoteUp(v ids.ID) {
	c.down.Remove(v)
	if at := c.net.Engine().Now() + c.grace; at > c.quietAt {
		c.quietAt = at
	}
}

// Violations returns every failed check so far.
func (c *Checker) Violations() []Violation { return c.violations }

// TotalChecks returns the number of invariant evaluations performed.
func (c *Checker) TotalChecks() int64 {
	var t int64
	for _, v := range c.checks {
		t += v
	}
	return t
}

func (c *Checker) tick() {
	if c.stopped {
		return
	}
	c.checkPending()
	c.checkRouteLoops()
	c.checkConnectivity()
	c.net.Engine().After(c.every, c.tick)
}

func (c *Checker) checkPending() {
	pa, ok := c.proto.(PendingAuditor)
	if !ok {
		return
	}
	p := pa.PendingOps()
	c.record(InvPendingBound, p <= c.bound,
		fmt.Sprintf("%d pending ops exceed bound %d", p, c.bound))
}

func (c *Checker) checkRouteLoops() {
	ra, ok := c.proto.(RouteAuditor)
	if !ok {
		return
	}
	total, looped := ra.AuditRoutes()
	c.record(InvRouteLoops, looped == 0,
		fmt.Sprintf("%d of %d cached routes contain a repeated hop", looped, total))
}

func (c *Checker) checkConnectivity() {
	now := c.net.Engine().Now()
	if c.active > 0 || now < c.quietAt {
		return
	}
	phys := restrict(c.net.Topology(), c.down)
	if !phys.Connected() {
		// The physical network itself is broken (e.g. a scenario that cut
		// links permanently); the protocol cannot be blamed for that.
		return
	}
	virt := restrict(c.proto.VirtualGraph(), c.down)
	for _, v := range phys.Nodes() {
		virt.AddNode(v) // a node the protocol has no edges for must still count
	}
	c.record(InvConnectivity, virt.Connected(),
		fmt.Sprintf("virtual graph splits into %d components over a connected up-subgraph",
			len(virt.Components())))
}

// Final records the end-of-run reconvergence verdict.
func (c *Checker) Final(converged bool, at sim.Time) {
	c.record(InvReconverge, converged,
		fmt.Sprintf("no global consistency by t=%d", int64(at)))
}

// record counts one check, stores the violation if it failed, and emits
// the trace.EvInvariant event (Value 0 pass / 1 violation) so tracectl
// report and the live telemetry counters see every evaluation.
func (c *Checker) record(invariant string, ok bool, detail string) {
	c.checks[invariant]++
	now := c.net.Engine().Now()
	val, aux := 0.0, ""
	if !ok {
		val, aux = 1, detail
		c.violations = append(c.violations, Violation{T: now, Invariant: invariant, Detail: detail})
	}
	if tr := c.net.Tracer(); tr != nil {
		tr.Emit(trace.Event{
			T: int64(now), Type: trace.EvInvariant,
			Kind: invariant, Value: val, Aux: aux,
		})
	}
}

// restrict clones g without the given nodes.
func restrict(g *graph.Graph, without ids.Set) *graph.Graph {
	out := g.Clone()
	for v := range without {
		out.RemoveNode(v)
	}
	return out
}
