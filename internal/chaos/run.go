package chaos

import (
	"fmt"
	"strings"

	"repro/internal/phys"
	"repro/internal/sim"
)

// RunConfig tunes one scenario replay. The zero value picks the defaults
// documented on NewChecker; Deadline <= 0 derives the bootstrap harness's
// usual n*4096 budget.
type RunConfig struct {
	CheckEvery   sim.Time
	Grace        sim.Time
	PendingBound int
	Deadline     sim.Time
}

// ConsistencyProber is an optional protocol capability: an instantaneous
// global-consistency predicate. All four bootstrap clusters implement it.
// When present, Run polls it on the check cadence from the start of the
// run and records the first instant it holds — the cold-start convergence
// metric for scenarios whose faults are active during bootstrap itself.
type ConsistencyProber interface {
	Consistent() bool
}

// Result is the machine-readable outcome of one (scenario, protocol) run.
type Result struct {
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol,omitempty"` // filled in by the bench harness
	Seed     int64  `json:"seed"`

	Converged      bool     `json:"converged"`
	WarmupOK       bool     `json:"warmup_ok"` // consistent before the first fault
	ConvergedAt    sim.Time `json:"converged_at"`
	LastFaultAt    sim.Time `json:"last_fault_at"`
	ReconvergeTime sim.Time `json:"reconverge_time"` // ConvergedAt - LastFaultAt
	// FirstConsistentAt is the earliest instant global consistency was
	// observed (polled on the check cadence), regardless of later faults
	// breaking it again; -1 if consistency was never reached. For
	// cold-start scenarios this is the headline metric: how long bootstrap
	// took while the fault was already active.
	FirstConsistentAt sim.Time `json:"first_consistent_at"`

	WarmupFrames     int64            `json:"warmup_frames"`
	TotalFrames      int64            `json:"total_frames"`
	FaultPhaseFrames int64            `json:"fault_phase_frames"` // frames after warmup
	Drops            map[string]int64 `json:"drops,omitempty"`

	Checks     int64       `json:"checks"`
	Violations []Violation `json:"violations,omitempty"`
}

// Run replays a compiled schedule against a live network and protocol:
// fault-free warmup to consistency, scheduled faults under the online
// invariant checker, then a final drive back to global consistency. The
// protocol must already be running on net (clusters start in their
// constructors); Run stops it before returning.
//
// The engine's RunUntil leaves Now at the last fired event rather than the
// requested deadline, so every phase boundary is pinned with an explicit
// no-op sync event — otherwise the schedule's absolute action times would
// drift relative to the phases.
func Run(scn Scenario, sched *Schedule, net *phys.Network, proto Protocol, cfg RunConfig) Result {
	eng := net.Engine()
	res := Result{Scenario: scn.Name, Seed: sched.Seed, LastFaultAt: sched.LastFault, FirstConsistentAt: -1}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = sim.Time(len(net.Nodes())) * 4096
	}
	settleEnd := sched.LastFault + scn.Settle

	// Cold-start scenarios (Transport: reliable) may carry actions before
	// the warmup boundary; those must be live while the protocol
	// bootstraps, so schedule them — and create the checker they report to —
	// before phase 1 runs. The checker's periodic chain still starts at the
	// warmup boundary; only its fault-window and down-node bookkeeping is
	// fed early.
	checker := NewChecker(net, proto, cfg.CheckEvery, cfg.Grace, cfg.PendingBound)
	for _, a := range sched.Actions {
		if a.At >= scn.Warmup {
			continue
		}
		act := a
		eng.At(act.At, func() { apply(act, net, checker) })
	}

	// Poll instantaneous consistency on the check cadence from the start,
	// recording the first instant it holds. The chain retires itself at the
	// settle boundary; phase 3's convergence drive covers the tail.
	if cp, ok := proto.(ConsistencyProber); ok {
		every := cfg.CheckEvery
		if every <= 0 {
			every = 64
		}
		var poll func()
		poll = func() {
			if res.FirstConsistentAt >= 0 {
				return
			}
			if cp.Consistent() {
				res.FirstConsistentAt = eng.Now()
				return
			}
			if eng.Now()+every <= settleEnd {
				eng.After(every, poll)
			}
		}
		eng.After(every, poll)
	}

	// Phase 1: warmup. Fault-free unless the scenario scheduled cold-start
	// actions above. The protocol bootstraps to consistency (recorded, not
	// enforced — the reconvergence verdict at the end is the acceptance
	// criterion) and the clock is pinned to the warmup boundary.
	_, res.WarmupOK = proto.RunUntilConsistent(scn.Warmup)
	eng.At(scn.Warmup, func() {})
	eng.RunUntil(scn.Warmup, nil)
	res.WarmupFrames = net.Counters().Total()

	// Phase 2: schedule the remaining actions and let them play out under
	// the checker.
	checker.Start()
	for _, a := range sched.Actions {
		if a.At < scn.Warmup {
			continue
		}
		act := a
		eng.At(act.At, func() { apply(act, net, checker) })
	}
	eng.At(settleEnd, func() {})
	eng.RunUntil(settleEnd, nil)

	// Phase 3: drive back to global consistency and record the verdict as
	// the final invariant.
	res.ConvergedAt, res.Converged = proto.RunUntilConsistent(deadline)
	checker.Final(res.Converged, res.ConvergedAt)
	checker.Stop()
	proto.Stop()

	if res.Converged && res.ConvergedAt > res.LastFaultAt {
		res.ReconvergeTime = res.ConvergedAt - res.LastFaultAt
	}
	if res.FirstConsistentAt < 0 && res.Converged {
		res.FirstConsistentAt = res.ConvergedAt
	}
	res.TotalFrames = net.Counters().Total()
	res.FaultPhaseFrames = res.TotalFrames - res.WarmupFrames
	res.Drops = make(map[string]int64)
	for _, kc := range net.Counters().Snapshot() {
		if strings.HasPrefix(kc.Kind, "drop:") && kc.Count > 0 {
			res.Drops[strings.TrimPrefix(kc.Kind, "drop:")] = kc.Count
		}
	}
	res.Checks = checker.TotalChecks()
	res.Violations = checker.Violations()
	return res
}

func apply(a Action, net *phys.Network, checker *Checker) {
	switch a.Kind {
	case ActSetLoss:
		net.SetLoss(a.Prob)
	case ActSetJitter:
		net.SetJitter(a.Jitter)
	case ActSetCorrupt:
		net.SetCorruption(a.Prob)
	case ActCutLink:
		net.RemoveLink(a.U, a.V)
	case ActHealLink:
		net.AddLink(a.U, a.V)
	case ActKill:
		net.FailNode(a.Node)
		checker.NoteDown(a.Node)
	case ActRecover:
		net.RecoverNode(a.Node)
		checker.NoteUp(a.Node)
	case ActFaultBegin:
		checker.FaultBegin()
	case ActFaultEnd:
		checker.FaultEnd()
	default:
		panic(fmt.Sprintf("chaos: unknown action kind %q", a.Kind))
	}
}
