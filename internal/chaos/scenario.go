// Package chaos is the deterministic adversity harness: seeded fault
// scenarios (loss bursts, partitions with heal, crash/recover churn,
// latency jitter, frame corruption) compiled into concrete timed action
// schedules, plus an online invariant checker that watches a bootstrap
// protocol while the faults play out.
//
// Determinism is the whole point. A Scenario is compiled against a
// topology with a dedicated rand.Rand seeded from the scenario seed —
// never the engine RNG — so the same (scenario, topology, seed) triple
// yields a byte-identical Schedule no matter which protocol runs under
// it. That is what makes cross-protocol comparisons fair: linearization,
// ISPRP, VRR and the flood baseline all face exactly the same partition
// cut, the same churn victims at the same instants.
//
// The runner (run.go) replays a Schedule on a live phys.Network while the
// Checker (invariants.go) probes the protocol's virtual graph, pending
// state and route caches, emitting trace.EvInvariant events so tracectl
// report can attribute any violation to its instant and invariant.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/sim"
)

// FaultKind names one family of scheduled adversity.
type FaultKind string

const (
	// LossBurst raises the frame-loss probability to Prob for the window.
	LossBurst FaultKind = "loss-burst"
	// Partition cuts every edge of a randomly drawn connected bipartition
	// at Start and heals all of them at Start+Duration.
	Partition FaultKind = "partition"
	// Churn crashes Victims nodes one after another, each down for
	// Downtime. Victims are drawn so the remaining up-subgraph stays
	// connected, and their windows never overlap — at most one node is
	// down at any instant (the flood baseline's virtual ring minus two
	// nodes would be disconnected by construction, which would turn the
	// connectivity invariant into a tautological failure).
	Churn FaultKind = "churn"
	// JitterSpike adds per-frame delivery jitter of Jitter for the window,
	// reordering frames that share a link.
	JitterSpike FaultKind = "jitter"
	// Corruption garbles delivered frames with probability Prob for the
	// window (payload replaced by phys.Garbled — decode paths must cope).
	Corruption FaultKind = "corruption"
)

// FaultSpec is one declarative fault in a Scenario. Start is absolute
// engine time and must lie at or after the scenario warmup when the
// protocols run over the raw network: the flood baseline transmits only
// during its initial flood epoch and never retransmits, so faults injected
// before warmup would make its non-convergence a property of the schedule,
// not the protocol. A scenario that declares Transport: "reliable" lifts
// the restriction — the rel sublayer retransmits until delivery, so a
// fault active from t=0 tests exactly the cold-start robustness the
// sublayer exists to provide.
type FaultSpec struct {
	Kind     FaultKind `json:"kind"`
	Start    sim.Time  `json:"start"`
	Duration sim.Time  `json:"duration"`
	Prob     float64   `json:"prob,omitempty"`     // loss-burst, corruption
	Jitter   sim.Time  `json:"jitter,omitempty"`   // jitter
	Victims  int       `json:"victims,omitempty"`  // churn
	Downtime sim.Time  `json:"downtime,omitempty"` // churn
}

// TransportReliable marks a scenario as designed for the reliable-delivery
// sublayer (internal/rel). Declaring it relaxes Compile's warmup check so
// faults may start before — or at — t=0 of the bootstrap itself.
const TransportReliable = "reliable"

// Scenario is a named, declarative adversity script. Faults may overlap;
// the Checker suspends connectivity checks while any fault window is
// active and for a grace period after the last one ends.
type Scenario struct {
	Name   string      `json:"name"`
	Warmup sim.Time    `json:"warmup"` // fault-free bootstrap phase
	Settle sim.Time    `json:"settle"` // quiet phase after the last fault
	Faults []FaultSpec `json:"faults"`
	// Transport declares the transport the scenario is designed for: ""
	// (raw phys.Network) or TransportReliable. Reliable scenarios may
	// schedule faults before the warmup boundary — retransmission makes a
	// cold start under sustained loss survivable, and proving that is the
	// point of such scenarios.
	Transport string `json:"transport,omitempty"`
}

// ActionKind names one concrete scheduled operation in a compiled
// Schedule.
type ActionKind string

const (
	ActSetLoss    ActionKind = "set-loss"
	ActSetJitter  ActionKind = "set-jitter"
	ActSetCorrupt ActionKind = "set-corrupt"
	ActCutLink    ActionKind = "cut-link"
	ActHealLink   ActionKind = "heal-link"
	ActKill       ActionKind = "kill"
	ActRecover    ActionKind = "recover"
	// ActFaultBegin / ActFaultEnd bracket each FaultSpec's window so the
	// runner can tell the invariant checker when the network is disturbed
	// without re-deriving fault semantics.
	ActFaultBegin ActionKind = "fault-begin"
	ActFaultEnd   ActionKind = "fault-end"
)

// Action is one concrete timed operation of a compiled schedule.
type Action struct {
	At     sim.Time   `json:"at"`
	Kind   ActionKind `json:"kind"`
	Node   ids.ID     `json:"node,omitempty"` // kill, recover
	U      ids.ID     `json:"u,omitempty"`    // cut-link, heal-link
	V      ids.ID     `json:"v,omitempty"`
	Prob   float64    `json:"prob,omitempty"`
	Jitter sim.Time   `json:"jitter,omitempty"`
	Fault  string     `json:"fault,omitempty"` // originating FaultKind
}

func (a Action) describe() string {
	switch a.Kind {
	case ActSetLoss, ActSetCorrupt:
		return fmt.Sprintf("%s p=%.3f", a.Kind, a.Prob)
	case ActSetJitter:
		return fmt.Sprintf("%s j=%d", a.Kind, int64(a.Jitter))
	case ActCutLink, ActHealLink:
		return fmt.Sprintf("%s {%s,%s}", a.Kind, a.U, a.V)
	case ActKill, ActRecover:
		return fmt.Sprintf("%s %s", a.Kind, a.Node)
	default:
		return fmt.Sprintf("%s %s", a.Kind, a.Fault)
	}
}

// Schedule is a compiled scenario: every fault resolved into concrete
// timed actions against one specific topology. Actions are sorted by time
// with a deterministic tie-break, so the rendering (String) is
// byte-identical for identical (scenario, topology, seed) inputs.
type Schedule struct {
	Scenario  string   `json:"scenario"`
	Seed      int64    `json:"seed"`
	Actions   []Action `json:"actions"`
	LastFault sim.Time `json:"last_fault"` // time of the final action
}

// String renders the schedule deterministically, one action per line.
// The same-seed reproducibility acceptance test compares these renderings
// byte for byte.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s seed=%d actions=%d last=%d\n",
		s.Scenario, s.Seed, len(s.Actions), int64(s.LastFault))
	for _, a := range s.Actions {
		fmt.Fprintf(&b, "  t=%-8d %s\n", int64(a.At), a.describe())
	}
	return b.String()
}

// Compile resolves a scenario against a topology using a dedicated RNG
// seeded by seed. The engine RNG is never consulted, so the schedule is
// identical across protocols and runs.
func Compile(scn Scenario, topo *graph.Graph, seed int64) (*Schedule, error) {
	r := rand.New(rand.NewSource(seed))
	sched := &Schedule{Scenario: scn.Name, Seed: seed, LastFault: scn.Warmup}
	for i, f := range scn.Faults {
		if f.Start < scn.Warmup && scn.Transport != TransportReliable {
			return nil, fmt.Errorf("fault %d (%s) starts at %d, before warmup %d (declare Transport: %q to allow cold-start faults)",
				i, f.Kind, int64(f.Start), int64(scn.Warmup), TransportReliable)
		}
		if f.Duration <= 0 {
			return nil, fmt.Errorf("fault %d (%s) has non-positive duration", i, f.Kind)
		}
		end := f.Start + f.Duration
		acts, err := compileFault(f, topo, r)
		if err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		name := string(f.Kind)
		sched.Actions = append(sched.Actions, Action{At: f.Start, Kind: ActFaultBegin, Fault: name})
		sched.Actions = append(sched.Actions, acts...)
		sched.Actions = append(sched.Actions, Action{At: end, Kind: ActFaultEnd, Fault: name})
	}
	sort.SliceStable(sched.Actions, func(i, j int) bool {
		return sched.Actions[i].At < sched.Actions[j].At
	})
	for _, a := range sched.Actions {
		if a.At > sched.LastFault {
			sched.LastFault = a.At
		}
	}
	return sched, nil
}

func compileFault(f FaultSpec, topo *graph.Graph, r *rand.Rand) ([]Action, error) {
	end := f.Start + f.Duration
	switch f.Kind {
	case LossBurst:
		return []Action{
			{At: f.Start, Kind: ActSetLoss, Prob: f.Prob, Fault: string(f.Kind)},
			{At: end, Kind: ActSetLoss, Prob: 0, Fault: string(f.Kind)},
		}, nil
	case Corruption:
		return []Action{
			{At: f.Start, Kind: ActSetCorrupt, Prob: f.Prob, Fault: string(f.Kind)},
			{At: end, Kind: ActSetCorrupt, Prob: 0, Fault: string(f.Kind)},
		}, nil
	case JitterSpike:
		return []Action{
			{At: f.Start, Kind: ActSetJitter, Jitter: f.Jitter, Fault: string(f.Kind)},
			{At: end, Kind: ActSetJitter, Jitter: 0, Fault: string(f.Kind)},
		}, nil
	case Partition:
		cut := partitionCut(topo, r)
		if len(cut) == 0 {
			return nil, fmt.Errorf("partition: topology has no cuttable bipartition")
		}
		acts := make([]Action, 0, 2*len(cut))
		for _, e := range cut {
			acts = append(acts, Action{At: f.Start, Kind: ActCutLink, U: e.U, V: e.V, Fault: string(f.Kind)})
		}
		for _, e := range cut {
			acts = append(acts, Action{At: end, Kind: ActHealLink, U: e.U, V: e.V, Fault: string(f.Kind)})
		}
		return acts, nil
	case Churn:
		if f.Victims <= 0 {
			return nil, fmt.Errorf("churn: Victims must be positive")
		}
		slot := f.Duration / sim.Time(f.Victims)
		if f.Downtime <= 0 || f.Downtime >= slot {
			return nil, fmt.Errorf("churn: Downtime %d must be positive and below the per-victim slot %d",
				int64(f.Downtime), int64(slot))
		}
		victims, err := churnVictims(topo, f.Victims, r)
		if err != nil {
			return nil, err
		}
		acts := make([]Action, 0, 2*len(victims))
		for i, v := range victims {
			kill := f.Start + sim.Time(i)*slot
			acts = append(acts,
				Action{At: kill, Kind: ActKill, Node: v, Fault: string(f.Kind)},
				Action{At: kill + f.Downtime, Kind: ActRecover, Node: v, Fault: string(f.Kind)})
		}
		return acts, nil
	default:
		return nil, fmt.Errorf("unknown fault kind %q", f.Kind)
	}
}

// partitionCut draws a connected bipartition: a BFS tree from a random
// start claims half the nodes (the BFS side is connected by construction),
// and the cut is every edge crossing the divide, in canonical order.
func partitionCut(topo *graph.Graph, r *rand.Rand) []graph.Edge {
	nodes := topo.Nodes()
	if len(nodes) < 2 {
		return nil
	}
	start := nodes[r.Intn(len(nodes))]
	want := len(nodes) / 2
	if want == 0 {
		want = 1
	}
	side := ids.NewSet(start)
	queue := []ids.ID{start}
	for len(queue) > 0 && side.Len() < want {
		v := queue[0]
		queue = queue[1:]
		for _, u := range topo.NeighborsSorted(v) {
			if side.Len() >= want {
				break
			}
			if side.Add(u) {
				queue = append(queue, u)
			}
		}
	}
	var cut []graph.Edge
	for _, e := range topo.Edges() {
		if side.Has(e.U) != side.Has(e.V) {
			cut = append(cut, e)
		}
	}
	return cut
}

// churnVictims draws distinct victims whose individual removal keeps the
// topology connected (victims are down one at a time, so single-removal
// connectivity is the right criterion).
func churnVictims(topo *graph.Graph, want int, r *rand.Rand) ([]ids.ID, error) {
	cand := topo.Nodes()
	r.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	var victims []ids.ID
	for _, v := range cand {
		if len(victims) == want {
			break
		}
		rest := topo.Clone()
		rest.RemoveNode(v)
		if rest.Connected() {
			victims = append(victims, v)
		}
	}
	if len(victims) < want {
		return nil, fmt.Errorf("churn: only %d of %d victims removable without disconnecting the topology",
			len(victims), want)
	}
	return victims, nil
}

// Suite is the committed scenario suite behind `make bench-chaos`: one
// calm baseline (the message-overhead reference) plus one scenario per
// fault family and a combined stress. All faults start at or after the
// shared warmup so every protocol — including the retransmission-free
// flood baseline — bootstraps undisturbed first.
func Suite() []Scenario {
	const warmup, settle = sim.Time(2048), sim.Time(1024)
	return []Scenario{
		{Name: "calm", Warmup: warmup, Settle: settle},
		{Name: "loss-burst", Warmup: warmup, Settle: settle, Faults: []FaultSpec{
			{Kind: LossBurst, Start: warmup, Duration: 2048, Prob: 0.3},
		}},
		{Name: "partition-heal", Warmup: warmup, Settle: settle, Faults: []FaultSpec{
			{Kind: Partition, Start: warmup, Duration: 2048},
		}},
		{Name: "churn", Warmup: warmup, Settle: settle, Faults: []FaultSpec{
			{Kind: Churn, Start: warmup, Duration: 4096, Victims: 2, Downtime: 1024},
		}},
		{Name: "jitter-reorder", Warmup: warmup, Settle: settle, Faults: []FaultSpec{
			{Kind: JitterSpike, Start: warmup, Duration: 2048, Jitter: 8},
		}},
		{Name: "corruption", Warmup: warmup, Settle: settle, Faults: []FaultSpec{
			{Kind: Corruption, Start: warmup, Duration: 2048, Prob: 0.25},
		}},
		{Name: "stress-combo", Warmup: warmup, Settle: settle, Faults: []FaultSpec{
			{Kind: LossBurst, Start: warmup, Duration: 1536, Prob: 0.15},
			{Kind: JitterSpike, Start: warmup, Duration: 1536, Jitter: 8},
			{Kind: Churn, Start: warmup + 2048, Duration: 2048, Victims: 1, Downtime: 1024},
		}},
	}
}
