package chaos

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/floodboot"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/isprp"
	"repro/internal/phys"
	"repro/internal/rel"
	"repro/internal/sim"
	"repro/internal/ssr"
	"repro/internal/trace"
	"repro/internal/vrr"
)

func ring(n int) *graph.Graph {
	nodes := make([]ids.ID, n)
	for i := range nodes {
		nodes[i] = ids.ID(10 * (i + 1))
	}
	return graph.Ring(nodes)
}

func TestScheduleByteIdenticalForSameSeed(t *testing.T) {
	// The acceptance criterion: the same (scenario, topology, seed) triple
	// must render byte-identical schedules, run after run, so every
	// protocol faces exactly the same adversity.
	topo := ring(16)
	for _, scn := range Suite() {
		a, err := Compile(scn, topo, 42)
		if err != nil {
			t.Fatalf("%s: %v", scn.Name, err)
		}
		b, err := Compile(scn, topo, 42)
		if err != nil {
			t.Fatalf("%s: %v", scn.Name, err)
		}
		if a.String() != b.String() {
			t.Errorf("%s: same seed produced different schedules:\n%s\nvs\n%s",
				scn.Name, a, b)
		}
	}
}

func TestScheduleSeedChangesRandomizedFaults(t *testing.T) {
	// Churn victims and partition sides come from the schedule RNG, so a
	// different seed must (on a symmetric ring, where every node is a
	// candidate) be able to produce a different schedule. Probe a few
	// seeds: at least one must differ from seed 1.
	topo := ring(16)
	scn := Scenario{Name: "churn", Warmup: 256, Settle: 256, Faults: []FaultSpec{
		{Kind: Churn, Start: 256, Duration: 1024, Victims: 2, Downtime: 256},
	}}
	base, err := Compile(scn, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed < 8; seed++ {
		s, err := Compile(scn, topo, seed)
		if err != nil {
			t.Fatal(err)
		}
		if s.String() != base.String() {
			return
		}
	}
	t.Error("six different seeds all drew the identical churn schedule")
}

func TestCompileValidation(t *testing.T) {
	topo := ring(8)
	cases := []struct {
		name string
		scn  Scenario
	}{
		{"fault before warmup", Scenario{Warmup: 1024, Faults: []FaultSpec{
			{Kind: LossBurst, Start: 512, Duration: 256, Prob: 0.5}}}},
		{"non-positive duration", Scenario{Warmup: 0, Faults: []FaultSpec{
			{Kind: LossBurst, Start: 0, Duration: 0, Prob: 0.5}}}},
		{"churn downtime exceeds slot", Scenario{Warmup: 0, Faults: []FaultSpec{
			{Kind: Churn, Start: 0, Duration: 512, Victims: 2, Downtime: 400}}}},
		{"unknown kind", Scenario{Warmup: 0, Faults: []FaultSpec{
			{Kind: "meteor", Start: 0, Duration: 64}}}},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.scn, topo, 1); err == nil {
			t.Errorf("%s: Compile accepted an invalid scenario", tc.name)
		}
	}
}

func TestChurnVictimsKeepTopologyConnected(t *testing.T) {
	// On a line only the endpoints are removable without a split; the
	// victim draw must respect that regardless of shuffle order.
	var nodes []ids.ID
	for i := 1; i <= 8; i++ {
		nodes = append(nodes, ids.ID(i))
	}
	topo := graph.Line(nodes)
	for seed := int64(1); seed <= 10; seed++ {
		sched, err := Compile(Scenario{Name: "churn", Faults: []FaultSpec{
			{Kind: Churn, Start: 0, Duration: 512, Victims: 2, Downtime: 128},
		}}, topo, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range sched.Actions {
			if a.Kind == ActKill && a.Node != 1 && a.Node != 8 {
				t.Errorf("seed %d: interior node %s chosen as churn victim", seed, a.Node)
			}
		}
	}
}

// memSink collects emitted trace events for assertions.
type memSink struct{ events []trace.Event }

func (m *memSink) Emit(e trace.Event) { m.events = append(m.events, e) }

// brokenProto violates every auditable invariant at once: its virtual
// graph has no edges, its pending table is unbounded and its route cache
// reports loops.
type brokenProto struct{ nodes []ids.ID }

func (b *brokenProto) VirtualGraph() *graph.Graph {
	g := graph.New()
	for _, v := range b.nodes {
		g.AddNode(v)
	}
	return g
}
func (b *brokenProto) AttachProbe(*trace.Probe, sim.Time)           {}
func (b *brokenProto) RunUntilConsistent(sim.Time) (sim.Time, bool) { return 0, false }
func (b *brokenProto) Stop()                                        {}
func (b *brokenProto) PendingOps() int                              { return 1 << 20 }
func (b *brokenProto) AuditRoutes() (total, looped int)             { return 5, 2 }

func TestCheckerFlagsBrokenProtocol(t *testing.T) {
	topo := ring(4)
	sink := &memSink{}
	net := phys.NewNetwork(sim.NewEngine(1), topo, phys.WithTracer(sink))
	for _, v := range topo.Nodes() {
		net.Register(v, phys.HandlerFunc(func(phys.Message) {}))
	}
	proto := &brokenProto{nodes: topo.Nodes()}
	c := NewChecker(net, proto, 16, 1, 0)
	c.Start()
	eng := net.Engine()
	eng.At(100, func() {})
	eng.RunUntil(100, nil)
	c.Stop()

	seen := map[string]bool{}
	for _, v := range c.Violations() {
		seen[v.Invariant] = true
	}
	for _, want := range []string{InvConnectivity, InvPendingBound, InvRouteLoops} {
		if !seen[want] {
			t.Errorf("checker missed the %s violation", want)
		}
	}
	// Every check must have surfaced as an EvInvariant trace event.
	inv := 0
	for _, e := range sink.events {
		if e.Type == trace.EvInvariant {
			inv++
		}
	}
	if int64(inv) != c.TotalChecks() {
		t.Errorf("trace saw %d invariant events, checker performed %d checks", inv, c.TotalChecks())
	}
}

func TestCheckerQuietWindowSuppressesConnectivity(t *testing.T) {
	// While a fault window is open (or within the grace period after it)
	// the connectivity invariant must not fire even if the virtual graph
	// is in pieces.
	topo := ring(4)
	net := phys.NewNetwork(sim.NewEngine(1), topo)
	for _, v := range topo.Nodes() {
		net.Register(v, phys.HandlerFunc(func(phys.Message) {}))
	}
	proto := &brokenProto{nodes: topo.Nodes()}
	c := NewChecker(net, proto, 16, 64, 1<<30) // huge pending bound: isolate connectivity
	c.FaultBegin()
	c.Start()
	eng := net.Engine()
	eng.At(100, func() {})
	eng.RunUntil(100, nil)
	for _, v := range c.Violations() {
		if v.Invariant == InvConnectivity {
			t.Fatal("connectivity fired inside an open fault window")
		}
	}
	// Close the window: after the grace period the violation must appear.
	c.FaultEnd()
	eng.At(400, func() {})
	eng.RunUntil(400, nil)
	c.Stop()
	found := false
	for _, v := range c.Violations() {
		if v.Invariant == InvConnectivity {
			found = true
		}
	}
	if !found {
		t.Fatal("connectivity never fired after the fault window closed")
	}
}

func runSSR(t *testing.T, scnName string, seed int64) Result {
	t.Helper()
	var scn Scenario
	for _, s := range Suite() {
		if s.Name == scnName {
			scn = s
		}
	}
	if scn.Name == "" {
		t.Fatalf("scenario %q not in suite", scnName)
	}
	topo := ring(12)
	sched, err := Compile(scn, topo, seed)
	if err != nil {
		t.Fatal(err)
	}
	net := phys.NewNetwork(sim.NewEngine(seed), topo)
	cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded})
	return Run(scn, sched, net, cl, RunConfig{})
}

func TestRunSSRLossBurstCleanly(t *testing.T) {
	res := runSSR(t, "loss-burst", 3)
	if !res.WarmupOK {
		t.Error("SSR did not bootstrap during the fault-free warmup")
	}
	if !res.Converged {
		t.Fatalf("SSR did not reconverge after the loss burst (last fault t=%d)", int64(res.LastFaultAt))
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations under loss burst: %+v", res.Violations)
	}
	if res.Checks == 0 {
		t.Error("checker performed no checks")
	}
	if res.Drops["loss"] == 0 {
		t.Error("a 30% loss burst dropped no frames?")
	}
}

func TestRunSSRChurnReconverges(t *testing.T) {
	res := runSSR(t, "churn", 5)
	if !res.Converged {
		t.Fatalf("SSR did not reconverge after churn by deadline")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations under churn: %+v", res.Violations)
	}
	if res.Drops["dest-down"] == 0 {
		t.Error("crashing nodes should strand some in-flight frames as dest-down")
	}
	if res.ReconvergeTime <= 0 {
		t.Error("churn recovery should take measurable time")
	}
}

func TestCompileWarmupCheckRespectsTransport(t *testing.T) {
	topo := ring(8)
	scn := Scenario{Name: "cold", Warmup: 1024, Settle: 256, Faults: []FaultSpec{
		{Kind: LossBurst, Start: 0, Duration: 2048, Prob: 0.15},
	}}
	if _, err := Compile(scn, topo, 1); err == nil {
		t.Fatal("Compile accepted a pre-warmup fault on the raw transport")
	}
	scn.Transport = TransportReliable
	sched, err := Compile(scn, topo, 1)
	if err != nil {
		t.Fatalf("Compile rejected a cold-start fault despite Transport: reliable: %v", err)
	}
	if sched.Actions[0].At != 0 {
		t.Fatalf("first action at t=%d, want the loss burst live from t=0", int64(sched.Actions[0].At))
	}
}

// TestColdStartLossBurstReconverges is the regression test for the lifted
// warmup restriction: with the reliable sublayer underneath, every bootstrap
// protocol must reach global consistency even though a 15% loss burst is
// active from t=0 — before a single protocol frame has flown — and must do so
// with zero invariant violations.
func TestColdStartLossBurstReconverges(t *testing.T) {
	scn := Scenario{
		Name: "cold-start-loss", Warmup: 2048, Settle: 1024,
		Transport: TransportReliable,
		Faults: []FaultSpec{
			{Kind: LossBurst, Start: 0, Duration: 4096, Prob: 0.15},
		},
	}
	topo := ring(12)
	sched, err := Compile(scn, topo, 9)
	if err != nil {
		t.Fatal(err)
	}
	protos := []struct {
		name string
		mk   func(tr phys.Transport) Protocol
	}{
		{"linearization", func(tr phys.Transport) Protocol {
			return ssr.NewCluster(tr, ssr.Config{CacheMode: cache.Bounded})
		}},
		{"isprp", func(tr phys.Transport) Protocol {
			return isprp.NewCluster(tr, isprp.Config{EnableFlood: true})
		}},
		{"vrr", func(tr phys.Transport) Protocol {
			return vrr.NewCluster(tr, vrr.Config{CloseRing: true})
		}},
		{"flood", func(tr phys.Transport) Protocol {
			return floodboot.NewCluster(tr)
		}},
	}
	for _, tc := range protos {
		t.Run(tc.name, func(t *testing.T) {
			raw := phys.NewNetwork(sim.NewEngine(9), topo.Clone())
			rn := rel.New(raw, rel.DefaultConfig())
			proto := tc.mk(rn)
			res := Run(scn, sched, raw, proto, RunConfig{})
			if !res.Converged {
				t.Fatalf("%s never reconverged under a t=0 loss burst over reliable transport", tc.name)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("invariant violations: %+v", res.Violations)
			}
			if res.FirstConsistentAt < 0 {
				t.Fatal("consistency poller never observed a consistent instant")
			}
			if res.Drops["loss"] == 0 {
				t.Error("a 15% loss burst from t=0 dropped no frames?")
			}
			if rn.Stats().Retransmits == 0 {
				t.Error("sustained loss provoked zero retransmissions")
			}
		})
	}
}

func TestScheduleStringMentionsEveryAction(t *testing.T) {
	topo := ring(8)
	sched, err := Compile(Suite()[2], topo, 7) // partition-heal
	if err != nil {
		t.Fatal(err)
	}
	s := sched.String()
	for _, needle := range []string{"fault-begin", "cut-link", "heal-link", "fault-end"} {
		if !strings.Contains(s, needle) {
			t.Errorf("schedule rendering lacks %q:\n%s", needle, s)
		}
	}
}
