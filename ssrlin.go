// Package ssrlin is the public facade of the SSR-linearization
// reproduction: it bundles the building blocks — topology generation, the
// abstract linearization algorithms, and the message-level SSR / VRR /
// ISPRP protocol simulators — behind one import path.
//
// The headline result it packages (Kutzner & Fuhrmann, "Using Linearization
// for Global Consistency in SSR", IPPS 2007): the virtual ring of SSR and
// VRR can be bootstrapped by self-stabilizing graph linearization, which
// guarantees global consistency without any flooding and converges in
// polylogarithmically many rounds on average when shortcut neighbors are
// kept.
//
// Quick start:
//
//	net, err := ssrlin.NewSimulation(ssrlin.Options{
//		Topology: ssrlin.TopoUnitDisk, Nodes: 64, Seed: 7,
//	})
//	...
//	res := net.BootstrapSSR(ssrlin.SSRConfig{CloseRing: true})
//	if res.Converged {
//		out := net.Route(src, dst)       // greedy SSR routing
//	}
//
// The abstract round-model algorithms are available via Linearize, and the
// per-figure/per-table experiment harnesses via internal/exp (wired into
// the cmd/ tools and the root benchmark suite).
package ssrlin

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/isprp"
	"repro/internal/linearize"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/ssr"
	"repro/internal/vring"
	"repro/internal/vrr"
)

// ID is a node identifier (re-exported).
type ID = ids.ID

// Topology names (re-exported).
const (
	TopoLine     = graph.TopoLine
	TopoRing     = graph.TopoRing
	TopoStar     = graph.TopoStar
	TopoGrid     = graph.TopoGrid
	TopoER       = graph.TopoER
	TopoRegular  = graph.TopoRegular
	TopoPowerLaw = graph.TopoPowerLaw
	TopoBarabasi = graph.TopoBarabasi
	TopoUnitDisk = graph.TopoUnitDisk
)

// Linearization variants (re-exported).
const (
	Pure   = linearize.Pure
	Memory = linearize.Memory
	LSN    = linearize.LSN
)

// Options configures a simulation.
type Options struct {
	// Topology selects the physical graph generator (default TopoER).
	Topology graph.Topology
	// Nodes is the network size (default 32).
	Nodes int
	// Seed makes the whole run reproducible.
	Seed int64
	// Loss is the per-frame drop probability (default 0).
	Loss float64
	// Latency is the per-link delay in ticks (default 1).
	Latency int64
}

// Simulation owns a simulated physical network and whichever protocol
// cluster was bootstrapped on it.
type Simulation struct {
	opts Options
	net  *phys.Network

	ssrCluster   *ssr.Cluster
	vrrCluster   *vrr.Cluster
	isprpCluster *isprp.Cluster
}

// NewSimulation builds the physical network.
func NewSimulation(opts Options) (*Simulation, error) {
	if opts.Topology == "" {
		opts.Topology = graph.TopoER
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 32
	}
	topo, err := graph.Generate(opts.Topology, opts.Nodes, graph.RandomIDs, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("ssrlin: %w", err)
	}
	latency := opts.Latency
	if latency <= 0 {
		latency = 1
	}
	engine := sim.NewEngine(opts.Seed)
	net := phys.NewNetwork(engine, topo,
		phys.WithLoss(opts.Loss),
		phys.WithLatency(phys.ConstantLatency(sim.Time(latency))))
	return &Simulation{opts: opts, net: net}, nil
}

// NodeIDs returns all node identifiers in ascending order.
func (s *Simulation) NodeIDs() []ID { return s.net.Topology().Nodes() }

// Network exposes the underlying physical network (message counters,
// churn controls).
func (s *Simulation) Network() *phys.Network { return s.net }

// Messages returns the total protocol frames transmitted so far.
func (s *Simulation) Messages() int64 { return s.net.Counters().Total() }

// BootstrapResult reports how a bootstrap went.
type BootstrapResult struct {
	Converged bool
	// Time is the simulated convergence instant (or the deadline).
	Time int64
	// Messages is the total physical frames transmitted.
	Messages int64
}

// SSRConfig re-exports ssr.Config.
type SSRConfig = ssr.Config

// BootstrapSSR runs the linearization bootstrap of §4 over the network and
// drives the simulation to global consistency (deadline scales with n).
func (s *Simulation) BootstrapSSR(cfg SSRConfig) BootstrapResult {
	s.ssrCluster = ssr.NewCluster(s.net, cfg)
	at, ok := s.ssrCluster.RunUntilConsistent(s.deadline())
	return BootstrapResult{Converged: ok, Time: int64(at), Messages: s.Messages()}
}

// VRRConfig re-exports vrr.Config.
type VRRConfig = vrr.Config

// BootstrapVRR runs the linearized VRR bootstrap (footnote 1 of §4).
func (s *Simulation) BootstrapVRR(cfg VRRConfig) BootstrapResult {
	s.vrrCluster = vrr.NewCluster(s.net, cfg)
	at, ok := s.vrrCluster.RunUntilConsistent(s.deadline())
	return BootstrapResult{Converged: ok, Time: int64(at), Messages: s.Messages()}
}

// ISPRPConfig re-exports isprp.Config.
type ISPRPConfig = isprp.Config

// BootstrapISPRP runs the flooding baseline that linearization replaces.
func (s *Simulation) BootstrapISPRP(cfg ISPRPConfig) BootstrapResult {
	s.isprpCluster = isprp.NewCluster(s.net, cfg)
	at, ok := s.isprpCluster.RunUntilConsistent(s.deadline())
	return BootstrapResult{Converged: ok, Time: int64(at), Messages: s.Messages()}
}

func (s *Simulation) deadline() sim.Time {
	d := sim.Time(s.opts.Nodes) * 4096
	if d < 65536 {
		d = 65536
	}
	return s.net.Engine().Now() + d
}

// RouteOutcome describes one routed packet.
type RouteOutcome struct {
	Delivered bool
	Hops      int     // physical transmissions used
	Stretch   float64 // Hops / shortest-path hops
}

// Route sends a data packet with SSR's greedy routing (requires a prior
// BootstrapSSR).
func (s *Simulation) Route(src, dst ID) RouteOutcome {
	if s.ssrCluster == nil {
		return RouteOutcome{}
	}
	r := s.ssrCluster.RouteData(src, dst, 8192)
	return RouteOutcome{Delivered: r.Delivered, Hops: r.Hops, Stretch: r.Stretch()}
}

// Consistent reports whether the bootstrapped protocol's virtual structure
// is globally consistent right now.
func (s *Simulation) Consistent() bool {
	switch {
	case s.ssrCluster != nil:
		return s.ssrCluster.Consistent()
	case s.vrrCluster != nil:
		return s.vrrCluster.Consistent()
	case s.isprpCluster != nil:
		return s.isprpCluster.Consistent()
	default:
		return false
	}
}

// SSR exposes the SSR cluster after BootstrapSSR (nil before).
func (s *Simulation) SSR() *ssr.Cluster { return s.ssrCluster }

// VRR exposes the VRR cluster after BootstrapVRR (nil before).
func (s *Simulation) VRR() *vrr.Cluster { return s.vrrCluster }

// ISPRP exposes the ISPRP cluster after BootstrapISPRP (nil before).
func (s *Simulation) ISPRP() *isprp.Cluster { return s.isprpCluster }

// --- Abstract algorithm entry points ---------------------------------------

// LinearizeConfig re-exports linearize.Config.
type LinearizeConfig = linearize.Config

// LinearizeStats re-exports linearize.Stats.
type LinearizeStats = linearize.Stats

// Linearize runs a round-model linearization variant over the physical
// graph of the named topology and returns its statistics — the entry point
// for the E4/E5 convergence experiments.
func Linearize(topo graph.Topology, n int, seed int64, cfg LinearizeConfig) (LinearizeStats, error) {
	g, err := graph.Generate(topo, n, graph.RandomIDs, seed)
	if err != nil {
		return LinearizeStats{}, fmt.Errorf("ssrlin: %w", err)
	}
	stats, _ := linearize.Run(g, cfg)
	return stats, nil
}

// CacheModes (re-exported).
const (
	BoundedCache   = cache.Bounded
	UnboundedCache = cache.Unbounded
)

// LoopyExample returns the paper's Figure 1 state (re-exported).
func LoopyExample() vring.SuccMap { return vring.LoopyExample() }

// SeparateRingsExample returns the paper's Figure 2 state (re-exported).
func SeparateRingsExample() vring.SuccMap { return vring.SeparateRingsExample() }
