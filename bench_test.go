// Benchmarks, one per reproduced table/figure (see DESIGN.md §3 and
// EXPERIMENTS.md). Each benchmark regenerates the corresponding
// experiment's rows at a bench-friendly scale; run the cmd/ tools for the
// full-size sweeps.
//
//	go test -bench=. -benchmem
package ssrlin

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/chord"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/isprp"
	"repro/internal/linearize"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/ssr"
	"repro/internal/vring"
	"repro/internal/vrr"
)

// BenchmarkFig1LoopyResolution (E1): straighten the paper's Figure 1 loopy
// state with message-level linearization.
func BenchmarkFig1LoopyResolution(b *testing.B) {
	topo := vring.LoopyExample().ToGraph()
	for i := 0; i < b.N; i++ {
		net := phys.NewNetwork(sim.NewEngine(int64(i)), topo)
		cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded})
		if _, ok := cl.RunUntilConsistent(120000); !ok {
			b.Fatal("loopy state not resolved")
		}
		cl.Stop()
	}
}

// BenchmarkFig2RingMerge (E2): merge the Figure 2 separate rings via the
// E_v := E_p bridge.
func BenchmarkFig2RingMerge(b *testing.B) {
	topo := vring.SeparateRingsExample().ToGraph()
	topo.AddEdge(18, 21)
	for i := 0; i < b.N; i++ {
		net := phys.NewNetwork(sim.NewEngine(int64(i)), topo)
		cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded})
		if _, ok := cl.RunUntilConsistent(120000); !ok {
			b.Fatal("rings not merged")
		}
		cl.Stop()
	}
}

// BenchmarkFig3Trace (E3): the abstract linearization run behind Figure 3.
func BenchmarkFig3Trace(b *testing.B) {
	g := vring.LoopyExample().ToGraph()
	for i := 0; i < b.N; i++ {
		stats, _ := linearize.Run(g, linearize.Config{
			Variant: linearize.Pure, Scheduler: sim.Synchronous,
		})
		if !stats.Converged {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkLSNPowerLaw (E4): LSN rounds on an α=2 power-law graph; the
// paper quotes < 39 rounds.
func BenchmarkLSNPowerLaw(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(sizeName(n), func(b *testing.B) {
			g, err := graph.Generate(graph.TopoPowerLaw, n, graph.RandomIDs, int64(n))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, _ := linearize.Run(g, linearize.Config{
					Variant: linearize.LSN, Scheduler: sim.Synchronous, Seed: int64(i),
				})
				if !stats.Converged || stats.Rounds >= 39 {
					b.Fatalf("rounds=%d converged=%v", stats.Rounds, stats.Converged)
				}
				b.ReportMetric(float64(stats.Rounds), "rounds")
			}
		})
	}
}

// BenchmarkConvergenceShape (E5): rounds by variant at one size; the cmd
// tool sweeps sizes and fits the growth exponent.
func BenchmarkConvergenceShape(b *testing.B) {
	for _, v := range linearize.Variants() {
		b.Run(v.String(), func(b *testing.B) {
			g, err := graph.Generate(graph.TopoER, 400, graph.RandomIDs, 400)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, _ := linearize.Run(g, linearize.Config{
					Variant: v, Scheduler: sim.Synchronous, Seed: int64(i),
				})
				if !stats.Converged {
					b.Fatal("no convergence")
				}
				b.ReportMetric(float64(stats.Rounds), "rounds")
			}
		})
	}
}

// BenchmarkBootstrapMessages (E6): physical frames to consistency,
// ISPRP+flood vs linearization.
func BenchmarkBootstrapMessages(b *testing.B) {
	const n = 24
	b.Run("isprp+flood", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := phys.NewNetwork(sim.NewEngine(int64(i)),
				mustTopo(b, graph.TopoER, n, int64(i)))
			cl := isprp.NewCluster(net, isprp.Config{EnableFlood: true})
			if _, ok := cl.RunUntilConsistent(sim.Time(n) * 4096); !ok {
				b.Fatal("no convergence")
			}
			cl.Stop()
			b.ReportMetric(float64(net.Counters().Total()), "msgs")
			b.ReportMetric(float64(net.Counters().Get(isprp.KindFlood)), "floodmsgs")
		}
	})
	b.Run("linearization", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := phys.NewNetwork(sim.NewEngine(int64(i)),
				mustTopo(b, graph.TopoER, n, int64(i)))
			cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded})
			if _, ok := cl.RunUntilConsistent(sim.Time(n) * 4096); !ok {
				b.Fatal("no convergence")
			}
			cl.Stop()
			b.ReportMetric(float64(net.Counters().Total()), "msgs")
			b.ReportMetric(0, "floodmsgs")
		}
	})
}

// BenchmarkSSRRouting (E7): all-pairs greedy routing on a converged ring.
func BenchmarkSSRRouting(b *testing.B) {
	net := phys.NewNetwork(sim.NewEngine(7), mustTopo(b, graph.TopoER, 20, 7))
	cl := ssr.NewCluster(net, ssr.Config{
		CacheMode: cache.Bounded, CloseRing: true, BothDirections: true,
	})
	if _, ok := cl.RunUntilConsistent(200000); !ok {
		b.Fatal("bootstrap failed")
	}
	cl.Stop()
	nodes := net.Topology().Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%len(nodes)]
		dst := nodes[(i+len(nodes)/2)%len(nodes)]
		if src == dst {
			continue
		}
		r := cl.RouteData(src, dst, 8192)
		if !r.Delivered {
			b.Fatalf("routing %s->%s failed", src, dst)
		}
		b.ReportMetric(r.Stretch(), "stretch")
	}
}

// BenchmarkStateSize (E8): fixed-point state of memory vs LSN.
func BenchmarkStateSize(b *testing.B) {
	for _, v := range []linearize.Variant{linearize.Memory, linearize.LSN} {
		b.Run(v.String(), func(b *testing.B) {
			g := mustTopo(b, graph.TopoER, 300, 300)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, _ := linearize.Run(g, linearize.Config{
					Variant: v, Scheduler: sim.Synchronous, Seed: int64(i),
				})
				if !stats.Converged {
					b.Fatal("no convergence")
				}
				b.ReportMetric(float64(stats.FinalEdges)/300, "edges/node")
				b.ReportMetric(float64(stats.PeakDegree), "peakdeg")
			}
		})
	}
}

// BenchmarkSelfStabilization (E9): recovery rounds after perturbing a
// converged line.
func BenchmarkSelfStabilization(b *testing.B) {
	g := mustTopo(b, graph.TopoER, 120, 120)
	stats, line := linearize.Run(g, linearize.Config{
		Variant: linearize.LSN, Scheduler: sim.Synchronous, Seed: 1,
	})
	if !stats.Converged {
		b.Fatal("bootstrap failed")
	}
	nodes := line.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perturbed := line.Clone()
		perturbed.AddEdge(nodes[i%10], nodes[len(nodes)-1-(i%7)])
		perturbed.AddEdge(nodes[2+(i%5)], nodes[len(nodes)/2])
		// Cut a line edge (the chords keep the graph connected) so the
		// damage actually violates the goal state.
		cut := 20 + (i % 60)
		perturbed.RemoveEdge(nodes[cut], nodes[cut+1])
		if !perturbed.Connected() {
			b.Fatal("perturbation disconnected the graph")
		}
		rec, _ := linearize.Run(perturbed, linearize.Config{
			Variant: linearize.LSN, Scheduler: sim.Synchronous, Seed: int64(i),
		})
		if !rec.Converged {
			b.Fatal("no recovery")
		}
		b.ReportMetric(float64(rec.Rounds), "rounds")
	}
}

// BenchmarkRingClosure (E10): discovery-based wrap-edge establishment.
func BenchmarkRingClosure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := phys.NewNetwork(sim.NewEngine(int64(i)), mustTopo(b, graph.TopoER, 20, int64(i)))
		cl := ssr.NewCluster(net, ssr.Config{
			CacheMode: cache.Bounded, CloseRing: true, BothDirections: true,
		})
		if _, ok := cl.RunUntilConsistent(200000); !ok {
			b.Fatal("closure failed")
		}
		cl.Stop()
		b.ReportMetric(float64(net.Counters().Get(ssr.KindDiscover)), "discover")
	}
}

// BenchmarkVRRBootstrap (E11): linearized VRR to consistency.
func BenchmarkVRRBootstrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := phys.NewNetwork(sim.NewEngine(int64(i)), mustTopo(b, graph.TopoER, 20, int64(i)))
		cl := vrr.NewCluster(net, vrr.Config{CloseRing: true})
		if _, ok := cl.RunUntilConsistent(300000); !ok {
			b.Fatal("VRR bootstrap failed")
		}
		cl.Stop()
		b.ReportMetric(float64(net.Counters().Total()), "msgs")
	}
}

// BenchmarkSchedulerAblation (A1): synchronous vs random-sequential daemon.
func BenchmarkSchedulerAblation(b *testing.B) {
	for _, sched := range []sim.Scheduler{sim.Synchronous, sim.RandomSequential} {
		b.Run(sched.String(), func(b *testing.B) {
			g := mustTopo(b, graph.TopoER, 150, 150)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, _ := linearize.Run(g, linearize.Config{
					Variant: linearize.LSN, Scheduler: sched, Seed: int64(i),
				})
				if !stats.Converged {
					b.Fatal("no convergence")
				}
				b.ReportMetric(float64(stats.Rounds), "rounds")
			}
		})
	}
}

// BenchmarkTeardownAblation (A2): §4 optional teardown on/off.
func BenchmarkTeardownAblation(b *testing.B) {
	for _, tear := range []bool{false, true} {
		name := "keep"
		if tear {
			name = "teardown"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net := phys.NewNetwork(sim.NewEngine(int64(i)), mustTopo(b, graph.TopoER, 16, int64(i)))
				cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Unbounded, Teardown: tear})
				if _, ok := cl.RunUntilConsistent(16 * 4096); !ok {
					b.Fatal("no convergence")
				}
				cl.Stop()
				b.ReportMetric(float64(net.Counters().Total()), "msgs")
			}
		})
	}
}

// BenchmarkExperimentReports exercises the full experiment harness end to
// end at small scale — the same code paths the cmd/ tools run.
func BenchmarkExperimentReports(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig1Loopy(int64(i)).String()
		_ = exp.Fig3Trace().String()
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return "n" + string(rune('0'+n/1000)) + "k"
	default:
		return "small"
	}
}

func mustTopo(b *testing.B, t graph.Topology, n int, seed int64) *graph.Graph {
	b.Helper()
	g, err := graph.Generate(t, n, graph.RandomIDs, seed)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkChordVsSSR (E13): per-lookup physical cost of the Chord overlay
// versus SSR underlay routing on one converged deployment.
func BenchmarkChordVsSSR(b *testing.B) {
	topo := mustTopo(b, graph.TopoER, 24, 24)
	net := phys.NewNetwork(sim.NewEngine(24), topo)
	cl := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded, CloseRing: true, BothDirections: true})
	if _, ok := cl.RunUntilConsistent(200000); !ok {
		b.Fatal("SSR bootstrap failed")
	}
	cl.Stop()
	ring, err := chord.NewRing(topo.Nodes())
	if err != nil {
		b.Fatal(err)
	}
	nodes := topo.Nodes()
	b.Run("chord", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			src := nodes[i%len(nodes)]
			dst := nodes[(i+7)%len(nodes)]
			owner, path := ring.Lookup(src, dst)
			if owner != dst {
				b.Fatalf("lookup of member key missed: %v", owner)
			}
			b.ReportMetric(float64(len(path)), "overlayhops")
		}
	})
	b.Run("ssr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			src := nodes[i%len(nodes)]
			dst := nodes[(i+7)%len(nodes)]
			if src == dst {
				continue
			}
			r := cl.RouteData(src, dst, 8192)
			if !r.Delivered {
				b.Fatal("SSR routing failed")
			}
			b.ReportMetric(float64(r.Hops), "physhops")
		}
	})
}
