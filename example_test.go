package ssrlin_test

import (
	"fmt"

	ssrlin "repro"
	"repro/internal/sim"
)

// Example demonstrates the complete flow: build a network, bootstrap the
// virtual ring with linearization (no flooding), and route a packet.
func Example() {
	s, err := ssrlin.NewSimulation(ssrlin.Options{
		Topology: ssrlin.TopoER,
		Nodes:    20,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	res := s.BootstrapSSR(ssrlin.SSRConfig{CloseRing: true, BothDirections: true})
	fmt.Println("consistent:", res.Converged)
	s.SSR().Stop()
	nodes := s.NodeIDs()
	out := s.Route(nodes[0], nodes[len(nodes)-1])
	fmt.Println("delivered:", out.Delivered)
	// Output:
	// consistent: true
	// delivered: true
}

// ExampleLinearize runs the abstract round-model algorithm directly — the
// E4/E5 entry point.
func ExampleLinearize() {
	stats, err := ssrlin.Linearize(ssrlin.TopoPowerLaw, 500, 3, ssrlin.LinearizeConfig{
		Variant:   ssrlin.LSN,
		Scheduler: sim.Synchronous,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", stats.Converged, "— under 39 rounds:", stats.Rounds < 39)
	// Output:
	// converged: true — under 39 rounds: true
}

// ExampleSimulation_BootstrapISPRP contrasts the flooding baseline: the
// same network bootstrapped with ISPRP transmits flood frames,
// linearization none.
func ExampleSimulation_BootstrapISPRP() {
	s, err := ssrlin.NewSimulation(ssrlin.Options{Topology: ssrlin.TopoRegular, Nodes: 16, Seed: 3})
	if err != nil {
		panic(err)
	}
	res := s.BootstrapISPRP(ssrlin.ISPRPConfig{EnableFlood: true})
	floods := s.Network().Counters().Get("isprp:flood")
	fmt.Println("consistent:", res.Converged, "— used flooding:", floods > 0)
	// Output:
	// consistent: true — used flooding: true
}
