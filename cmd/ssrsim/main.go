// Command ssrsim runs the message-level protocol experiments:
//
//	ssrsim -mode compare -sizes 16,32,64      # E6: ISPRP+flood vs linearization messages
//	ssrsim -mode breakdown -n 32              # E6b: per-kind message mix
//	ssrsim -mode route -n 24 -pairs 200       # E7: routing success + stretch
//	ssrsim -mode occupancy -n 32              # E8b: cache interval occupancy
//	ssrsim -mode closure -n 24                # E10: discovery redundancy
//	ssrsim -mode vrr -n 24                    # E11: linearized VRR vs SSR
//	ssrsim -mode churn -n 32 -kill 4          # E9b: churn recovery
//	ssrsim -mode teardown -n 24               # A2: teardown ablation
//	ssrsim -mode mobility -n 24               # E12: random-waypoint mobility
//	ssrsim -mode loopy                        # E1b: scaled loopy states
//	ssrsim -mode overlay -n 32 -pairs 300     # E13: Chord overlay vs SSR underlay
//	ssrsim -mode dht -n 24                    # E14: DHT workload over SSR
//	ssrsim -mode boot -proto isprp -n 256     # E6c: one traced bootstrap run
//
// Observability: -trace FILE -trace-level {off|round|msg} writes a JSONL
// event trace, -listen ADDR serves live /metrics (OpenMetrics), /healthz
// and /probe while the run is in flight, -pprof ADDR serves net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/graph"
)

// emit prints a report as text or CSV.
func emit(r exp.Report, csv bool) {
	if csv {
		fmt.Print(r.CSV())
		return
	}
	fmt.Println(r)
}


func main() {
	mode := flag.String("mode", "compare", "compare | breakdown | route | occupancy | closure | vrr | churn | teardown | mobility | loopy | overlay | dht | boot")
	sizesFlag := flag.String("sizes", "16,24,32", "comma-separated network sizes for -mode compare")
	topo := flag.String("topo", string(graph.TopoER), "physical topology")
	n := flag.Int("n", 24, "network size for single-size modes")
	pairs := flag.Int("pairs", 200, "routed pairs for -mode route (0 = all)")
	kill := flag.Int("kill", 3, "nodes to fail for -mode churn")
	seeds := flag.Int("seeds", 3, "independent runs per configuration")
	csv := flag.Bool("csv", false, "emit the result table as CSV instead of aligned text")
	seed := flag.Int64("seed", 1, "seed for single-run modes")
	proto := flag.String("proto", "linearization", "protocol for -mode boot: linearization | isprp | flood")
	probeEvery := flag.Int("probe-every", 16, "convergence-probe sampling interval in ticks for -mode boot")
	traceFile := flag.String("trace", "", "write a JSONL event trace of the run to this file")
	traceLevel := flag.String("trace-level", "round", "trace granularity: off | round | msg")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	listenAddr := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /probe) on this address (e.g. :9090)")
	flag.Parse()

	closeTrace, err := exp.SetupObservability(*traceFile, *traceLevel, *pprofAddr, *listenAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrsim:", err)
		os.Exit(2)
	}
	defer closeTrace()

	t := graph.Topology(*topo)
	switch *mode {
	case "compare":
		var sizes []int
		for _, part := range strings.Split(*sizesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "ssrsim: bad size %q\n", part)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
		emit(exp.MessageCost(sizes, t, *seeds), *csv)
	case "breakdown":
		emit(exp.MessageBreakdown(*n, t, *seed), *csv)
	case "route":
		emit(exp.Routing(*n, t, *pairs, *seed), *csv)
	case "occupancy":
		emit(exp.CacheOccupancy(*n, t, *seed), *csv)
	case "closure":
		emit(exp.RingClosure(*n, t, *seeds), *csv)
	case "vrr":
		emit(exp.VRRBootstrap(*n, t, *seeds), *csv)
	case "churn":
		emit(exp.ChurnRecovery(*n, t, *kill, *seed), *csv)
	case "teardown":
		emit(exp.TeardownAblation(*n, t, *seeds), *csv)
	case "mobility":
		emit(exp.MobilityRecovery(*n, 1500, 0.02, *seeds), *csv)
	case "loopy":
		emit(exp.ScaledLoopy([]int{15, 63, 255}, 2, *seed), *csv)
	case "overlay":
		emit(exp.OverlayVsUnderlay(*n, t, *pairs, *seed), *csv)
	case "dht":
		emit(exp.DHTWorkload(*n, 80, t, *seed), *csv)
	case "boot":
		rep, err := exp.Bootstrap(*proto, *n, t, *seed, *probeEvery)
		if err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		emit(rep, *csv)
	default:
		fmt.Fprintf(os.Stderr, "ssrsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
