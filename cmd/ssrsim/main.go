// Command ssrsim runs the message-level protocol experiments:
//
//	ssrsim -mode compare -sizes 16,32,64      # E6: ISPRP+flood vs linearization messages
//	ssrsim -mode breakdown -n 32              # E6b: per-kind message mix
//	ssrsim -mode route -n 24 -pairs 200       # E7: routing success + stretch
//	ssrsim -mode occupancy -n 32              # E8b: cache interval occupancy
//	ssrsim -mode closure -n 24                # E10: discovery redundancy
//	ssrsim -mode vrr -n 24                    # E11: linearized VRR vs SSR
//	ssrsim -mode churn -n 32 -kill 4          # E9b: churn recovery
//	ssrsim -mode teardown -n 24               # A2: teardown ablation
//	ssrsim -mode mobility -n 24               # E12: random-waypoint mobility
//	ssrsim -mode loopy                        # E1b: scaled loopy states
//	ssrsim -mode overlay -n 32 -pairs 300     # E13: Chord overlay vs SSR underlay
//	ssrsim -mode dht -n 24                    # E14: DHT workload over SSR
//	ssrsim -mode boot -proto isprp -n 256     # E6c: one traced bootstrap run
//	ssrsim -mode scale -sizes 10000,100000    # E15: sharded executor scale bench
//	ssrsim -mode chaos -n 24                  # E16: chaos suite over all protocols
//	ssrsim -mode reliability -n 24            # E17: cold-start loss sweep, raw vs reliable
//
// -mode chaos compiles the committed fault-scenario suite (loss bursts,
// partition+heal, crash/recover churn, jitter reordering, frame
// corruption) once per seed and replays the byte-identical schedules over
// every registered bootstrap protocol with the online invariant checker
// attached, writing the machine-readable record to -out (default
// results/BENCH_chaos.json). -quick keeps one scenario per fault family
// for CI smoke runs.
//
// -mode reliability sweeps sustained frame loss (0/5/15/30%) active from
// t=0 over every protocol on both the raw network and the reliable
// sublayer (-transport reliable everywhere else), recording cold-start
// convergence and the message overhead reliability costs, to -out (default
// results/BENCH_reliability.json). -quick keeps the 15% reliable arm only.
//
// -mode scale times the sharded parallel round executor (-workers, -shards)
// against its own Workers=1 schedule on large regular graphs, checks the
// final virtual graphs are identical, and writes the machine-readable
// record to -out (default results/BENCH_scale.json). -quick shrinks the
// round caps for CI smoke runs.
//
// Observability: -trace FILE -trace-level {off|round|msg} writes a JSONL
// event trace, -listen ADDR serves live /metrics (OpenMetrics), /healthz
// and /probe while the run is in flight, -pprof ADDR serves net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/graph"
)

func main() {
	cli := exp.BindCLI(flag.CommandLine, exp.CLIOptions{
		Modes:        "compare | breakdown | route | occupancy | closure | vrr | churn | teardown | mobility | loopy | overlay | dht | boot | scale | chaos | reliability | profile",
		DefaultMode:  "compare",
		DefaultSizes: "16,24,32",
	})
	pairs := flag.Int("pairs", 200, "routed pairs for -mode route (0 = all)")
	kill := flag.Int("kill", 3, "nodes to fail for -mode churn")
	proto := flag.String("proto", "linearization", "protocol for -mode boot: "+strings.Join(exp.ProtocolNames(), " | "))
	probeEvery := flag.Int("probe-every", 16, "convergence-probe sampling interval in ticks for -mode boot")
	out := flag.String("out", "", "JSON output path for -mode scale / chaos / reliability / profile (default results/BENCH_<mode>.json)")
	quick := flag.Bool("quick", false, "shrink -mode scale/chaos/reliability/profile to a fast smoke run")
	profDir := flag.String("prof-dir", "results/prof", "pprof bundle directory for -mode profile (empty disables capture)")
	variant := flag.String("variant", "", "restrict -mode profile to one linearization variant (pure | memory | lsn; empty: all)")
	flag.Parse()

	closeTrace, err := cli.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrsim:", err)
		os.Exit(2)
	}
	defer closeTrace()

	t := cli.Topology()
	emit := cli.Emit
	switch *cli.Mode {
	case "compare":
		sizes, err := cli.SizeList()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		emit(exp.MessageCost(sizes, t, *cli.Seeds))
	case "breakdown":
		emit(exp.MessageBreakdown(*cli.N, t, *cli.Seed))
	case "route":
		emit(exp.Routing(*cli.N, t, *pairs, *cli.Seed))
	case "occupancy":
		emit(exp.CacheOccupancy(*cli.N, t, *cli.Seed))
	case "closure":
		emit(exp.RingClosure(*cli.N, t, *cli.Seeds))
	case "vrr":
		emit(exp.VRRBootstrap(*cli.N, t, *cli.Seeds))
	case "churn":
		emit(exp.ChurnRecovery(*cli.N, t, *kill, *cli.Seed))
	case "teardown":
		emit(exp.TeardownAblation(*cli.N, t, *cli.Seeds))
	case "mobility":
		emit(exp.MobilityRecovery(*cli.N, 1500, 0.02, *cli.Seeds))
	case "loopy":
		emit(exp.ScaledLoopy([]int{15, 63, 255}, 2, *cli.Seed))
	case "overlay":
		emit(exp.OverlayVsUnderlay(*cli.N, t, *pairs, *cli.Seed))
	case "dht":
		emit(exp.DHTWorkload(*cli.N, 80, t, *cli.Seed))
	case "boot":
		rep, err := exp.Bootstrap(*proto, *cli.N, t, *cli.Seed, *probeEvery)
		if err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		emit(rep)
	case "scale":
		// The scale bench has its own defaults: large regular graphs (ER
		// generation is O(n²)) unless -topo/-sizes were given explicitly.
		scaleTopo, scaleSizes := graph.TopoRegular, "10000,100000"
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "topo":
				scaleTopo = t
			case "sizes":
				scaleSizes = *cli.Sizes
			}
		})
		sizes, err := exp.ParseSizes(scaleSizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		outPath := *out
		if outPath == "" {
			outPath = "results/BENCH_scale.json"
		}
		rep, res := exp.ScaleBench(sizes, scaleTopo, *cli.Workers, *cli.Shards, *cli.Partition, *cli.Seed, *quick)
		if err := exp.WriteScaleJSON(outPath, res); err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		emit(rep)
		fmt.Fprintf(os.Stderr, "ssrsim: wrote %s\n", outPath)
	case "chaos":
		outPath := *out
		if outPath == "" {
			outPath = "results/BENCH_chaos.json"
		}
		rep, res, err := exp.ChaosBench(*cli.N, t, *cli.Seed, *quick)
		if err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		if err := exp.WriteChaosJSON(outPath, res); err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		emit(rep)
		fmt.Fprintf(os.Stderr, "ssrsim: wrote %s\n", outPath)
		if !res.Criteria.Met {
			fmt.Fprintln(os.Stderr, "ssrsim: chaos criteria NOT met")
			os.Exit(1)
		}
	case "reliability":
		outPath := *out
		if outPath == "" {
			outPath = "results/BENCH_reliability.json"
		}
		rep, res, err := exp.ReliabilityBench(*cli.N, t, *cli.Seed, *quick)
		if err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		if err := exp.WriteReliabilityJSON(outPath, res); err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		emit(rep)
		fmt.Fprintf(os.Stderr, "ssrsim: wrote %s\n", outPath)
		if !res.Criteria.Met {
			fmt.Fprintln(os.Stderr, "ssrsim: reliability criteria NOT met")
			os.Exit(1)
		}
	case "profile":
		// Like -mode scale, the profiler has its own defaults: one large
		// regular graph unless -topo/-n were given explicitly.
		profTopo, profN := graph.TopoRegular, 10000
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "topo":
				profTopo = t
			case "n":
				profN = *cli.N
			}
		})
		outPath := *out
		if outPath == "" {
			outPath = "results/BENCH_profile.json"
			if *quick {
				outPath = "results/BENCH_profile_quick.json"
			}
		}
		rep, res, err := exp.ProfileBench(profN, profTopo, *cli.Workers, *cli.Shards, *cli.Partition, *cli.Seed, *quick, *profDir, *variant)
		if err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		if err := exp.WriteProfileJSON(outPath, res); err != nil {
			closeTrace()
			fmt.Fprintln(os.Stderr, "ssrsim:", err)
			os.Exit(2)
		}
		emit(rep)
		fmt.Fprintf(os.Stderr, "ssrsim: wrote %s\n", outPath)
	default:
		fmt.Fprintf(os.Stderr, "ssrsim: unknown mode %q\n", *cli.Mode)
		os.Exit(2)
	}
}
