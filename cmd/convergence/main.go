// Command convergence runs the round-model convergence sweeps:
//
//	convergence -mode powerlaw -sizes 1000,10000,100000   # E4: LSN on α=2 power law
//	convergence -mode shape -topo er -sizes 100,200,400   # E5: variant shapes + exponents
//	convergence -mode state -sizes 100,200,400            # E8: memory vs LSN state
//	convergence -mode stabilize -n 200                    # E9: perturbation recovery
//	convergence -mode scheduler -n 100                    # A1: scheduler ablation
//	convergence -mode degree -n 300                       # B1: rounds vs initial degree
//	convergence -mode diameter -n 300                     # B2: rounds vs topology diameter
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/graph"
)

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// emit prints a report as text or CSV.
func emit(r exp.Report, csv bool) {
	if csv {
		fmt.Print(r.CSV())
		return
	}
	fmt.Println(r)
}

func main() {
	mode := flag.String("mode", "powerlaw", "powerlaw | shape | state | stabilize | scheduler | degree | diameter")
	sizesFlag := flag.String("sizes", "100,200,400,800", "comma-separated network sizes")
	topo := flag.String("topo", string(graph.TopoER), "topology for -mode shape")
	n := flag.Int("n", 200, "network size for single-size modes")
	seeds := flag.Int("seeds", 3, "independent runs per configuration")
	csv := flag.Bool("csv", false, "emit the result table as CSV instead of aligned text")
	traceFile := flag.String("trace", "", "write a JSONL event trace of the run to this file")
	traceLevel := flag.String("trace-level", "round", "trace granularity: off | round | msg")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	listenAddr := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /probe) on this address (e.g. :9090)")
	flag.Parse()

	closeTrace, err := exp.SetupObservability(*traceFile, *traceLevel, *pprofAddr, *listenAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convergence:", err)
		os.Exit(2)
	}
	defer closeTrace()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convergence:", err)
		os.Exit(2)
	}

	switch *mode {
	case "powerlaw":
		emit(exp.PowerLawConvergence(sizes, *seeds), *csv)
	case "shape":
		emit(exp.ConvergenceShape(sizes, graph.Topology(*topo), *seeds), *csv)
	case "state":
		emit(exp.StateSize(sizes, *seeds), *csv)
	case "stabilize":
		emit(exp.SelfStabilization(*n, 4, *seeds), *csv)
	case "scheduler":
		emit(exp.SchedulerAblation(*n, *seeds), *csv)
	case "degree":
		emit(exp.DegreeSweep(*n, []int{3, 4, 6, 8, 12}, *seeds), *csv)
	case "diameter":
		emit(exp.DiameterSweep(*n, *seeds), *csv)
	default:
		fmt.Fprintf(os.Stderr, "convergence: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
