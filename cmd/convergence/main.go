// Command convergence runs the round-model convergence sweeps:
//
//	convergence -mode powerlaw -sizes 1000,10000,100000   # E4: LSN on α=2 power law
//	convergence -mode shape -topo er -sizes 100,200,400   # E5: variant shapes + exponents
//	convergence -mode state -sizes 100,200,400            # E8: memory vs LSN state
//	convergence -mode stabilize -n 200                    # E9: perturbation recovery
//	convergence -mode scheduler -n 100                    # A1: scheduler ablation
//	convergence -mode degree -n 300                       # B1: rounds vs initial degree
//	convergence -mode diameter -n 300                     # B2: rounds vs topology diameter
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	cli := exp.BindCLI(flag.CommandLine, exp.CLIOptions{
		Modes:        "powerlaw | shape | state | stabilize | scheduler | degree | diameter",
		DefaultMode:  "powerlaw",
		DefaultSizes: "100,200,400,800",
		DefaultN:     200,
	})
	flag.Parse()

	closeTrace, err := cli.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "convergence:", err)
		os.Exit(2)
	}
	defer closeTrace()

	sizes, err := cli.SizeList()
	if err != nil {
		fmt.Fprintln(os.Stderr, "convergence:", err)
		os.Exit(2)
	}

	emit := cli.Emit
	switch *cli.Mode {
	case "powerlaw":
		emit(exp.PowerLawConvergence(sizes, *cli.Seeds))
	case "shape":
		emit(exp.ConvergenceShape(sizes, cli.Topology(), *cli.Seeds))
	case "state":
		emit(exp.StateSize(sizes, *cli.Seeds))
	case "stabilize":
		emit(exp.SelfStabilization(*cli.N, 4, *cli.Seeds))
	case "scheduler":
		emit(exp.SchedulerAblation(*cli.N, *cli.Seeds))
	case "degree":
		emit(exp.DegreeSweep(*cli.N, []int{3, 4, 6, 8, 12}, *cli.Seeds))
	case "diameter":
		emit(exp.DiameterSweep(*cli.N, *cli.Seeds))
	default:
		fmt.Fprintf(os.Stderr, "convergence: unknown mode %q\n", *cli.Mode)
		os.Exit(2)
	}
}
