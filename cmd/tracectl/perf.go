package main

// The perf subcommand turns the profiler's EvSpan side channel back into a
// performance story: per-phase wall time, the Amdahl sequential share and
// the speedup ceiling it implies, per-shard busy-time and activation
// attribution (the boundary-vs-interior imbalance), and allocator/GC
// pressure. It consumes the same JSONL traces as report/diff, so the
// breakdown works live (ssrsim -trace) or post-mortem on archived runs.

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func cmdPerf(args []string) error {
	fs := flag.NewFlagSet("tracectl perf", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker count for the predicted-speedup row (0: skip)")
	topShards := fs.Int("top-shards", 0, "only print the N busiest shards (0: all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("perf: want exactly one trace file, got %d", fs.NArg())
	}
	path := fs.Arg(0)
	a, err := analyzeFile(path)
	if err != nil {
		return err
	}
	p := a.Perf()
	if p.Empty() {
		return fmt.Errorf("%s: no span or shard events — was the run profiled? (ssrsim -mode profile, or any run with a round-level trace)", path)
	}

	fmt.Printf("== perf breakdown: %s ==\n", path)
	fmt.Printf("rounds=%d\n", p.Rounds)
	if p.Policy != "" {
		fmt.Printf("partition policy=%s shards=%d\n", p.Policy, p.PolicyShards)
	}

	fmt.Println("\n-- phase wall time --")
	tab := metrics.NewTable("span", "count", "total ms", "mean µs", "max µs", "share")
	wall := p.SeqNs() + p.ParNs()
	for _, s := range p.Spans {
		mean := 0.0
		if s.Count > 0 {
			mean = s.TotalNs / float64(s.Count)
		}
		share := 0.0
		if wall > 0 {
			share = s.TotalNs / wall
		}
		tab.AddRow(s.Name, s.Count,
			fmt.Sprintf("%.2f", s.TotalNs/1e6),
			fmt.Sprintf("%.1f", mean/1e3),
			fmt.Sprintf("%.1f", s.MaxNs/1e3),
			fmt.Sprintf("%.3f", share))
	}
	fmt.Print(tab)

	if wall > 0 {
		f := p.SeqShare()
		fmt.Println("\n-- Amdahl --")
		fmt.Printf("sequential %.2f ms  parallel %.2f ms  seq share f=%.3f\n",
			p.SeqNs()/1e6, p.ParNs()/1e6, f)
		fmt.Printf("speedup ceiling 1/f = %.2fx\n", p.AmdahlCeiling())
		if *workers > 1 {
			fmt.Printf("predicted speedup at %d workers = %.2fx\n", *workers, p.SpeedupAt(*workers))
		}
	}

	if len(p.Shards) > 0 {
		// Union of activation phases across shards, so the table has one
		// column per phase ("propose" for Jacobi, interior/boundary for the
		// atomic variants).
		phaseSet := map[string]bool{}
		for _, s := range p.Shards {
			for ph := range s.Activations {
				phaseSet[ph] = true
			}
		}
		phases := make([]string, 0, len(phaseSet))
		for ph := range phaseSet {
			phases = append(phases, ph)
		}
		sort.Strings(phases)

		rows := append([]trace.ShardPerf(nil), p.Shards...)
		if *topShards > 0 && len(rows) > *topShards {
			sort.Slice(rows, func(i, j int) bool { return rows[i].BusyNs > rows[j].BusyNs })
			rows = rows[:*topShards]
			sort.Slice(rows, func(i, j int) bool { return rows[i].Shard < rows[j].Shard })
		}
		fmt.Printf("\n-- shard cost attribution (%d shards) --\n", len(p.Shards))
		cols := append([]string{"shard", "busy ms"}, phases...)
		stab := metrics.NewTable(cols...)
		for _, s := range rows {
			row := []any{s.Shard, fmt.Sprintf("%.2f", s.BusyNs/1e6)}
			for _, ph := range phases {
				row = append(row, s.Activations[ph])
			}
			stab.AddRow(row...)
		}
		totals := p.ActivationTotals()
		trow := []any{"TOTAL", fmt.Sprintf("%.2f", busyTotal(p.Shards)/1e6)}
		for _, ph := range phases {
			trow = append(trow, totals[ph])
		}
		stab.AddRow(trow...)
		fmt.Print(stab)

		// Wave activations are cross-shard work executed in parallel by the
		// conflict-free wave scheduler — they count against the boundary
		// only in the sense of partition quality, not the Amdahl share.
		if bnd, wav, in := totals["boundary"], totals["wave"], totals["interior"]; bnd+wav+in > 0 {
			share := float64(bnd) / float64(bnd+wav+in)
			fmt.Printf("boundary share: %.1f%% (%d boundary vs %d wave + %d interior activations)\n",
				100*share, bnd, wav, in)
			if share > 0.5 {
				fmt.Println("boundary work dominates — the sequential Finish phase bounds the speedup (ROADMAP Open item 1)")
			}
		}
		if p.ImbalanceMean > 0 {
			fmt.Printf("parallel-phase imbalance (max/mean shard busy): mean %.2f  worst round %.2f\n",
				p.ImbalanceMean, p.ImbalanceMax)
		}
	}

	if p.Mallocs > 0 || p.AllocBytes > 0 {
		fmt.Println("\n-- allocator --")
		fmt.Printf("alloc %.1f MiB  mallocs %.0f  gc cycles %.0f",
			p.AllocBytes/(1<<20), p.Mallocs, p.GCCycles)
		if p.Rounds > 0 {
			fmt.Printf("  (%.1f KiB/round)", p.AllocBytes/float64(p.Rounds)/1024)
		}
		fmt.Println()
	}
	return nil
}

func busyTotal(shards []trace.ShardPerf) float64 {
	var t float64
	for _, s := range shards {
		t += s.BusyNs
	}
	return t
}
