// Command tracectl analyzes JSONL event traces written by the -trace flag
// of ssrsim and convergence. All subcommands stream through trace.Scanner,
// so multi-GB traces are processed in constant memory; files ending in .gz
// are decompressed transparently and "-" reads stdin.
//
//	tracectl report run.jsonl                 # convergence verdict, taxonomy, hot spots
//	tracectl diff lin.jsonl isprp.jsonl       # two runs: rounds + per-type message deltas
//	tracectl timeline -node 42 run.jsonl      # per-node (or per-round) event slice
//	tracectl perf profiled.jsonl              # phase/shard cost breakdown + Amdahl ceiling
//	tracectl bench -out results/BENCH_tracectl.json
//	tracectl bench compare old.json new.json  # diff two bench artifacts (CI perf gate)
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tracectl <command> [flags] <trace.jsonl[.gz]>…

commands:
  report    convergence verdict, message taxonomy and per-node hot spots of one trace
  diff      compare two traces: rounds-to-converge and per-type message deltas
  timeline  print a filtered slice of events (per node, per type, per time window)
  perf      per-phase and per-shard cost breakdown of a profiled trace (Amdahl ceiling)
  bench     measure report-path throughput and write a JSON baseline
  bench compare  diff two BENCH_*.json artifacts with a perf-regression gate

run 'tracectl <command> -h' for per-command flags`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = cmdReport(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "timeline":
		err = cmdTimeline(os.Args[2:])
	case "perf":
		err = cmdPerf(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tracectl: unknown command %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracectl:", err)
		os.Exit(1)
	}
}

// openTrace opens a trace for streaming: plain files, .gz files, or stdin.
func openTrace(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return struct {
		io.Reader
		io.Closer
	}{zr, f}, nil
}

// analyzeFile streams one trace into an Analysis. A truncated trace is
// reported on stderr but still analyzed — the partial aggregates are the
// whole point of the crash-recovery path.
func analyzeFile(path string) (*trace.Analysis, error) {
	r, err := openTrace(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	a, serr := trace.AnalyzeStream(trace.NewScanner(r))
	if serr != nil {
		fmt.Fprintf(os.Stderr, "tracectl: warning: %s: %v (analyzing the complete prefix)\n", path, serr)
	}
	return a, nil
}

func taxonomyTable(a *trace.Analysis) *metrics.Table {
	tab := metrics.NewTable("kind", "frames", "share")
	total := a.TotalSent()
	for _, kt := range a.Taxonomy() {
		share := 0.0
		if total > 0 {
			share = float64(kt.Count) / float64(total)
		}
		tab.AddRow(kt.Kind, kt.Count, share)
	}
	tab.AddRow("TOTAL", total, 1.0)
	return tab
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("tracectl report", flag.ExitOnError)
	top := fs.Int("top", 10, "rows in the per-node hot-spot table")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report: want exactly one trace file, got %d", fs.NArg())
	}
	path := fs.Arg(0)
	a, err := analyzeFile(path)
	if err != nil {
		return err
	}

	first, last := a.TimeSpan()
	fmt.Printf("== trace report: %s ==\n", path)
	fmt.Printf("events=%d span=[%d,%d]\n", a.Events(), first, last)
	fmt.Printf("verdict: %s\n", a.Verdict())

	fmt.Println("\n-- message taxonomy --")
	fmt.Print(taxonomyTable(a))

	if drops := a.DropTotals(); len(drops) > 0 {
		fmt.Println("\n-- drops --")
		tab := metrics.NewTable("reason", "frames")
		for _, d := range drops {
			tab.AddRow(d.Kind, d.Count)
		}
		fmt.Print(tab)
	}

	if rel := a.Rel(); !rel.Empty() {
		fmt.Println("\n-- reliable sublayer --")
		tab := metrics.NewTable("kind", "retransmits")
		for _, kt := range rel.Retransmits {
			tab.AddRow(kt.Kind, kt.Count)
		}
		tab.AddRow("TOTAL", rel.Total)
		fmt.Print(tab)
		fmt.Printf("max attempt=%d  rto samples=%d  rto min/max/last=%g/%g/%g  lease down/up=%d/%d\n",
			rel.MaxAttempt, rel.RTOSamples, rel.RTOMin, rel.RTOMax, rel.RTOLast,
			rel.LeaseDowns, rel.LeaseUps)
	}

	if invs := a.Invariants(); len(invs) > 0 {
		fmt.Println("\n-- invariants (chaos harness) --")
		tab := metrics.NewTable("invariant", "checks", "violations", "first violation")
		for _, iv := range invs {
			first := "-"
			if iv.Violations > 0 {
				first = fmt.Sprintf("t=%d %s", iv.First.T, iv.First.Detail)
			}
			tab.AddRow(iv.Invariant, iv.Checks, iv.Violations, first)
		}
		fmt.Print(tab)
	}

	if hot := a.Stats.HotSpotTable(*top); hot.NumRows() > 0 {
		fmt.Printf("\n-- hot spots (top %d senders) --\n", *top)
		fmt.Print(hot)
	} else {
		fmt.Println("\n(no per-message events: hot spots need a msg-level trace)")
	}
	return nil
}

// fmtRound renders a rounds-to-converge value ( -1 = never).
func fmtRound(v int64) string {
	if v < 0 {
		return "never"
	}
	return fmt.Sprintf("%d", v)
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("tracectl diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two trace files, got %d", fs.NArg())
	}
	pa, pb := fs.Arg(0), fs.Arg(1)
	a, err := analyzeFile(pa)
	if err != nil {
		return err
	}
	b, err := analyzeFile(pb)
	if err != nil {
		return err
	}
	va, vb := a.Verdict(), b.Verdict()

	fmt.Printf("== trace diff: A=%s  B=%s ==\n", pa, pb)
	fmt.Printf("A verdict: %s\n", va)
	fmt.Printf("B verdict: %s\n\n", vb)

	sum := metrics.NewTable("metric", "A", "B", "delta (B-A)")
	addInt := func(name string, x, y int64) { sum.AddRow(name, x, y, y-x) }
	sum.AddRow("rounds-to-converge", fmtRound(va.ConvergedAt), fmtRound(vb.ConvergedAt),
		deltaRounds(va.ConvergedAt, vb.ConvergedAt))
	addInt("events", a.Events(), b.Events())
	addInt("frames sent", a.TotalSent(), b.TotalSent())
	addInt("oscillations", int64(va.Oscillations), int64(vb.Oscillations))
	addInt("probe samples", int64(va.Probes), int64(vb.Probes))
	fmt.Print(sum)

	fmt.Println("\n-- per-type message delta --")
	kinds := map[string][2]int64{}
	for _, kt := range a.Taxonomy() {
		v := kinds[kt.Kind]
		v[0] = kt.Count
		kinds[kt.Kind] = v
	}
	for _, kt := range b.Taxonomy() {
		v := kinds[kt.Kind]
		v[1] = kt.Count
		kinds[kt.Kind] = v
	}
	tab := metrics.NewTable("kind", "A", "B", "delta (B-A)")
	for _, kind := range sortedKeys(kinds) {
		v := kinds[kind]
		tab.AddRow(kind, v[0], v[1], v[1]-v[0])
	}
	tab.AddRow("TOTAL", a.TotalSent(), b.TotalSent(), b.TotalSent()-a.TotalSent())
	fmt.Print(tab)

	// The retransmission table makes a raw-vs-reliable pair comparable: one
	// side all zeros is the raw arm, and the deltas are the reliability cost.
	ra, rb := a.Rel(), b.Rel()
	if !ra.Empty() || !rb.Empty() {
		fmt.Println("\n-- retransmissions (reliable sublayer) --")
		retx := map[string][2]int64{}
		for _, kt := range ra.Retransmits {
			v := retx[kt.Kind]
			v[0] = kt.Count
			retx[kt.Kind] = v
		}
		for _, kt := range rb.Retransmits {
			v := retx[kt.Kind]
			v[1] = kt.Count
			retx[kt.Kind] = v
		}
		rtab := metrics.NewTable("kind", "A", "B", "delta (B-A)")
		for _, kind := range sortedKeys(retx) {
			v := retx[kind]
			rtab.AddRow(kind, v[0], v[1], v[1]-v[0])
		}
		rtab.AddRow("TOTAL", ra.Total, rb.Total, rb.Total-ra.Total)
		rtab.AddRow("lease downs", ra.LeaseDowns, rb.LeaseDowns, rb.LeaseDowns-ra.LeaseDowns)
		rtab.AddRow("lease ups", ra.LeaseUps, rb.LeaseUps, rb.LeaseUps-ra.LeaseUps)
		fmt.Print(rtab)
	}
	return nil
}

func deltaRounds(a, b int64) string {
	if a < 0 || b < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+d", b-a)
}

func sortedKeys(m map[string][2]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("tracectl timeline", flag.ExitOnError)
	node := fs.Uint64("node", 0, "only events where this id is the acting node or peer")
	hasNode := false
	typ := fs.String("type", "", "only events of this type (e.g. msg-send, probe)")
	from := fs.Int64("from", 0, "only events with T >= from")
	to := fs.Int64("to", -1, "only events with T <= to (-1: unbounded)")
	limit := fs.Int("limit", 0, "stop after printing this many events (0: all)")
	fs.Parse(args)
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "node" {
			hasNode = true
		}
	})
	if fs.NArg() != 1 {
		return fmt.Errorf("timeline: want exactly one trace file, got %d", fs.NArg())
	}
	var wantType trace.EventType
	if *typ != "" {
		t, ok := trace.ParseEventType(*typ)
		if !ok {
			return fmt.Errorf("timeline: unknown event type %q", *typ)
		}
		wantType = t
	}

	r, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()
	sc := trace.NewScanner(r)
	printed := 0
	for sc.Scan() {
		e := sc.Event()
		if *typ != "" && e.Type != wantType {
			continue
		}
		if hasNode && e.Node != ids.ID(*node) && e.Peer != ids.ID(*node) {
			continue
		}
		if e.T < *from || (*to >= 0 && e.T > *to) {
			continue
		}
		fmt.Println(e)
		printed++
		if *limit > 0 && printed >= *limit {
			break
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "tracectl: warning: %v (printed the complete prefix)\n", err)
	}
	fmt.Fprintf(os.Stderr, "%d events matched (%d scanned)\n", printed, sc.Count())
	return nil
}
