package main

// The bench subcommand measures the report path's throughput — JSONL
// decode through trace.Scanner plus aggregation through trace.Analysis —
// over a synthetic trace shaped like a real bootstrap (message events with
// per-node attribution, round bookkeeping, probe samples). The result goes
// to a JSON baseline so CI can watch for analysis-path regressions.
//
// `bench compare <old> <new>` diffs two BENCH_*.json artifacts leaf by
// leaf: it refuses mismatched configurations (benchfmt.Meta headers),
// prints every changed field, and exits non-zero when a gated field moved
// by more than the tolerance — the CI perf gate.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/trace"
)

type benchResult struct {
	Meta         benchfmt.Meta `json:"meta"`
	Bench        string        `json:"bench"`
	Events       int           `json:"events"`
	Nodes        int           `json:"nodes"`
	TraceBytes   int           `json:"trace_bytes"`
	Reps         int           `json:"reps"`
	PerRunMs     []float64     `json:"per_run_ms"`
	BestMs       float64       `json:"best_ms"`
	MeanMs       float64       `json:"mean_ms"`
	EventsPerSec float64       `json:"events_per_sec"` // from the best rep
}

// syntheticTrace renders n events of bootstrap-like shape to JSONL.
func syntheticTrace(n, nodes int) []byte {
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	kinds := []string{"ssr:notify", "ssr:ack", "ssr:delegate", "ssr:probe"}
	round := int64(0)
	for i := 0; i < n; i++ {
		src := ids.ID(uint64(i%nodes) + 1)
		dst := ids.ID(uint64((i+7)%nodes) + 1)
		switch {
		case i%97 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvRoundEnd, Value: float64(nodes)})
			round++
		case i%61 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvProbe, Kind: "distance", Value: float64(n - i)})
		case i%13 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvMsgDrop, Node: src, Peer: dst, Kind: kinds[i%len(kinds)], Aux: "loss"})
		case i%2 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvMsgSend, Node: src, Peer: dst, Kind: kinds[i%len(kinds)], Value: 2})
		default:
			w.Emit(trace.Event{T: round, Type: trace.EvMsgRecv, Node: dst, Peer: src, Kind: kinds[i%len(kinds)]})
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func cmdBench(args []string) error {
	if len(args) > 0 && args[0] == "compare" {
		return cmdBenchCompare(args[1:])
	}
	fs := flag.NewFlagSet("tracectl bench", flag.ExitOnError)
	events := fs.Int("events", 500_000, "synthetic events per rep")
	nodes := fs.Int("nodes", 256, "distinct node ids in the synthetic trace")
	reps := fs.Int("reps", 5, "measurement repetitions")
	out := fs.String("out", "", "write the JSON baseline here (default: stdout only)")
	fs.Parse(args)

	// The synthetic event count rides in Sizes so compare refuses baselines
	// taken at a different trace size.
	meta := benchfmt.NewMeta("tracectl-report-throughput")
	meta.N, meta.Sizes = *nodes, []int{*events}
	data := syntheticTrace(*events, *nodes)
	res := benchResult{
		Meta:       meta,
		Bench:      "tracectl-report-throughput",
		Events:     *events,
		Nodes:      *nodes,
		TraceBytes: len(data),
		Reps:       *reps,
	}
	var total float64
	for r := 0; r < *reps; r++ {
		start := time.Now()
		a, err := trace.AnalyzeStream(trace.NewScanner(bytes.NewReader(data)))
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		if a.Events() != int64(*events) {
			return fmt.Errorf("bench: analyzed %d events, want %d", a.Events(), *events)
		}
		ms := float64(elapsed.Nanoseconds()) / 1e6
		res.PerRunMs = append(res.PerRunMs, ms)
		total += ms
		if res.BestMs == 0 || ms < res.BestMs {
			res.BestMs = ms
		}
	}
	res.MeanMs = total / float64(*reps)
	res.EventsPerSec = float64(*events) / (res.BestMs / 1000)

	fmt.Printf("tracectl bench: %d events, best %.1f ms, %.0f events/sec\n",
		res.Events, res.BestMs, res.EventsPerSec)
	if *out != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return nil
}

// cmdBenchCompare diffs two bench artifacts: baseline first, candidate
// second. Exit status 1 (via the returned error) means a gated field
// regressed beyond tolerance.
func cmdBenchCompare(args []string) error {
	fs := flag.NewFlagSet("tracectl bench compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.0, "relative tolerance before a gated change counts as a regression")
	gatePat := fs.String("gate", benchfmt.DefaultGate, "regexp of field paths the gate judges (empty: every field)")
	force := fs.Bool("force", false, "compare even when the meta headers say the configs differ")
	quiet := fs.Bool("quiet", false, "only print gate failures, not every changed field")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("bench compare: want <baseline.json> <candidate.json>, got %d args", fs.NArg())
	}
	oldF, err := benchfmt.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	newF, err := benchfmt.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	if err := oldF.Meta.CompatibleWith(newF.Meta); err != nil {
		if !*force {
			return fmt.Errorf("%v (use -force to compare anyway)", err)
		}
		fmt.Fprintf(os.Stderr, "tracectl: warning: %v (continuing under -force)\n", err)
	}

	var gate *regexp.Regexp
	if *gatePat != "" {
		gate, err = regexp.Compile(*gatePat)
		if err != nil {
			return fmt.Errorf("bench compare: -gate: %w", err)
		}
	}

	deltas, onlyOld, onlyNew := benchfmt.Diff(oldF.Doc, newF.Doc)
	fmt.Printf("== bench compare: baseline=%s  candidate=%s ==\n", fs.Arg(0), fs.Arg(1))
	changed := 0
	if !*quiet {
		tab := metrics.NewTable("field", "baseline", "candidate", "rel")
		for _, d := range deltas {
			if !d.Changed() {
				continue
			}
			changed++
			tab.AddRow(d.Path, fmt.Sprintf("%g", d.Old), fmt.Sprintf("%g", d.New),
				fmt.Sprintf("%+.1f%%", 100*d.Rel))
		}
		if changed > 0 {
			fmt.Printf("\n-- changed fields (%d of %d shared) --\n", changed, len(deltas))
			fmt.Print(tab)
		} else {
			fmt.Printf("no changes across %d shared fields\n", len(deltas))
		}
		for _, p := range onlyOld {
			fmt.Printf("only in baseline: %s\n", p)
		}
		for _, p := range onlyNew {
			fmt.Printf("only in candidate: %s\n", p)
		}
	}

	regs := benchfmt.Regressions(deltas, gate, *tol)
	if len(regs) > 0 {
		fmt.Printf("\nGATE FAILED: %d gated field(s) moved beyond tol=%g\n", len(regs), *tol)
		tab := metrics.NewTable("field", "baseline", "candidate", "rel")
		for _, d := range regs {
			tab.AddRow(d.Path, fmt.Sprintf("%g", d.Old), fmt.Sprintf("%g", d.New),
				fmt.Sprintf("%+.1f%%", 100*d.Rel))
		}
		fmt.Print(tab)
		return fmt.Errorf("bench compare: %d gated regression(s)", len(regs))
	}
	fmt.Println("gate: PASS")
	return nil
}
