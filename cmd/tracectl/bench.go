package main

// The bench subcommand measures the report path's throughput — JSONL
// decode through trace.Scanner plus aggregation through trace.Analysis —
// over a synthetic trace shaped like a real bootstrap (message events with
// per-node attribution, round bookkeeping, probe samples). The result goes
// to a JSON baseline so CI can watch for analysis-path regressions.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ids"
	"repro/internal/trace"
)

type benchResult struct {
	Bench        string    `json:"bench"`
	Events       int       `json:"events"`
	Nodes        int       `json:"nodes"`
	TraceBytes   int       `json:"trace_bytes"`
	Reps         int       `json:"reps"`
	PerRunMs     []float64 `json:"per_run_ms"`
	BestMs       float64   `json:"best_ms"`
	MeanMs       float64   `json:"mean_ms"`
	EventsPerSec float64   `json:"events_per_sec"` // from the best rep
}

// syntheticTrace renders n events of bootstrap-like shape to JSONL.
func syntheticTrace(n, nodes int) []byte {
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	kinds := []string{"ssr:notify", "ssr:ack", "ssr:delegate", "ssr:probe"}
	round := int64(0)
	for i := 0; i < n; i++ {
		src := ids.ID(uint64(i%nodes) + 1)
		dst := ids.ID(uint64((i+7)%nodes) + 1)
		switch {
		case i%97 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvRoundEnd, Value: float64(nodes)})
			round++
		case i%61 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvProbe, Kind: "distance", Value: float64(n - i)})
		case i%13 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvMsgDrop, Node: src, Peer: dst, Kind: kinds[i%len(kinds)], Aux: "loss"})
		case i%2 == 0:
			w.Emit(trace.Event{T: round, Type: trace.EvMsgSend, Node: src, Peer: dst, Kind: kinds[i%len(kinds)], Value: 2})
		default:
			w.Emit(trace.Event{T: round, Type: trace.EvMsgRecv, Node: dst, Peer: src, Kind: kinds[i%len(kinds)]})
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("tracectl bench", flag.ExitOnError)
	events := fs.Int("events", 500_000, "synthetic events per rep")
	nodes := fs.Int("nodes", 256, "distinct node ids in the synthetic trace")
	reps := fs.Int("reps", 5, "measurement repetitions")
	out := fs.String("out", "", "write the JSON baseline here (default: stdout only)")
	fs.Parse(args)

	data := syntheticTrace(*events, *nodes)
	res := benchResult{
		Bench:      "tracectl-report-throughput",
		Events:     *events,
		Nodes:      *nodes,
		TraceBytes: len(data),
		Reps:       *reps,
	}
	var total float64
	for r := 0; r < *reps; r++ {
		start := time.Now()
		a, err := trace.AnalyzeStream(trace.NewScanner(bytes.NewReader(data)))
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		if a.Events() != int64(*events) {
			return fmt.Errorf("bench: analyzed %d events, want %d", a.Events(), *events)
		}
		ms := float64(elapsed.Nanoseconds()) / 1e6
		res.PerRunMs = append(res.PerRunMs, ms)
		total += ms
		if res.BestMs == 0 || ms < res.BestMs {
			res.BestMs = ms
		}
	}
	res.MeanMs = total / float64(*reps)
	res.EventsPerSec = float64(*events) / (res.BestMs / 1000)

	fmt.Printf("tracectl bench: %d events, best %.1f ms, %.0f events/sec\n",
		res.Events, res.BestMs, res.EventsPerSec)
	if *out != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return nil
}
