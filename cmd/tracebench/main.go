// Command tracebench measures the cost of the tracing layer on the
// standard 256-node unit-disk SSR bootstrap. It compares the disabled
// path (nil tracer), the aggregating stats sink, and the streaming JSONL
// sink, and writes the comparison to a JSON baseline file.
//
//	tracebench -out results/BENCH_trace_overhead.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/ssr"
	"repro/internal/trace"
)

type config struct {
	name string
	mk   func() trace.Tracer
}

type result struct {
	Name          string    `json:"name"`
	Reps          int       `json:"reps"`
	MeanMs        float64   `json:"mean_ms"`
	MinMs         float64   `json:"min_ms"`
	MaxMs         float64   `json:"max_ms"`
	PerRunMs      []float64 `json:"per_run_ms"`
	OverheadPct   float64   `json:"overhead_vs_nil_pct"`
	EventsPerRun  int64     `json:"events_per_run,omitempty"`
	ConvergedTick int64     `json:"converged_tick"`
}

type report struct {
	Meta    benchfmt.Meta `json:"meta"`
	Bench   string        `json:"bench"`
	Nodes   int           `json:"nodes"`
	Topo    string        `json:"topo"`
	Seed    int64         `json:"seed"`
	Results []result      `json:"results"`
}

// counting wraps a tracer to count emissions without changing its cost profile much.
type counting struct {
	inner trace.Tracer
	n     int64
}

func (c *counting) Emit(e trace.Event) {
	c.n++
	c.inner.Emit(e)
}

func runOnce(n int, seed int64, tr trace.Tracer) (time.Duration, int64) {
	topo, err := graph.Generate(graph.TopoUnitDisk, n, graph.RandomIDs, seed)
	if err != nil {
		panic(err)
	}
	eng := sim.NewEngine(seed, sim.WithTracer(tr))
	net := phys.NewNetwork(eng, topo, phys.WithTracer(tr))
	c := ssr.NewCluster(net, ssr.Config{CacheMode: cache.Bounded})
	start := time.Now()
	at, ok := c.RunUntilConsistent(2_000_000)
	elapsed := time.Since(start)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracebench: bootstrap not consistent by t=%d\n", at)
		os.Exit(1)
	}
	c.Stop()
	return elapsed, int64(at)
}

func main() {
	n := flag.Int("n", 256, "network size")
	reps := flag.Int("reps", 7, "repetitions per configuration")
	seed := flag.Int64("seed", 7, "topology/engine seed (same across configs)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Parse()

	configs := []config{
		{"nil-tracer", func() trace.Tracer { return nil }},
		{"stats-sink", func() trace.Tracer { return trace.NewStatsSink() }},
		{"jsonl-sink", func() trace.Tracer { return trace.NewJSONLWriter(io.Discard) }},
	}

	meta := benchfmt.NewMeta("ssr-bootstrap-trace-overhead")
	meta.Topology, meta.Seed, meta.N = string(graph.TopoUnitDisk), *seed, *n
	rep := report{Meta: meta, Bench: "ssr-bootstrap-trace-overhead", Nodes: *n, Topo: string(graph.TopoUnitDisk), Seed: *seed}
	var nilMean float64
	for _, cfg := range configs {
		r := result{Name: cfg.name, Reps: *reps}
		// One warm-up run per config so first-touch allocation noise does
		// not land on whichever config happens to run first; it doubles as
		// the event census so timed runs use the bare tracer.
		if tr := cfg.mk(); tr != nil {
			cnt := &counting{inner: tr}
			_, _ = runOnce(*n, *seed, cnt)
			r.EventsPerRun = cnt.n
		} else {
			runOnce(*n, *seed, nil)
		}
		sum := 0.0
		for i := 0; i < *reps; i++ {
			d, at := runOnce(*n, *seed, cfg.mk())
			r.ConvergedTick = at
			ms := float64(d.Microseconds()) / 1000
			r.PerRunMs = append(r.PerRunMs, ms)
			sum += ms
			if i == 0 || ms < r.MinMs {
				r.MinMs = ms
			}
			if ms > r.MaxMs {
				r.MaxMs = ms
			}
		}
		r.MeanMs = sum / float64(*reps)
		if cfg.name == "nil-tracer" {
			nilMean = r.MeanMs
		} else if nilMean > 0 {
			r.OverheadPct = (r.MeanMs - nilMean) / nilMean * 100
		}
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(os.Stderr, "%-11s mean=%.2fms min=%.2fms max=%.2fms overhead=%+.1f%%\n",
			r.Name, r.MeanMs, r.MinMs, r.MaxMs, r.OverheadPct)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tracebench:", err)
		os.Exit(1)
	}
}
