// Command figures regenerates the paper's Figures 1–3 as executable
// scenarios with ASCII renderings:
//
//	figures -fig 1    # the loopy state (E1) and how each mechanism fares
//	figures -fig 2    # separate rings merged without flooding (E2)
//	figures -fig 3    # the linearization algorithm at work, round by round (E3)
//	figures -fig 0    # all of them
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1, 2, 3; 0 = all)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	switch *fig {
	case 0:
		fmt.Println(exp.Fig1Loopy(*seed))
		fmt.Println(exp.Fig2SeparateRings(*seed))
		fmt.Println(exp.Fig3Trace())
		fmt.Println(exp.Fig3ClosedRing())
	case 1:
		fmt.Println(exp.Fig1Loopy(*seed))
	case 2:
		fmt.Println(exp.Fig2SeparateRings(*seed))
	case 3:
		fmt.Println(exp.Fig3Trace())
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %d (want 1, 2, 3 or 0)\n", *fig)
		os.Exit(2)
	}
}
