package ssrlin

import (
	"testing"

	"repro/internal/sim"
)

func TestQuickstartFlow(t *testing.T) {
	s, err := NewSimulation(Options{Topology: TopoER, Nodes: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := s.BootstrapSSR(SSRConfig{CloseRing: true, BothDirections: true})
	if !res.Converged {
		t.Fatalf("bootstrap failed: %+v", res)
	}
	if !s.Consistent() {
		t.Error("Consistent should agree with the bootstrap result")
	}
	if res.Messages == 0 || res.Time == 0 {
		t.Errorf("missing accounting: %+v", res)
	}
	nodes := s.NodeIDs()
	if len(nodes) != 20 {
		t.Fatalf("NodeIDs = %d", len(nodes))
	}
	s.SSR().Stop()
	out := s.Route(nodes[0], nodes[len(nodes)-1])
	if !out.Delivered {
		t.Error("routing min->max failed after convergence")
	}
	if out.Stretch < 1 {
		t.Errorf("stretch %f < 1 is impossible", out.Stretch)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s, err := NewSimulation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.NodeIDs()) != 32 {
		t.Errorf("default Nodes = %d, want 32", len(s.NodeIDs()))
	}
	if s.Consistent() {
		t.Error("nothing bootstrapped yet")
	}
	if out := s.Route(1, 2); out.Delivered {
		t.Error("routing without bootstrap must fail")
	}
}

func TestBadTopology(t *testing.T) {
	if _, err := NewSimulation(Options{Topology: "nope"}); err == nil {
		t.Error("unknown topology must error")
	}
	if _, err := Linearize("nope", 10, 1, LinearizeConfig{}); err == nil {
		t.Error("unknown topology must error")
	}
}

func TestVRRAndISPRPFacades(t *testing.T) {
	v, err := NewSimulation(Options{Topology: TopoRegular, Nodes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res := v.BootstrapVRR(VRRConfig{}); !res.Converged {
		t.Errorf("VRR bootstrap failed: %+v", res)
	}
	if v.VRR() == nil || v.SSR() != nil {
		t.Error("cluster accessors wrong")
	}

	i, err := NewSimulation(Options{Topology: TopoRegular, Nodes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res := i.BootstrapISPRP(ISPRPConfig{EnableFlood: true}); !res.Converged {
		t.Errorf("ISPRP bootstrap failed: %+v", res)
	}
	if i.ISPRP() == nil {
		t.Error("ISPRP accessor nil")
	}
}

func TestLinearizeFacade(t *testing.T) {
	stats, err := Linearize(TopoPowerLaw, 300, 5, LinearizeConfig{
		Variant: LSN, Scheduler: sim.Synchronous,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Errorf("LSN on power-law failed: %s", stats)
	}
	if stats.Rounds >= 39 {
		t.Errorf("rounds = %d, expected well under the paper's 39", stats.Rounds)
	}
}

func TestFigureExamplesExported(t *testing.T) {
	if LoopyExample().Classify().String() != "loopy" {
		t.Error("LoopyExample should classify loopy")
	}
	if SeparateRingsExample().Classify().String() != "partitioned" {
		t.Error("SeparateRingsExample should classify partitioned")
	}
}

func TestLossyFacade(t *testing.T) {
	s, err := NewSimulation(Options{Topology: TopoER, Nodes: 14, Seed: 9, Loss: 0.05, Latency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := s.BootstrapSSR(SSRConfig{}); !res.Converged {
		t.Errorf("lossy bootstrap failed: %+v", res)
	}
}
