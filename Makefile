GO ?= go

.PHONY: check build vet staticcheck test race smoke bench-trace bench-analyze bench-scale bench-scale-quick bench-chaos bench-chaos-quick bench-reliability bench-reliability-quick profile profile-quick perf-gate fuzz-smoke clean

# The full gate: what CI (and the tier-1 driver) should run.
check: vet staticcheck build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when present, skip (loudly) when
# the box doesn't have it. CI installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick -race pass over the two execution models only: the discrete-event
# engine (sim) and the message layer (phys) are where data races would live.
smoke:
	$(GO) test -race -count=1 ./internal/sim/ ./internal/phys/

# Regenerate the tracing-overhead baseline in results/.
bench-trace:
	$(GO) run ./cmd/tracebench -out results/BENCH_trace_overhead.json

# Benchmark the tracectl analysis pipeline (Scanner -> Analysis) on a
# synthetic trace and pin the throughput baseline in results/.
bench-analyze:
	$(GO) run ./cmd/tracectl bench -events 500000 -nodes 256 -reps 5 -out results/BENCH_tracectl.json

# Scale bench for the sharded parallel round executor: parallel vs the
# Workers=1 schedule at n in {10k, 100k, 1M} on regular graphs, with an
# equal-final-graph cross-check. Writes results/BENCH_scale.json.
bench-scale:
	$(GO) run ./cmd/ssrsim -mode scale -sizes 10000,100000,1000000 -out results/BENCH_scale.json

# CI smoke variant: small size, tight round caps, throwaway output. Two
# arms: the contiguous baseline and the locality policy (wave-scheduled
# boundary), so the smoke exercises both boundary disciplines.
bench-scale-quick:
	$(GO) run ./cmd/ssrsim -mode scale -quick -sizes 4000 -workers 2 -out /tmp/BENCH_scale_quick.json
	$(GO) run ./cmd/ssrsim -mode scale -quick -sizes 4000 -workers 2 -partition locality -out /tmp/BENCH_scale_quick_locality.json

# Chaos suite: replay the committed fault scenarios (loss bursts,
# partition+heal, churn, jitter, corruption) over every registered
# bootstrap protocol with the online invariant checker attached. Exits
# non-zero on any invariant violation or missed reconvergence. Writes
# results/BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/ssrsim -mode chaos -n 24 -seed 1 -out results/BENCH_chaos.json

# CI smoke variant: smaller network, one scenario per fault family.
bench-chaos-quick:
	$(GO) run ./cmd/ssrsim -mode chaos -quick -n 16 -seed 1 -out /tmp/BENCH_chaos_quick.json

# Reliability sweep: cold-start bootstrap under sustained loss (0/5/15/30%)
# over every protocol on both the raw network and the reliable-delivery
# sublayer. Exits non-zero unless every reliable-transport run converges
# with zero invariant violations. Writes results/BENCH_reliability.json.
bench-reliability:
	$(GO) run ./cmd/ssrsim -mode reliability -n 24 -seed 1 -out results/BENCH_reliability.json

# CI smoke variant: n=256 at 15% loss, reliable arm only — the cold-start
# convergence claim at scale, without the raw control arms.
bench-reliability-quick:
	$(GO) run ./cmd/ssrsim -mode reliability -quick -n 256 -seed 1 -out /tmp/BENCH_reliability_quick.json

# Per-phase profiler over every linearization variant at n=10k: span
# instrumentation into results/BENCH_profile.json plus CPU/heap pprof
# bundles into results/prof/. `tracectl perf` consumes the -trace output.
profile:
	$(GO) run ./cmd/ssrsim -mode profile -n 10000 -seed 1 -out results/BENCH_profile.json

# CI smoke variant: tight round caps, fixed worker count, no pprof capture.
# These flags must match the committed baseline's meta header exactly, or
# perf-gate's compare refuses the diff. The second arm runs the locality
# partition policy, whose wave-scheduled boundary has its own committed
# baseline (interior/wave/boundary activation split per policy).
profile-quick:
	$(GO) run ./cmd/ssrsim -mode profile -quick -n 10000 -workers 2 -seed 1 -out /tmp/BENCH_profile_quick.json
	$(GO) run ./cmd/ssrsim -mode profile -quick -n 10000 -workers 2 -seed 1 -partition locality -out /tmp/BENCH_profile_quick_locality.json

# The perf-regression gate: rerun the quick profiles and diff the
# machine-independent fields (rounds, activation splits, convergence)
# against the committed baselines — one per partition policy, so a change
# that shifts work between the interior, wave and boundary paths fails the
# gate. Fails on any gated drift.
perf-gate: profile-quick
	$(GO) run ./cmd/tracectl bench compare results/BENCH_profile_quick.json /tmp/BENCH_profile_quick.json
	$(GO) run ./cmd/tracectl bench compare results/BENCH_profile_quick_locality.json /tmp/BENCH_profile_quick_locality.json

# Short native-fuzz pass over the frame-decoding and linearize-step
# targets (one -fuzz run per target; Go allows a single fuzz target per
# invocation). The committed corpora under testdata/fuzz replay in plain
# `go test` as well.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzFramePayloadDecoding -fuzztime=10s ./internal/ssr/
	$(GO) test -run=^$$ -fuzz=FuzzRouteOps -fuzztime=10s ./internal/sroute/
	$(GO) test -run=^$$ -fuzz=FuzzLinearizeStep -fuzztime=10s ./internal/linearize/
	$(GO) test -run=^$$ -fuzz=FuzzRelFrameDecoding -fuzztime=10s ./internal/rel/

clean:
	$(GO) clean ./...
