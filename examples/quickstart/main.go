// Quickstart: build a small ad-hoc network, bootstrap SSR's virtual ring
// with linearization (no flooding!), and route a few packets greedily.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ssrlin "repro"
)

func main() {
	// A 48-node random network with uniformly random 64-bit addresses —
	// SSR never assumes addresses match the topology (§1).
	sim, err := ssrlin.NewSimulation(ssrlin.Options{
		Topology: ssrlin.TopoER,
		Nodes:    48,
		Seed:     2007, // the paper's year; any seed works
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bootstrapping the virtual ring with linearization ...")
	res := sim.BootstrapSSR(ssrlin.SSRConfig{
		CloseRing:      true, // §4 discovery messages close the line into the ring
		BothDirections: true, // redundant counter-clockwise discovery
	})
	if !res.Converged {
		log.Fatalf("bootstrap did not converge: %+v", res)
	}
	fmt.Printf("globally consistent at t=%d after %d messages (zero floods)\n\n",
		res.Time, res.Messages)

	// Routing is now guaranteed for every source/destination pair (§1).
	sim.SSR().Stop() // freeze the converged state
	nodes := sim.NodeIDs()
	pairs := [][2]int{{0, len(nodes) - 1}, {len(nodes) / 2, 3}, {5, len(nodes) / 3}}
	for _, p := range pairs {
		src, dst := nodes[p[0]], nodes[p[1]]
		out := sim.Route(src, dst)
		fmt.Printf("route %20s -> %-20s delivered=%v hops=%d stretch=%.2f\n",
			src, dst, out.Delivered, out.Hops, out.Stretch)
	}
}
