// Manetchurn: a mobile ad-hoc network under churn. Nodes fail after the
// ring has converged; because linearization is self-stabilizing, the
// survivors re-linearize around the gaps with no global restart and no
// flooding — the property §5 highlights as the payoff of grounding the
// bootstrap in self-stabilization theory.
//
//	go run ./examples/manetchurn
package main

import (
	"fmt"
	"log"

	ssrlin "repro"
	"repro/internal/sim"
)

func main() {
	s, err := ssrlin.NewSimulation(ssrlin.Options{
		Topology: ssrlin.TopoRegular,
		Nodes:    40,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}

	res := s.BootstrapSSR(ssrlin.SSRConfig{CacheMode: ssrlin.UnboundedCache})
	if !res.Converged {
		log.Fatalf("initial bootstrap failed: %+v", res)
	}
	fmt.Printf("initial ring consistent at t=%d (%d messages)\n", res.Time, res.Messages)

	// Churn: kill every 7th interior node, provided the physical network
	// stays connected. Failure detection is modeled as a cache purge at the
	// former neighbors (SSR detects dead virtual links by failed sends).
	cl := s.SSR()
	net := s.Network()
	nodes := s.NodeIDs()
	killed := 0
	for i := 1; i < len(nodes)-1; i += 7 {
		victim := nodes[i]
		after := net.Topology().Clone()
		after.RemoveNode(victim)
		if !after.Connected() {
			continue
		}
		net.FailNode(victim)
		for u, n := range cl.Nodes {
			if u != victim {
				n.Cache().Remove(victim)
			}
		}
		delete(cl.Nodes, victim)
		killed++
		fmt.Printf("  node %s failed\n", victim)
	}
	fmt.Printf("churn: %d nodes down; survivors re-linearize ...\n", killed)

	at, ok := cl.RunUntilConsistent(sim.Time(res.Time) + 200000)
	if !ok {
		log.Fatalf("survivors did not re-converge (t=%d)", at)
	}
	fmt.Printf("ring consistent again at t=%d — no flood, no restart\n", at)
	fmt.Printf("total messages including recovery: %d\n", s.Messages())
}
