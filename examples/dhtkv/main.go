// Dhtkv: a Chord-style key-value store on top of SSR's virtual ring — the
// kind of MANET DHT substrate (Ekta, MADPastry) that motivates SSR in the
// first place. Keys hash into the identifier space; the ring's successor
// relation decides ownership; requests ride SSR anycast routing and
// replicas go to the ring successor, so the store survives node failures.
//
//	go run ./examples/dhtkv
package main

import (
	"fmt"
	"log"

	ssrlin "repro"
	"repro/internal/dht"
)

func main() {
	sim, err := ssrlin.NewSimulation(ssrlin.Options{
		Topology: ssrlin.TopoER,
		Nodes:    24,
		Seed:     99,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sim.BootstrapSSR(ssrlin.SSRConfig{
		CacheMode: ssrlin.BoundedCache, CloseRing: true, BothDirections: true,
	})
	if !res.Converged {
		log.Fatalf("bootstrap failed: %+v", res)
	}
	fmt.Printf("ring consistent at t=%d; starting the DHT\n", res.Time)

	store := dht.NewCluster(sim.SSR(), true /* replicate to successor */)
	nodes := sim.NodeIDs()

	// Populate from various nodes.
	records := map[string]string{
		"alice": "radio-7", "bob": "radio-12", "carol": "radio-3",
		"dave": "radio-19", "erin": "radio-5", "frank": "radio-22",
	}
	i := 0
	for k, v := range records {
		if !store.Put(nodes[i%len(nodes)], k, v, 30000) {
			log.Fatalf("put %s failed", k)
		}
		i++
	}
	fmt.Printf("stored %d records (with replicas: %d copies total)\n",
		len(records), store.TotalKeys())

	// Read everything back from one corner of the network.
	reader := nodes[len(nodes)-1]
	for k, want := range records {
		got, ok := store.Get(reader, k, 30000)
		owner, _ := store.Owner(k)
		fmt.Printf("get %-5s -> %-9s (ok=%v, owner %s)\n", k, got, ok, owner)
		if !ok || got != want {
			log.Fatalf("lookup %s returned %q, want %q", k, got, want)
		}
	}

	// Kill a record's owner; the replica at its ring successor takes over.
	victim, _ := store.Owner("alice")
	fmt.Printf("\nfailing alice's owner %s ...\n", victim)
	sim.SSR().Leave(victim)
	delete(store.Nodes, victim)
	eng := sim.Network().Engine()
	if _, ok := sim.SSR().RunUntilConsistent(eng.Now() + 600000); !ok {
		log.Fatal("ring did not heal")
	}
	// Let the failure detector purge stale routes to the dead owner before
	// the lookup (consistency precedes garbage collection).
	eng.RunUntil(eng.Now()+8192, nil)
	got, ok := store.Get(nodes[0], "alice", 60000)
	fmt.Printf("get alice after owner failure -> %q (ok=%v)\n", got, ok)
	if !ok {
		log.Fatal("replica lookup failed")
	}
}
