// VRR: the same linearized bootstrap applied to Virtual Ring Routing
// (footnote 1 of §4): virtual edges are routing-table state along physical
// paths instead of source routes, the setup messages double as neighbor
// notifications, and no representative/flooding mechanism is needed.
//
//	go run ./examples/vrr
package main

import (
	"fmt"
	"log"

	ssrlin "repro"
	"repro/internal/metrics"
	"repro/internal/vrr"
)

func main() {
	s, err := ssrlin.NewSimulation(ssrlin.Options{
		Topology: ssrlin.TopoER,
		Nodes:    32,
		Seed:     23,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bootstrapping linearized VRR (path state, hello beacons, no representative) ...")
	res := s.BootstrapVRR(ssrlin.VRRConfig{CloseRing: true})
	if !res.Converged {
		log.Fatalf("VRR bootstrap failed: %+v", res)
	}
	fmt.Printf("virtual ring consistent at t=%d after %d frames\n", res.Time, res.Messages)

	// Router state: path-table entries per node (§5's future-work metric).
	sizes := s.VRR().StateSummary()
	sum := metrics.Summarize(metrics.Ints(sizes))
	fmt.Printf("path-table entries per node: mean=%.1f p90=%.0f max=%.0f\n",
		sum.Mean, sum.P90, sum.Max)

	// Route packets across the identifier space over the installed path
	// state: each hop forwards along the path whose far endpoint is
	// virtually closest to the destination.
	s.VRR().Stop()
	nodes := s.NodeIDs()
	eng := s.Network().Engine()
	for _, pair := range [][2]int{{1, len(nodes) - 2}, {len(nodes) - 3, 0}, {2, len(nodes) / 2}} {
		src, dst := nodes[pair[0]], nodes[pair[1]]
		var got *vrr.Delivery
		s.VRR().Nodes[dst].OnDeliver = func(d vrr.Delivery) {
			if d.Origin == src {
				got = &d
			}
		}
		if !s.VRR().Nodes[src].SendData(dst, "reading") {
			fmt.Printf("route %20s -> %-20s: no greedy candidate\n", src, dst)
			continue
		}
		eng.RunUntil(eng.Now()+5000, func() bool { return got != nil })
		if got != nil {
			fmt.Printf("route %20s -> %-20s delivered in %d physical hops\n", src, dst, got.Hops)
		} else {
			fmt.Printf("route %20s -> %-20s LOST\n", src, dst)
		}
	}
}
