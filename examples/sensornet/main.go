// Sensornet: SSR's motivating scenario — a wireless sensor/actuator network
// (Fuhrmann, SECON 2005). Nodes are placed on the unit square and linked by
// radio range (unit-disk graph); the virtual ring is bootstrapped with
// linearization using *bounded* route caches (the LSN shortcut structure),
// and a sink node then collects a reading from every sensor via greedy
// source routing.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	ssrlin "repro"
)

func main() {
	sim, err := ssrlin.NewSimulation(ssrlin.Options{
		Topology: ssrlin.TopoUnitDisk,
		Nodes:    64,
		Seed:     5,
		Latency:  2, // slower radio links
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sensor field: 64 radios, unit-disk links, bounded caches")
	res := sim.BootstrapSSR(ssrlin.SSRConfig{
		CacheMode:      ssrlin.BoundedCache, // O(log) state per sensor
		CloseRing:      true,
		BothDirections: true,
	})
	if !res.Converged {
		log.Fatalf("bootstrap did not converge: %+v", res)
	}
	fmt.Printf("ring consistent at t=%d, %d messages\n", res.Time, res.Messages)

	// Per-node state stays logarithmic — this is what makes SSR viable on
	// constrained sensor hardware (and what LSN guarantees, §2).
	maxEntries := 0
	for _, n := range sim.SSR().Nodes {
		if l := n.Cache().Len(); l > maxEntries {
			maxEntries = l
		}
	}
	fmt.Printf("largest route cache: %d entries (bound: 128 interval slots)\n\n", maxEntries)

	// The sink (lowest address) polls every sensor.
	sim.SSR().Stop()
	nodes := sim.NodeIDs()
	sink := nodes[0]
	delivered, totalHops := 0, 0
	for _, sensor := range nodes[1:] {
		out := sim.Route(sink, sensor)
		if out.Delivered {
			delivered++
			totalHops += out.Hops
		}
	}
	fmt.Printf("sink polled %d/%d sensors, mean route length %.1f hops\n",
		delivered, len(nodes)-1, float64(totalHops)/float64(delivered))
}
